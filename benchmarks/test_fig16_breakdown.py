"""Benchmark for Figures 2 / 16 — cumulative performance breakdown."""

from __future__ import annotations

from conftest import attach_metrics

from repro.experiments import fig16_breakdown

#: The breakdown needs larger proxies than the other benchmarks so that the
#: un-condensed configurations actually exercise multi-round merging.
BREAKDOWN_MAX_ROWS = 1500
BREAKDOWN_NAMES = ["wiki-Vote", "facebook", "poisson3Da"]


def test_fig16_performance_breakdown(benchmark):
    result = benchmark.pedantic(
        fig16_breakdown.run,
        kwargs=dict(max_rows=BREAKDOWN_MAX_ROWS, names=BREAKDOWN_NAMES),
        rounds=1, iterations=1,
    )
    attach_metrics(benchmark, result)
    metrics = result.metrics
    # The measured walk ends up well ahead of OuterSPACE (4.2× in the paper).
    assert metrics["overall_speedup_vs_outerspace"] > 2.0
    # Each of the last two techniques helps (≥1×) on top of the previous one.
    assert metrics["speedup_vs_prev[+ Huffman Tree Scheduler]"] >= 0.95
    assert metrics["speedup_vs_prev[+ Row Prefetcher]"] >= 1.0
    # The §III-C projection at paper scale reproduces the 5.7× regression of
    # the pipelined-only configuration.
    assert 4.5 < metrics["projected_slowdown[pipelined_only]"] < 6.5
    assert metrics["projected_speedup[condensing]"] > 4.0
