"""Benchmark for Table II — area, power and bandwidth utilisation."""

from __future__ import annotations

from conftest import BENCH_MAX_ROWS, attach_metrics

from repro.experiments import table2_comparison


def test_table2_comparison(benchmark, bench_names):
    result = benchmark.pedantic(
        table2_comparison.run,
        kwargs=dict(max_rows=BENCH_MAX_ROWS, names=bench_names),
        rounds=1, iterations=1,
    )
    attach_metrics(benchmark, result)
    metrics = result.metrics
    # SpArch is smaller, lower-power, and uses the HBM better than OuterSPACE.
    assert metrics["area_mm2[SpArch]"] < 0.5 * metrics["area_mm2[OuterSPACE]"]
    assert metrics["power_w[SpArch]"] < metrics["power_w[OuterSPACE]"]
    assert metrics["bandwidth_utilization[SpArch]"] > metrics[
        "bandwidth_utilization[OuterSPACE]"]
