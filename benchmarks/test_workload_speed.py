"""Speed smoke test: cached workload re-runs must beat cold runs by ≥ 5×.

Workload pipelines memoise every SpGEMM stage through the
:class:`~repro.experiments.runner.ExperimentRunner` fingerprint cache, so a
warm re-run of an iterative workload (here: the registered MCL pipeline)
pays only the cheap host work — functional products, inflation, pruning —
while the cold run also simulates each expansion on SpArch.  The identity
of cold and warm results is proven by
``tests/workloads/test_stats_accounting.py``; this file only checks time.

On shared CI runners the threshold is soft: set ``REPRO_BENCH_SOFT=1`` and
a shortfall is reported as a warning instead of a failure (report, don't
flake).  Local runs and the recorded numbers always use the hard threshold.
"""

from __future__ import annotations

import time

from repro.experiments.runner import ExperimentRunner
from repro.matrices.rmat import RMATConfig, generate_rmat
from repro.workloads import run_workload

from bench_results import enforce_threshold, record_result

MIN_CACHED_SPEEDUP = 5.0

#: Mid-size rMAT graph and iteration budget: enough expansions that the
#: SpArch simulation clearly dominates the host-side pipeline work.
NUM_ROWS = 1_200
EDGE_FACTOR = 8
MAX_ITERATIONS = 6


def test_cached_mcl_workload_at_least_5x_faster():
    matrix = generate_rmat(RMATConfig(num_rows=NUM_ROWS,
                                      edge_factor=EDGE_FACTOR, seed=17))
    runner = ExperimentRunner()

    start = time.perf_counter()
    cold = run_workload("mcl", matrix, runner=runner,
                        max_iterations=MAX_ITERATIONS)
    cold_seconds = time.perf_counter() - start
    assert runner.cache_misses > 0

    start = time.perf_counter()
    warm = run_workload("mcl", matrix, runner=runner,
                        max_iterations=MAX_ITERATIONS)
    warm_seconds = time.perf_counter() - start
    assert warm == cold  # byte-for-byte identical stage records

    speedup = cold_seconds / warm_seconds
    record_result("workload_speed[mcl]",
                  cold_seconds=cold_seconds,
                  warm_seconds=warm_seconds,
                  spgemm_stages=len(cold.spgemm_stages),
                  speedup=speedup,
                  threshold=MIN_CACHED_SPEEDUP)
    if speedup < MIN_CACHED_SPEEDUP:
        enforce_threshold(
            f"cached MCL workload only {speedup:.2f}x faster than cold "
            f"(cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s; "
            f"threshold {MIN_CACHED_SPEEDUP}x)"
        )
