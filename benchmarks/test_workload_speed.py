"""Speed smoke test: cached workload re-runs must beat cold runs by ≥ 5×.

Workload pipelines memoise every SpGEMM stage through the
:class:`~repro.experiments.runner.ExperimentRunner` fingerprint cache, so a
warm re-run of an iterative workload (here: the registered MCL pipeline)
pays only the cheap host work — functional products, inflation, pruning —
while the cold run also simulates each expansion on SpArch.  The identity
of cold and warm results is proven by
``tests/workloads/test_stats_accounting.py``; this file only checks time.

On shared CI runners the threshold is soft: set ``REPRO_BENCH_SOFT=1`` and
a shortfall is reported as a warning instead of a failure (report, don't
flake).  Local runs and the recorded numbers always use the hard threshold.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.experiments.workloads_e2e import run as run_workloads_experiment
from repro.matrices.rmat import RMATConfig, generate_rmat
from repro.workloads import run_workload

from bench_results import enforce_threshold, record_result

MIN_CACHED_SPEEDUP = 5.0

#: The ``--jobs`` fan-out ships whole pipeline runs to worker processes;
#: on ≥ 2 cores a 2-way fan-out over an imbalanced 3-matrix sweep should
#: comfortably clear this (identical results are proven separately by
#: ``tests/workloads/test_experiment_fanout.py``).
MIN_FANOUT_SPEEDUP = 1.2

#: Mid-size rMAT graph and iteration budget: enough expansions that the
#: SpArch simulation clearly dominates the host-side pipeline work.
NUM_ROWS = 1_200
EDGE_FACTOR = 8
MAX_ITERATIONS = 6


def test_cached_mcl_workload_at_least_5x_faster():
    matrix = generate_rmat(RMATConfig(num_rows=NUM_ROWS,
                                      edge_factor=EDGE_FACTOR, seed=17))
    runner = ExperimentRunner()

    start = time.perf_counter()
    cold = run_workload("mcl", matrix, runner=runner,
                        max_iterations=MAX_ITERATIONS)
    cold_seconds = time.perf_counter() - start
    assert runner.cache_misses > 0

    start = time.perf_counter()
    warm = run_workload("mcl", matrix, runner=runner,
                        max_iterations=MAX_ITERATIONS)
    warm_seconds = time.perf_counter() - start
    assert warm == cold  # byte-for-byte identical stage records

    speedup = cold_seconds / warm_seconds
    record_result("workload_speed[mcl]",
                  cold_seconds=cold_seconds,
                  warm_seconds=warm_seconds,
                  spgemm_stages=len(cold.spgemm_stages),
                  speedup=speedup,
                  threshold=MIN_CACHED_SPEEDUP)
    if speedup < MIN_CACHED_SPEEDUP:
        enforce_threshold(
            f"cached MCL workload only {speedup:.2f}x faster than cold "
            f"(cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s; "
            f"threshold {MIN_CACHED_SPEEDUP}x)"
        )


def test_workloads_experiment_fanout_speedup():
    """``--jobs`` fan-out of the workloads sweep beats the serial path.

    Whole (workload, backend, matrix) pipeline runs ship to worker
    processes, so with ≥ 2 cores the wall clock should drop towards the
    longest single run.  One core cannot show a wall-clock win, so the
    test skips there instead of measuring scheduler noise.
    """
    if (os.cpu_count() or 1) < 2:
        pytest.skip("process fan-out cannot speed up a single-core machine")

    kwargs = dict(max_rows=1000, workload_ids=["mcl"], baselines=[])

    start = time.perf_counter()
    serial = run_workloads_experiment(runner=ExperimentRunner(), **kwargs)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_workloads_experiment(runner=ExperimentRunner(jobs=2),
                                        **kwargs)
    parallel_seconds = time.perf_counter() - start
    assert parallel.metrics == serial.metrics  # fan-out is a pure speedup

    speedup = serial_seconds / parallel_seconds
    record_result("workload_fanout[mcl]",
                  serial_seconds=serial_seconds,
                  parallel_seconds=parallel_seconds,
                  jobs=2,
                  speedup=speedup,
                  threshold=MIN_FANOUT_SPEEDUP)
    if speedup < MIN_FANOUT_SPEEDUP:
        enforce_threshold(
            f"workloads --jobs fan-out only {speedup:.2f}x faster than "
            f"serial (serial {serial_seconds:.3f}s, parallel "
            f"{parallel_seconds:.3f}s; threshold {MIN_FANOUT_SPEEDUP}x)"
        )
