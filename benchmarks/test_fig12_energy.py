"""Benchmark for Figure 12 — energy saving over the five baselines."""

from __future__ import annotations

from conftest import BENCH_MAX_ROWS, attach_metrics

from repro.experiments import fig12_energy


def test_fig12_energy_saving(benchmark, bench_names):
    result = benchmark.pedantic(
        fig12_energy.run,
        kwargs=dict(max_rows=BENCH_MAX_ROWS, names=bench_names),
        rounds=1, iterations=1,
    )
    attach_metrics(benchmark, result)
    metrics = result.metrics
    # Shape of Figure 12: single-digit saving over the OuterSPACE ASIC,
    # two to three orders of magnitude over the software libraries.
    assert 2.0 < metrics["geomean_energy_saving[OuterSPACE]"] < 20.0
    assert metrics["geomean_energy_saving[MKL]"] > 50.0
    assert metrics["geomean_energy_saving[cuSPARSE]"] > 100.0
    assert metrics["geomean_energy_saving[CUSP]"] > 100.0
    assert 15.0 < metrics["geomean_energy_saving[Armadillo]"] < 300.0
