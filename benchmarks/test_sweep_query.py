"""Sweep-store query benchmark: the sidecar index vs the full scan.

Builds a ~10^5-cell synthetic store (``repro.sweeps.synth`` — fully
valid record lines, same code paths as real sweep output) once per
module, then measures the two operations the index exists for:

* ``summarise`` — zero-scan SQL aggregation vs the streamed JSONL scan;
* store open + resume view (``done_cells``) — lazy index-backed open vs
  the eager parse of every line.

Correctness is asserted first (rendered summaries identical, resume
views identical); only then are the timings compared.  The index must
clear a 20x speedup on summarise at this scale — in practice it is
hundreds of times faster, since the scan parses ~100 MB of JSON and the
index reads a few thousand aggregated rows.  Timings land in
``BENCH_results.json`` and soft-fail under ``REPRO_BENCH_SOFT=1``.

``REPRO_QUERY_BENCH_CELLS`` scales the store down for constrained CI
runners (the CI job uses 20000).
"""

from __future__ import annotations

import os
import time

import pytest

from bench_results import enforce_threshold, record_result
from repro.sweeps.driver import summarise_store_file
from repro.sweeps.index import drop_index, ensure_index
from repro.sweeps.store import ResultStore
from repro.sweeps.synth import write_synthetic_store

CELLS = int(os.environ.get("REPRO_QUERY_BENCH_CELLS", "100000"))

#: Required index-vs-scan speedup for ``summarise`` at CELLS scale.
MIN_SUMMARISE_SPEEDUP = 20.0


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("query-bench") / "store.jsonl"
    write_synthetic_store(path, CELLS)
    return path


def timed(operation):
    start = time.perf_counter()
    result = operation()
    return result, time.perf_counter() - start


def test_summarise_speedup_indexed_vs_full_scan(store_path):
    index = ensure_index(store_path)
    try:
        # Correctness first: identical rendered tables.
        indexed_table, indexed_seconds = timed(
            lambda: index.summarise(title="bench"))
        scanned_table, scanned_seconds = timed(
            lambda: summarise_store_file(store_path, title="bench"))
        assert indexed_table.render() == scanned_table.render()

        # Filtered top-k — the query the scan path cannot serve at all
        # without a full parse; timed for the record, no threshold.
        rows, query_seconds = timed(lambda: index.query_cells(
            where={"engine": "sparch"}, sort="gflops", limit=10))
        assert len(rows) == 10
    finally:
        index.close()

    speedup = scanned_seconds / max(indexed_seconds, 1e-9)
    record_result(
        "sweep_query[summarise]",
        cells=CELLS,
        store_bytes=os.path.getsize(store_path),
        scan_seconds=scanned_seconds,
        index_seconds=indexed_seconds,
        topk_seconds=query_seconds,
        speedup=speedup,
    )
    if speedup < MIN_SUMMARISE_SPEEDUP:
        enforce_threshold(
            f"indexed summarise over {CELLS} cells is only {speedup:.1f}x "
            f"faster than the full scan ({indexed_seconds * 1e3:.1f} ms vs "
            f"{scanned_seconds * 1e3:.1f} ms); the floor is "
            f"{MIN_SUMMARISE_SPEEDUP:.0f}x")


def test_store_open_and_resume_lazy_vs_eager(store_path):
    # Make both sides pay their genuine first-open cost: the lazy path
    # must not reuse page cache warmed by an earlier eager scan of the
    # sidecar, so the index is rebuilt fresh before timing.
    ensure_index(store_path).close()

    def lazy_resume():
        store = ResultStore(store_path)
        cells = store.done_cells
        store.close()
        return cells

    def eager_resume():
        return ResultStore(store_path, index=False).done_cells

    lazy_cells, lazy_seconds = timed(lazy_resume)
    eager_cells, eager_seconds = timed(eager_resume)
    assert lazy_cells == eager_cells  # identical resume view
    assert len(lazy_cells) == CELLS

    speedup = eager_seconds / max(lazy_seconds, 1e-9)
    record_result(
        "sweep_query[resume]",
        cells=CELLS,
        eager_open_seconds=eager_seconds,
        lazy_open_seconds=lazy_seconds,
        speedup=speedup,
    )
    if lazy_seconds >= eager_seconds:
        enforce_threshold(
            f"lazy index-backed open ({lazy_seconds * 1e3:.1f} ms) is not "
            f"faster than the eager scan ({eager_seconds * 1e3:.1f} ms) "
            f"over {CELLS} cells")


def test_rebuild_cost_is_bounded_by_one_scan(store_path):
    # Dropping the sidecar is always recoverable; record what the
    # recovery costs at this scale so regressions are visible.
    drop_index(store_path)
    index, rebuild_seconds = timed(lambda: ensure_index(store_path))
    count = index.count()
    index.close()
    assert count == CELLS
    record_result(
        "sweep_query[rebuild]",
        cells=CELLS,
        rebuild_seconds=rebuild_seconds,
    )
