"""Benchmark for Figure 15 — roofline analysis."""

from __future__ import annotations

from conftest import BENCH_MAX_ROWS, attach_metrics

from repro.experiments import fig15_roofline


def test_fig15_roofline(benchmark, bench_names):
    result = benchmark.pedantic(
        fig15_roofline.run,
        kwargs=dict(max_rows=BENCH_MAX_ROWS, names=bench_names),
        rounds=1, iterations=1,
    )
    attach_metrics(benchmark, result)
    metrics = result.metrics
    # SpArch sits much closer to the bandwidth roof than OuterSPACE (2.3×
    # vs 9.6× away in the paper).
    assert metrics["roof_gap[SpArch]"] < 4.0
    assert metrics["roof_gap[OuterSPACE]"] > metrics["roof_gap[SpArch]"] * 2
    assert metrics["achieved_gflops[SpArch]"] > 2 * metrics[
        "achieved_gflops[OuterSPACE]"]
    assert metrics["roof_gflops"] <= 32.0
