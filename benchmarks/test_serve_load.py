"""Serving throughput benchmark: hot-cache requests per second.

Drives the in-process service through the same ``run_traffic`` helper the
CLI bench and the serve load tests use: warm the whole smoke population
once, then replay a Zipf-skewed mix from concurrent client threads and
record served requests/sec and client-side latency percentiles into
``BENCH_results.json``.

The threshold is deliberately conservative — a warm request is a memory
probe plus response assembly, and even modest hardware clears thousands
per second — and soft-fails under ``REPRO_BENCH_SOFT=1`` like every other
speed test here.
"""

from __future__ import annotations

from bench_results import enforce_threshold, record_result
from repro.experiments.runner import ExperimentRunner
from repro.serve.__main__ import run_traffic
from repro.serve.service import ServeOptions, SpGEMMService
from repro.serve.traffic import TrafficSpec

SPEC = TrafficSpec(corpus="smoke", engines=("sparch", "mkl", "heap"),
                   skew=1.2, seed=23)
REQUESTS = 4000
CLIENTS = 32

#: Floor for hot-cache serving throughput (requests/second).
MIN_SERVED_RPS = 500.0
#: Ceiling for the hot-cache client-side p99 (milliseconds).
MAX_HOT_P99_MS = 100.0


def test_served_requests_per_second_hot_cache():
    service = SpGEMMService(
        runner=ExperimentRunner(),
        options=ServeOptions(workers=8, queue_limit=512))
    client = run_traffic(service.request, SPEC, count=REQUESTS,
                         clients=CLIENTS, warm=True)
    assert client["ok"] == REQUESTS  # correctness first, speed second

    throughput = client["throughput_rps"]
    p99_ms = client["latency"]["p99_ms"]
    runner_stats = service.stats()["runner"]
    record_result(
        "serve_load[hot]",
        requests=REQUESTS,
        clients=CLIENTS,
        throughput_rps=throughput,
        p50_ms=client["latency"]["p50_ms"],
        p99_ms=p99_ms,
        hit_rate=runner_stats["hit_rate"],
    )
    if throughput < MIN_SERVED_RPS:
        enforce_threshold(
            f"hot-cache serving throughput {throughput:.0f} req/s is below "
            f"the {MIN_SERVED_RPS:.0f} req/s floor")
    if p99_ms > MAX_HOT_P99_MS:
        enforce_threshold(
            f"hot-cache p99 {p99_ms:.2f} ms exceeds the "
            f"{MAX_HOT_P99_MS:.0f} ms ceiling")
