"""Benchmark for Figure 11 — speedup over the five baselines."""

from __future__ import annotations

from conftest import BENCH_MAX_ROWS, attach_metrics

from repro.experiments import fig11_speedup


def test_fig11_speedup(benchmark, bench_names):
    result = benchmark.pedantic(
        fig11_speedup.run,
        kwargs=dict(max_rows=BENCH_MAX_ROWS, names=bench_names),
        rounds=1, iterations=1,
    )
    attach_metrics(benchmark, result)
    metrics = result.metrics
    # Shape of Figure 11: SpArch wins everywhere; OuterSPACE is the closest
    # competitor; Armadillo trails by three orders of magnitude.
    assert 2.0 < metrics["geomean_speedup[OuterSPACE]"] < 12.0
    assert 8.0 < metrics["geomean_speedup[MKL]"] < 60.0
    assert 8.0 < metrics["geomean_speedup[cuSPARSE]"] < 60.0
    assert 8.0 < metrics["geomean_speedup[CUSP]"] < 60.0
    assert metrics["geomean_speedup[Armadillo]"] > 300.0
