"""Registry behind ``BENCH_results.json`` (see ``benchmarks/conftest.py``).

Lives in its own uniquely-named module (not ``conftest``) so speed tests can
``import bench_results`` without colliding with the ``tests/`` conftest when
the whole repository is collected in one pytest run.
"""

from __future__ import annotations

import os
import warnings

#: Soft-fail switch for shared CI runners: report the shortfall, don't flake.
SOFT_ENV = "REPRO_BENCH_SOFT"

#: Explicitly recorded results (speed tests that do their own timing).
RECORDED: dict[str, dict] = {}


def enforce_threshold(message: str) -> None:
    """Fail on a missed speedup threshold, or warn when soft mode is on.

    With ``REPRO_BENCH_SOFT=1`` (shared CI runners) the shortfall is
    reported as a warning instead of a failure; the measured numbers still
    land in ``BENCH_results.json`` either way.
    """
    if os.environ.get(SOFT_ENV) == "1":
        warnings.warn(f"soft-fail ({SOFT_ENV}=1): {message}", stacklevel=2)
    else:
        raise AssertionError(message)


def record_result(name: str, **metrics: float) -> None:
    """Record one named measurement for ``BENCH_results.json``.

    Speed tests that time both backends themselves (rather than through the
    ``benchmark`` fixture) call this with their wall-clock seconds and
    speedup ratios, e.g. ``record_result("baseline_speed[MKL]",
    scalar_seconds=…, vectorized_seconds=…, speedup=…)``.
    """
    RECORDED[name] = {key: float(value) for key, value in metrics.items()}
