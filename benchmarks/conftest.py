"""Shared configuration for the benchmark harnesses.

Every paper table/figure has one ``bench_*`` module.  The benchmarks run the
corresponding experiment harness on a reduced workload (pytest-benchmark
measures the harness runtime; the *reproduced numbers* are attached to the
benchmark's ``extra_info`` so ``--benchmark-json`` output contains the same
rows the paper reports).  EXPERIMENTS.md records the full-size runs.

Besides the pytest-benchmark integration, this conftest emits a
machine-readable ``BENCH_results.json`` at session end: per-benchmark
wall-clock numbers and speedup ratios, harvested both from pytest-benchmark
stats and from the explicit :func:`record_result` calls the speed tests
make.  CI uploads the file as an artifact so the performance trajectory is
tracked across PRs.  Set ``REPRO_BENCH_JSON`` to override the output path.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from bench_results import RECORDED, record_result

__all__ = ["attach_metrics", "record_result"]

#: Benchmark workload: a representative subset of the 20-matrix suite that
#: keeps a full ``pytest benchmarks/`` run in the minutes range.
BENCH_NAMES = ["wiki-Vote", "facebook", "poisson3Da", "email-Enron",
               "ca-CondMat"]
BENCH_MAX_ROWS = 600

#: Environment variable overriding where BENCH_results.json is written.
BENCH_JSON_ENV = "REPRO_BENCH_JSON"


@pytest.fixture(scope="session")
def bench_names() -> list[str]:
    """Benchmark subset names shared by all experiment benchmarks."""
    return list(BENCH_NAMES)


@pytest.fixture(scope="session")
def bench_matrices():
    """The benchmark subset, generated once per session."""
    from repro.matrices.suite import load_suite

    return load_suite(max_rows=BENCH_MAX_ROWS, names=BENCH_NAMES)


def attach_metrics(benchmark, result) -> None:
    """Record an experiment's headline metrics in the benchmark report."""
    for key, value in result.metrics.items():
        benchmark.extra_info[key] = value


def _bench_json_path(config) -> Path:
    override = os.environ.get(BENCH_JSON_ENV)
    if override:
        return Path(override)
    return Path(str(config.rootpath)) / "BENCH_results.json"


def _harvest_pytest_benchmarks(config) -> dict[str, dict]:
    """Collect wall-clock stats from pytest-benchmark, when it ran."""
    session = getattr(config, "_benchmarksession", None)
    if session is None:
        return {}
    harvested: dict[str, dict] = {}
    for bench in getattr(session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        # pytest-benchmark wraps the numbers one level deeper on some
        # versions (Metadata.stats.stats); unwrap when needed.
        stats = getattr(stats, "stats", stats)
        if stats is None:
            continue
        entry = {
            "min_seconds": float(stats.min),
            "mean_seconds": float(stats.mean),
            "rounds": int(stats.rounds),
        }
        entry.update({key: value for key, value in bench.extra_info.items()
                      if isinstance(value, (int, float))})
        harvested[bench.name] = entry
    return harvested


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write BENCH_results.json with everything measured this session."""
    benchmarks = _harvest_pytest_benchmarks(session.config)
    if not benchmarks and not RECORDED:
        return
    payload = {
        "schema": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "exit_status": int(exitstatus),
        "benchmarks": benchmarks,
        "records": dict(RECORDED),
    }
    path = _bench_json_path(session.config)
    try:
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    except OSError:  # read-only checkout etc. — reporting must not fail the run
        pass
