"""Shared configuration for the benchmark harnesses.

Every paper table/figure has one ``bench_*`` module.  The benchmarks run the
corresponding experiment harness on a reduced workload (pytest-benchmark
measures the harness runtime; the *reproduced numbers* are attached to the
benchmark's ``extra_info`` so ``--benchmark-json`` output contains the same
rows the paper reports).  EXPERIMENTS.md records the full-size runs.
"""

from __future__ import annotations

import pytest

#: Benchmark workload: a representative subset of the 20-matrix suite that
#: keeps a full ``pytest benchmarks/`` run in the minutes range.
BENCH_NAMES = ["wiki-Vote", "facebook", "poisson3Da", "email-Enron",
               "ca-CondMat"]
BENCH_MAX_ROWS = 600


@pytest.fixture(scope="session")
def bench_names() -> list[str]:
    """Benchmark subset names shared by all experiment benchmarks."""
    return list(BENCH_NAMES)


@pytest.fixture(scope="session")
def bench_matrices():
    """The benchmark subset, generated once per session."""
    from repro.matrices.suite import load_suite

    return load_suite(max_rows=BENCH_MAX_ROWS, names=BENCH_NAMES)


def attach_metrics(benchmark, result) -> None:
    """Record an experiment's headline metrics in the benchmark report."""
    for key, value in result.metrics.items():
        benchmark.extra_info[key] = value
