"""Benchmark for Table III — energy and area breakdown per component."""

from __future__ import annotations

from conftest import BENCH_MAX_ROWS, attach_metrics

from repro.experiments import table3_energy


def test_table3_energy_breakdown(benchmark, bench_names):
    result = benchmark.pedantic(
        table3_energy.run,
        kwargs=dict(max_rows=BENCH_MAX_ROWS, names=bench_names),
        rounds=1, iterations=1,
    )
    attach_metrics(benchmark, result)
    metrics = result.metrics
    # SpArch operates well below 1 nJ/FLOP; OuterSPACE is several times
    # higher (0.89 vs 4.95 in the paper).
    assert metrics["energy_per_flop[SpArch]"] < 1.5
    assert metrics["energy_per_flop[OuterSPACE]"] > 2.0
    assert metrics["energy_ratio"] > 3.0
    assert metrics["area_mm2[SpArch]"] < metrics["area_mm2[OuterSPACE]"]
