"""Speed smoke test: the vectorized engine must beat the scalar engine.

Two comparisons on mid-size rMAT matrices:

* **Engine kernels** (asserted ≥ 3×): the leaf streamer + merge tree — the
  code paths ``SpArchConfig.engine`` actually switches — executing the same
  Huffman merge plan.  This is the hot path the vectorized backend batches
  (partial-product gathers, one stable argsort per round, ``reduceat``
  folding) and where the scalar reference walks elements and node pairs in
  Python.
* **End-to-end multiply** (asserted ≥ 1.5×, actual ratio recorded): full
  ``SpArch.multiply`` including the engine-independent parts both backends
  share verbatim — the Bélády prefetcher policy loop, plan construction and
  result materialisation — which bound the whole-simulation ratio to
  roughly 2–3× on these sizes.

Timings use best-of-three to shrug off scheduler noise; the differential
harness (``tests/integration/test_engine_equivalence.py``) separately proves
the outputs are identical, so this file only checks time.  On shared CI
runners set ``REPRO_BENCH_SOFT=1`` to report a missed threshold as a warning
instead of a failure (the numbers still land in ``BENCH_results.json``).
"""

from __future__ import annotations

import time

import numpy as np

from bench_results import enforce_threshold, record_result
from repro.core.accelerator import SpArch, _LeafStreamer
from repro.core.config import SpArchConfig
from repro.core.huffman import huffman_schedule
from repro.core.partial_matrix import PartialMatrixStore
from repro.core.vectorized import VectorizedLeafStreamer, VectorizedMergeTree
from repro.formats.csr import CSRMatrix
from repro.hardware.merge_tree import MergeTree
from repro.hardware.multiplier_array import MultiplierArray
from repro.matrices.rmat import RMATConfig, generate_rmat
from repro.memory.traffic import TrafficCounter

#: Mid-size rMAT workloads (dimension × average degree).
KERNEL_WORKLOADS = ((2_000, 4), (3_000, 4), (4_000, 4), (2_500, 3), (4_000, 3))
END_TO_END_WORKLOAD = (5_000, 4)
REPEATS = 5

KERNEL_MIN_SPEEDUP = 3.0
END_TO_END_MIN_SPEEDUP = 1.5


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run_engine_kernels(matrix: CSRMatrix, engine: str) -> tuple[np.ndarray, np.ndarray]:
    """Stream every leaf and execute the full merge plan on one engine."""
    multipliers = MultiplierArray(16)
    if engine == "vectorized":
        streamer = VectorizedLeafStreamer(matrix, matrix, multipliers,
                                          condensing=True)
        tree = VectorizedMergeTree(num_layers=6)
    else:
        streamer = _LeafStreamer(matrix, matrix, multipliers, condensing=True)
        tree = MergeTree(num_layers=6)
    plan = huffman_schedule([float(w) for w in streamer.leaf_weights()],
                            tree.num_ways)
    store = PartialMatrixStore(TrafficCounter())
    if plan.num_leaves == 1:
        return tree.merge([streamer.leaf_stream(0)])
    merged = (np.empty(0, np.int64), np.empty(0))
    for merge_round in plan.rounds:
        streams = [streamer.leaf_stream(node_id)
                   if node_id < plan.num_leaves else store.read(node_id)
                   for node_id in merge_round.input_ids]
        merged = tree.merge(streams)
        if merge_round.output_id != plan.root_id:
            store.write(merge_round.output_id, *merged)
    return merged


def test_vectorized_engine_kernels_at_least_3x_faster():
    """Streamer + merge tree: vectorized ≥ 3× scalar on mid-size rMATs."""
    scalar_total = 0.0
    vectorized_total = 0.0
    for rows, degree in KERNEL_WORKLOADS:
        matrix = generate_rmat(RMATConfig(num_rows=rows, edge_factor=degree,
                                          seed=5))
        scalar_total += _best_of(REPEATS,
                                 lambda: _run_engine_kernels(matrix, "scalar"))
        vectorized_total += _best_of(
            REPEATS, lambda: _run_engine_kernels(matrix, "vectorized"))
    speedup = scalar_total / vectorized_total
    record_result("engine_speed[kernels]",
                  scalar_seconds=scalar_total,
                  vectorized_seconds=vectorized_total,
                  speedup=speedup,
                  threshold=KERNEL_MIN_SPEEDUP)
    if speedup < KERNEL_MIN_SPEEDUP:
        enforce_threshold(
            f"vectorized merge/multiply kernels only {speedup:.2f}x faster "
            f"(scalar {scalar_total:.3f}s, vectorized {vectorized_total:.3f}s)"
        )


def test_end_to_end_multiply_speedup(benchmark):
    """Full simulation: vectorized strictly faster; ratio recorded."""
    rows, degree = END_TO_END_WORKLOAD
    matrix = generate_rmat(RMATConfig(num_rows=rows, edge_factor=degree,
                                      seed=5))
    scalar = SpArch(SpArchConfig(engine="scalar"))
    vectorized = SpArch(SpArchConfig(engine="vectorized"))

    scalar_time = _best_of(REPEATS, lambda: scalar.multiply(matrix, matrix))
    benchmark.pedantic(lambda: vectorized.multiply(matrix, matrix),
                       rounds=REPEATS, iterations=1)
    vectorized_best = min(benchmark.stats.stats.data)

    speedup = scalar_time / vectorized_best
    benchmark.extra_info["scalar_seconds"] = scalar_time
    benchmark.extra_info["vectorized_seconds"] = vectorized_best
    benchmark.extra_info["end_to_end_speedup"] = speedup
    record_result("engine_speed[end_to_end]",
                  scalar_seconds=scalar_time,
                  vectorized_seconds=vectorized_best,
                  speedup=speedup,
                  threshold=END_TO_END_MIN_SPEEDUP)
    if speedup < END_TO_END_MIN_SPEEDUP:
        enforce_threshold(
            f"end-to-end vectorized run only {speedup:.2f}x faster "
            f"(scalar {scalar_time:.3f}s, vectorized {vectorized_best:.3f}s)"
        )
