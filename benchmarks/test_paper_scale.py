"""Paper-scale smoke benchmark: a 10⁵-row suite rung, unscaled buffers.

The benchmark suite normally runs on ``BENCH_MAX_ROWS = 600`` proxies with
proxy-scaled buffers.  This module is the exception: it executes the
*smallest paper-scale rung* — patents_main capped at 10⁵ rows — on the
streaming engine with the **unscaled Table I configuration**, exactly the
regime DESIGN.md's proxy-scaling argument used to exclude.  Tracked
quantities:

* ``rows_per_second`` — result rows divided by best-of wall-clock; the
  headline throughput number for the paper-scale trajectory (methodology in
  README.md § Paper scale).
* ``peak_rss_mib`` — the process high-water mark after the run, a coarse
  regression tripwire for the streaming core's bounded-memory claim.

The threshold is deliberately loose (~15× below the measured laptop
number): it exists to catch complexity regressions (an accidentally
quadratic path turns minutes into hours at this scale), not to benchmark
the host.  ``REPRO_BENCH_SOFT=1`` demotes a miss to a warning on shared CI
runners.
"""

from __future__ import annotations

import resource
import time

from bench_results import enforce_threshold, record_result
from repro.core.accelerator import SpArch
from repro.experiments.common import (
    PAPER_SCALE_MAX_ROWS,
    load_paper_scale_suite,
)

#: The smallest (cheapest-nnz) paper-scale rung of the suite ladder.
RUNG_NAME = "patents_main"
REPEATS = 3

#: Rows/second floor — ~15× below the measured reference-host number, so
#: only a complexity regression (not host speed) can trip it.
MIN_ROWS_PER_SECOND = 2_000.0


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_paper_scale_rung_streaming_throughput():
    """patents_main @ 10⁵ rows, streaming engine, unscaled Table I."""
    suite = load_paper_scale_suite(max_rows=PAPER_SCALE_MAX_ROWS,
                                   names=[RUNG_NAME])
    matrix, config = suite[RUNG_NAME]
    assert config.engine == "streaming"
    assert config.prefetch_buffer_lines == 1024  # unscaled Table I
    assert config.lookahead_fifo_elements == 8192

    accelerator = SpArch(config)
    # One warm-up run doubles as the correctness probe for the recorded
    # output statistics.
    result = accelerator.multiply(matrix, matrix)
    assert result.matrix.nnz > 0
    best = _best_of(REPEATS, lambda: accelerator.multiply(matrix, matrix))
    rows_per_second = matrix.shape[0] / best
    peak_rss_mib = (resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                    / 1024.0)

    record_result(f"paper_scale[{RUNG_NAME}@{PAPER_SCALE_MAX_ROWS}]",
                  seconds=best,
                  rows_per_second=rows_per_second,
                  rows=matrix.shape[0],
                  nnz=matrix.nnz,
                  output_nnz=result.matrix.nnz,
                  merge_rounds=result.stats.num_merge_rounds,
                  peak_rss_mib=peak_rss_mib,
                  threshold=MIN_ROWS_PER_SECOND)
    if rows_per_second < MIN_ROWS_PER_SECOND:
        enforce_threshold(
            f"paper-scale rung ran at {rows_per_second:,.0f} rows/s "
            f"(< {MIN_ROWS_PER_SECOND:,.0f}; {best:.2f}s for "
            f"{matrix.shape[0]:,} rows)"
        )
