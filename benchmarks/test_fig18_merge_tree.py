"""Benchmark for Figure 18 — merge tree depth exploration."""

from __future__ import annotations

from conftest import BENCH_MAX_ROWS, attach_metrics

from repro.experiments import fig18_merge_tree


def test_fig18_merge_tree_depth(benchmark, bench_names):
    result = benchmark.pedantic(
        fig18_merge_tree.run,
        kwargs=dict(max_rows=BENCH_MAX_ROWS, names=bench_names),
        rounds=1, iterations=1,
    )
    attach_metrics(benchmark, result)
    metrics = result.metrics
    # Throughput grows with depth and saturates; DRAM traffic shrinks.
    assert metrics["gflops[layers:2]"] < metrics["gflops[layers:4]"]
    assert metrics["gflops[layers:6]"] >= metrics["gflops[layers:4]"]
    assert metrics["dram[layers:6]"] <= metrics["dram[layers:2]"]
    # Going beyond 6 layers gives only a marginal improvement (Figure 18's
    # reason for choosing 6).
    assert metrics["gflops[layers:7]"] < 1.25 * metrics["gflops[layers:6]"]
