"""Speed smoke test: vectorized baseline backends must beat the scalar loops.

The six comparison simulators of Figure 11 (plus HeapSpGEMM) each run on two
backends; the differential harness (``tests/baselines/
test_backend_equivalence.py``) proves they agree exactly, so this file only
checks time: on mid-size rMAT matrices the vectorized backends must be at
least 3× faster in aggregate.  Per-baseline ratios are recorded in
``BENCH_results.json`` so regressions in a single baseline are visible even
while the aggregate holds.

On shared CI runners the threshold is soft: set ``REPRO_BENCH_SOFT=1`` and a
shortfall is reported as a warning instead of a failure (report, don't
flake).  Local runs and the recorded numbers always use the hard threshold.
"""

from __future__ import annotations

import time

from repro.baselines import (
    ArmadilloSpGEMM,
    ESCSpGEMM,
    GustavsonSpGEMM,
    HashSpGEMM,
    HeapSpGEMM,
    OuterSpaceAccelerator,
)
from repro.matrices.rmat import RMATConfig, generate_rmat

from bench_results import enforce_threshold, record_result

#: Mid-size rMAT workloads (dimension × average degree).
WORKLOADS = ((1_500, 8), (2_500, 4))
REPEATS = 3

MIN_AGGREGATE_SPEEDUP = 3.0

BASELINES = [OuterSpaceAccelerator, GustavsonSpGEMM, HashSpGEMM, ESCSpGEMM,
             ArmadilloSpGEMM, HeapSpGEMM]


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_baselines_at_least_3x_faster():
    """Aggregate over all baselines and workloads: vectorized ≥ 3× scalar."""
    matrices = [generate_rmat(RMATConfig(num_rows=rows, edge_factor=degree,
                                         seed=5))
                for rows, degree in WORKLOADS]
    scalar_total = 0.0
    vectorized_total = 0.0
    for baseline_cls in BASELINES:
        scalar = baseline_cls(engine="scalar")
        vectorized = baseline_cls(engine="vectorized")
        scalar_seconds = sum(
            _best_of(REPEATS, lambda m=m: scalar.multiply(m, m))
            for m in matrices)
        vectorized_seconds = sum(
            _best_of(REPEATS, lambda m=m: vectorized.multiply(m, m))
            for m in matrices)
        scalar_total += scalar_seconds
        vectorized_total += vectorized_seconds
        record_result(
            f"baseline_speed[{baseline_cls.name}]",
            scalar_seconds=scalar_seconds,
            vectorized_seconds=vectorized_seconds,
            speedup=scalar_seconds / vectorized_seconds,
        )

    speedup = scalar_total / vectorized_total
    record_result("baseline_speed[aggregate]",
                  scalar_seconds=scalar_total,
                  vectorized_seconds=vectorized_total,
                  speedup=speedup,
                  threshold=MIN_AGGREGATE_SPEEDUP)
    if speedup < MIN_AGGREGATE_SPEEDUP:
        enforce_threshold(
            f"vectorized baselines only {speedup:.2f}x faster in aggregate "
            f"(scalar {scalar_total:.3f}s, vectorized {vectorized_total:.3f}s; "
            f"threshold {MIN_AGGREGATE_SPEEDUP}x)"
        )
