"""Benchmark for Figure 8 — Huffman tree scheduler example."""

from __future__ import annotations

from conftest import attach_metrics

from repro.experiments import fig08_huffman


def test_fig08_huffman_example(benchmark):
    result = benchmark(fig08_huffman.run)
    attach_metrics(benchmark, result)
    assert result.metrics["total_weight[2-way sequential]"] == 365.0
    assert result.metrics["total_weight[2-way huffman]"] == 354.0
    assert result.metrics["total_weight[4-way huffman]"] == 228.0
