"""Benchmark for Figure 14 — rMAT sweep versus Intel MKL."""

from __future__ import annotations

from conftest import attach_metrics

from repro.experiments import fig14_rmat

#: rMAT dimensions are scaled to 2 % of the paper's (degrees preserved) so
#: the whole 19-point sweep finishes in seconds.
BENCH_SCALE = 0.02


def test_fig14_rmat_sweep(benchmark):
    result = benchmark.pedantic(
        fig14_rmat.run, kwargs=dict(scale=BENCH_SCALE), rounds=1, iterations=1)
    attach_metrics(benchmark, result)
    metrics = result.metrics
    # Figure 14's claim: SpArch sustains >10× MKL across the density sweep.
    assert metrics["geomean_speedup_over_mkl"] > 5.0
    assert metrics["geomean_flops[SpArch]"] > 1e9
    assert metrics["geomean_flops[MKL]"] < 5e9
