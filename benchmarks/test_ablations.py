"""Benchmarks for the ablation studies called out in DESIGN.md.

These are not tied to one figure: they quantify the §II-B "three orders of
magnitude" condensation claim, the §II-D 62 % buffer hit rate, and the
§II-C Huffman-vs-sequential scheduling gain on the benchmark suite.
"""

from __future__ import annotations

from conftest import BENCH_MAX_ROWS, attach_metrics

from repro.experiments import condensing_stats, scheduler_ablation


def test_condensing_and_prefetcher_ablation(benchmark, bench_names):
    result = benchmark.pedantic(
        condensing_stats.run,
        kwargs=dict(max_rows=BENCH_MAX_ROWS, names=bench_names),
        rounds=1, iterations=1,
    )
    attach_metrics(benchmark, result)
    metrics = result.metrics
    # Condensing collapses the partial-matrix count by orders of magnitude at
    # full scale and still by a large factor on the scaled proxies.
    assert metrics["geomean_condensation_ratio"] > 20.0
    assert metrics["geomean_proxy_condensation_ratio"] > 2.0
    # The buffer hits often and cuts right-operand traffic (62 % / 2.6x in
    # the paper).
    assert 0.2 < metrics["geomean_hit_rate"] <= 1.0
    assert metrics["geomean_b_traffic_reduction"] > 1.2


def test_huffman_scheduler_ablation(benchmark, bench_names):
    result = benchmark.pedantic(
        scheduler_ablation.run,
        kwargs=dict(max_rows=BENCH_MAX_ROWS, names=bench_names,
                    merge_tree_layers=3),
        rounds=1, iterations=1,
    )
    attach_metrics(benchmark, result)
    metrics = result.metrics
    assert metrics["geomean_weight_ratio"] >= 1.0
    assert metrics["geomean_partial_traffic_reduction"] >= 1.0
    assert metrics["geomean_speedup"] >= 0.95
