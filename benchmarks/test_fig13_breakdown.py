"""Benchmark for Figure 13 — area and power breakdown."""

from __future__ import annotations

from conftest import BENCH_MAX_ROWS, attach_metrics

from repro.experiments import fig13_breakdown


def test_fig13_area_power_breakdown(benchmark, bench_names):
    result = benchmark.pedantic(
        fig13_breakdown.run,
        kwargs=dict(max_rows=BENCH_MAX_ROWS, names=bench_names),
        rounds=1, iterations=1,
    )
    attach_metrics(benchmark, result)
    metrics = result.metrics
    # The merge tree dominates both area and power (60.6 % / 55.4 % in the
    # paper); the multiplier array is negligible.
    assert metrics["area_fraction[Merge Tree]"] > 0.5
    assert metrics["power_fraction[Merge Tree]"] > 0.4
    assert metrics["power_fraction[Multiplier Array]"] < 0.1
    assert abs(metrics["total_area_mm2"]
               - result.paper_values["total_area_mm2"]) < 0.1
    assert 3.0 < metrics["average_power_watts"] < 15.0
