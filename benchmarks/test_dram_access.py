"""Benchmark for the headline DRAM-access reduction over OuterSPACE."""

from __future__ import annotations

from conftest import BENCH_MAX_ROWS, attach_metrics

from repro.experiments import dram_access


def test_dram_access_reduction(benchmark, bench_names):
    result = benchmark.pedantic(
        dram_access.run,
        kwargs=dict(max_rows=BENCH_MAX_ROWS, names=bench_names),
        rounds=1, iterations=1,
    )
    attach_metrics(benchmark, result)
    # The abstract's headline is a 2.8× reduction; the scaled proxies land in
    # the same low-single-digit regime.
    assert 1.5 < result.metrics["geomean_dram_reduction"] < 8.0
