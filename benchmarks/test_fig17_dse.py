"""Benchmark for Figure 17 — buffer and comparator design space exploration."""

from __future__ import annotations

from conftest import BENCH_MAX_ROWS, attach_metrics

from repro.experiments import fig17_dse

DSE_NAMES = ["wiki-Vote", "facebook", "email-Enron"]


def test_fig17_design_space_exploration(benchmark):
    result = benchmark.pedantic(
        fig17_dse.run, kwargs=dict(max_rows=BENCH_MAX_ROWS, names=DSE_NAMES),
        rounds=1, iterations=1,
    )
    attach_metrics(benchmark, result)
    metrics = result.metrics
    # (a) longer prefetch-buffer lines monotonically reduce DRAM access.
    assert metrics["dram[line:96]"] <= metrics["dram[line:48]"] <= metrics[
        "dram[line:24]"]
    # (b) at fixed capacity, more/shorter lines reduce DRAM access.
    assert metrics["dram[shape:2048x24]"] <= metrics["dram[shape:256x192]"]
    # (c) performance rises with the comparator array until memory-bound.
    assert (metrics["gflops[comparator:1]"] < metrics["gflops[comparator:4]"]
            <= metrics["gflops[comparator:16]"])
    # (d) a deeper look-ahead FIFO never increases DRAM access.
    assert metrics["dram[lookahead:16384]"] <= metrics["dram[lookahead:1024]"]
