"""Micro-benchmarks of the simulator's core components.

These measure the Python simulator itself (not the modelled hardware): how
fast the merge tree, prefetcher, Huffman scheduler and full accelerator
simulation run, so regressions in the simulator's own complexity are caught.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accelerator import SpArch
from repro.core.huffman import huffman_schedule
from repro.core.prefetcher import RowPrefetcher
from repro.formats.condensed import CondensedMatrix
from repro.hardware.merge_tree import MergeTree
from repro.matrices.rmat import RMATConfig, generate_rmat
from repro.matrices.synthetic import powerlaw_matrix


@pytest.fixture(scope="module")
def matrix():
    return powerlaw_matrix(1024, 8.0, seed=77)


def test_merge_tree_throughput(benchmark, rng=np.random.default_rng(1)):
    streams = []
    for _ in range(64):
        keys = np.sort(rng.integers(0, 100_000, size=500))
        streams.append((keys, rng.random(500)))
    tree = MergeTree(num_layers=6, merger_width=16, chunk_size=4)
    keys, _ = benchmark(tree.merge, streams)
    assert np.all(np.diff(keys) > 0)


def test_huffman_scheduler_scaling(benchmark, rng=np.random.default_rng(2)):
    weights = [float(w) for w in rng.integers(1, 10_000, size=5000)]
    plan = benchmark(huffman_schedule, weights, 64)
    assert plan.num_leaves == 5000


def test_row_prefetcher_simulation(benchmark, matrix):
    access = CondensedMatrix(matrix).access_order()
    prefetcher = RowPrefetcher(matrix, num_lines=64, line_elements=16,
                               lookahead_window=1024)
    stats = benchmark(prefetcher.simulate, access)
    assert stats.accesses == len(access)


def test_full_accelerator_simulation(benchmark, matrix):
    accelerator = SpArch()
    result = benchmark(accelerator.multiply, matrix, matrix)
    assert result.matrix.nnz > 0


def test_rmat_generation(benchmark):
    config = RMATConfig(num_rows=10_000, edge_factor=16, seed=3)
    matrix = benchmark(generate_rmat, config)
    assert matrix.shape == (10_000, 10_000)
