"""The lease table state machine: grants, expiry, backoff, quarantine."""

from __future__ import annotations

import pytest

from repro.fabric.lease import (
    DONE,
    Lease,
    LeasePolicy,
    LeaseTable,
    PENDING,
    QUARANTINED,
)

POLICY = LeasePolicy(lease_duration=10.0, max_attempts=3,
                     backoff_base=1.0, backoff_factor=2.0, backoff_cap=4.0)


def table(cells=range(4), **kwargs):
    return LeaseTable(cells, policy=POLICY, **kwargs)


class TestPolicy:
    def test_backoff_is_capped_exponential(self):
        assert [POLICY.backoff(n) for n in (1, 2, 3, 4, 5)] == \
            [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_validation(self):
        with pytest.raises(ValueError, match="lease_duration"):
            LeasePolicy(lease_duration=0)
        with pytest.raises(ValueError, match="max_attempts"):
            LeasePolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            LeasePolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="cell_timeout"):
            LeasePolicy(cell_timeout=-1.0)
        with pytest.raises(ValueError, match="attempt"):
            POLICY.backoff(0)

    def test_heartbeat_interval_is_a_lease_fraction(self):
        assert POLICY.heartbeat_interval == pytest.approx(2.5)


class TestGrants:
    def test_grants_lowest_pending_cell_first(self):
        queue = table()
        first = queue.acquire("w0", now=0.0)
        second = queue.acquire("w1", now=0.0)
        assert (first.cell_index, second.cell_index) == (0, 1)
        assert first.deadline == pytest.approx(10.0)

    def test_exhausted_grid_grants_nothing(self):
        queue = table(cells=[0])
        queue.acquire("w0", now=0.0)
        assert queue.acquire("w1", now=0.0) is None

    def test_resumed_cells_are_born_done(self):
        queue = table(done=[0, 2])
        assert queue.counts()[DONE] == 2
        assert queue.acquire("w0", now=0.0).cell_index == 1

    def test_finished_when_all_done_or_quarantined(self):
        queue = table(cells=[0, 1], done=[1])
        assert not queue.finished
        lease = queue.acquire("w0", now=0.0)
        queue.complete(lease.cell_index, now=1.0)
        assert queue.finished


class TestHeartbeatAndExpiry:
    def test_heartbeat_extends_the_deadline(self):
        queue = table()
        lease = queue.acquire("w0", now=0.0)
        assert queue.heartbeat(lease.lease_id, now=8.0)
        assert queue.expire(now=12.0) == []  # extended to 18
        assert len(queue.expire(now=18.0)) == 1

    def test_expired_lease_is_reclaimed_and_cell_retries(self):
        queue = table()
        lease = queue.acquire("w0", now=0.0)
        [reclaimed] = queue.expire(now=10.0)
        assert reclaimed.lease_id == lease.lease_id
        assert queue.reclaimed == 1
        # backing off: not grantable immediately, grantable after backoff
        assert queue.acquire("w1", now=10.0, ) is not None  # cell 1
        counts = queue.counts()
        assert counts[PENDING] == 3  # cell 0 back among pending
        assert queue.heartbeat(lease.lease_id, now=10.0) is False

    def test_backoff_gates_the_retry(self):
        queue = table(cells=[0])
        queue.acquire("w0", now=0.0)
        queue.expire(now=10.0)  # first failure -> backoff 1.0
        assert queue.acquire("w0", now=10.5) is None
        assert queue.next_event(10.5) == pytest.approx(0.5)
        assert queue.acquire("w0", now=11.0).cell_index == 0

    def test_repeated_expiry_quarantines_after_max_attempts(self):
        queue = table(cells=[0])
        now = 0.0
        for _ in range(POLICY.max_attempts):
            lease = queue.acquire("w0", now=now)
            assert lease is not None
            queue.expire(lease.deadline)
            # step past the backoff gate before the next acquire
            now = lease.deadline + POLICY.backoff_cap
        assert queue.counts()[QUARANTINED] == 1
        assert queue.finished
        [post_mortem] = queue.quarantined()
        assert post_mortem.cell_index == 0
        assert post_mortem.attempts == POLICY.max_attempts
        assert "expired" in post_mortem.error


class TestCompletion:
    def test_complete_is_cell_keyed_and_dedupes(self):
        queue = table()
        lease = queue.acquire("w0", now=0.0)
        assert queue.complete(lease.cell_index, now=1.0) is True
        assert queue.complete(lease.cell_index, now=2.0) is False
        assert queue.duplicates_dropped == 1

    def test_late_result_after_expiry_still_lands(self):
        queue = table(cells=[0])
        queue.acquire("w0", now=0.0)
        queue.expire(now=10.0)
        # The slow worker delivers anyway, before any retry ran.
        assert queue.complete(0, now=10.5) is True
        assert queue.finished

    def test_result_beats_quarantine(self):
        queue = table(cells=[0])
        for now in (0.0, 20.0, 40.0):
            queue.acquire("w0", now=now)
            queue.expire(now=now + 10.0)
        assert queue.counts()[QUARANTINED] == 1
        assert queue.complete(0, now=60.0) is True
        assert queue.counts()[DONE] == 1
        assert queue.quarantined() == []

    def test_explicit_failures_count_toward_quarantine(self):
        queue = table(cells=[0])
        statuses = []
        for attempt in range(POLICY.max_attempts):
            now = attempt * 20.0
            lease = queue.acquire("w0", now=now)
            statuses.append(queue.fail(lease.cell_index, now + 1.0, "boom"))
        assert statuses == [PENDING, PENDING, QUARANTINED]
        assert queue.failures == POLICY.max_attempts
        [post_mortem] = queue.quarantined()
        assert post_mortem.error == "boom"

    def test_failure_after_racing_completion_is_moot(self):
        queue = table(cells=[0])
        queue.acquire("w0", now=0.0)
        queue.complete(0, now=1.0)
        assert queue.fail(0, now=2.0, error="late crash") == DONE
        assert queue.failures == 0


class TestDuplicateLeases:
    def test_forced_duplicate_lease_coexists(self):
        queue = table()
        first = queue.acquire("w0", now=0.0)
        second = queue.acquire("chaos", now=0.0,
                               cell_index=first.cell_index)
        assert second is not None
        assert second.cell_index == first.cell_index
        assert len(queue.active_leases()) == 2

    def test_one_duplicate_expiring_does_not_fail_the_cell(self):
        queue = table()
        first = queue.acquire("w0", now=0.0)
        queue.acquire("chaos", now=5.0, cell_index=first.cell_index)
        queue.expire(now=10.0)  # only the first lease is past deadline
        assert queue.reclaimed == 1
        # still covered by the duplicate: no failure counted
        assert queue.counts()[PENDING] == 3
        entry_states = queue.counts()
        assert entry_states["leased"] == 1

    def test_completion_releases_every_duplicate(self):
        queue = table()
        first = queue.acquire("w0", now=0.0)
        queue.acquire("chaos", now=0.0, cell_index=first.cell_index)
        queue.complete(first.cell_index, now=1.0)
        assert queue.active_leases() == []

    def test_force_lease_on_done_cell_is_refused(self):
        queue = table(done=[0])
        assert queue.acquire("chaos", now=0.0, cell_index=0) is None
