"""The real thing: worker subprocesses over the socket, SIGKILL chaos.

The logical-clock chaos tests pin down the protocol; this file checks the
operating-system layer around it — process spawning, the manager
transport, heartbeats from real threads, and supervisor-driven kills —
on the 6-cell smoke sweep with a shared on-disk runner cache so retried
cells replay instead of re-simulating.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.fabric import KillSpec, LeasePolicy, run_fleet
from repro.sweeps.driver import run_sweep
from repro.sweeps.registry import get_sweep
from repro.sweeps.store import ResultStore, merge_records, render_records

SMOKE = get_sweep("smoke")


def reference_bytes(cache_dir):
    _, store = run_sweep(SMOKE,
                         runner=ExperimentRunner(cache_dir=cache_dir))
    return render_records(merge_records(list(store.records)))


def store_bytes(path):
    return render_records(merge_records(list(ResultStore(path).records)))


def test_kill_spec_parses_the_cli_form():
    assert KillSpec.parse("0@2") == KillSpec(0, 2)
    with pytest.raises(ValueError, match="WORKER@AFTER"):
        KillSpec.parse("nonsense")


def test_fleet_completes_the_sweep(tmp_path):
    cache = tmp_path / "cache"
    store = tmp_path / "store.jsonl"
    summary = run_fleet("smoke", store=store, workers=2,
                        policy=LeasePolicy(lease_duration=10.0),
                        cache_dir=cache, timeout=120)
    assert summary.counts["done"] == 6
    assert summary.quarantined == ()
    assert store_bytes(store) == reference_bytes(cache)


def test_fleet_survives_a_mid_lease_sigkill(tmp_path):
    cache = tmp_path / "cache"
    store = tmp_path / "store.jsonl"
    summary = run_fleet(
        "smoke", store=store, workers=2,
        # Short lease so the killed worker's cell comes back quickly;
        # throttle paces cells so the supervisor reliably catches w0
        # holding a lease after 2 completions.
        policy=LeasePolicy(lease_duration=2.0, max_attempts=5),
        kills=(KillSpec(worker_index=0, after_cells=2),),
        throttle=0.3, cache_dir=cache, timeout=120)
    assert summary.kills_fired == 1
    assert summary.reclaimed >= 1
    assert summary.counts["done"] == 6
    assert summary.quarantined == ()
    assert store_bytes(store) == reference_bytes(cache)
    assert "1 killed" in summary.render()
