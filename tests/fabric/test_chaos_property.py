"""The fabric's central property, under every scripted fault schedule:

    canonical_merge(fabric store)  ==  canonical_merge(uninterrupted run)

byte for byte, for any worker count — workers killed mid-lease, stalled
past expiry, granted duplicate leases, the store torn mid-append with a
coordinator restart, or any compound of those.  Poisoned cells are the
one sanctioned divergence: they must end up *quarantined and reported*,
with the store equal to the reference minus exactly those cells.

Everything runs on the logical clock (``repro.fabric.chaos``), so each
(schedule × worker count) case is one deterministic interleaving — a
failure here is replayable as-is.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.fabric import (
    CHAOS_POLICY,
    FaultSchedule,
    SCHEDULES,
    get_schedule,
    run_chaos,
)
from repro.sweeps.driver import run_sweep
from repro.sweeps.registry import get_sweep
from repro.sweeps.store import merge_records, render_records

#: One module-wide runner: every chaos run replays the six smoke points
#: from the memo instead of re-simulating, keeping the whole fault matrix
#: cheap.
RUNNER = ExperimentRunner()
SMOKE = get_sweep("smoke")


@pytest.fixture(scope="module")
def reference_bytes():
    """The uninterrupted single-process run's canonical bytes."""
    _, store = run_sweep(SMOKE, runner=RUNNER)
    return render_records(merge_records(list(store.records)))


def chaos_bytes(outcome):
    return render_records(merge_records(list(outcome.records)))


@pytest.mark.parametrize("workers", [1, 2, 3, 4])
@pytest.mark.parametrize("schedule", SCHEDULES,
                         ids=[schedule.name for schedule in SCHEDULES])
def test_every_fault_schedule_preserves_byte_parity(
        schedule, workers, reference_bytes, tmp_path):
    outcome = run_chaos(SMOKE, schedule, workers=workers, runner=RUNNER,
                        store_path=tmp_path / "store.jsonl")
    assert outcome.quarantined == ()
    assert chaos_bytes(outcome) == reference_bytes


def test_schedules_actually_exercise_their_faults(reference_bytes,
                                                  tmp_path):
    """Guard against schedules silently degenerating into no-ops."""
    kill = run_chaos(SMOKE, get_schedule("kill-first-lease"), workers=2,
                     runner=RUNNER, store_path=tmp_path / "kill.jsonl")
    assert kill.stats["reclaimed"] >= 1

    duplicate = run_chaos(SMOKE, get_schedule("duplicate-lease"),
                          workers=2, runner=RUNNER,
                          store_path=tmp_path / "dup.jsonl")
    assert duplicate.stats["duplicates_dropped"] >= 1

    stalled = run_chaos(SMOKE, get_schedule("delayed-heartbeat"),
                        workers=2, runner=RUNNER,
                        store_path=tmp_path / "stall.jsonl")
    assert stalled.stats["reclaimed"] >= 1

    torn = run_chaos(SMOKE, get_schedule("torn-append"), workers=2,
                     runner=RUNNER, store_path=tmp_path / "torn.jsonl")
    # the torn record re-ran after the restart: parity already asserted
    # above, here just confirm the tear actually happened (one append
    # fewer survives in the final coordinator's counter than cells)
    assert chaos_bytes(torn) == reference_bytes


def test_torn_append_requires_a_file_store():
    with pytest.raises(ValueError, match="file-backed"):
        run_chaos(SMOKE, get_schedule("torn-append"), runner=RUNNER,
                  store_path=None)


def test_in_memory_store_works_for_untorn_schedules(reference_bytes):
    outcome = run_chaos(SMOKE, get_schedule("kill-two-workers"),
                        workers=2, runner=RUNNER)
    assert chaos_bytes(outcome) == reference_bytes


class TestPoisonQuarantine:
    """A poison cell quarantines; everything else still completes."""

    @pytest.mark.parametrize("workers", [1, 3])
    def test_store_equals_reference_minus_poison_cell(
            self, workers, reference_bytes, tmp_path):
        schedule = FaultSchedule("poison", poison_cells=(1,))
        outcome = run_chaos(SMOKE, schedule, workers=workers,
                            runner=RUNNER,
                            store_path=tmp_path / "store.jsonl")
        _, reference_store = run_sweep(SMOKE, runner=RUNNER)
        expected = [record
                    for record in merge_records(
                        list(reference_store.records))
                    if record.cell_index != 1]
        assert chaos_bytes(outcome) == render_records(expected)
        [post_mortem] = outcome.quarantined
        assert post_mortem["cell_index"] == 1
        assert post_mortem["attempts"] == CHAOS_POLICY.max_attempts
        assert "poison" in post_mortem["error"]
        assert outcome.counts["done"] == 5

    def test_quarantine_reaches_the_summarise_cli(self, tmp_path,
                                                  capsys):
        from repro.sweeps.__main__ import main as sweeps_main

        schedule = FaultSchedule("poison", poison_cells=(2,))
        store = tmp_path / "store.jsonl"
        run_chaos(SMOKE, schedule, workers=2, runner=RUNNER,
                  store_path=store)
        assert sweeps_main(["summarise", str(store)]) == 0
        output = capsys.readouterr().out
        assert "quarantined cell" in output
        assert "poison cell 2" in output

    def test_poison_plus_kills_still_terminates(self, tmp_path):
        schedule = FaultSchedule("poison-and-kills",
                                 kill_holding=((0, 1), (1, 2)),
                                 poison_cells=(0, 5))
        outcome = run_chaos(SMOKE, schedule, workers=2, runner=RUNNER,
                            store_path=tmp_path / "store.jsonl")
        assert outcome.counts["done"] == 4
        assert {cell["cell_index"]
                for cell in outcome.quarantined} == {0, 5}
