"""Coordinator semantics: resume, validation, dedupe, sidecar, transport.

These tests drive the coordinator directly (and once over the real
socket transport) with a logical clock, on the 6-cell smoke sweep.  The
full fault matrix lives in ``test_chaos_property.py``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.fabric import (
    CellExecutor,
    Coordinator,
    LeasePolicy,
    LogicalClock,
    connect_coordinator,
    read_sidecar,
    serve_coordinator,
    sidecar_path,
    worker_loop,
)
from repro.fabric.transport import generate_authkey
from repro.sweeps.registry import get_sweep
from repro.sweeps.spec import enumerate_cells
from repro.sweeps.store import ResultStore

RUNNER = ExperimentRunner()
SMOKE = get_sweep("smoke")
POLICY = LeasePolicy(lease_duration=10.0, max_attempts=3)


@pytest.fixture()
def clock():
    return LogicalClock()


@pytest.fixture()
def executor():
    return CellExecutor(SMOKE, runner=RUNNER)


def make_coordinator(clock, store=None, **kwargs):
    kwargs.setdefault("policy", POLICY)
    return Coordinator(SMOKE, store=store, clock=clock, **kwargs)


def complete_cell(coordinator, executor, grant, worker="w0"):
    record = executor.execute(grant["cell_index"])
    return coordinator.complete(worker, grant["lease_id"],
                                dataclasses.asdict(record))


class TestProtocol:
    def test_acquire_compute_complete_round_trip(self, clock, executor):
        coordinator = make_coordinator(clock)
        grant = coordinator.acquire("w0")
        assert grant["status"] == "lease"
        assert grant["cell_index"] == 0
        outcome = complete_cell(coordinator, executor, grant)
        assert outcome == {"status": "ok", "fresh": True,
                           "finished": False}
        assert len(coordinator.store) == 1

    def test_describe_names_the_grid(self, clock):
        coordinator = make_coordinator(clock)
        info = coordinator.describe()
        assert info["sweep_id"] == "smoke"
        assert info["total_cells"] == len(enumerate_cells(SMOKE))
        assert info["policy"]["lease_duration"] == 10.0

    def test_exhausted_queue_says_wait_then_done(self, clock, executor):
        coordinator = make_coordinator(clock)
        grants = []
        while True:
            grant = coordinator.acquire("w0")
            if grant["status"] != "lease":
                break
            grants.append(grant)
        assert grant["status"] == "wait"
        assert grant["seconds"] > 0
        for grant in grants:
            complete_cell(coordinator, executor, grant)
        assert coordinator.acquire("w1") == {"status": "done"}
        assert coordinator.finished()

    def test_duplicate_delivery_appends_nothing(self, clock, executor):
        coordinator = make_coordinator(clock)
        grant = coordinator.acquire("w0")
        record = dataclasses.asdict(executor.execute(grant["cell_index"]))
        assert coordinator.complete("w0", grant["lease_id"],
                                    record)["fresh"] is True
        late = coordinator.complete("w1", "L999", record)
        assert late["fresh"] is False
        assert len(coordinator.store) == 1

    def test_mismatched_record_is_rejected(self, clock, executor):
        coordinator = make_coordinator(clock)
        grant = coordinator.acquire("w0")
        record = dataclasses.asdict(executor.execute(grant["cell_index"]))
        record["cell_index"] = 5  # wrong grid slot for these coordinates
        outcome = coordinator.complete("w0", grant["lease_id"], record)
        assert outcome["status"] == "rejected"
        assert "canonical grid" in outcome["reason"]
        assert len(coordinator.store) == 0

    def test_expiry_requeues_and_retry_succeeds(self, clock, executor):
        coordinator = make_coordinator(clock)
        grant = coordinator.acquire("w0")
        clock.tick(POLICY.lease_duration)  # w0 never heartbeats
        retry = coordinator.acquire("w1")
        # cell 0 is backing off; w1 gets cell 1 first
        assert retry["cell_index"] == 1
        clock.tick(POLICY.backoff_base)
        retry0 = coordinator.acquire("w2")
        assert retry0["cell_index"] == 0
        assert complete_cell(coordinator, executor, retry0,
                             "w2")["fresh"] is True
        assert coordinator.snapshot()["stats"]["reclaimed"] == 1

    def test_heartbeat_keeps_a_slow_cell_alive(self, clock):
        coordinator = make_coordinator(clock)
        grant = coordinator.acquire("w0")
        for _ in range(5):
            clock.tick(POLICY.lease_duration / 2)
            assert coordinator.heartbeat(grant["lease_id"]) is True
        assert coordinator.snapshot()["stats"]["reclaimed"] == 0


class TestResume:
    def test_resumes_recorded_cells_as_done(self, clock, executor,
                                            tmp_path):
        path = tmp_path / "store.jsonl"
        coordinator = make_coordinator(clock, store=path)
        for _ in range(2):
            complete_cell(coordinator, executor, coordinator.acquire("w0"))
        resumed = make_coordinator(LogicalClock(), store=path)
        snapshot = resumed.snapshot()
        assert snapshot["counts"]["done"] == 2
        assert resumed.acquire("w0")["cell_index"] == 2

    def test_torn_tail_resumes_as_not_done(self, clock, executor,
                                           tmp_path):
        path = tmp_path / "store.jsonl"
        coordinator = make_coordinator(clock, store=path)
        for _ in range(2):
            complete_cell(coordinator, executor, coordinator.acquire("w0"))
        data = path.read_bytes()
        path.write_bytes(data[:-20])  # tear the second record
        resumed = make_coordinator(LogicalClock(), store=path)
        assert resumed.snapshot()["counts"]["done"] == 1
        assert resumed.acquire("w0")["cell_index"] == 1


class TestSidecar:
    def test_sidecar_tracks_progress_atomically(self, clock, executor,
                                                tmp_path):
        path = tmp_path / "store.jsonl"
        coordinator = make_coordinator(clock, store=path)
        sidecar = read_sidecar(path)
        assert sidecar["counts"]["pending"] == 6
        complete_cell(coordinator, executor, coordinator.acquire("w0"))
        sidecar = read_sidecar(path)
        assert sidecar["counts"]["done"] == 1
        assert sidecar["stats"]["appends"] == 1
        # the sidecar is valid JSON at every point (atomic replace)
        with open(sidecar_path(path), encoding="utf-8") as handle:
            json.load(handle)

    def test_in_memory_store_writes_no_sidecar(self, clock):
        make_coordinator(clock)  # must not raise, nothing to write


class TestTransport:
    def test_worker_loop_over_the_socket(self, tmp_path):
        path = tmp_path / "store.jsonl"
        coordinator = Coordinator(
            SMOKE, store=path, policy=LeasePolicy(lease_duration=30.0))
        authkey = generate_authkey()
        with serve_coordinator(coordinator, authkey=authkey) as handle:
            service = connect_coordinator(handle.address, authkey=authkey)
            assert service.describe()["sweep_id"] == "smoke"
            completed = worker_loop(service, "w0", runner=RUNNER)
        assert completed == 6
        assert coordinator.finished()
        assert len(ResultStore(path)) == 6

    def test_force_lease_is_not_reachable_over_rpc(self):
        coordinator = Coordinator(SMOKE, policy=POLICY)
        authkey = generate_authkey()
        with serve_coordinator(coordinator, authkey=authkey) as handle:
            service = connect_coordinator(handle.address, authkey=authkey)
            with pytest.raises(Exception):
                service.force_lease("rogue", 0)
