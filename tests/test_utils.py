"""Unit tests for the shared utility helpers."""

from __future__ import annotations

import math

import pytest

from repro.utils.maths import geometric_mean, harmonic_mean, human_bytes, human_count
from repro.utils.reporting import Table, format_table
from repro.utils.validation import (
    check_nonnegative_int,
    check_positive_int,
    check_power_of_two,
    require,
)


class TestMaths:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([4.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([-1.0])

    def test_human_bytes(self):
        assert human_bytes(0) == "0.00 B"
        assert human_bytes(1536) == "1.50 KiB"
        assert human_bytes(3 * 2**20) == "3.00 MiB"
        assert "TiB" in human_bytes(2**50)
        with pytest.raises(ValueError):
            human_bytes(-1)

    def test_human_count(self):
        assert human_count(999) == "999"
        assert human_count(1200) == "1.20K"
        assert human_count(3.5e6) == "3.50M"
        assert human_count(2e9) == "2.00G"
        with pytest.raises(ValueError):
            human_count(-5)


class TestReporting:
    def test_table_rendering(self):
        table = Table(title="demo", columns=["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("beta", 123456.0)
        text = table.render()
        assert "demo" in text
        assert "alpha" in text
        assert "1.5" in text
        assert text == format_table("demo", ["name", "value"], table.rows)

    def test_row_length_checked(self):
        table = Table(title="demo", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_cell_formatting_handles_extremes(self):
        table = Table(title="demo", columns=["x"])
        table.add_row(0.0)
        table.add_row(1e-9)
        table.add_row(1e9)
        rendered = table.render()
        assert "e-09" in rendered and "e+09" in rendered


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_check_positive_int(self):
        assert check_positive_int(3, "x") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(TypeError):
            check_positive_int(1.5, "x")
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_check_nonnegative_int(self):
        assert check_nonnegative_int(0, "x") == 0
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")

    def test_check_power_of_two(self):
        assert check_power_of_two(64, "x") == 64
        with pytest.raises(ValueError):
            check_power_of_two(48, "x")


def test_math_is_consistent_with_stdlib():
    values = [3.0, 7.0, 11.0]
    expected = math.exp(sum(math.log(v) for v in values) / 3)
    assert geometric_mean(values) == pytest.approx(expected)
