"""Corpus layer: frozen scenario recipes, registry, deterministic builds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus import (
    CORPORA,
    CorpusSpec,
    Scenario,
    get_corpus,
    list_corpora,
    rmat_grid,
    suite_ladder,
)
from repro.formats.csr import CSRMatrix


class TestRegistry:
    def test_registered_corpora(self):
        ids = list_corpora()
        assert ids[0] == "smoke"
        for expected in ("suite-small", "suite-ladder", "rmat-grid",
                         "density-sweep", "band-sweep"):
            assert expected in ids

    def test_lookup_and_error(self):
        assert get_corpus("smoke").corpus_id == "smoke"
        with pytest.raises(KeyError, match="unknown corpus"):
            get_corpus("not-a-corpus")

    def test_scenario_names_unique_within_each_corpus(self):
        for spec in CORPORA:
            names = spec.scenario_names()
            assert len(set(names)) == len(names), spec.corpus_id

    def test_every_registered_scenario_builds(self):
        # The smoke corpus fully; one scenario from each other corpus (the
        # larger members are exercised by the sweeps that use them).
        for spec in CORPORA:
            scenarios = (spec.scenarios if spec.corpus_id == "smoke"
                         else spec.scenarios[:1])
            for scenario in scenarios:
                matrix = scenario.build()
                assert isinstance(matrix, CSRMatrix)
                assert matrix.nnz > 0, scenario.name


class TestScenarioDeterminism:
    """Shards and resumed runs regenerate operands from the spec alone, so
    building twice (as if in two processes) must be bit-identical."""

    @pytest.mark.parametrize("scenario", get_corpus("smoke").scenarios,
                             ids=lambda s: s.name)
    def test_build_is_bit_identical(self, scenario):
        first, second = scenario.build(), scenario.build()
        np.testing.assert_array_equal(first.indptr, second.indptr)
        np.testing.assert_array_equal(first.indices, second.indices)
        np.testing.assert_array_equal(first.data, second.data)
        assert first.shape == second.shape


class TestScaling:
    def test_scaled_caps_every_family_dimension(self):
        for spec in CORPORA:
            capped = spec.scaled(64)
            assert capped.corpus_id == spec.corpus_id
            assert capped.scenario_names() == spec.scenario_names()
            for scenario in capped.scenarios:
                matrix = scenario.build()
                # Suite proxies floor their dimension at 64 rows; every
                # other family caps exactly.
                assert matrix.shape[0] <= 64 or scenario.family == "suite"

    def test_scaled_none_is_identity(self):
        spec = get_corpus("smoke")
        assert spec.scaled(None) is spec

    def test_scaled_is_noop_above_current_size(self):
        scenario = get_corpus("smoke").scenarios[0]
        assert scenario.scaled(10_000) is scenario

    def test_scaled_caps_explicit_num_cols_even_when_rows_fit(self):
        # Regression: a small-rows/wide-cols random scenario must still
        # cap its column dimension under the corpus scale contract.
        scenario = Scenario("wide", "random",
                            (("num_rows", 100), ("num_cols", 5000),
                             ("density", 0.01)))
        capped = scenario.scaled(200)
        assert capped.param_dict()["num_cols"] == 200
        assert capped.build().shape == (100, 200)


class TestSpecValidation:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="family"):
            Scenario("x", "not-a-family", (("num_rows", 8),))

    def test_duplicate_params_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Scenario("x", "rmat", (("num_rows", 8), ("num_rows", 9)))

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError, match="no scenarios"):
            CorpusSpec("empty", "none", ())

    def test_duplicate_scenario_names_rejected(self):
        scenario = Scenario("dup", "rmat",
                            (("num_rows", 8), ("edge_factor", 2)))
        with pytest.raises(ValueError, match="duplicate"):
            CorpusSpec("dups", "twice", (scenario, scenario))

    def test_corpus_scenario_lookup(self):
        spec = get_corpus("smoke")
        name = spec.scenario_names()[0]
        assert spec.get_scenario(name).name == name
        with pytest.raises(KeyError, match="unknown scenario"):
            spec.get_scenario("missing")


class TestConstructors:
    def test_suite_ladder_crosses_names_and_rungs(self):
        spec = suite_ladder(("wiki-Vote", "facebook"), (100, 200),
                            corpus_id="ladder", title="t")
        assert spec.scenario_names() == [
            "wiki-Vote@100", "wiki-Vote@200",
            "facebook@100", "facebook@200",
        ]

    def test_rmat_grid_uses_paper_names(self):
        spec = rmat_grid((1000,), (4, 8), corpus_id="grid", title="t")
        assert spec.scenario_names() == ["rmat-1k-x4", "rmat-1k-x8"]
