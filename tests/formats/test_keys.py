"""Tests for the 64-bit key-promotion rule (`repro.formats.keys`).

The headline regression: a result shape whose ``rows · cols`` product
exceeds 2³¹ used to wrap the linearised merge keys on platforms where the
intermediate stayed 32-bit, silently folding unrelated coordinates
together.  The end-to-end test below builds such a shape *cheaply* (huge
dimensions, four nonzeros) and checks the one output coordinate whose key
lands beyond the int32 keyspace, through all three engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.formats.csr import CSRMatrix
from repro.formats.keys import INT32_KEYSPACE, linear_key_dtype, linear_keys


class TestLinearKeyDtype:
    def test_boundary_product_needs_int64(self):
        # 2**15 * 2**16 == 2**31 exactly: key 2**31 - 1 still fits int32,
        # but the rule is conservative at the boundary by design.
        assert linear_key_dtype(2 ** 15, 2 ** 16) == np.int64

    def test_just_below_boundary_stays_int32(self):
        assert linear_key_dtype(2 ** 15, 2 ** 16 - 1) == np.int32

    def test_small_shapes_stay_int32(self):
        assert linear_key_dtype(1000, 1000) == np.int32

    def test_paper_scale_shapes_need_int64(self):
        # 10⁵-row square results are deep inside int64 territory.
        assert linear_key_dtype(100_000, 100_000) == np.int64
        assert int(100_000) * int(100_000) >= INT32_KEYSPACE


class TestLinearKeys:
    def test_no_wrap_with_narrow_inputs(self):
        # int32 index arrays (e.g. from a scipy round trip) must not make
        # the row * num_cols product wrap.
        rows = np.array([65535], dtype=np.int32)
        cols = np.array([65537], dtype=np.int32)
        keys = linear_keys(rows, cols, 65538)
        assert keys.dtype == np.int64
        assert keys[0] == 65535 * 65538 + 65537
        assert keys[0] > INT32_KEYSPACE

    def test_optional_downcast(self):
        keys = linear_keys(np.array([2]), np.array([3]), 10,
                           dtype=np.dtype(np.int32))
        assert keys.dtype == np.int32
        assert keys[0] == 23


@pytest.mark.parametrize("engine", ["scalar", "vectorized", "streaming"])
def test_keys_beyond_int32_survive_the_datapath(engine):
    """A > 2³¹ key product must not wrap in any engine.

    ``A`` is (65536, 4) with its only nonzeros in the last row; ``B`` is
    (4, 65538) with one nonzero per row in the last column.  The single
    output entry C[65535, 65537] = 1·1 + 2·2 + 3·3 + 4·4 = 30 carries the
    linear key 65535 · 65538 + 65537 ≈ 4.3e9 > 2³¹; a 32-bit wrap would
    misplace (or split) it.
    """
    num_rows, inner, num_cols = 65536, 4, 65538
    indptr_a = np.zeros(num_rows + 1, dtype=np.int64)
    indptr_a[-1] = inner
    matrix_a = CSRMatrix(indptr_a, np.arange(inner, dtype=np.int64),
                         np.arange(1.0, inner + 1.0), (num_rows, inner))
    matrix_b = CSRMatrix(np.arange(inner + 1, dtype=np.int64),
                         np.full(inner, num_cols - 1, dtype=np.int64),
                         np.arange(1.0, inner + 1.0), (inner, num_cols))
    assert int(num_rows) * int(num_cols) > INT32_KEYSPACE

    result = SpArch(SpArchConfig(engine=engine)).multiply(matrix_a, matrix_b)
    out = result.matrix
    assert out.shape == (num_rows, num_cols)
    assert out.nnz == 1
    assert out.indptr[num_rows] - out.indptr[num_rows - 1] == 1
    np.testing.assert_array_equal(out.indices, [num_cols - 1])
    np.testing.assert_allclose(out.data, [30.0])
