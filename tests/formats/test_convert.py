"""Unit tests for format conversions (COO/CSR/CSC/scipy)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats.convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
    from_scipy,
    to_scipy,
)
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix


@pytest.fixture
def dense() -> np.ndarray:
    rng = np.random.default_rng(0)
    matrix = rng.random((8, 6))
    matrix[matrix < 0.6] = 0.0
    return matrix


def test_coo_csr_roundtrip(dense):
    coo = COOMatrix.from_dense(dense)
    csr = coo_to_csr(coo)
    np.testing.assert_allclose(csr.to_dense(), dense)
    np.testing.assert_allclose(csr_to_coo(csr).to_dense(), dense)


def test_coo_csc_roundtrip(dense):
    coo = COOMatrix.from_dense(dense)
    csc = coo_to_csc(coo)
    np.testing.assert_allclose(csc.to_dense(), dense)
    np.testing.assert_allclose(csc_to_coo(csc).to_dense(), dense)


def test_csr_csc_roundtrip(dense):
    csr = CSRMatrix.from_dense(dense)
    csc = csr_to_csc(csr)
    assert isinstance(csc, CSCMatrix)
    np.testing.assert_allclose(csc.to_dense(), dense)
    np.testing.assert_allclose(csc_to_csr(csc).to_dense(), dense)


def test_coo_to_csr_sums_duplicates():
    coo = COOMatrix(np.array([0, 0, 1]), np.array([1, 1, 0]),
                    np.array([1.0, 2.0, 3.0]), (2, 2))
    csr = coo_to_csr(coo)
    assert csr.nnz == 2
    np.testing.assert_allclose(csr.to_dense(), [[0.0, 3.0], [3.0, 0.0]])


def test_csr_rows_sorted_after_conversion(dense):
    csr = coo_to_csr(COOMatrix.from_dense(dense))
    assert csr.has_sorted_rows()


def test_scipy_roundtrip(dense):
    scipy_matrix = sp.csr_matrix(dense)
    ours = from_scipy(scipy_matrix)
    assert isinstance(ours, CSRMatrix)
    np.testing.assert_allclose(ours.to_dense(), dense)
    back = to_scipy(ours)
    np.testing.assert_allclose(back.toarray(), dense)


def test_to_scipy_accepts_all_containers(dense):
    csr = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(to_scipy(csr).toarray(), dense)
    np.testing.assert_allclose(to_scipy(csr_to_coo(csr)).toarray(), dense)
    np.testing.assert_allclose(to_scipy(csr_to_csc(csr)).toarray(), dense)
    with pytest.raises(TypeError):
        to_scipy(dense)


def test_empty_conversions():
    empty = COOMatrix.empty((3, 4))
    assert coo_to_csr(empty).nnz == 0
    assert coo_to_csc(empty).nnz == 0
    assert csr_to_csc(CSRMatrix.empty((3, 4))).shape == (3, 4)
