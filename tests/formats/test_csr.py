"""Unit tests for the CSR matrix container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix


def _example() -> CSRMatrix:
    dense = np.array([
        [1.0, 0.0, 2.0, 0.0],
        [0.0, 0.0, 0.0, 0.0],
        [3.0, 4.0, 5.0, 6.0],
    ])
    return CSRMatrix.from_dense(dense)


def test_from_dense_structure():
    csr = _example()
    assert csr.shape == (3, 4)
    assert csr.nnz == 6
    np.testing.assert_array_equal(csr.indptr, [0, 2, 2, 6])
    np.testing.assert_array_equal(csr.nnz_per_row(), [2, 0, 4])


def test_row_access_returns_views():
    csr = _example()
    cols, vals = csr.row(2)
    np.testing.assert_array_equal(cols, [0, 1, 2, 3])
    np.testing.assert_allclose(vals, [3.0, 4.0, 5.0, 6.0])
    assert csr.row_nnz(0) == 2
    assert csr.row_nnz(1) == 0


def test_row_out_of_range():
    csr = _example()
    with pytest.raises(IndexError):
        csr.row(3)
    with pytest.raises(IndexError):
        csr.row_nnz(-1)


def test_max_row_length_matches_condensed_column_count():
    csr = _example()
    assert csr.max_row_length() == 4
    assert CSRMatrix.empty((0, 0)).max_row_length() == 0


def test_empty_matrix():
    empty = CSRMatrix.empty((4, 5))
    assert empty.nnz == 0
    assert empty.num_rows == 4
    assert empty.num_cols == 5
    np.testing.assert_allclose(empty.to_dense(), np.zeros((4, 5)))


def test_invalid_indptr_rejected():
    with pytest.raises(ValueError, match="indptr"):
        CSRMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (2, 2))
    with pytest.raises(ValueError, match="non-decreasing"):
        CSRMatrix(np.array([0, 2, 1]), np.array([0]), np.array([1.0]), (2, 2))


def test_column_index_bounds_checked():
    with pytest.raises(ValueError, match="column index"):
        CSRMatrix(np.array([0, 1]), np.array([7]), np.array([1.0]), (1, 3))


def test_transpose_roundtrip():
    csr = _example()
    np.testing.assert_allclose(csr.transpose().to_dense(), csr.to_dense().T)
    np.testing.assert_allclose(csr.transpose().transpose().to_dense(),
                               csr.to_dense())


def test_has_sorted_rows():
    csr = _example()
    assert csr.has_sorted_rows()
    shuffled = CSRMatrix(np.array([0, 2]), np.array([1, 0]),
                         np.array([1.0, 2.0]), (1, 3))
    assert not shuffled.has_sorted_rows()


def test_storage_and_row_bytes():
    csr = _example()
    assert csr.row_bytes(2) == 4 * 16
    assert csr.storage_bytes() == 6 * 16 + 4 * 8
    assert csr.storage_bytes(index_bytes=4, value_bytes=8, pointer_bytes=4) == (
        6 * 12 + 4 * 4)


def test_density():
    csr = _example()
    assert csr.density == pytest.approx(6 / 12)
    assert CSRMatrix.empty((0, 0)).density == 0.0
