"""Unit tests for the COO matrix container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.coo import COOMatrix


def test_from_dense_roundtrip():
    dense = np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 0.0], [3.0, 4.0, 0.0]])
    coo = COOMatrix.from_dense(dense)
    assert coo.nnz == 4
    assert coo.shape == (3, 3)
    np.testing.assert_allclose(coo.to_dense(), dense)


def test_empty_matrix():
    coo = COOMatrix.empty((5, 7))
    assert coo.nnz == 0
    assert coo.shape == (5, 7)
    assert coo.density == 0.0
    np.testing.assert_allclose(coo.to_dense(), np.zeros((5, 7)))


def test_length_mismatch_rejected():
    with pytest.raises(ValueError, match="equal length"):
        COOMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (2, 2))


def test_out_of_bounds_index_rejected():
    with pytest.raises(ValueError, match="out of bounds"):
        COOMatrix(np.array([0]), np.array([5]), np.array([1.0]), (2, 2))


def test_negative_index_rejected():
    with pytest.raises(ValueError, match="negative"):
        COOMatrix(np.array([-1]), np.array([0]), np.array([1.0]), (2, 2))


def test_canonicalized_sorts_and_sums_duplicates():
    coo = COOMatrix(np.array([1, 0, 1]), np.array([1, 0, 1]),
                    np.array([2.0, 1.0, 3.0]), (2, 2))
    canonical = coo.canonicalized()
    assert canonical.nnz == 2
    assert canonical.is_canonical()
    np.testing.assert_array_equal(canonical.rows, [0, 1])
    np.testing.assert_array_equal(canonical.cols, [0, 1])
    np.testing.assert_allclose(canonical.vals, [1.0, 5.0])


def test_canonicalized_drops_cancelled_entries():
    coo = COOMatrix(np.array([0, 0]), np.array([1, 1]),
                    np.array([2.0, -2.0]), (1, 2))
    assert coo.canonicalized(drop_zeros=True).nnz == 0
    assert coo.canonicalized(drop_zeros=False).nnz == 1


def test_is_canonical_detects_duplicates_and_disorder():
    sorted_coo = COOMatrix(np.array([0, 1]), np.array([1, 0]),
                           np.array([1.0, 1.0]), (2, 2))
    assert sorted_coo.is_canonical()
    unsorted = COOMatrix(np.array([1, 0]), np.array([0, 1]),
                         np.array([1.0, 1.0]), (2, 2))
    assert not unsorted.is_canonical()
    duplicated = COOMatrix(np.array([0, 0]), np.array([1, 1]),
                           np.array([1.0, 1.0]), (2, 2))
    assert not duplicated.is_canonical()


def test_transpose_swaps_shape_and_coordinates():
    coo = COOMatrix(np.array([0, 2]), np.array([1, 0]),
                    np.array([1.5, 2.5]), (3, 2))
    transposed = coo.transpose()
    assert transposed.shape == (2, 3)
    np.testing.assert_allclose(transposed.to_dense(), coo.to_dense().T)


def test_scaled_multiplies_values_only():
    coo = COOMatrix(np.array([0]), np.array([1]), np.array([2.0]), (1, 2))
    scaled = coo.scaled(-0.5)
    np.testing.assert_allclose(scaled.vals, [-1.0])
    np.testing.assert_array_equal(scaled.rows, coo.rows)


def test_allclose_is_order_insensitive():
    a = COOMatrix(np.array([0, 1]), np.array([0, 1]), np.array([1.0, 2.0]), (2, 2))
    b = COOMatrix(np.array([1, 0]), np.array([1, 0]), np.array([2.0, 1.0]), (2, 2))
    assert a.allclose(b)
    c = COOMatrix(np.array([1, 0]), np.array([1, 0]), np.array([2.0, 1.5]), (2, 2))
    assert not a.allclose(c)
    assert not a.allclose(COOMatrix.empty((3, 3)))


def test_iter_triples_yields_python_scalars():
    coo = COOMatrix(np.array([0]), np.array([1]), np.array([2.0]), (1, 2))
    triples = list(coo.iter_triples())
    assert triples == [(0, 1, 2.0)]
    assert all(isinstance(v, (int, float)) for triple in triples for v in triple)


def test_len_and_density():
    coo = COOMatrix(np.array([0, 1]), np.array([0, 1]), np.array([1.0, 1.0]), (2, 2))
    assert len(coo) == 2
    assert coo.density == pytest.approx(0.5)
