"""Unit tests for the condensed matrix view (§II-B, Figure 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.condensed import CondensedMatrix, condense
from repro.formats.csr import CSRMatrix
from repro.matrices.synthetic import powerlaw_matrix, random_matrix


def _example() -> CSRMatrix:
    dense = np.array([
        [1.0, 0.0, 2.0, 0.0, 3.0],
        [0.0, 4.0, 0.0, 0.0, 0.0],
        [5.0, 0.0, 0.0, 6.0, 0.0],
        [0.0, 0.0, 0.0, 0.0, 0.0],
    ])
    return CSRMatrix.from_dense(dense)


def test_condensed_column_count_equals_longest_row():
    condensed = condense(_example())
    assert condensed.num_condensed_columns == 3
    assert condensed.nnz == 6
    assert condensed.shape == (4, 5)


def test_column_contents_preserve_original_indices():
    condensed = CondensedMatrix(_example())
    col0 = condensed.column(0)
    # Condensed column 0 holds the first nonzero of every non-empty row.
    np.testing.assert_array_equal(col0.rows, [0, 1, 2])
    np.testing.assert_array_equal(col0.original_cols, [0, 1, 0])
    np.testing.assert_allclose(col0.values, [1.0, 4.0, 5.0])
    col2 = condensed.column(2)
    np.testing.assert_array_equal(col2.rows, [0])
    np.testing.assert_array_equal(col2.original_cols, [4])
    assert col2.nnz == 1
    assert len(col2) == 1


def test_column_nnz_histogram_is_non_increasing():
    condensed = CondensedMatrix(_example())
    histogram = condensed.column_nnz_histogram()
    np.testing.assert_array_equal(histogram, [3, 2, 1])
    assert all(histogram[i] >= histogram[i + 1] for i in range(len(histogram) - 1))
    assert int(histogram.sum()) == condensed.nnz
    for j in range(condensed.num_condensed_columns):
        assert condensed.column_nnz(j) == histogram[j]


def test_columns_iterator_covers_every_nonzero_exactly_once():
    matrix = powerlaw_matrix(80, 4.0, seed=9)
    condensed = CondensedMatrix(matrix)
    seen = set()
    for column in condensed.columns():
        for row, col, value in zip(column.rows, column.original_cols,
                                   column.values):
            key = (int(row), int(col))
            assert key not in seen
            seen.add(key)
    assert len(seen) == matrix.nnz


def test_condensed_view_is_lossless():
    """Re-assembling every condensed column reproduces the original matrix."""
    matrix = random_matrix(50, 60, 300, seed=2)
    condensed = CondensedMatrix(matrix)
    dense = np.zeros(matrix.shape)
    for column in condensed.columns():
        dense[column.rows, column.original_cols] = column.values
    np.testing.assert_allclose(dense, matrix.to_dense())


def test_access_order_matches_column_concatenation():
    matrix = _example()
    condensed = CondensedMatrix(matrix)
    order = condensed.access_order()
    expected = np.concatenate([condensed.column(j).original_cols
                               for j in range(3)])
    np.testing.assert_array_equal(order, expected)
    subset = condensed.access_order([1])
    np.testing.assert_array_equal(subset, condensed.column(1).original_cols)


def test_out_of_range_column_rejected():
    condensed = CondensedMatrix(_example())
    with pytest.raises(IndexError):
        condensed.column(3)
    with pytest.raises(IndexError):
        condensed.column_nnz(-1)


def test_empty_matrix_has_no_condensed_columns():
    condensed = CondensedMatrix(CSRMatrix.empty((4, 4)))
    assert condensed.num_condensed_columns == 0
    assert len(condensed.column_nnz_histogram()) == 0
    assert len(condensed.access_order()) == 0


def test_condensing_reduces_column_count_on_sparse_matrices():
    """The headline property of §II-B: far fewer condensed columns."""
    matrix = powerlaw_matrix(512, 4.0, seed=11)
    condensed = CondensedMatrix(matrix)
    occupied_columns = len(np.unique(matrix.indices))
    assert condensed.num_condensed_columns < occupied_columns
    assert condensed.num_condensed_columns == matrix.max_row_length()
