"""Property-based tests (hypothesis) for the sparse format layer."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.condensed import CondensedMatrix
from repro.formats.convert import coo_to_csr, csr_to_coo, csr_to_csc, csc_to_csr
from repro.formats.coo import COOMatrix


@st.composite
def coo_matrices(draw, max_dim: int = 12, max_nnz: int = 40) -> COOMatrix:
    """Random COO matrices, possibly with duplicate coordinates."""
    num_rows = draw(st.integers(min_value=1, max_value=max_dim))
    num_cols = draw(st.integers(min_value=1, max_value=max_dim))
    nnz = draw(st.integers(min_value=0, max_value=max_nnz))
    rows = draw(st.lists(st.integers(0, num_rows - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, num_cols - 1), min_size=nnz, max_size=nnz))
    vals = draw(st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False,
                  allow_infinity=False).filter(lambda v: v != 0.0),
        min_size=nnz, max_size=nnz))
    return COOMatrix(np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64),
                     np.array(vals), (num_rows, num_cols))


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_canonicalized_preserves_dense_equivalent(coo: COOMatrix):
    np.testing.assert_allclose(coo.canonicalized(drop_zeros=False).to_dense(),
                               coo.to_dense(), atol=1e-9)


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_coo_csr_roundtrip_preserves_values(coo: COOMatrix):
    csr = coo_to_csr(coo)
    np.testing.assert_allclose(csr.to_dense(), coo.to_dense(), atol=1e-9)
    back = csr_to_coo(csr)
    np.testing.assert_allclose(back.to_dense(), coo.to_dense(), atol=1e-9)


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_csr_csc_roundtrip_preserves_values(coo: COOMatrix):
    csr = coo_to_csr(coo)
    np.testing.assert_allclose(csc_to_csr(csr_to_csc(csr)).to_dense(),
                               csr.to_dense(), atol=1e-9)


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_csr_rows_always_sorted(coo: COOMatrix):
    assert coo_to_csr(coo).has_sorted_rows()


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_condensed_view_is_a_permutation_of_the_nonzeros(coo: COOMatrix):
    """Condensing never gains, loses, or alters a nonzero (§II-B)."""
    csr = coo_to_csr(coo)
    condensed = CondensedMatrix(csr)
    assert condensed.num_condensed_columns == csr.max_row_length()
    entries = {}
    for column in condensed.columns():
        for row, col, value in zip(column.rows, column.original_cols,
                                   column.values):
            entries[(int(row), int(col))] = float(value)
    dense = csr.to_dense()
    assert len(entries) == csr.nnz
    for (row, col), value in entries.items():
        assert dense[row, col] == value


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_condensed_histogram_sums_to_nnz(coo: COOMatrix):
    csr = coo_to_csr(coo)
    histogram = CondensedMatrix(csr).column_nnz_histogram()
    assert int(histogram.sum()) == csr.nnz
    assert all(histogram[i] >= histogram[i + 1] for i in range(len(histogram) - 1))
