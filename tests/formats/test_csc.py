"""Unit tests for the CSC matrix container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.convert import csr_to_csc
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix


def _example_dense() -> np.ndarray:
    return np.array([
        [1.0, 0.0, 2.0],
        [0.0, 3.0, 0.0],
        [4.0, 0.0, 5.0],
        [0.0, 6.0, 0.0],
    ])


def _example_csc() -> CSCMatrix:
    return csr_to_csc(CSRMatrix.from_dense(_example_dense()))


def test_structure_matches_dense():
    csc = _example_csc()
    assert csc.shape == (4, 3)
    assert csc.nnz == 6
    np.testing.assert_array_equal(csc.nnz_per_col(), [2, 2, 2])
    np.testing.assert_allclose(csc.to_dense(), _example_dense())


def test_column_access():
    csc = _example_csc()
    rows, vals = csc.col(0)
    np.testing.assert_array_equal(rows, [0, 2])
    np.testing.assert_allclose(vals, [1.0, 4.0])
    assert csc.col_nnz(1) == 2
    with pytest.raises(IndexError):
        csc.col(3)
    with pytest.raises(IndexError):
        csc.col_nnz(-1)


def test_empty():
    empty = CSCMatrix.empty((3, 2))
    assert empty.nnz == 0
    assert empty.num_rows == 3
    assert empty.num_cols == 2
    np.testing.assert_allclose(empty.to_dense(), np.zeros((3, 2)))


def test_validation_errors():
    with pytest.raises(ValueError, match="indptr"):
        CSCMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (2, 2))
    with pytest.raises(ValueError, match="row index"):
        CSCMatrix(np.array([0, 1, 1]), np.array([9]), np.array([1.0]), (2, 2))
    with pytest.raises(ValueError, match="equal length"):
        CSCMatrix(np.array([0, 1, 1]), np.array([0]), np.array([1.0, 2.0]), (2, 2))


def test_storage_bytes():
    csc = _example_csc()
    assert csc.storage_bytes() == 6 * 16 + 4 * 8
