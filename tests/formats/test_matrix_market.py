"""Unit tests for Matrix Market (.mtx) reading and writing."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.formats.matrix_market import read_matrix_market, write_matrix_market
from repro.matrices.synthetic import random_matrix

GENERAL_FILE = """%%MatrixMarket matrix coordinate real general
% a comment line
3 4 5
1 1 1.5
1 3 -2.0
2 2 3.25
3 1 4.0
3 4 0.5
"""

SYMMETRIC_FILE = """%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 1.0
2 1 2.0
3 1 3.0
3 3 4.0
"""

PATTERN_FILE = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
"""

SKEW_FILE = """%%MatrixMarket matrix coordinate real skew-symmetric
3 3 2
2 1 5.0
3 2 -1.0
"""

SYMMETRIC_PATTERN_DIAGONAL_FILE = """%%MatrixMarket matrix coordinate pattern symmetric
3 3 3
1 1
2 2
3 1
"""

SKEW_NONZERO_DIAGONAL_FILE = """%%MatrixMarket matrix coordinate real skew-symmetric
3 3 3
2 1 5.0
2 2 7.0
3 2 -1.0
"""

SKEW_ZERO_DIAGONAL_FILE = """%%MatrixMarket matrix coordinate real skew-symmetric
3 3 3
2 1 5.0
2 2 0.0
3 2 -1.0
"""


def test_read_general_coordinate_file():
    matrix = read_matrix_market(io.StringIO(GENERAL_FILE))
    assert matrix.shape == (3, 4)
    assert matrix.nnz == 5
    dense = matrix.to_dense()
    assert dense[0, 0] == 1.5
    assert dense[0, 2] == -2.0
    assert dense[2, 3] == 0.5


def test_read_symmetric_file_mirrors_off_diagonal():
    matrix = read_matrix_market(io.StringIO(SYMMETRIC_FILE))
    dense = matrix.to_dense()
    np.testing.assert_allclose(dense, dense.T)
    assert dense[0, 1] == 2.0 and dense[1, 0] == 2.0
    assert dense[0, 0] == 1.0  # diagonal entries are not duplicated
    assert matrix.nnz == 4 + 2


def test_read_skew_symmetric_file_negates_mirror():
    matrix = read_matrix_market(io.StringIO(SKEW_FILE))
    dense = matrix.to_dense()
    assert dense[1, 0] == 5.0 and dense[0, 1] == -5.0
    np.testing.assert_allclose(dense, -dense.T)


def test_symmetric_pattern_diagonal_entries_not_duplicated():
    # Regression: mirroring must exclude the diagonal for *every* field
    # type — a duplicated pattern diagonal would sum to 2.0 on
    # canonicalisation.
    matrix = read_matrix_market(io.StringIO(SYMMETRIC_PATTERN_DIAGONAL_FILE))
    dense = matrix.to_dense()
    assert dense[0, 0] == 1.0 and dense[1, 1] == 1.0
    assert dense[2, 0] == 1.0 and dense[0, 2] == 1.0
    assert matrix.nnz == 4


def test_skew_symmetric_nonzero_diagonal_rejected():
    # A = -A^T forces a zero diagonal; loading a contradicting file would
    # silently produce a matrix that is not skew-symmetric.
    with pytest.raises(ValueError, match="skew-symmetric.*diagonal"):
        read_matrix_market(io.StringIO(SKEW_NONZERO_DIAGONAL_FILE))


def test_skew_symmetric_explicit_zero_diagonal_accepted():
    matrix = read_matrix_market(io.StringIO(SKEW_ZERO_DIAGONAL_FILE))
    dense = matrix.to_dense()
    np.testing.assert_allclose(dense, -dense.T)
    assert dense[1, 1] == 0.0


def test_read_pattern_file_uses_unit_values():
    matrix = read_matrix_market(io.StringIO(PATTERN_FILE))
    np.testing.assert_allclose(matrix.to_dense(), [[0.0, 1.0], [1.0, 0.0]])


def test_roundtrip_through_file(tmp_path):
    original = random_matrix(30, 20, 150, seed=6)
    path = tmp_path / "matrix.mtx"
    write_matrix_market(original, path, comment="roundtrip test")
    loaded = read_matrix_market(path)
    assert loaded.shape == original.shape
    np.testing.assert_allclose(loaded.to_dense(), original.to_dense())
    assert "% roundtrip test" in path.read_text().splitlines()[1]


def test_roundtrip_through_stream():
    original = random_matrix(10, 10, 40, seed=7)
    buffer = io.StringIO()
    write_matrix_market(original, buffer)
    buffer.seek(0)
    np.testing.assert_allclose(read_matrix_market(buffer).to_dense(),
                               original.to_dense())


@pytest.mark.parametrize("content,match", [
    ("not a header\n1 1 1\n", "missing"),
    ("%%MatrixMarket matrix array real general\n1 1\n1.0\n", "coordinate"),
    ("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 2\n",
     "unsupported MatrixMarket field"),
    ("%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
     "unsupported MatrixMarket symmetry"),
    ("%%MatrixMarket matrix coordinate real general\n", "no size line"),
    ("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
     "expected 2 entries"),
    ("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1\n",
     "malformed entry"),
])
def test_malformed_inputs_rejected(content, match):
    with pytest.raises(ValueError, match=match):
        read_matrix_market(io.StringIO(content))


def test_loaded_matrix_runs_through_the_accelerator():
    from repro.baselines.reference import matrices_allclose, scipy_spgemm
    from repro.core.accelerator import multiply

    matrix = read_matrix_market(io.StringIO(SYMMETRIC_FILE))
    result = multiply(matrix, matrix)
    assert matrices_allclose(result.matrix, scipy_spgemm(matrix, matrix))
