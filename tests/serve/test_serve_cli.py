"""The serve CLI: socket serving, one-shot requests, kill-driven drain."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.fabric.transport import connect_object, parse_address
from repro.serve.__main__ import main
from repro.serve.service import EXPOSED_SERVICE, SERVE_AUTHKEY_ENV

REPO_SRC = Path(__file__).resolve().parents[2] / "src"
SCENARIO = "smoke/wiki-Vote@120"


@pytest.fixture
def served(tmp_path):
    """A real ``python -m repro.serve serve`` subprocess, torn down hard."""
    authkey = os.urandom(16).hex()
    address_file = tmp_path / "address.txt"
    metrics_file = tmp_path / "SERVE_metrics.json"
    env = dict(os.environ,
               PYTHONPATH=str(REPO_SRC),
               **{SERVE_AUTHKEY_ENV: authkey})
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "serve",
         "--workers", "2", "--debug-delay",
         "--address-file", str(address_file),
         "--metrics-out", str(metrics_file)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    deadline = time.monotonic() + 30
    while not address_file.is_file() or not address_file.read_text().strip():
        if process.poll() is not None:
            pytest.fail(f"serve exited early:\n{process.stdout.read()}")
        if time.monotonic() > deadline:
            process.kill()
            pytest.fail("serve never wrote its address file")
        time.sleep(0.05)
    address = parse_address(address_file.read_text().strip())
    try:
        yield process, address, authkey, metrics_file
    finally:
        if process.poll() is None:
            process.kill()
        process.wait(timeout=30)
        process.stdout.close()


def connect(address, authkey):
    return connect_object(address, authkey=bytes.fromhex(authkey),
                          exposed=EXPOSED_SERVICE)


def test_request_subcommand_round_trips(served, capsys, monkeypatch):
    process, address, authkey, _ = served
    monkeypatch.setenv(SERVE_AUTHKEY_ENV, authkey)
    rc = main(["request", "--address", f"{address[0]}:{address[1]}",
               "--engine", "heap", "--scenario", SCENARIO])
    out = capsys.readouterr().out
    response = json.loads(out)
    assert rc == 0
    assert response["status"] == "ok"
    assert response["outcome"] == "computed"

    rc = main(["request", "--address", f"{address[0]}:{address[1]}",
               "--engine", "sparch", "--scenario", SCENARIO,
               "--config", "merge_tree_layers=4", "--full"])
    response = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert response["status"] == "ok"
    assert "report" in response

    rc = main(["request", "--address", f"{address[0]}:{address[1]}",
               "--engine", "no-such-engine", "--scenario", SCENARIO])
    response = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert response["code"] == 400


def test_sigterm_mid_request_drains_and_flushes_metrics(served):
    process, address, authkey, metrics_file = served
    proxy = connect(address, authkey)
    assert proxy.ping() == "pong"

    # Hold one request in flight (the serve subprocess honours the delay
    # field because the fixture passes --debug-delay), then deliver
    # SIGTERM while it is still computing.
    result = {}

    def slow_request():
        client = connect(address, authkey)  # own connection per thread
        result["response"] = client.request(
            {"engine": "heap", "scenario": SCENARIO, "delay": 2.0})

    thread = threading.Thread(target=slow_request)
    thread.start()
    deadline = time.monotonic() + 30
    while proxy.stats()["service"]["inflight"] == 0:
        assert time.monotonic() < deadline, "request never became in-flight"
        time.sleep(0.05)

    process.send_signal(signal.SIGTERM)
    # While draining, new requests are rejected with the 503 payload —
    # but the already-admitted request is allowed to finish.
    time.sleep(0.4)
    rejected = proxy.request({"engine": "heap", "scenario": SCENARIO})
    assert rejected["status"] == "rejected"
    assert rejected["code"] == 503
    assert "draining" in rejected["reason"]

    thread.join(timeout=60)
    assert result["response"]["status"] == "ok"

    assert process.wait(timeout=60) == 0
    output = process.stdout.read()
    assert "draining in-flight requests" in output
    assert "drained=True" in output

    snapshot = json.loads(metrics_file.read_text())
    facts = snapshot["service"]
    assert facts["drained"] is True
    assert facts["ok"] >= 1
    assert facts["rejected"] >= 1
    assert facts["draining"] is True
    assert snapshot["runner"]["misses"] >= 1


def test_bench_inline_writes_combined_metrics(tmp_path, capsys):
    out = tmp_path / "bench.json"
    rc = main(["bench", "--inline", "--corpus", "smoke",
               "--engines", "heap,mkl", "--requests", "120",
               "--clients", "8", "--skew", "1.2", "--seed", "5",
               "--max-rows", "64", "--out", str(out)])
    printed = capsys.readouterr().out
    assert rc == 0
    assert "req/s" in printed and "p99" in printed
    combined = json.loads(out.read_text())
    assert combined["schema"] == 1
    assert combined["client"]["ok"] == 120
    assert combined["client"]["requests"] == 120
    assert combined["server"]["service"]["ok"] == \
        120 + combined["client"]["warmed"]
    assert combined["server"]["runner"]["hit_rate"] > 0.5


def test_bench_rejects_unknown_corpus(tmp_path):
    with pytest.raises(KeyError):
        main(["bench", "--inline", "--corpus", "no-such-corpus",
              "--requests", "10", "--clients", "2"])
