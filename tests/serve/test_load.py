"""Load tests: thousands of concurrent requests over a Zipf mix.

These drive the real service in-process (no socket) through the same
``run_traffic`` helper the CLI bench uses, asserting the serving-layer
contract end to end: every request answered, hot-cache latency within
budget, and the store's miss count bounded by the population size — the
system-level face of request coalescing.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentRunner
from repro.serve.__main__ import run_traffic
from repro.serve.service import ServeOptions, SpGEMMService
from repro.serve.traffic import TrafficSpec

SPEC = TrafficSpec(corpus="smoke", engines=("sparch", "mkl", "heap"),
                   skew=1.2, seed=17)

#: Generous wall-clock budget for a hot-cache response (milliseconds).
#: Warm requests are dictionary lookups; even a loaded CI box clears
#: this by orders of magnitude.
HOT_P99_BUDGET_MS = 250.0


def make_service(**options) -> SpGEMMService:
    return SpGEMMService(runner=ExperimentRunner(),
                         options=ServeOptions(**options))


def test_hot_cache_throughput_and_p99_under_thousands_of_requests():
    service = make_service(workers=8, queue_limit=256)
    client = run_traffic(service.request, SPEC, count=2000, clients=32,
                         warm=True)
    population = len(SPEC.population())
    assert client["warmed"] == population
    assert client["ok"] == 2000  # every request answered, none rejected
    assert client["statuses"] == {"ok": 2000}
    assert set(client["outcomes"]) == {"hit"}  # hot cache end to end
    assert client["latency"]["count"] == 2000
    assert client["latency"]["p99_ms"] < HOT_P99_BUDGET_MS
    assert client["throughput_rps"] > 0

    snapshot = service.stats()
    facts = snapshot["service"]
    assert facts["requests"] == 2000 + population
    assert facts["ok"] == facts["requests"]
    assert facts["rejected"] == 0 and facts["errors"] == 0
    runner_stats = snapshot["runner"]
    # The warm-up computed each population point exactly once; the load
    # itself never missed.
    assert runner_stats["misses"] == population
    assert runner_stats["hit_rate"] > 0.9


def test_cold_burst_coalesces_to_one_execution_per_point():
    service = make_service(workers=8, queue_limit=2048)
    client = run_traffic(service.request, SPEC, count=1000, clients=32,
                         warm=False)
    assert client["ok"] == 1000
    runner_stats = service.stats()["runner"]
    # 1000 concurrent requests over a 9-point population: coalescing and
    # the shared store bound engine executions by the population size.
    assert runner_stats["misses"] <= len(SPEC.population())
    assert runner_stats["hits"] + runner_stats["coalesced"] >= \
        1000 - len(SPEC.population())


def test_zipf_mix_is_reproducible_across_identical_services():
    first = run_traffic(make_service(workers=8).request, SPEC,
                        count=500, clients=16)
    second = run_traffic(make_service(workers=8).request, SPEC,
                         count=500, clients=16)
    assert first["outcomes"] == second["outcomes"]
    assert first["statuses"] == second["statuses"]
