"""ReportStore: the shared two-tier report cache and its coalescing."""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.store import REPORT_KINDS, ReportStore


def payload_for(key: str) -> dict:
    return {"key": key, "cycles": 42}


class TestTiers:
    def test_memory_roundtrip_without_disk(self):
        store = ReportStore()
        assert store.load("k", "sim") is None
        store.store("k", {"a": 1}, "sim")
        assert store.load("k", "sim") == {"a": 1}
        assert store.cache_dir is None

    def test_disk_tier_survives_a_fresh_store(self, tmp_path):
        first = ReportStore(cache_dir=tmp_path)
        first.store("k", {"a": 1}, "baseline")
        fresh = ReportStore(cache_dir=tmp_path)
        assert fresh.load("k", "baseline") == {"a": 1}

    def test_disk_layout_uses_kind_subdirectories(self, tmp_path):
        store = ReportStore(cache_dir=tmp_path)
        for kind in REPORT_KINDS:
            assert (tmp_path / kind).is_dir()
        store.store("k", {"a": 1}, "sim")
        assert (tmp_path / "sim" / "k.json").is_file()

    def test_corrupt_disk_entry_reads_as_a_miss(self, tmp_path):
        store = ReportStore(cache_dir=tmp_path)
        (tmp_path / "sim" / "bad.json").write_text("{not json")
        assert store.load("bad", "sim") is None

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        writer = ReportStore(cache_dir=tmp_path)
        writer.store("k", {"a": 1}, "sim")
        reader = ReportStore(cache_dir=tmp_path)
        reader.load("k", "sim")
        (tmp_path / "sim" / "k.json").unlink()
        assert reader.load("k", "sim") == {"a": 1}  # memory tier now


class TestGetOrCompute:
    def test_computes_then_hits(self):
        store = ReportStore()
        calls = []

        def compute():
            calls.append(1)
            return {"a": 1}

        assert store.get_or_compute("k", "sim", compute) == (
            {"a": 1}, "computed")
        assert store.get_or_compute("k", "sim", compute) == ({"a": 1}, "hit")
        assert len(calls) == 1
        assert store.hits == 1 and store.misses == 1

    def test_disk_entry_counts_as_a_hit(self, tmp_path):
        ReportStore(cache_dir=tmp_path).store("k", {"a": 1}, "sim")
        store = ReportStore(cache_dir=tmp_path)
        payload, outcome = store.get_or_compute(
            "k", "sim", lambda: pytest.fail("must not compute"))
        assert (payload, outcome) == ({"a": 1}, "hit")

    def test_error_propagates_and_is_never_cached(self):
        store = ReportStore()

        def boom():
            raise RuntimeError("engine crashed")

        with pytest.raises(RuntimeError, match="engine crashed"):
            store.get_or_compute("k", "sim", boom)
        # The key is not poisoned: the next caller computes normally.
        assert store.get_or_compute("k", "sim", lambda: {"a": 2}) == (
            {"a": 2}, "computed")
        assert store.stats()["inflight"] == 0

    def test_n_concurrent_identical_requests_compute_once(self):
        store = ReportStore()
        threads = 16
        barrier = threading.Barrier(threads)
        release = threading.Event()
        executions = []

        def compute():
            executions.append(threading.get_ident())
            assert release.wait(10)
            return {"a": 1}

        def caller():
            barrier.wait(10)
            return store.get_or_compute("k", "sim", compute)

        with ThreadPoolExecutor(max_workers=threads) as pool:
            futures = [pool.submit(caller) for _ in range(threads)]
            # Let every thread reach the store before the leader finishes.
            while store.stats()["inflight"] == 0:
                pass
            release.set()
            results = [future.result(timeout=30) for future in futures]

        assert len(executions) == 1
        assert all(payload == {"a": 1} for payload, _ in results)
        outcomes = [outcome for _, outcome in results]
        assert outcomes.count("computed") == 1
        assert set(outcomes) <= {"computed", "coalesced", "hit"}
        stats = store.stats()
        assert stats["misses"] == 1
        assert stats["hits"] + stats["coalesced"] == threads - 1
        assert stats["coalesced_wait_seconds"] >= 0.0

    def test_waiters_retry_when_the_leader_fails(self):
        store = ReportStore()
        started = threading.Event()
        fail_leader = threading.Event()
        attempts = []

        def compute():
            attempts.append(1)
            started.set()
            if len(attempts) == 1:
                assert fail_leader.wait(10)
                raise RuntimeError("first leader dies")
            return {"a": 1}

        def follower():
            assert started.wait(10)
            return store.get_or_compute("k", "sim", compute)

        with ThreadPoolExecutor(max_workers=2) as pool:
            leader = pool.submit(store.get_or_compute, "k", "sim", compute)
            waiter = pool.submit(follower)
            while store.stats()["inflight"] == 0:
                pass
            fail_leader.set()
            with pytest.raises(RuntimeError, match="first leader dies"):
                leader.result(timeout=30)
            # The parked waiter retries and becomes the next leader.
            assert waiter.result(timeout=30) == ({"a": 1}, "computed")
        assert len(attempts) == 2


class TestAccounting:
    def test_record_batch_feeds_the_same_counters(self):
        store = ReportStore()
        store.record_batch(hits=3, misses=2, compute_seconds=1.5)
        stats = store.stats()
        assert stats["hits"] == 3 and stats["misses"] == 2
        assert stats["compute_seconds"] == 1.5
        assert stats["hit_rate"] == pytest.approx(0.6)

    def test_stats_snapshot_shape(self):
        stats = ReportStore().stats()
        assert set(stats) == {"hits", "misses", "coalesced", "hit_rate",
                              "compute_seconds", "coalesced_wait_seconds",
                              "inflight", "entries"}
        assert stats["hit_rate"] == 0.0  # no lookups yet

    def test_thread_hammer_counters_stay_consistent(self):
        store = ReportStore()
        keys = [f"k{index}" for index in range(8)]
        calls_per_key = 25

        def caller(key):
            return store.get_or_compute(key, "sim", lambda: payload_for(key))

        with ThreadPoolExecutor(max_workers=16) as pool:
            futures = [pool.submit(caller, key)
                       for key in keys for _ in range(calls_per_key)]
            results = [future.result(timeout=60) for future in futures]

        for (payload, _), key in zip(
                results, [key for key in keys for _ in range(calls_per_key)]):
            assert payload == payload_for(key)
        stats = store.stats()
        total = len(keys) * calls_per_key
        assert stats["misses"] == len(keys)  # each key computed exactly once
        assert stats["hits"] + stats["coalesced"] == total - len(keys)
        assert stats["entries"] == len(keys)
        assert stats["inflight"] == 0

    def test_disk_write_is_atomic_no_partial_files_remain(self, tmp_path):
        store = ReportStore(cache_dir=tmp_path)
        store.store("k", {"a": 1}, "sim")
        leftovers = [path for path in (tmp_path / "sim").iterdir()
                     if path.suffix != ".json"]
        assert leftovers == []
        assert json.loads((tmp_path / "sim" / "k.json").read_text()) == {
            "a": 1}
