"""SpGEMMService: validation, admission control, coalescing, drain."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.experiments.runner as runner_mod
from repro.corpus.registry import resolve_scenario
from repro.experiments.runner import ExperimentRunner
from repro.serve.service import ServeOptions, SpGEMMService

SCENARIOS = ("smoke/wiki-Vote@120", "smoke/rmat-128-x4",
             "smoke/uniform-128-d0.02")


def make_service(**options) -> SpGEMMService:
    return SpGEMMService(runner=ExperimentRunner(),
                         options=ServeOptions(**options))


def wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail("condition not reached in time")
        time.sleep(0.005)


class TestOptions:
    def test_defaults(self):
        options = ServeOptions()
        assert options.workers == 4 and options.queue_limit == 64

    @pytest.mark.parametrize("field, value", [
        ("workers", 0), ("queue_limit", -1),
        ("matrix_cache_entries", 0), ("latency_window", 0),
    ])
    def test_bad_sizing_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            ServeOptions(**{field: value})


class TestValidation:
    @pytest.mark.parametrize("payload, fragment", [
        ("not a dict", "must be a dict"),
        ({"scenario": SCENARIOS[0]}, "engine"),
        ({"engine": 7, "scenario": SCENARIOS[0]}, "engine"),
        ({"engine": "no-such", "scenario": SCENARIOS[0]}, "no-such"),
        ({"engine": "heap"}, "scenario"),
        ({"engine": "heap", "scenario": "smoke/no-such"}, "no-such"),
        ({"engine": "heap", "scenario": "malformed"}, "malformed"),
        ({"engine": "heap", "scenario": SCENARIOS[0], "bogus": 1}, "bogus"),
        ({"engine": "heap", "scenario": SCENARIOS[0], "config": "x"},
         "config"),
        ({"engine": "heap", "scenario": SCENARIOS[0],
          "config": {"merge_tree_layers": 4}}, "no configuration"),
    ])
    def test_bad_requests_get_400(self, payload, fragment):
        response = make_service().request(payload)
        assert response["status"] == "error"
        assert response["code"] == 400
        assert fragment in response["error"]
        assert "latency_ms" in response

    def test_bad_config_field_gets_400(self):
        response = make_service().request(
            {"engine": "sparch", "scenario": SCENARIOS[0],
             "config": {"no_such_field": 1}})
        assert response["status"] == "error"
        assert response["code"] == 400
        assert "no_such_field" in response["error"]

    def test_bad_requests_count_without_entering_the_pool(self):
        service = make_service()
        service.request({"engine": "no-such", "scenario": SCENARIOS[0]})
        facts = service.stats()["service"]
        assert facts["bad_requests"] == 1
        assert facts["requests"] == 1
        assert facts["ok"] == 0


class TestServing:
    def test_cold_then_warm(self):
        service = make_service()
        first = service.request({"engine": "heap",
                                 "scenario": SCENARIOS[0]})
        assert first["status"] == "ok"
        assert first["outcome"] == "computed"
        assert first["summary"]["multiplications"] > 0
        second = service.request({"engine": "heap",
                                  "scenario": SCENARIOS[0]})
        assert second["status"] == "ok"
        assert second["outcome"] == "hit"
        assert second["key"] == first["key"]

    def test_full_report_on_request(self):
        response = make_service().request(
            {"engine": "heap", "scenario": SCENARIOS[0],
             "full_report": True})
        assert response["status"] == "ok"
        assert response["report"]["engine"] == response["engine"]

    def test_inline_recipe_scenario(self):
        response = make_service().request({
            "engine": "heap",
            "scenario": {"name": "tiny", "family": "random",
                         "params": {"num_rows": 64, "num_cols": 64,
                                    "density": 0.05, "seed": 9}},
        })
        assert response["status"] == "ok"
        assert response["scenario"] == "tiny"

    def test_config_overrides_reach_the_simulation(self):
        service = make_service()
        base = service.request({"engine": "sparch",
                                "scenario": SCENARIOS[0]})
        tuned = service.request({"engine": "sparch",
                                 "scenario": SCENARIOS[0],
                                 "config": {"merge_tree_layers": 4}})
        assert base["status"] == tuned["status"] == "ok"
        assert tuned["key"] != base["key"]  # distinct content addresses

    def test_shared_store_across_services(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        first = SpGEMMService(runner=runner)
        assert first.request({"engine": "heap", "scenario": SCENARIOS[0]}
                             )["outcome"] == "computed"
        # A second service over a fresh runner on the same cache_dir
        # answers from disk without recomputing.
        second = SpGEMMService(runner=ExperimentRunner(cache_dir=tmp_path))
        assert second.request({"engine": "heap", "scenario": SCENARIOS[0]}
                              )["outcome"] == "hit"

    def test_warm_requests_bypass_the_worker_pool(self):
        service = make_service(workers=1, queue_limit=0)
        # queue_limit=0 admits no cold request at all ...
        rejected = service.request({"engine": "heap",
                                    "scenario": SCENARIOS[0]})
        assert rejected["status"] == "rejected"
        assert rejected["code"] == 503
        # ... but once the point is warm (seeded through the runner), the
        # service answers it without touching admission at all.
        service.runner.run_engine(
            "heap", resolve_scenario(SCENARIOS[0]).build())
        warm = service.request({"engine": "heap", "scenario": SCENARIOS[0]})
        assert warm["status"] == "ok"
        assert warm["outcome"] == "hit"
        facts = service.stats()["service"]
        assert facts["rejected"] == 1 and facts["ok"] == 1
        assert facts["peak_queued"] == 0

    def test_introspection(self):
        service = make_service()
        assert service.ping() == "pong"
        described = service.describe()
        assert "heap" in described["engines"]
        assert "smoke" in described["corpora"]
        assert described["draining"] is False


class TestStats:
    def test_snapshot_shape_and_counts(self):
        service = make_service()
        service.request({"engine": "heap", "scenario": SCENARIOS[0]})
        service.request({"engine": "heap", "scenario": SCENARIOS[0]})
        service.request({"engine": "no-such", "scenario": SCENARIOS[0]})
        snapshot = service.stats()
        assert snapshot["schema"] == 1
        facts = snapshot["service"]
        assert facts["requests"] == 3
        assert facts["ok"] == 2
        assert facts["bad_requests"] == 1
        assert facts["outcomes"] == {"computed": 1, "hit": 1}
        assert facts["per_engine"] == {"heap": 2}
        assert facts["latency"]["count"] == 3
        assert facts["latency"]["p99_ms"] >= facts["latency"]["p50_ms"]
        assert facts["inflight"] == 0 and facts["queued"] == 0
        runner_stats = snapshot["runner"]
        assert runner_stats["misses"] == 1
        assert runner_stats["hits"] == 1


class TestAdmission:
    def test_queue_overflow_rejected_with_503(self):
        service = make_service(workers=1, queue_limit=1, debug_delay=True)
        release_after = 1.5
        results = {}

        def fire(name, scenario):
            results[name] = service.request({
                "engine": "heap", "scenario": scenario,
                "delay": release_after})

        # First cold request occupies the single worker; second queues.
        first = threading.Thread(target=fire, args=("first", SCENARIOS[0]))
        first.start()
        wait_until(lambda: service.stats()["service"]["active"] == 1)
        second = threading.Thread(target=fire, args=("second", SCENARIOS[1]))
        second.start()
        wait_until(lambda: service.stats()["service"]["queued"] == 1)
        # The queue is now at its cap: a third cold request is rejected
        # immediately with the explicit 503 payload, not queued.
        third = service.request({"engine": "heap",
                                 "scenario": SCENARIOS[2]})
        assert third["status"] == "rejected"
        assert third["code"] == 503
        assert "queue full" in third["reason"]
        first.join(timeout=30)
        second.join(timeout=30)
        assert results["first"]["status"] == "ok"
        assert results["second"]["status"] == "ok"
        facts = service.stats()["service"]
        assert facts["rejected"] == 1
        assert facts["peak_queued"] == 1

    def test_delay_field_ignored_without_debug_delay(self):
        service = make_service()  # debug_delay off
        started = time.perf_counter()
        response = service.request({"engine": "heap",
                                    "scenario": SCENARIOS[0],
                                    "delay": 30.0})
        assert response["status"] == "ok"
        assert time.perf_counter() - started < 10.0


class TestCoalescing:
    def test_n_identical_concurrent_requests_execute_once(self, monkeypatch):
        executions = []
        real_task = runner_mod._engine_task

        def counting_task(task):
            executions.append(threading.get_ident())
            time.sleep(0.3)  # hold the leader so followers park
            return real_task(task)

        monkeypatch.setattr(runner_mod, "_engine_task", counting_task)
        service = make_service(workers=8)
        threads = 8
        barrier = threading.Barrier(threads)

        def fire(_):
            barrier.wait(10)
            return service.request({"engine": "heap",
                                    "scenario": SCENARIOS[0]})

        with ThreadPoolExecutor(max_workers=threads) as pool:
            responses = list(pool.map(fire, range(threads)))

        assert len(executions) == 1  # the coalescing proof
        assert all(response["status"] == "ok" for response in responses)
        outcomes = [response["outcome"] for response in responses]
        assert outcomes.count("computed") == 1
        assert set(outcomes) <= {"computed", "coalesced", "hit"}
        runner_stats = service.stats()["runner"]
        assert runner_stats["misses"] == 1
        assert runner_stats["hits"] + runner_stats["coalesced"] == \
            threads - 1


class TestDrain:
    def test_draining_rejects_new_requests(self):
        service = make_service()
        service.request({"engine": "heap", "scenario": SCENARIOS[0]})
        service.begin_drain()
        response = service.request({"engine": "heap",
                                    "scenario": SCENARIOS[0]})
        assert response["status"] == "rejected"
        assert response["code"] == 503
        assert "draining" in response["reason"]
        assert service.draining is True

    def test_shutdown_waits_for_inflight_and_flushes_metrics(self, tmp_path):
        metrics = tmp_path / "SERVE_metrics.json"
        service = SpGEMMService(
            runner=ExperimentRunner(),
            options=ServeOptions(debug_delay=True, metrics_path=metrics))
        result = {}

        def slow_request():
            result["response"] = service.request({
                "engine": "heap", "scenario": SCENARIOS[0], "delay": 1.0})

        thread = threading.Thread(target=slow_request)
        thread.start()
        wait_until(lambda: service.stats()["service"]["inflight"] == 1)
        snapshot = service.shutdown(timeout=30)
        thread.join(timeout=30)
        # The in-flight request finished normally before shutdown returned.
        assert result["response"]["status"] == "ok"
        assert snapshot["service"]["drained"] is True
        assert snapshot["service"]["ok"] == 1
        assert metrics.is_file()

    def test_shutdown_timeout_reports_incomplete_drain(self):
        service = make_service(debug_delay=True)
        thread = threading.Thread(target=service.request, args=(
            {"engine": "heap", "scenario": SCENARIOS[0], "delay": 1.5},))
        thread.start()
        wait_until(lambda: service.stats()["service"]["inflight"] == 1)
        snapshot = service.shutdown(timeout=0.05)
        assert snapshot["service"]["drained"] is False
        thread.join(timeout=30)

    def test_idle_shutdown_is_immediate(self):
        snapshot = make_service().shutdown(timeout=5)
        assert snapshot["service"]["drained"] is True
        assert snapshot["service"]["requests"] == 0
