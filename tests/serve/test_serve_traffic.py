"""Traffic generator: determinism per seed and the Zipf shape property."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.registry import get_corpus
from repro.serve.traffic import TrafficSpec, empirical_skew, generate, \
    rank_counts, zipf_weights


class TestSpecValidation:
    def test_defaults_are_valid(self):
        spec = TrafficSpec()
        assert spec.corpus == "smoke"
        assert spec.skew == 1.1

    def test_unknown_engine_rejected(self):
        with pytest.raises(KeyError):
            TrafficSpec(engines=("no-such-engine",))

    def test_unknown_corpus_rejected(self):
        with pytest.raises(KeyError):
            TrafficSpec(corpus="no-such-corpus")

    def test_duplicate_engines_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TrafficSpec(engines=("heap", "heap"))

    def test_empty_engines_rejected(self):
        with pytest.raises(ValueError, match="at least one engine"):
            TrafficSpec(engines=())

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError, match="skew"):
            TrafficSpec(skew=-0.5)

    def test_bad_max_rows_rejected(self):
        with pytest.raises(ValueError, match="max_rows"):
            TrafficSpec(max_rows=0)


class TestPopulation:
    def test_scenario_major_engine_minor_order(self):
        spec = TrafficSpec(engines=("sparch", "heap"))
        population = spec.population()
        scenario_names = [
            scenario.name for scenario in get_corpus("smoke").scenarios]
        assert len(population) == len(scenario_names) * 2
        assert [payload["engine"] for payload in population[:2]] == [
            "sparch", "heap"]
        assert population[0]["scenario"] == f"smoke/{scenario_names[0]}"

    def test_full_scale_population_uses_string_references(self):
        for payload in TrafficSpec().population():
            assert isinstance(payload["scenario"], str)
            assert payload["scenario"].startswith("smoke/")

    def test_scaled_population_inlines_recipes(self):
        for payload in TrafficSpec(max_rows=64).population():
            recipe = payload["scenario"]
            assert isinstance(recipe, dict)
            assert set(recipe) == {"name", "family", "params"}

    def test_weights_align_with_population(self):
        spec = TrafficSpec(skew=1.3)
        weights = spec.weights()
        assert len(weights) == len(spec.population())
        assert weights.sum() == pytest.approx(1.0)


class TestZipfWeights:
    def test_follow_the_power_law(self):
        weights = zipf_weights(10, 2.0)
        assert weights[0] / weights[1] == pytest.approx(4.0)
        assert weights[0] / weights[3] == pytest.approx(16.0)

    def test_zero_skew_is_uniform(self):
        assert np.allclose(zipf_weights(5, 0.0), 0.2)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError, match="count"):
            zipf_weights(0, 1.0)


class TestGenerate:
    def test_deterministic_per_seed(self):
        spec = TrafficSpec(seed=7)
        assert generate(spec, 500) == generate(spec, 500)

    def test_prefix_stable_across_counts(self):
        spec = TrafficSpec(seed=7)
        assert generate(spec, 400)[:200] == generate(spec, 200)

    def test_different_seeds_differ(self):
        assert generate(TrafficSpec(seed=1), 200) != generate(
            TrafficSpec(seed=2), 200)

    def test_payloads_are_fresh_dicts(self):
        spec = TrafficSpec(seed=0)
        first, _ = generate(spec, 2)
        first["annotated"] = True  # must not leak into the population
        assert "annotated" not in spec.population()[0]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            generate(TrafficSpec(), -1)

    def test_zero_count_is_empty(self):
        assert generate(TrafficSpec(), 0) == []


class TestShapeProperty:
    def test_rank_counts_cover_every_request(self):
        spec = TrafficSpec(seed=3)
        requests = generate(spec, 1000)
        counts = rank_counts(spec, requests)
        assert counts.sum() == 1000
        assert len(counts) == len(spec.population())

    def test_hot_rank_dominates_under_skew(self):
        spec = TrafficSpec(seed=5, skew=1.5)
        counts = rank_counts(spec, generate(spec, 5000))
        assert counts[0] == counts.max()
        assert counts[0] > 3 * counts[-1]

    @pytest.mark.parametrize("skew", [0.8, 1.1, 1.5])
    def test_empirical_skew_recovers_the_configured_exponent(self, skew):
        spec = TrafficSpec(seed=11, skew=skew)
        counts = rank_counts(spec, generate(spec, 50_000))
        assert empirical_skew(counts) == pytest.approx(skew, abs=0.1)

    def test_empirical_skew_needs_two_observed_ranks(self):
        with pytest.raises(ValueError, match="two observed ranks"):
            empirical_skew(np.array([100, 0, 0]))

    def test_scaled_traffic_counts_against_inline_recipes(self):
        spec = TrafficSpec(seed=2, max_rows=64)
        requests = generate(spec, 300)
        assert rank_counts(spec, requests).sum() == 300
