"""Tests for Markov clustering with accelerator-backed expansion."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps import markov_clustering
from repro.apps.markov_clustering import _extract_clusters
from repro.experiments.runner import ExperimentRunner
from repro.formats import CSRMatrix
from repro.matrices import random_matrix


def _two_cliques(size: int = 5, bridge: bool = True) -> CSRMatrix:
    """Two cliques of ``size`` nodes, optionally joined by one weak edge."""
    n = 2 * size
    dense = np.zeros((n, n))
    for offset in (0, size):
        block = slice(offset, offset + size)
        dense[block, block] = 1.0
    np.fill_diagonal(dense, 0.0)
    if bridge:
        dense[size - 1, size] = dense[size, size - 1] = 0.1
    return CSRMatrix.from_dense(dense)


def test_two_cliques_are_separated():
    result = markov_clustering(_two_cliques())
    assert result.num_clusters == 2
    assert result.converged
    # Every node of a clique shares a label; the two cliques differ.
    labels = result.labels
    assert len(set(labels[:5])) == 1
    assert len(set(labels[5:])) == 1
    assert labels[0] != labels[5]


def test_clusters_partition_the_nodes():
    graph = random_matrix(40, 40, 200, seed=5)
    result = markov_clustering(graph, max_iterations=15)
    covered = sorted(node for cluster in result.clusters for node in cluster)
    assert covered == list(range(40))
    assert len(result.labels) == 40
    assert result.num_clusters == len(result.clusters)


def test_higher_inflation_gives_no_fewer_clusters():
    graph = random_matrix(60, 60, 400, seed=11)
    coarse = markov_clustering(graph, inflation=1.4, max_iterations=20)
    fine = markov_clustering(graph, inflation=3.0, max_iterations=20)
    assert fine.num_clusters >= coarse.num_clusters


def test_spgemm_statistics_accumulate_per_iteration():
    result = markov_clustering(_two_cliques(), max_iterations=10)
    assert result.iterations >= 1
    assert len(result.total_spgemm_stats) >= result.iterations
    assert result.total_dram_bytes > 0
    assert result.total_cycles > 0


def test_isolated_nodes_form_singleton_clusters():
    dense = np.zeros((4, 4))
    dense[0, 1] = dense[1, 0] = 1.0
    result = markov_clustering(CSRMatrix.from_dense(dense))
    assert result.num_clusters == 3  # {0,1} plus two singletons
    sizes = sorted(len(c) for c in result.clusters)
    assert sizes == [1, 1, 2]


def test_overlap_chains_merge_transitively():
    """Regression: a∩b, b∩c overlap chains must yield disjoint clusters.

    Attractor 0 claims {0, 3}, attractor 1 claims {1, 4}, and attractor 2
    claims {2, 3, 4} — bridging the first two.  Merging only into the first
    overlapping cluster used to leave {1, 4} separate while 4 also sat in
    the merged cluster, violating the disjointness invariant.
    """
    dense = np.zeros((5, 5))
    dense[0, 0] = dense[1, 1] = dense[2, 2] = 0.4  # attractors
    dense[0, 3] = 0.3
    dense[1, 4] = 0.3
    dense[2, 3] = dense[2, 4] = 0.2
    clusters = _extract_clusters(sp.csr_matrix(dense))
    assert clusters == [[0, 1, 2, 3, 4]]


def test_extracted_clusters_are_always_disjoint_and_cover():
    rng = np.random.default_rng(77)
    for _ in range(20):
        dense = np.where(rng.random((12, 12)) < 0.2, rng.random((12, 12)), 0.0)
        clusters = _extract_clusters(sp.csr_matrix(dense))
        flat = [node for cluster in clusters for node in cluster]
        assert sorted(flat) == list(range(12))  # disjoint cover


def test_runner_mode_matches_engine_mode():
    graph = random_matrix(40, 40, 200, seed=5)
    direct = markov_clustering(graph, max_iterations=15)
    memoised = markov_clustering(graph, max_iterations=15,
                                 runner=ExperimentRunner())
    assert memoised.clusters == direct.clusters
    assert memoised.iterations == direct.iterations
    assert memoised.total_spgemm_stats == direct.total_spgemm_stats


def test_workload_record_is_attached():
    result = markov_clustering(_two_cliques(), max_iterations=5)
    assert result.workload is not None
    assert result.workload.workload_id == "mcl"
    assert result.workload.total_cycles == result.total_cycles
    assert len(result.workload.spgemm_stages) == len(result.total_spgemm_stats)


def test_invalid_arguments():
    graph = _two_cliques()
    with pytest.raises(ValueError, match="square"):
        markov_clustering(CSRMatrix.empty((3, 4)))
    with pytest.raises(ValueError, match="expansion"):
        markov_clustering(graph, expansion=1)
    with pytest.raises(ValueError, match="inflation"):
        markov_clustering(graph, inflation=1.0)
