"""Tests for triangle counting on the simulated accelerator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import count_triangles
from repro.apps.triangles import normalize_adjacency
from repro.formats import CSRMatrix
from repro.matrices import powerlaw_matrix


def _dense_triangle_count(adjacency: np.ndarray) -> int:
    return int(round(np.trace(adjacency @ adjacency @ adjacency) / 6))


def _triangle_graph() -> CSRMatrix:
    dense = np.zeros((5, 5))
    # One triangle 0-1-2 plus a pendant path 2-3-4.
    for i, j in ((0, 1), (1, 2), (0, 2), (2, 3), (3, 4)):
        dense[i, j] = dense[j, i] = 1.0
    return CSRMatrix.from_dense(dense)


def test_known_small_graph():
    result = count_triangles(_triangle_graph())
    assert result.triangles == 1
    np.testing.assert_allclose(result.per_node_triangles, [1, 1, 1, 0, 0])
    assert result.wedges > 0
    assert 0.0 < result.clustering_coefficient <= 1.0


def test_complete_graph_has_n_choose_3_triangles():
    n = 7
    dense = np.ones((n, n)) - np.eye(n)
    result = count_triangles(CSRMatrix.from_dense(dense))
    assert result.triangles == n * (n - 1) * (n - 2) // 6
    assert result.clustering_coefficient == pytest.approx(1.0)


def test_triangle_free_graph():
    # A star graph has wedges but no triangles.
    dense = np.zeros((6, 6))
    dense[0, 1:] = dense[1:, 0] = 1.0
    result = count_triangles(CSRMatrix.from_dense(dense))
    assert result.triangles == 0
    assert result.clustering_coefficient == 0.0


def test_random_graph_matches_dense_reference():
    graph = powerlaw_matrix(200, 5.0, seed=3)
    adjacency = normalize_adjacency(graph)
    result = count_triangles(adjacency, assume_normalized=True)
    assert result.triangles == _dense_triangle_count(adjacency.to_dense())


def test_directed_weighted_input_is_normalised():
    dense = np.array([
        [0.0, 2.5, 0.0],
        [0.0, 0.0, -1.0],
        [4.0, 0.0, 3.0],   # self loop must be ignored
    ])
    result = count_triangles(CSRMatrix.from_dense(dense))
    assert result.triangles == 1


def test_spgemm_statistics_are_reported():
    graph = powerlaw_matrix(100, 4.0, seed=9)
    result = count_triangles(graph)
    assert result.spgemm_stats.multiplications > 0
    assert result.spgemm_stats.dram_bytes > 0


def test_non_square_rejected():
    with pytest.raises(ValueError, match="square"):
        count_triangles(CSRMatrix.empty((3, 4)))


def test_count_is_exact_on_a_large_dense_cluster_graph():
    # Many overlapping cliques: the per-node sums are large, so a float
    # accumulation path (round(sum/3)) would be exposed to drift; the
    # integer path must match the dense reference exactly.
    rng = np.random.default_rng(42)
    dense = np.zeros((150, 150))
    for _ in range(30):
        members = rng.choice(150, size=8, replace=False)
        dense[np.ix_(members, members)] = 1.0
    np.fill_diagonal(dense, 0.0)
    graph = CSRMatrix.from_dense(dense)
    result = count_triangles(graph, assume_normalized=True)
    assert result.triangles == _dense_triangle_count(dense)
    # Per-node counts are integral halves (each triangle is seen twice).
    np.testing.assert_array_equal(result.per_node_triangles,
                                  np.rint(result.per_node_triangles))


def test_runner_mode_memoises_the_spgemm():
    from repro.experiments.runner import ExperimentRunner

    graph = powerlaw_matrix(100, 4.0, seed=9)
    runner = ExperimentRunner()
    first = count_triangles(graph, runner=runner)
    second = count_triangles(graph, runner=runner)
    assert (runner.cache_hits, runner.cache_misses) == (1, 1)
    assert first.triangles == second.triangles
    assert first.spgemm_stats == second.spgemm_stats


def test_workload_record_is_attached():
    result = count_triangles(_triangle_graph())
    assert result.workload is not None
    assert result.workload.workload_id == "triangles"
    assert [s.kind for s in result.workload.stages] == [
        "simple_graph", "spgemm", "mask"]
