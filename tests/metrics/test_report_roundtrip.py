"""Property tests: CostReport JSON serialisation is lossless.

The experiment runner memoises every point through the
``to_dict → json → from_dict`` round trip, so it must be exact for any
representable report — including zero-traffic and empty-matrix executions.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SpArchConfig
from repro.engines.registry import create_engine, list_engines
from repro.engines.sparch import SpArchEngine
from repro.formats.csr import CSRMatrix
from repro.metrics.report import SCHEMA_VERSION, CostReport

#: Finite, JSON-exact floats (json round-trips any finite double exactly).
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
nonneg_ints = st.integers(min_value=0, max_value=2**53)
names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                           whitelist_characters="_-"),
    min_size=1, max_size=16)


@st.composite
def cost_reports(draw) -> CostReport:
    return CostReport(
        engine=draw(names),
        kind=draw(st.sampled_from(("simulation", "baseline", "aggregate"))),
        backend=draw(st.sampled_from(("", "scalar", "vectorized"))),
        cycles=draw(nonneg_ints),
        runtime_seconds=draw(finite_floats),
        multiplications=draw(nonneg_ints),
        additions=draw(nonneg_ints),
        bookkeeping_ops=draw(nonneg_ints),
        comparator_ops=draw(nonneg_ints),
        output_nnz=draw(nonneg_ints),
        traffic=draw(st.dictionaries(names, nonneg_ints, max_size=6)),
        energy=draw(st.dictionaries(names, finite_floats, max_size=6)),
        energy_joules=draw(finite_floats),
        clock_hz=draw(finite_floats),
        peak_bandwidth_bytes_per_cycle=draw(finite_floats),
        extras=draw(st.dictionaries(names, finite_floats, max_size=6)),
        detail=draw(st.dictionaries(names, finite_floats, max_size=4)),
    )


class TestRoundTripProperty:
    @given(report=cost_reports())
    @settings(max_examples=120)
    def test_json_round_trip_is_identity(self, report):
        assert CostReport.from_json(report.to_json()) == report

    @given(report=cost_reports())
    @settings(max_examples=60)
    def test_dict_round_trip_through_json_dump(self, report):
        # The runner's exact disk path: to_dict → json.dumps → loads → from_dict.
        replayed = CostReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert replayed == report

    def test_zero_traffic_report_round_trips(self):
        report = CostReport(engine="sparch", traffic={}, energy={})
        replayed = CostReport.from_json(report.to_json())
        assert replayed == report
        assert replayed.dram_bytes == 0
        assert replayed.operational_intensity == 0.0
        assert replayed.bandwidth_utilization == 0.0


class TestIntegerCounterExactness:
    """Satellite regression: op counters round-trip as exact ints.  An
    earlier revision floated them in ``summary()``, which silently loses
    precision past 2**53 — a magnitude long corpus-sweep aggregates reach.
    """

    BIG = 2**53 + 1  # the first integer a float64 cannot represent

    def _big_report(self) -> CostReport:
        return CostReport(engine="sparch", cycles=self.BIG,
                          multiplications=self.BIG, additions=self.BIG + 2,
                          bookkeeping_ops=self.BIG, comparator_ops=self.BIG,
                          output_nnz=self.BIG, traffic={"total": self.BIG})

    def test_summary_keeps_counters_as_exact_ints(self):
        summary = self._big_report().summary()
        for key in ("cycles", "multiplications", "additions", "output_nnz",
                    "dram_bytes"):
            assert isinstance(summary[key], int), key
        assert summary["additions"] == self.BIG + 2  # float would collapse
        assert summary["additions"] != float(self.BIG + 2)

    def test_json_round_trip_is_exact_past_2_53(self):
        report = self._big_report()
        replayed = CostReport.from_json(report.to_json())
        assert replayed == report
        assert replayed.additions == self.BIG + 2
        assert isinstance(replayed.additions, int)
        assert replayed.traffic["total"] == self.BIG

    def test_to_dict_emits_python_ints(self):
        import numpy as np

        # Engines compute closed-form counters in numpy; the serialised
        # payload must still be plain JSON-compatible ints.
        report = CostReport(engine="sparch",
                            multiplications=np.int64(7),
                            traffic={"total": np.int64(12)})
        payload = report.to_dict()
        assert type(payload["multiplications"]) is int
        assert type(payload["traffic"]["total"]) is int
        json.dumps(payload)  # must not raise on numpy scalars

    def test_schema_version_was_bumped_for_the_int_layout(self):
        # v3 introduced the exact-int contract; stale v2 cache entries must
        # rotate (from_dict refuses them) instead of deserialising.
        assert SCHEMA_VERSION >= 3


class TestEngineProducedReports:
    """Round trips of real reports, including the empty-matrix edge case."""

    @pytest.mark.parametrize("engine_name", list_engines())
    def test_empty_matrix_report_round_trips(self, engine_name):
        empty = CSRMatrix.empty((8, 8))
        run = create_engine(engine_name).run(empty)
        report = run.report
        assert report.output_nnz == 0
        assert report.multiplications == 0
        assert CostReport.from_json(report.to_json()) == report

    @pytest.mark.parametrize("engine_name", list_engines())
    def test_real_report_round_trips(self, engine_name, small_matrix):
        report = create_engine(engine_name).run(small_matrix).report
        assert CostReport.from_json(report.to_json()) == report

    def test_simulation_detail_rebuilds_native_stats(self, small_matrix):
        from repro.core.accelerator import SpArch

        config = SpArchConfig()
        native = SpArch(config).multiply(small_matrix, small_matrix).stats
        report = CostReport.from_stats(native, config=config)
        replayed = CostReport.from_json(report.to_json())
        assert replayed.to_stats() == native

    def test_schema_mismatch_is_rejected_not_coerced(self):
        payload = CostReport(engine="sparch").to_dict()
        payload["schema_version"] = SCHEMA_VERSION - 1
        with pytest.raises(ValueError, match="schema mismatch"):
            CostReport.from_dict(payload)

    def test_wrong_kind_conversions_fail_loudly(self):
        report = CostReport(engine="sparch", kind="aggregate")
        with pytest.raises(ValueError):
            report.to_stats()
        with pytest.raises(ValueError):
            report.to_baseline_summary()

    def test_sparch_engine_report_rebuilds_stats(self, small_matrix):
        engine = SpArchEngine()
        run = engine.run(small_matrix)
        stats = run.report.to_stats()
        assert stats.multiplications == run.report.multiplications
        assert stats.output_nnz == run.matrix.nnz == run.report.output_nnz
