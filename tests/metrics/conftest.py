"""Fixtures for the metrics/engines layer tests."""

from __future__ import annotations

import pytest

from repro.matrices.synthetic import powerlaw_matrix


@pytest.fixture(scope="session")
def small_matrix():
    """One small power-law matrix shared by the layer tests."""
    return powerlaw_matrix(72, 4.0, seed=9)
