"""Tests for the experiment command-line runner and the public import surface."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import build_parser, main


class TestCli:
    def test_list_option_prints_every_experiment(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("fig08", "fig11", "table2", "dram", "scheduler",
                              "workloads", "sweep"):
            assert experiment_id in output

    def test_no_arguments_behaves_like_list(self, capsys):
        assert main([]) == 0
        assert "fig11" in capsys.readouterr().out

    def test_running_one_experiment(self, capsys):
        assert main(["fig08"]) == 0
        output = capsys.readouterr().out
        assert "354" in output and "228" in output

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["not-an-experiment"])

    def test_max_rows_override_is_forwarded(self, capsys):
        assert main(["dram", "--max-rows", "300"]) == 0
        assert "Geo Mean" in capsys.readouterr().out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig11", "fig12"])
        assert args.experiments == ["fig11", "fig12"]
        assert args.max_rows is None
        assert args.json is None
        assert not args.list

    def test_reports_flag_prints_the_unified_cost_table(self, capsys):
        assert main(["table3", "--max-rows", "150", "--reports"]) == 0
        output = capsys.readouterr().out
        assert "cost reports" in output
        # The unified renderer covers both kinds in one table.
        assert "SpArch[" in output and "OuterSPACE[" in output

    def test_json_output_is_written(self, capsys, tmp_path):
        import json

        path = tmp_path / "results.json"
        assert main(["fig08", "--json", str(path)]) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert set(payload) == {"fig08"}
        assert payload["fig08"]["metrics"]
        assert payload["fig08"]["table"]["columns"]


class TestPublicImportSurface:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
        assert repro.__version__

    @pytest.mark.parametrize("module_name", [
        "repro.formats", "repro.matrices", "repro.hardware", "repro.memory",
        "repro.core", "repro.baselines", "repro.analysis", "repro.apps",
        "repro.experiments", "repro.utils", "repro.workloads",
        "repro.metrics", "repro.engines", "repro.corpus", "repro.sweeps",
    ])
    def test_subpackage_all_resolves(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert getattr(module, name) is not None
