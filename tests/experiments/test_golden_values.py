"""Golden regression tests: pin headline experiment numbers to committed JSON.

The simulation is deterministic (seeded generators, fixed reduction orders),
so the headline metrics of the paper experiments are exactly reproducible.
These tests compare a small fast workload per experiment against
``golden_values.json`` with a tight relative tolerance, so refactors of the
engines, the runner or the models cannot silently drift the reproduced
results (the engine-equivalence harness proves the two backends agree with
each other; this file proves they both still agree with *history*).

Regenerating the goldens (only after an intentional modelling change):

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.experiments import fig11_speedup, fig16_breakdown, table2_comparison
    golden = json.load(open("tests/experiments/golden_values.json"))
    for key, module in [("fig11", fig11_speedup), ("fig16", fig16_breakdown),
                        ("table2", table2_comparison)]:
        entry = golden[key]
        result = module.run(max_rows=entry["max_rows"], names=entry["names"])
        entry["metrics"] = result.metrics
    json.dump(golden, open("tests/experiments/golden_values.json", "w"),
              indent=2, sort_keys=True)
    PY
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import fig11_speedup, fig16_breakdown, table2_comparison

GOLDEN_PATH = Path(__file__).parent / "golden_values.json"

#: Relative tolerance: tight enough to catch any modelling drift, loose
#: enough to survive benign floating-point library differences.
RELATIVE_TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def _assert_metrics_match(measured: dict[str, float],
                          expected: dict[str, float]) -> None:
    missing = set(expected) - set(measured)
    assert not missing, f"metrics disappeared: {sorted(missing)}"
    for key, value in expected.items():
        assert measured[key] == pytest.approx(value, rel=RELATIVE_TOLERANCE), \
            f"golden drift in {key!r}: {measured[key]!r} != {value!r}"


def test_fig11_geomean_speedups(golden):
    entry = golden["fig11"]
    result = fig11_speedup.run(max_rows=entry["max_rows"], names=entry["names"])
    _assert_metrics_match(result.metrics, entry["metrics"])


def test_fig16_breakdown_values_and_ordering(golden):
    entry = golden["fig16"]
    result = fig16_breakdown.run(max_rows=entry["max_rows"],
                                 names=entry["names"])
    _assert_metrics_match(result.metrics, entry["metrics"])
    # The qualitative shape of the Figure 16 walk must also hold: every
    # cumulative technique after pipelining improves on the previous step,
    # and the full design beats the OuterSPACE baseline.
    metrics = result.metrics
    assert metrics["speedup_vs_prev[+ Matrix Condensing]"] > 1.0
    assert metrics["speedup_vs_prev[+ Huffman Tree Scheduler]"] >= 1.0
    assert metrics["speedup_vs_prev[+ Row Prefetcher]"] > 1.0
    assert metrics["overall_speedup_vs_outerspace"] > 1.0
    # Paper-scale projection: pipelined-only is a large slowdown, condensing
    # recovers it (the Figure 2 crossover).
    assert metrics["projected_slowdown[pipelined_only]"] > 1.0
    assert metrics["projected_speedup[condensing]"] > 1.0


def test_table2_comparison_values(golden):
    entry = golden["table2"]
    result = table2_comparison.run(max_rows=entry["max_rows"],
                                   names=entry["names"])
    _assert_metrics_match(result.metrics, entry["metrics"])


def test_goldens_are_engine_independent(golden):
    """The pinned numbers hold on the scalar reference engine too."""
    from repro.experiments.runner import ExperimentRunner

    entry = golden["fig11"]
    runner = ExperimentRunner(engine="scalar")
    result = fig11_speedup.run(max_rows=entry["max_rows"],
                               names=entry["names"], runner=runner)
    _assert_metrics_match(result.metrics, entry["metrics"])
