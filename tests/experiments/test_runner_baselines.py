"""Baseline memoisation and engine keying in the ExperimentRunner."""

from __future__ import annotations

import pytest

from repro.baselines import (
    ArmadilloSpGEMM,
    BaselineSummary,
    GustavsonSpGEMM,
    HashSpGEMM,
)
from repro.experiments.runner import (
    ExperimentRunner,
    baseline_fingerprint,
    baseline_simulation_key,
)
from repro.matrices.synthetic import powerlaw_matrix, random_matrix


@pytest.fixture()
def matrix():
    return powerlaw_matrix(80, 4.0, seed=11)


def test_run_baseline_memoises(matrix):
    runner = ExperimentRunner()
    first = runner.run_baseline(GustavsonSpGEMM(), matrix)
    assert (runner.cache_hits, runner.cache_misses) == (0, 1)
    second = runner.run_baseline(GustavsonSpGEMM(), matrix)
    assert (runner.cache_hits, runner.cache_misses) == (1, 1)
    assert first == second
    assert isinstance(first, BaselineSummary)
    assert first.baseline == "MKL"
    assert first.runtime_seconds > 0
    assert first.flops == first.multiplications + first.additions


def test_summary_roundtrips_through_disk_cache(matrix, tmp_path):
    writer = ExperimentRunner(cache_dir=tmp_path)
    summary = writer.run_baseline(HashSpGEMM(), matrix)
    assert list((tmp_path / "baseline").glob("*.json"))

    reader = ExperimentRunner(cache_dir=tmp_path)
    replayed = reader.run_baseline(HashSpGEMM(), matrix)
    assert (reader.cache_hits, reader.cache_misses) == (1, 0)
    assert replayed == summary
    assert replayed.extras == summary.extras


def test_cache_shared_across_engines_unless_forced(matrix):
    # No forced engine: scalar- and vectorized-constructed baselines share
    # one cache entry (their counters are proven identical).
    runner = ExperimentRunner()
    runner.run_baseline(GustavsonSpGEMM(engine="vectorized"), matrix)
    runner.run_baseline(GustavsonSpGEMM(engine="scalar"), matrix)
    assert (runner.cache_hits, runner.cache_misses) == (1, 1)

    # Forced engines re-key per backend, so the cross-check really runs.
    scalar_runner = ExperimentRunner(engine="scalar")
    vector_runner = ExperimentRunner(engine="vectorized")
    scalar_summary = scalar_runner.run_baseline(GustavsonSpGEMM(), matrix)
    vector_summary = vector_runner.run_baseline(GustavsonSpGEMM(), matrix)
    assert scalar_summary.engine == "scalar"
    assert vector_summary.engine == "vectorized"
    key_scalar = baseline_simulation_key(
        GustavsonSpGEMM(engine="scalar"), matrix, matrix, include_engine=True)
    key_vector = baseline_simulation_key(
        GustavsonSpGEMM(engine="vectorized"), matrix, matrix,
        include_engine=True)
    assert key_scalar != key_vector
    # Same model, same matrix: everything but the backend label agrees.
    assert scalar_summary.runtime_seconds == vector_summary.runtime_seconds
    assert scalar_summary.extras == vector_summary.extras


def test_forced_engine_overrides_baseline_construction(matrix):
    runner = ExperimentRunner(engine="scalar")
    summary = runner.run_baseline(GustavsonSpGEMM(engine="vectorized"), matrix)
    assert summary.engine == "scalar"


def test_fingerprint_covers_model_parameters(matrix):
    default = baseline_fingerprint(GustavsonSpGEMM())
    thrashing = baseline_fingerprint(GustavsonSpGEMM(cache_bytes=64.0))
    assert default != thrashing
    other_algorithm = baseline_fingerprint(ArmadilloSpGEMM())
    assert default != other_algorithm
    # Engine excluded by default, included when asked.
    assert baseline_fingerprint(GustavsonSpGEMM(engine="scalar")) == default
    assert (baseline_fingerprint(GustavsonSpGEMM(engine="scalar"),
                                 include_engine=True)
            != baseline_fingerprint(GustavsonSpGEMM(engine="vectorized"),
                                    include_engine=True))


def test_run_baseline_many_preserves_order_and_dedupes():
    matrices = [random_matrix(30, 30, 60, seed=s) for s in (1, 2)]
    tasks = [(GustavsonSpGEMM(), matrices[0]),
             (ArmadilloSpGEMM(), matrices[0]),
             (GustavsonSpGEMM(), matrices[1]),
             (GustavsonSpGEMM(), matrices[0])]  # duplicate of task 0
    runner = ExperimentRunner()
    summaries = runner.run_baseline_many(tasks)
    assert [s.baseline for s in summaries] == ["MKL", "Armadillo", "MKL", "MKL"]
    assert summaries[0] == summaries[3]
    # Three distinct points computed; the duplicate replayed from cache.
    assert runner.cache_misses == 3
    assert runner.cache_hits == 1


def test_plain_spgemm_baseline_runs_through_runner(matrix):
    """A custom baseline built on the abstract base (no engine split) must
    work through run_baseline, including under a forced engine."""
    from repro.baselines import SpGEMMBaseline
    from repro.baselines.reference import scipy_spgemm

    class TrivialBaseline(SpGEMMBaseline):
        name = "Trivial"

        def multiply(self, matrix_a, matrix_b):
            from repro.baselines.base import BaselineResult

            result = scipy_spgemm(matrix_a, matrix_b)
            return BaselineResult(
                matrix=result, runtime_seconds=1.0, traffic_bytes=1,
                multiplications=1, additions=0, bookkeeping_ops=0,
                energy_joules=1.0, platform="trivial")

    for runner in (ExperimentRunner(), ExperimentRunner(engine="scalar")):
        summary = runner.run_baseline(TrivialBaseline(), matrix)
        assert summary.baseline == "Trivial"
        assert summary.engine == "scalar"
        assert summary.result_nnz > 0


def test_rectangular_baseline_point():
    from repro.matrices.synthetic import bipartite_matrix

    a = bipartite_matrix(20, 30, 3.0, seed=5)
    b = bipartite_matrix(30, 10, 2.0, seed=6)
    runner = ExperimentRunner()
    summary = runner.run_baseline(GustavsonSpGEMM(), a, matrix_b=b)
    direct = GustavsonSpGEMM().multiply(a, b)
    assert summary.runtime_seconds == direct.runtime_seconds
    assert summary.result_nnz == direct.nnz
