"""The runner's memo under concurrent threaded callers (satellite 1/2).

The serving layer calls one ``ExperimentRunner`` from many client
threads; these tests pin the promoted store's guarantees at the runner
level — no torn counters, no duplicate executions for one key, and a
``stats()`` snapshot that adds up.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import repro.experiments.runner as runner_mod
from repro.experiments.runner import ExperimentRunner
from repro.matrices.synthetic import random_matrix


def test_concurrent_run_engine_on_one_key_executes_once(monkeypatch):
    executions = []
    real_task = runner_mod._engine_task

    def counting_task(task):
        executions.append(threading.get_ident())
        return real_task(task)

    monkeypatch.setattr(runner_mod, "_engine_task", counting_task)
    runner = ExperimentRunner()
    matrix = random_matrix(96, 96, 600, seed=21)
    threads = 12
    barrier = threading.Barrier(threads)

    def call(_):
        barrier.wait(10)
        return runner.run_engine("heap", matrix)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        reports = list(pool.map(call, range(threads)))

    assert len(executions) == 1  # one engine execution across 12 threads
    assert all(report.to_dict() == reports[0].to_dict()
               for report in reports)
    assert runner.cache_misses == 1
    assert runner.cache_hits == threads - 1


def test_concurrent_distinct_keys_stay_consistent():
    runner = ExperimentRunner()
    matrices = [random_matrix(64, 64, 300, seed=seed) for seed in range(4)]
    calls_per_matrix = 8

    def call(matrix):
        return runner.run_engine("heap", matrix)

    with ThreadPoolExecutor(max_workers=16) as pool:
        futures = [pool.submit(call, matrix)
                   for matrix in matrices for _ in range(calls_per_matrix)]
        for future in futures:
            future.result(timeout=120)

    stats = runner.stats()
    total = len(matrices) * calls_per_matrix
    assert stats["misses"] == len(matrices)
    assert stats["hits"] + stats["coalesced"] == total - len(matrices)
    assert stats["entries"] == len(matrices)
    assert stats["inflight"] == 0


def test_stats_exposes_the_store_counters():
    runner = ExperimentRunner()
    matrix = random_matrix(64, 64, 300, seed=3)
    runner.run_engine("heap", matrix)
    runner.run_engine("heap", matrix)
    stats = runner.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["hit_rate"] == 0.5
    assert stats["compute_seconds"] > 0.0
    # The legacy properties remain the same counters.
    assert runner.cache_hits == 1
    assert runner.cache_misses == 1


def test_threaded_callers_share_the_disk_tier(tmp_path):
    matrix = random_matrix(64, 64, 300, seed=7)
    first = ExperimentRunner(cache_dir=tmp_path)
    first.run_engine("heap", matrix)
    second = ExperimentRunner(cache_dir=tmp_path)

    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = [pool.submit(second.run_engine, "heap", matrix)
                   for _ in range(8)]
        for future in futures:
            future.result(timeout=120)

    stats = second.stats()
    assert stats["misses"] == 0  # all answered from disk/memory
    assert stats["hits"] + stats["coalesced"] == 8
