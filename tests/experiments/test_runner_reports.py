"""The runner's unified CostReport memo and its schema-versioned keys."""

from __future__ import annotations

import json

import pytest

from repro.experiments import runner as runner_module
from repro.experiments.runner import (
    ExperimentRunner,
    baseline_fingerprint,
    baseline_simulation_key,
    config_fingerprint,
    simulation_key,
)
from repro.baselines import GustavsonSpGEMM
from repro.core.config import SpArchConfig
from repro.matrices.synthetic import powerlaw_matrix
from repro.metrics.report import SCHEMA_VERSION, CostReport


@pytest.fixture()
def matrix():
    return powerlaw_matrix(70, 4.0, seed=41)


class TestSchemaVersionedFingerprint:
    """Satellite: a schema bump rotates every cache key, so pre-refactor
    entries invalidate cleanly instead of deserialising into the new
    CostReport shape."""

    def test_keys_rotate_when_the_schema_version_bumps(self, matrix,
                                                       monkeypatch):
        config = SpArchConfig()
        baseline = GustavsonSpGEMM()
        keys_now = (
            config_fingerprint(config),
            simulation_key(matrix, matrix, config),
            baseline_fingerprint(baseline),
            baseline_simulation_key(baseline, matrix, matrix),
        )
        monkeypatch.setattr(runner_module, "SCHEMA_VERSION",
                            SCHEMA_VERSION + 1)
        keys_bumped = (
            config_fingerprint(config),
            simulation_key(matrix, matrix, config),
            baseline_fingerprint(baseline),
            baseline_simulation_key(baseline, matrix, matrix),
        )
        for now, bumped in zip(keys_now, keys_bumped):
            assert now != bumped

    def test_stale_schema_entries_recompute_instead_of_deserialising(
            self, matrix, tmp_path, monkeypatch):
        # Warm a disk cache under a *different* (older) schema version.
        monkeypatch.setattr(runner_module, "SCHEMA_VERSION",
                            SCHEMA_VERSION - 1)
        old = ExperimentRunner(cache_dir=tmp_path)
        old.simulate(matrix)
        assert old.cache_misses == 1
        monkeypatch.undo()

        # A current-schema runner over the same directory must miss (the
        # old entry's key no longer matches) and recompute cleanly.
        new = ExperimentRunner(cache_dir=tmp_path)
        new.simulate(matrix)
        assert (new.cache_hits, new.cache_misses) == (0, 1)

    def test_disk_payloads_carry_the_schema_version(self, matrix, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.simulate(matrix)
        runner.run_baseline(GustavsonSpGEMM(), matrix)
        for kind in ("sim", "baseline"):
            entries = list((tmp_path / kind).glob("*.json"))
            assert entries, kind
            payload = json.loads(entries[0].read_text())
            assert payload["schema_version"] == SCHEMA_VERSION


class TestSelfProductCacheIdentity:
    """Satellite regression: self-products are keyed by fingerprint
    equality, so ``simulate(A)`` and an equal-content *copy* of A passed as
    ``matrix_b`` share one cache entry (an earlier revision hashed
    identity-based self-products as a ``b"self"`` sentinel, fragmenting the
    memo)."""

    @staticmethod
    def _copy_of(matrix):
        from repro.formats.csr import CSRMatrix

        return CSRMatrix(matrix.indptr.copy(), matrix.indices.copy(),
                         matrix.data.copy(), matrix.shape)

    def test_equal_content_copy_shares_the_key(self, matrix):
        from repro.engines.sparch import SpArchEngine
        from repro.experiments.runner import engine_point_key

        engine = SpArchEngine()
        self_key = engine_point_key(engine, matrix, None)
        assert engine_point_key(engine, matrix, matrix) == self_key
        assert engine_point_key(engine, matrix, self._copy_of(matrix)) == \
            self_key

    def test_distinct_b_still_gets_its_own_key(self, matrix):
        from repro.engines.sparch import SpArchEngine
        from repro.experiments.runner import engine_point_key
        from repro.matrices.synthetic import powerlaw_matrix

        other = powerlaw_matrix(matrix.shape[0], 4.0, seed=99)
        engine = SpArchEngine()
        assert engine_point_key(engine, matrix, other) != \
            engine_point_key(engine, matrix, None)

    def test_simulate_then_copy_product_hits_the_memo(self, matrix):
        from repro.engines.sparch import SpArchEngine

        runner = ExperimentRunner()
        native = runner.simulate(matrix)
        report = runner.run_engine(SpArchEngine(), matrix,
                                   matrix_b=self._copy_of(matrix))
        assert (runner.cache_hits, runner.cache_misses) == (1, 1)
        assert report.to_stats() == native

    def test_precomputed_fingerprints_reproduce_the_keys(self, matrix):
        """The dematerialised-operand path: keys computed from cached
        fingerprints (matrix_a=None, explicit fingerprint_b) must equal
        the keys computed from the matrices themselves."""
        from repro.engines.sparch import SpArchEngine
        from repro.experiments.runner import (engine_point_key,
                                              matrix_fingerprint)
        from repro.matrices.synthetic import powerlaw_matrix

        other = powerlaw_matrix(matrix.shape[0], 4.0, seed=99)
        engine = SpArchEngine()
        fp_a, fp_b = matrix_fingerprint(matrix), matrix_fingerprint(other)
        assert engine_point_key(engine, None, None, fingerprint_a=fp_a) == \
            engine_point_key(engine, matrix, None)
        # An explicit fingerprint_b wins even without a materialised B —
        # the A·B key must never silently alias to the A·A self-product.
        ab_key = engine_point_key(engine, None, None, fingerprint_a=fp_a,
                                  fingerprint_b=fp_b)
        assert ab_key == engine_point_key(engine, matrix, other)
        assert ab_key != engine_point_key(engine, matrix, None)
        with pytest.raises(ValueError, match="only with fingerprint_a"):
            engine_point_key(engine, None, None)

    def test_point_key_matches_the_execution_path(self, matrix):
        """ExperimentRunner.point_key (what sweep stores record) is the key
        run_engine memoises under, forced backend included."""
        for runner in (ExperimentRunner(), ExperimentRunner(engine="scalar")):
            key = runner.point_key("mkl", matrix)
            runner.run_engine("mkl", matrix)
            assert key in runner._memory_cache
        unforced = ExperimentRunner().point_key("mkl", matrix)
        forced = ExperimentRunner(engine="scalar").point_key("mkl", matrix)
        assert unforced != forced  # forced backends re-key, as documented


class TestUnifiedReportMemo:
    def test_run_engine_returns_reports_from_both_cache_tiers(self, matrix,
                                                              tmp_path):
        writer = ExperimentRunner(cache_dir=tmp_path)
        fresh = writer.run_engine("cusparse", matrix)
        assert isinstance(fresh, CostReport)
        assert fresh.kind == "baseline"

        reader = ExperimentRunner(cache_dir=tmp_path)
        replayed = reader.run_engine("cusparse", matrix)
        assert (reader.cache_hits, reader.cache_misses) == (1, 0)
        assert replayed == fresh

    def test_run_engine_many_accepts_precomputed_keys(self, matrix,
                                                      monkeypatch):
        """Grid callers pass point_key results through run_engine_many to
        skip re-hashing each operand's CSR arrays per task."""
        runner = ExperimentRunner()
        reference = runner.run_engine_many([("sparch", matrix),
                                            ("mkl", matrix)])
        keys = [runner.point_key("sparch", matrix),
                runner.point_key("mkl", matrix)]
        calls = []
        monkeypatch.setattr(
            runner_module, "matrix_fingerprint",
            lambda m: calls.append(1) or "unused")
        fresh = ExperimentRunner()
        fresh._memory_cache = runner._memory_cache  # share the warm memo
        assert fresh.run_engine_many([("sparch", matrix), ("mkl", matrix)],
                                     keys=keys) == reference
        assert not calls  # no operand was re-hashed
        with pytest.raises(ValueError, match="does not match"):
            fresh.run_engine_many([("sparch", matrix)], keys=keys)

    def test_run_engine_many_mixes_kinds_and_preserves_order(self, matrix):
        runner = ExperimentRunner()
        reports = runner.run_engine_many(
            [("sparch", matrix), ("mkl", matrix), ("sparch", matrix)])
        assert [r.kind for r in reports] == ["simulation", "baseline",
                                            "simulation"]
        assert reports[0] == reports[2]
        # Two distinct points; the duplicate replayed from the memo.
        assert (runner.cache_hits, runner.cache_misses) == (1, 2)

    def test_custom_engine_is_cacheable_through_its_cache_fields(self, matrix):
        """Any Engine implementation memoises via its own cache_fields()."""
        from repro.engines.base import Engine, EngineRun
        from repro.metrics.report import CostReport

        class ConstantEngine(Engine):
            name = "constant"
            display_name = "Constant"
            kind = "baseline"

            def run(self, matrix_a, matrix_b=None):
                return EngineRun(matrix=matrix_a, report=CostReport(
                    engine=self.name, kind="baseline",
                    runtime_seconds=1.0, output_nnz=matrix_a.nnz,
                    detail={"baseline": "Constant", "engine": "scalar",
                            "platform": "test", "runtime_seconds": 1.0,
                            "traffic_bytes": 0, "multiplications": 0,
                            "additions": 0, "bookkeeping_ops": 0,
                            "energy_joules": 0.0, "result_nnz": matrix_a.nnz,
                            "extras": {}}))

            def cache_fields(self):
                return {"engine": self.name}

            def using_backend(self, backend):
                return self

            @property
            def backend(self):
                return "scalar"

        runner = ExperimentRunner()
        first = runner.run_engine(ConstantEngine(), matrix)
        second = runner.run_engine(ConstantEngine(), matrix)
        assert (runner.cache_hits, runner.cache_misses) == (1, 1)
        assert first == second

    def test_same_named_baseline_variants_stay_distinct_in_comparisons(
            self, matrix):
        """Two parameterisations of one system must not collapse to one
        report in the fig11/fig12 gathering helper."""
        import dataclasses

        from repro.baselines import GustavsonSpGEMM
        from repro.baselines.platforms import INTEL_CPU
        from repro.experiments.common import gather_comparison_reports

        slow_platform = dataclasses.replace(INTEL_CPU,
                                            fixed_overhead_seconds=2e-3)
        fast = GustavsonSpGEMM()
        slow = GustavsonSpGEMM(platform=slow_platform)
        _, baseline_reports = gather_comparison_reports(
            {"m": (matrix, None)}, [fast, slow], runner=ExperimentRunner())
        assert (baseline_reports[("m", 0)].runtime_seconds
                < baseline_reports[("m", 1)].runtime_seconds)

    def test_custom_energy_model_does_not_poison_the_shared_cache(self, matrix):
        """Engines differing only in energy constants get distinct entries.

        Regression: the memoised report bakes per-module energy in, so a
        custom-constants engine must never replay a default-constants
        entry (or vice versa) from the shared memo.
        """
        from repro.analysis.energy import EnergyConstants, EnergyModel
        from repro.engines.sparch import SpArchEngine

        zero_dram = EnergyModel(constants=EnergyConstants(dram_byte=0.0))
        runner = ExperimentRunner()
        default_report = runner.run_engine(SpArchEngine(), matrix)
        custom_report = runner.run_engine(SpArchEngine(energy_model=zero_dram),
                                          matrix)
        assert runner.cache_misses == 2  # two points, no collision
        assert custom_report.energy["HBM"] == 0.0
        assert default_report.energy["HBM"] > 0.0
        assert custom_report.energy_joules < default_report.energy_joules
        # Direct (uncached) execution agrees with the memoised report.
        direct = SpArchEngine(energy_model=zero_dram).run(matrix).report
        assert direct.energy_joules == custom_report.energy_joules

    def test_forced_backend_rekeys_and_relabels(self, matrix):
        forced = ExperimentRunner(engine="scalar")
        report = forced.run_engine("mkl", matrix)
        assert report.backend == "scalar"
        shared = ExperimentRunner()
        assert shared.run_engine("mkl", matrix).backend == "vectorized"
