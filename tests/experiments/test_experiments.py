"""Smoke and sanity tests for every experiment harness.

Each experiment runs on a reduced workload (few matrices, small dimension)
and is checked for structural soundness plus the paper's qualitative
claims: who wins, and in roughly which regime the headline numbers fall.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    condensing_stats,
    dram_access,
    fig08_huffman,
    fig11_speedup,
    fig12_energy,
    fig13_breakdown,
    fig14_rmat,
    fig15_roofline,
    fig16_breakdown,
    fig17_dse,
    fig18_merge_tree,
    scheduler_ablation,
    table2_comparison,
    table3_energy,
)
from repro.experiments.common import (
    ExperimentResult,
    load_paper_scale_suite,
    paper_scale_config,
    scale_buffer_capacities,
    scaled_config,
    small_suite,
)
from repro.core.config import SpArchConfig
from repro.experiments.registry import get_experiment, list_experiments

#: Reduced workload shared by the suite-based experiments.
NAMES = ["wiki-Vote", "facebook", "poisson3Da"]
MAX_ROWS = 400


def _check_result(result: ExperimentResult, experiment_id: str) -> None:
    assert result.experiment_id == experiment_id
    assert result.table.rows
    assert result.metrics
    rendered = result.render()
    assert result.title
    assert isinstance(rendered, str) and rendered


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = list_experiments()
        assert ids == ["fig08", "table2", "table3", "fig11", "fig12", "fig13",
                       "fig14", "fig15", "fig16", "fig17", "fig18", "dram",
                       "condense", "scheduler", "workloads", "sweep"]

    def test_lookup_and_error(self):
        entry = get_experiment("fig11")
        assert callable(entry.run)
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")


class TestFig08:
    def test_paper_totals_reproduced_exactly(self):
        result = fig08_huffman.run()
        _check_result(result, "fig08")
        assert result.metrics["total_weight[2-way sequential]"] == 365.0
        assert result.metrics["total_weight[2-way huffman]"] == 354.0
        assert result.metrics["total_weight[4-way huffman]"] == 228.0

    def test_custom_weights(self):
        result = fig08_huffman.run(weights=[4.0, 3.0, 2.0, 1.0])
        assert result.metrics["total_weight[2-way huffman]"] >= 10.0


class TestSpeedupAndEnergy:
    @pytest.fixture(scope="class")
    def fig11_result(self):
        return fig11_speedup.run(max_rows=MAX_ROWS, names=NAMES)

    def test_fig11_sparch_wins_everywhere(self, fig11_result):
        _check_result(fig11_result, "fig11")
        for key, value in fig11_result.metrics.items():
            assert value > 1.0, f"SpArch should beat {key}"

    def test_fig11_ordering_matches_paper(self, fig11_result):
        metrics = fig11_result.metrics
        assert metrics["geomean_speedup[OuterSPACE]"] < metrics[
            "geomean_speedup[MKL]"]
        assert metrics["geomean_speedup[Armadillo]"] > 100.0
        assert metrics["geomean_speedup[OuterSPACE]"] < 20.0

    def test_fig12_energy_savings_positive(self):
        result = fig12_energy.run(max_rows=MAX_ROWS, names=NAMES)
        _check_result(result, "fig12")
        assert all(value > 1.0 for value in result.metrics.values())
        assert result.metrics["geomean_energy_saving[OuterSPACE]"] < (
            result.metrics["geomean_energy_saving[cuSPARSE]"])


class TestHardwareComparisons:
    def test_table2(self):
        result = table2_comparison.run(max_rows=MAX_ROWS, names=NAMES)
        _check_result(result, "table2")
        assert result.metrics["area_mm2[SpArch]"] < result.metrics[
            "area_mm2[OuterSPACE]"]
        assert result.metrics["power_w[SpArch]"] < result.metrics[
            "power_w[OuterSPACE]"]
        assert 0.0 < result.metrics["bandwidth_utilization[SpArch]"] <= 1.0

    def test_table3(self):
        result = table3_energy.run(max_rows=MAX_ROWS, names=NAMES)
        _check_result(result, "table3")
        assert result.metrics["energy_per_flop[SpArch]"] < result.metrics[
            "energy_per_flop[OuterSPACE]"]
        assert result.metrics["energy_ratio"] > 2.0

    def test_fig13(self):
        result = fig13_breakdown.run(max_rows=MAX_ROWS, names=NAMES)
        _check_result(result, "fig13")
        power = {k: v for k, v in result.metrics.items() if "power_fraction" in k}
        assert max(power, key=power.get) == "power_fraction[Merge Tree]"
        area = {k: v for k, v in result.metrics.items() if "area_fraction" in k}
        assert max(area, key=area.get) == "area_fraction[Merge Tree]"

    def test_dram_access_reduction(self):
        result = dram_access.run(max_rows=MAX_ROWS, names=NAMES)
        _check_result(result, "dram")
        assert result.metrics["geomean_dram_reduction"] > 1.5


class TestSweeps:
    def test_fig14_rmat(self):
        result = fig14_rmat.run(scale=0.02)
        _check_result(result, "fig14")
        assert result.metrics["geomean_speedup_over_mkl"] > 5.0
        assert result.metrics["geomean_flops[SpArch]"] > result.metrics[
            "geomean_flops[MKL]"]

    def test_fig15_roofline(self):
        result = fig15_roofline.run(max_rows=MAX_ROWS, names=NAMES)
        _check_result(result, "fig15")
        assert result.metrics["achieved_gflops[SpArch]"] > result.metrics[
            "achieved_gflops[OuterSPACE]"]
        assert result.metrics["achieved_gflops[SpArch]"] <= result.metrics[
            "roof_gflops"] * 1.01
        assert result.metrics["roof_gap[OuterSPACE]"] > result.metrics[
            "roof_gap[SpArch]"]

    def test_fig16_breakdown(self):
        result = fig16_breakdown.run(max_rows=800, names=NAMES)
        _check_result(result, "fig16")
        assert result.metrics["overall_speedup_vs_outerspace"] > 1.5
        # The paper-scale analytic projection reproduces the 5.7× regression.
        assert 4.5 < result.metrics["projected_slowdown[pipelined_only]"] < 6.5

    def test_fig17_dse(self):
        result = fig17_dse.run(max_rows=MAX_ROWS,
                               names=["wiki-Vote", "facebook"])
        _check_result(result, "fig17")
        # Longer buffer lines never increase DRAM traffic.
        assert result.metrics["dram[line:96]"] <= result.metrics["dram[line:24]"]
        # Bigger comparator arrays never slow the design down.
        assert result.metrics["gflops[comparator:16]"] >= result.metrics[
            "gflops[comparator:1]"]

    def test_fig18_merge_tree(self):
        result = fig18_merge_tree.run(max_rows=MAX_ROWS, names=NAMES)
        _check_result(result, "fig18")
        assert result.metrics["gflops[layers:6]"] >= result.metrics[
            "gflops[layers:2]"]
        assert result.metrics["dram[layers:6]"] <= result.metrics[
            "dram[layers:2]"]


class TestAblations:
    def test_condensing_stats(self):
        result = condensing_stats.run(max_rows=MAX_ROWS, names=NAMES)
        _check_result(result, "condense")
        # Condensing collapses many original columns into few condensed ones.
        assert result.metrics["geomean_proxy_condensation_ratio"] > 2.0
        assert result.metrics["geomean_condensation_ratio"] > (
            result.metrics["geomean_proxy_condensation_ratio"])
        assert 0.0 < result.metrics["geomean_hit_rate"] <= 1.0
        assert result.metrics["geomean_b_traffic_reduction"] >= 1.0

    def test_scheduler_ablation(self):
        result = scheduler_ablation.run(max_rows=MAX_ROWS, names=NAMES,
                                        merge_tree_layers=2)
        _check_result(result, "scheduler")
        # Huffman scheduling never plans more traffic than sequential.
        assert result.metrics["geomean_weight_ratio"] >= 1.0
        assert result.metrics["geomean_partial_traffic_reduction"] >= 0.95
        assert result.metrics["fraction_matrices_huffman_no_worse"] >= 0.5


class TestCommonHelpers:
    def test_small_suite(self):
        suite = small_suite(max_rows=200, count=3)
        assert len(suite) == 3
        assert all(matrix.shape[0] <= 200 for matrix in suite.values())

    def test_scaled_config_shrinks_buffers(self):
        config = scaled_config("cit-Patents", max_rows=400)
        assert config.prefetch_buffer_lines < 1024
        assert config.lookahead_fifo_elements < 8192
        # Matrices smaller than the cap keep the full-size buffers.
        full = scaled_config("facebook", max_rows=100_000)
        assert full.prefetch_buffer_lines == 1024

    def test_scale_rejects_growth_factors(self):
        # Scaling above 1 would grow the buffers past Table I — always a
        # caller bug (paper scale must use the unscaled configuration).
        with pytest.raises(ValueError, match="unscaled"):
            scale_buffer_capacities(SpArchConfig(), 1.5)
        with pytest.raises(ValueError):
            scale_buffer_capacities(SpArchConfig(), 0.0)
        with pytest.raises(ValueError):
            scale_buffer_capacities(SpArchConfig(), -0.25)

    def test_scale_never_enlarges_small_bases(self):
        # Regression: the floor used to silently *enlarge* capacities whose
        # base was already below it (8-line ablation buffers).
        tiny = SpArchConfig(prefetch_buffer_lines=8,
                            lookahead_fifo_elements=64)
        scaled = scale_buffer_capacities(tiny, 0.01)
        assert scaled.prefetch_buffer_lines == 8
        assert scaled.lookahead_fifo_elements == 64

    def test_scale_floors_at_one_entry(self):
        # Regression: extreme shrink factors must yield structurally valid
        # (>= 1 entry) capacities, never zero.
        one = SpArchConfig(prefetch_buffer_lines=1,
                           lookahead_fifo_elements=1)
        scaled = scale_buffer_capacities(one, 1e-6)
        assert scaled.prefetch_buffer_lines == 1
        assert scaled.lookahead_fifo_elements == 1

    def test_paper_scale_config_keeps_table1_buffers(self):
        config = paper_scale_config()
        assert config.engine == "streaming"
        table1 = SpArchConfig()
        assert config.prefetch_buffer_lines == table1.prefetch_buffer_lines
        assert (config.lookahead_fifo_elements
                == table1.lookahead_fifo_elements)

    def test_load_paper_scale_suite_small_proxy(self):
        # Functional smoke at a tiny dimension; the real 10^5-row rung runs
        # in benchmarks/test_paper_scale.py.
        suite = load_paper_scale_suite(max_rows=300)
        assert set(suite) == {"patents_main", "m133-b3"}
        for matrix, config in suite.values():
            assert matrix.shape[0] <= 300
            assert config.engine == "streaming"
            assert config.prefetch_buffer_lines == 1024
