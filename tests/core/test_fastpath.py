"""Unit tests for the compiled fast-path kernels (`repro.core.fastpath`)."""

from __future__ import annotations

import numpy as np

from repro.core.fastpath import (
    HAVE_NUMBA,
    _fold_sorted_runs_numpy,
    fold_sorted_runs,
    row_offsets,
)


def reference_fold(keys, values):
    """Straight-line reference: reduceat folding + zero elimination."""
    if not len(keys):
        return keys.copy(), values.copy(), 0
    starts = np.flatnonzero(np.concatenate(
        [[True], keys[1:] != keys[:-1]]))
    folded = np.add.reduceat(values, starts)
    keep = folded != 0.0
    return keys[starts[keep]], folded[keep], len(starts)


class TestFoldSortedRuns:
    def test_empty_stream(self):
        keys, vals, runs = fold_sorted_runs(np.empty(0, np.int64),
                                            np.empty(0))
        assert len(keys) == 0 and len(vals) == 0 and runs == 0

    def test_all_distinct_no_zeros_passes_through(self):
        keys = np.array([1, 4, 9], dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0])
        out_keys, out_vals, runs = fold_sorted_runs(keys, vals)
        np.testing.assert_array_equal(out_keys, keys)
        np.testing.assert_array_equal(out_vals, vals)
        assert runs == 3

    def test_duplicates_fold_and_zeros_drop(self):
        keys = np.array([2, 2, 5, 7, 7, 7], dtype=np.int64)
        vals = np.array([1.5, -1.5, 2.0, 1.0, 1.0, 1.0])
        out_keys, out_vals, runs = fold_sorted_runs(keys, vals)
        np.testing.assert_array_equal(out_keys, [5, 7])
        np.testing.assert_array_equal(out_vals, [2.0, 3.0])
        assert runs == 3  # the cancelled run still counts as a run

    def test_explicit_zero_without_duplicates_drops(self):
        keys = np.array([1, 2, 3], dtype=np.int64)
        vals = np.array([1.0, 0.0, 3.0])
        out_keys, out_vals, runs = fold_sorted_runs(keys, vals)
        np.testing.assert_array_equal(out_keys, [1, 3])
        assert runs == 3

    def test_matches_reference_on_random_streams(self):
        rng = np.random.default_rng(7)
        for trial in range(25):
            n = int(rng.integers(1, 400))
            keys = np.sort(rng.integers(0, max(2, n // 3), size=n)
                           ).astype(np.int64)
            vals = rng.standard_normal(n)
            # Sprinkle exact cancellations: mirror some adjacent pairs.
            for i in range(0, n - 1, 7):
                if keys[i] == keys[i + 1]:
                    vals[i + 1] = -vals[i]
            got = fold_sorted_runs(keys, vals)
            want = reference_fold(keys, vals)
            np.testing.assert_array_equal(got[0], want[0])
            np.testing.assert_array_equal(got[1], want[1])
            assert got[2] == want[2]

    def test_int32_keys_preserved(self):
        keys = np.array([3, 3, 8], dtype=np.int32)
        vals = np.array([1.0, 2.0, 4.0])
        out_keys, _, _ = fold_sorted_runs(keys, vals)
        assert out_keys.dtype == np.int32

    def test_numpy_variant_always_available(self):
        # Whatever backend is installed, the numpy reference must exist
        # and agree — it is the contract the numba loop is held to.
        keys = np.array([1, 1, 2], dtype=np.int64)
        vals = np.array([0.5, 0.5, -1.0])
        assert isinstance(HAVE_NUMBA, bool)
        got = fold_sorted_runs(keys, vals)
        want = _fold_sorted_runs_numpy(keys, vals)
        np.testing.assert_array_equal(got[0], want[0])
        np.testing.assert_array_equal(got[1], want[1])
        assert got[2] == want[2]


class TestRowOffsets:
    def test_matches_manual_walk(self):
        indptr = np.array([0, 3, 3, 5, 9], dtype=np.int64)
        expected = [0, 1, 2, 0, 1, 0, 1, 2, 3]
        np.testing.assert_array_equal(row_offsets(indptr), expected)

    def test_empty_matrix(self):
        assert len(row_offsets(np.array([0, 0, 0], dtype=np.int64))) == 0

    def test_random_indptr(self):
        rng = np.random.default_rng(11)
        lengths = rng.integers(0, 6, size=50)
        indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
        offsets = row_offsets(indptr)
        expected = [off for length in lengths for off in range(length)]
        np.testing.assert_array_equal(offsets, expected)
