"""Unit and property tests for the Huffman tree merge scheduler (§II-C)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.huffman import (
    MergePlan,
    huffman_schedule,
    initial_merge_way,
    sequential_schedule,
)

#: The leaf weights of the Figure 8 example.
FIG8_WEIGHTS = [15.0, 15.0, 13.0, 12.0, 9.0, 7.0, 3.0, 2.0, 2.0, 2.0, 2.0, 2.0]


class TestInitialMergeWay:
    def test_paper_formula(self):
        # k_init = (num_leaves - 2) mod (ways - 1) + 2
        assert initial_merge_way(12, 4) == (12 - 2) % 3 + 2
        assert initial_merge_way(100, 64) == (100 - 2) % 63 + 2

    def test_small_inputs_merge_everything_at_once(self):
        assert initial_merge_way(1, 4) == 1
        assert initial_merge_way(3, 4) == 3
        assert initial_merge_way(4, 4) == 4

    @pytest.mark.parametrize("ways", [2, 4, 8, 64])
    @pytest.mark.parametrize("leaves", [2, 5, 17, 63, 64, 65, 100, 1000])
    def test_guarantees_full_final_round(self, leaves, ways):
        """After the first round, the leaf count reduces to 1 in full steps."""
        first = initial_merge_way(leaves, ways)
        remaining = leaves - first + 1
        assert (remaining - 1) % (ways - 1) == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            initial_merge_way(5, 1)
        with pytest.raises(ValueError):
            initial_merge_way(0, 4)


class TestFigure8:
    def test_two_way_huffman_total_weight(self):
        assert huffman_schedule(FIG8_WEIGHTS, 2).total_weight == 354.0

    def test_four_way_huffman_total_weight(self):
        assert huffman_schedule(FIG8_WEIGHTS, 4).total_weight == 228.0

    def test_two_way_sequential_total_weight(self):
        assert sequential_schedule(FIG8_WEIGHTS, 2).total_weight == 365.0

    def test_huffman_beats_sequential(self):
        for ways in (2, 4, 8):
            huffman = huffman_schedule(FIG8_WEIGHTS, ways).total_weight
            sequential = sequential_schedule(FIG8_WEIGHTS, ways).total_weight
            assert huffman <= sequential

    def test_wider_merger_reduces_weight(self):
        weights = [huffman_schedule(FIG8_WEIGHTS, ways).total_weight
                   for ways in (2, 4, 8, 64)]
        assert weights == sorted(weights, reverse=True)


class TestPlanStructure:
    def test_single_leaf_has_no_rounds(self):
        plan = huffman_schedule([5.0], 4)
        assert plan.rounds == []
        assert plan.total_weight == 5.0
        assert plan.root_id == 0
        assert plan.internal_weight == 0.0

    def test_empty_plan(self):
        plan = huffman_schedule([], 4)
        assert plan.rounds == []
        assert plan.total_weight == 0.0

    def test_every_leaf_merged_exactly_once(self):
        plan = huffman_schedule([float(i + 1) for i in range(37)], 4)
        merged = list(itertools.chain.from_iterable(
            r.input_ids for r in plan.rounds))
        leaves_merged = [node_id for node_id in merged if node_id < 37]
        assert sorted(leaves_merged) == list(range(37))
        assert len(merged) == len(set(merged))

    def test_round_sizes_respect_ways(self):
        plan = huffman_schedule([1.0] * 100, 8)
        for merge_round in plan.rounds:
            assert 2 <= len(merge_round.input_ids) <= 8
        # Every round after the first merges exactly `ways` nodes.
        for merge_round in plan.rounds[1:]:
            assert len(merge_round.input_ids) == 8

    def test_root_weight_equals_total_leaf_weight(self):
        weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        plan = huffman_schedule(weights, 4)
        assert plan.nodes[plan.root_id].weight == pytest.approx(sum(weights))

    def test_leaf_depths_consistent_with_weighted_sum(self):
        plan = huffman_schedule(FIG8_WEIGHTS, 2)
        depths = plan.leaf_depths()
        weighted = sum(w * d for w, d in zip(FIG8_WEIGHTS, depths))
        # total = leaves + internal = sum_i w_i (depth_i + 1) - ... for a
        # full merge tree the internal weight equals sum_i w_i * depth_i.
        assert weighted == pytest.approx(plan.internal_weight)

    def test_validate_rejects_inconsistent_plans(self):
        plan = huffman_schedule([1.0, 2.0, 3.0], 2)
        plan.rounds[0] = type(plan.rounds[0])(
            round_index=0, input_ids=(0, 0), output_id=plan.rounds[0].output_id,
            output_weight=2.0)
        with pytest.raises(ValueError):
            plan.validate()

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            huffman_schedule([1.0, -2.0], 2)
        with pytest.raises(ValueError):
            sequential_schedule([-1.0], 2)
        with pytest.raises(ValueError):
            huffman_schedule([1.0], 1)


def _brute_force_optimal(weights: list[float], ways: int) -> float:
    """Exhaustively find the minimum total node weight for tiny inputs."""
    best = [float("inf")]

    def recurse(nodes: tuple[float, ...], internal: float, first: bool) -> None:
        if len(nodes) == 1:
            best[0] = min(best[0], internal)
            return
        take = initial_merge_way(len(nodes), ways) if first else min(
            ways, len(nodes))
        for combo in itertools.combinations(range(len(nodes)), take):
            merged = sum(nodes[i] for i in combo)
            rest = tuple(w for i, w in enumerate(nodes) if i not in combo)
            recurse(rest + (merged,), internal + merged, False)

    recurse(tuple(weights), 0.0, True)
    return best[0] + sum(weights)


@given(st.lists(st.integers(min_value=0, max_value=20), min_size=2, max_size=6),
       st.sampled_from([2, 3]))
@settings(max_examples=30, deadline=None)
def test_huffman_is_optimal_for_small_inputs(weights, ways):
    """The k-ary Huffman schedule minimises the total node weight."""
    weights = [float(w) for w in weights]
    plan = huffman_schedule(weights, ways)
    assert plan.total_weight == pytest.approx(_brute_force_optimal(weights, ways))


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                min_size=0, max_size=200),
       st.sampled_from([2, 4, 64]))
@settings(max_examples=50, deadline=None)
def test_schedules_always_validate(weights, ways):
    for build in (huffman_schedule, sequential_schedule):
        plan: MergePlan = build(list(weights), ways)
        plan.validate()
        if len(weights) > 1:
            assert plan.nodes[plan.root_id].weight == pytest.approx(sum(weights))
            assert plan.total_weight >= sum(weights)
