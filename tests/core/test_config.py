"""Unit tests for the architectural configuration (Table I)."""

from __future__ import annotations

import pytest

from repro.core.config import SpArchConfig
from repro.memory.hbm import HBMConfig


def test_default_matches_table1():
    config = SpArchConfig()
    assert config.merger_width == 16
    assert config.merger_chunk_size == 4
    assert config.merge_tree_layers == 6
    assert config.merge_ways == 64
    assert config.num_multipliers == 16
    assert config.lookahead_fifo_elements == 8192
    assert config.prefetch_buffer_lines == 1024
    assert config.prefetch_line_elements == 48
    assert config.prefetch_element_bytes == 12
    assert config.hbm.num_channels == 16
    assert config.hbm.total_bandwidth_bytes_per_second == pytest.approx(128e9)


def test_derived_quantities():
    config = SpArchConfig()
    assert config.element_bytes == 16
    assert config.prefetch_buffer_bytes == 1024 * 48 * 12
    assert config.peak_multiply_flops == pytest.approx(16e9)
    assert config.peak_flops == pytest.approx(32e9)


def test_with_features_overrides_only_requested_flags():
    config = SpArchConfig().with_features(matrix_condensing=False)
    assert not config.enable_matrix_condensing
    assert config.enable_pipelined_merge
    assert config.enable_huffman_scheduler
    assert config.enable_row_prefetcher
    unchanged = config.with_features()
    assert unchanged == config


def test_replace_arbitrary_fields():
    config = SpArchConfig().replace(merge_tree_layers=4, prefetch_buffer_lines=256)
    assert config.merge_ways == 16
    assert config.prefetch_buffer_lines == 256
    # The original default is untouched (frozen dataclass semantics).
    assert SpArchConfig().merge_tree_layers == 6


def test_validation_errors():
    with pytest.raises(ValueError):
        SpArchConfig(merger_width=0)
    with pytest.raises(ValueError):
        SpArchConfig(merger_width=10, merger_chunk_size=4)
    with pytest.raises(ValueError):
        SpArchConfig(clock_hz=0.0)
    with pytest.raises(ValueError):
        SpArchConfig(round_startup_cycles=-1)
    with pytest.raises(TypeError):
        SpArchConfig(num_multipliers=2.5)


def test_hbm_config_validation():
    with pytest.raises(ValueError):
        HBMConfig(num_channels=0)
    with pytest.raises(ValueError):
        HBMConfig(read_efficiency=0.0)
    with pytest.raises(ValueError):
        HBMConfig(bytes_per_second_per_channel=-1)
    config = HBMConfig(num_channels=8, bytes_per_second_per_channel=4e9)
    assert config.total_bandwidth_bytes_per_second == pytest.approx(32e9)
    assert config.bytes_per_cycle == pytest.approx(32.0)
