"""Unit tests for the condensing-derived quantities (§II-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.condensing import (
    condensation_ratio,
    condensed_column_weights,
    multiplication_count,
    original_column_partial_sizes,
    partial_matrix_sizes,
)
from repro.formats.condensed import CondensedMatrix
from repro.formats.convert import to_scipy
from repro.formats.csr import CSRMatrix
from repro.matrices.synthetic import powerlaw_matrix, random_matrix


@pytest.fixture
def pair() -> tuple[CSRMatrix, CSRMatrix]:
    a = random_matrix(40, 50, 200, seed=1)
    b = random_matrix(50, 30, 220, seed=2)
    return a, b


def test_condensed_column_weights_match_histogram(pair):
    a, _ = pair
    condensed = CondensedMatrix(a)
    np.testing.assert_array_equal(condensed_column_weights(condensed),
                                  condensed.column_nnz_histogram())


def test_partial_matrix_sizes_sum_to_multiplication_count(pair):
    a, b = pair
    condensed = CondensedMatrix(a)
    sizes = partial_matrix_sizes(condensed, b)
    assert len(sizes) == condensed.num_condensed_columns
    assert int(sizes.sum()) == multiplication_count(a, b)


def test_original_column_sizes_sum_to_multiplication_count(pair):
    a, b = pair
    sizes = original_column_partial_sizes(a, b)
    assert len(sizes) == a.num_cols
    assert int(sizes.sum()) == multiplication_count(a, b)


def test_multiplication_count_matches_scipy(pair):
    a, b = pair
    # The number of multiplications equals the number of stored products
    # before duplicate folding, which scipy exposes via (bool A) @ row counts.
    b_row_nnz = b.nnz_per_row()
    expected = int(sum(b_row_nnz[k] for k in a.indices))
    assert multiplication_count(a, b) == expected
    # And it is invariant under condensing by construction.
    condensed = CondensedMatrix(a)
    assert int(partial_matrix_sizes(condensed, b).sum()) == expected


def test_partial_matrix_size_of_single_column():
    a = CSRMatrix.from_dense(np.array([[1.0, 2.0], [3.0, 0.0]]))
    b = CSRMatrix.from_dense(np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]]))
    condensed = CondensedMatrix(a)
    sizes = partial_matrix_sizes(condensed, b)
    # Condensed column 0 holds A[0,0] and A[1,0] (both original column 0,
    # each hitting B row 0 with 2 nonzeros); column 1 holds A[0,1].
    np.testing.assert_array_equal(sizes, [4, 2])


def test_dimension_mismatch_rejected(pair):
    a, _ = pair
    wrong = random_matrix(7, 7, 10, seed=3)
    with pytest.raises(ValueError):
        partial_matrix_sizes(CondensedMatrix(a), wrong)
    with pytest.raises(ValueError):
        original_column_partial_sizes(a, wrong)
    with pytest.raises(ValueError):
        multiplication_count(a, wrong)


def test_condensation_ratio_is_large_for_sparse_matrices():
    matrix = powerlaw_matrix(1024, 4.0, seed=5)
    ratio = condensation_ratio(matrix)
    occupied = len(np.unique(matrix.indices))
    condensed_cols = CondensedMatrix(matrix).num_condensed_columns
    assert ratio == pytest.approx(occupied / condensed_cols)
    assert ratio > 5.0


def test_condensation_ratio_degenerate_cases():
    assert condensation_ratio(CSRMatrix.empty((4, 4))) == 1.0
    diagonal = CSRMatrix.from_dense(np.eye(6))
    # Every row has exactly one nonzero: 6 occupied columns, 1 condensed.
    assert condensation_ratio(diagonal) == 6.0
