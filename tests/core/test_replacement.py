"""Tests for the hardware victim-selection structures (§II-E)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.replacement import (
    FAR_FUTURE,
    BufferIndexHashTable,
    NextUseReductionTree,
    ReplacementStats,
)


class TestHashTable:
    def test_add_lookup_remove(self):
        table = BufferIndexHashTable(num_lines=8)
        table.add_line(row=42, line=3)
        table.add_line(row=42, line=5)
        table.add_line(row=7, line=0)
        assert table.lines_of(42) == {3, 5}
        assert table.lines_of(7) == {0}
        assert table.lines_of(99) == set()
        table.remove_line(42, 3)
        assert table.lines_of(42) == {5}

    def test_remove_missing_line_raises(self):
        table = BufferIndexHashTable(num_lines=4)
        table.add_line(1, 0)
        with pytest.raises(KeyError):
            table.remove_line(1, 3)
        with pytest.raises(KeyError):
            table.remove_line(2, 0)

    def test_collisions_are_counted_and_resolved(self):
        stats = ReplacementStats()
        table = BufferIndexHashTable(num_lines=4, stats=stats)
        # Rows that collide modulo the table size still resolve correctly.
        for offset in range(5):
            table.add_line(row=offset * table.size, line=offset)
        for offset in range(5):
            assert table.lines_of(offset * table.size) == {offset}
        assert stats.hash_collisions > 0
        assert stats.hash_probes > stats.hash_insertions

    def test_table_is_wider_than_the_buffer(self):
        assert BufferIndexHashTable(num_lines=1024).size == 2048


class TestReductionTree:
    def test_victim_is_furthest_next_use(self):
        tree = NextUseReductionTree(num_lines=8)
        for line, next_use in enumerate([5.0, 100.0, 3.0, 47.0]):
            tree.update(line, next_use)
        assert tree.victim() == 1
        assert tree.furthest_next_use() == 100.0
        tree.update(1, 2.0)           # row 1 was just touched again
        assert tree.victim() == 3

    def test_far_future_lines_win_and_oldest_wins_ties(self):
        tree = NextUseReductionTree(num_lines=4)
        tree.update(0, 500.0)
        tree.update(1, FAR_FUTURE, age=10)
        tree.update(2, FAR_FUTURE, age=3)
        assert tree.victim() == 1      # unknown next use beats any known one
        assert tree.furthest_next_use() == FAR_FUTURE

    def test_invalidate_removes_line_from_consideration(self):
        tree = NextUseReductionTree(num_lines=4)
        tree.update(0, 10.0)
        tree.update(1, 20.0)
        tree.invalidate(1)
        assert tree.victim() == 0
        tree.invalidate(0)
        with pytest.raises(RuntimeError):
            tree.victim()

    def test_depth_and_activity_accounting(self):
        stats = ReplacementStats()
        tree = NextUseReductionTree(num_lines=1024, stats=stats)
        assert tree.depth == 10
        tree.update(0, 1.0)
        tree.victim()
        assert stats.victim_selections == 1
        assert stats.next_use_updates == 1
        assert stats.reduction_levels_traversed >= tree.depth

    def test_bounds_checked(self):
        tree = NextUseReductionTree(num_lines=4)
        with pytest.raises(IndexError):
            tree.update(4, 1.0)
        with pytest.raises(IndexError):
            tree.invalidate(-1)


class TestAgreementWithBehaviouralPolicy:
    def test_matches_argmax_reference_over_random_updates(self, rng):
        """The tree always returns the same victim as a direct argmax."""
        num_lines = 32
        tree = NextUseReductionTree(num_lines=num_lines)
        reference = np.full(num_lines, -np.inf)
        for step in range(500):
            line = int(rng.integers(0, num_lines))
            if rng.random() < 0.15:
                tree.invalidate(line)
                reference[line] = -np.inf
                continue
            if rng.random() < 0.2:
                # Unknown next use outranks every known one; encode it above
                # the largest possible known time, ordered by age.
                next_use = FAR_FUTURE
                encoded = 1e6 + step
            else:
                next_use = float(rng.integers(0, 10_000))
                encoded = next_use
            tree.update(line, next_use, age=step)
            reference[line] = encoded
            if np.all(np.isinf(reference) & (reference < 0)):
                continue
            expected = int(np.argmax(reference + np.arange(num_lines) * 1e-9))
            victim = tree.victim()
            assert reference[victim] == pytest.approx(reference[expected])
