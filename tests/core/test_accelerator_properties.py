"""Property-based tests: SpArch is exact for arbitrary sparse operands."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.reference import matrices_allclose, scipy_spgemm
from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.formats.convert import coo_to_csr
from repro.formats.coo import COOMatrix
from repro.memory.traffic import TrafficCategory


@st.composite
def csr_pairs(draw, max_dim: int = 14, max_nnz: int = 50):
    """Pairs of small random CSR matrices with compatible shapes."""
    rows_a = draw(st.integers(1, max_dim))
    inner = draw(st.integers(1, max_dim))
    cols_b = draw(st.integers(1, max_dim))

    def build(num_rows, num_cols):
        nnz = draw(st.integers(0, max_nnz))
        rows = draw(st.lists(st.integers(0, num_rows - 1), min_size=nnz,
                             max_size=nnz))
        cols = draw(st.lists(st.integers(0, num_cols - 1), min_size=nnz,
                             max_size=nnz))
        vals = draw(st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False,
                      allow_infinity=False).filter(lambda v: abs(v) > 1e-6),
            min_size=nnz, max_size=nnz))
        coo = COOMatrix(np.array(rows, np.int64), np.array(cols, np.int64),
                        np.array(vals), (num_rows, num_cols))
        return coo_to_csr(coo.canonicalized())

    return build(rows_a, inner), build(inner, cols_b)


@given(csr_pairs())
@settings(max_examples=40, deadline=None)
def test_sparch_matches_scipy_for_random_operands(pair):
    a, b = pair
    result = SpArch().multiply(a, b)
    assert matrices_allclose(result.matrix, scipy_spgemm(a, b), atol=1e-7)


@given(csr_pairs(), st.sampled_from([
    dict(matrix_condensing=False),
    dict(huffman_scheduler=False),
    dict(row_prefetcher=False),
    dict(pipelined_merge=False, matrix_condensing=False),
]))
@settings(max_examples=30, deadline=None)
def test_ablated_configurations_match_scipy(pair, features):
    a, b = pair
    config = SpArchConfig().replace(merge_tree_layers=3,
                                    prefetch_buffer_lines=8,
                                    lookahead_fifo_elements=32,
                                    round_startup_cycles=4)
    result = SpArch(config.with_features(**features)).multiply(a, b)
    assert matrices_allclose(result.matrix, scipy_spgemm(a, b), atol=1e-7)


@given(csr_pairs())
@settings(max_examples=30, deadline=None)
def test_statistics_invariants(pair):
    a, b = pair
    stats = SpArch().multiply(a, b).stats
    assert stats.dram_bytes >= 0
    assert stats.cycles >= 0
    assert stats.multiplications >= stats.output_nnz - a.nnz * b.nnz  # trivial lower bound
    assert 0.0 <= stats.prefetch_hit_rate <= 1.0
    assert stats.traffic.read_bytes + stats.traffic.write_bytes == stats.dram_bytes
    if a.nnz and b.nnz:
        assert stats.traffic.bytes_by_category[
            TrafficCategory.MATRIX_A_READ] == a.nnz * 16
