"""Micro-tests for degenerate inputs on both engines and the stream FIFOs.

These pin the edge cases the per-element stream code paths are easiest to
get wrong: empty operands, products that cancel to an all-zero result,
single-nonzero operands (the one-leaf merge plan), empty right-matrix rows,
and the FIFO drain behaviour of the clock-stepped merge tree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.formats.csr import CSRMatrix
from repro.hardware.streaming import StreamingMergeTree

ENGINES = ("scalar", "vectorized")


def _config(engine: str, **overrides) -> SpArchConfig:
    return SpArchConfig(engine=engine, **overrides)


@pytest.mark.parametrize("engine", ENGINES)
def test_empty_left_operand(engine):
    matrix_a = CSRMatrix.empty((5, 4))
    matrix_b = CSRMatrix.from_dense(np.eye(4))
    result = SpArch(_config(engine)).multiply(matrix_a, matrix_b)
    assert result.nnz == 0
    assert result.matrix.shape == (5, 4)
    assert result.stats.multiplications == 0
    assert result.stats.dram_bytes == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_empty_right_operand(engine):
    matrix_a = CSRMatrix.from_dense(np.eye(4))
    matrix_b = CSRMatrix.empty((4, 3))
    result = SpArch(_config(engine)).multiply(matrix_a, matrix_b)
    assert result.nnz == 0
    assert result.matrix.shape == (4, 3)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("condensing", (True, False))
@pytest.mark.parametrize("pipelined", (True, False))
def test_all_zero_product(engine, condensing, pipelined):
    """Every partial product cancels: the result is an empty matrix."""
    matrix_a = CSRMatrix.from_dense(np.array([[1.0, -1.0], [2.0, -2.0]]))
    matrix_b = CSRMatrix.from_dense(np.array([[3.0, 0.0], [3.0, 0.0]]))
    config = _config(engine, enable_matrix_condensing=condensing,
                     enable_pipelined_merge=pipelined)
    result = SpArch(config).multiply(matrix_a, matrix_b)
    assert result.nnz == 0
    assert result.stats.output_nnz == 0
    assert result.stats.multiplications == 4
    # The additions really happened even though everything cancelled.
    assert result.stats.additions == 2
    np.testing.assert_array_equal(result.matrix.to_dense(), np.zeros((2, 2)))


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("pipelined", (True, False))
def test_single_nonzero_operands(engine, pipelined):
    """One nonzero per operand exercises the single-leaf merge plan."""
    dense_a = np.zeros((3, 3))
    dense_a[1, 2] = 2.0
    dense_b = np.zeros((3, 3))
    dense_b[2, 0] = 4.0
    matrix_a = CSRMatrix.from_dense(dense_a)
    matrix_b = CSRMatrix.from_dense(dense_b)
    config = _config(engine, enable_pipelined_merge=pipelined)
    result = SpArch(config).multiply(matrix_a, matrix_b)
    assert result.nnz == 1
    assert result.matrix.to_dense()[1, 0] == 8.0
    assert result.stats.num_partial_matrices == 1
    assert result.stats.num_merge_rounds == 0
    if not pipelined:
        # The two-phase dataflow still round-trips the single leaf via DRAM.
        assert result.stats.traffic.partial_matrix_bytes > 0


@pytest.mark.parametrize("engine", ENGINES)
def test_left_elements_hitting_empty_right_rows(engine):
    """Left nonzeros that select empty B rows produce nothing but still count."""
    dense_a = np.zeros((3, 4))
    dense_a[0, 1] = 1.0   # selects empty B row 1
    dense_a[2, 3] = 5.0   # selects B row 3
    dense_b = np.zeros((4, 2))
    dense_b[3, 1] = 2.0
    matrix_a = CSRMatrix.from_dense(dense_a)
    matrix_b = CSRMatrix.from_dense(dense_b)
    result = SpArch(_config(engine)).multiply(matrix_a, matrix_b)
    assert result.nnz == 1
    assert result.matrix.to_dense()[2, 1] == 10.0
    assert result.stats.multiplications == 1


@pytest.mark.parametrize("engine", ENGINES)
def test_dimension_mismatch_raises(engine):
    matrix_a = CSRMatrix.from_dense(np.eye(3))
    matrix_b = CSRMatrix.from_dense(np.eye(4))
    with pytest.raises(ValueError, match="dimension mismatch"):
        SpArch(_config(engine)).multiply(matrix_a, matrix_b)


def test_invalid_engine_name_rejected():
    with pytest.raises(ValueError, match="engine"):
        SpArchConfig(engine="turbo")


# ----------------------------------------------------------------------
# Streaming-tree FIFO behaviour (deque-backed after the O(n) pop fix)
# ----------------------------------------------------------------------

def test_streaming_tree_empty_and_single_streams():
    tree = StreamingMergeTree(num_layers=2, merger_width=2, fifo_capacity=8)
    keys, values, stats = tree.merge([])
    assert len(keys) == 0 and len(values) == 0 and stats.elements_out == 0

    keys, values, stats = tree.merge([(np.array([1, 3]), np.array([1.0, 2.0]))])
    np.testing.assert_array_equal(keys, [1, 3])
    np.testing.assert_array_equal(values, [1.0, 2.0])


def test_streaming_tree_interleaves_long_unbalanced_streams():
    """A long stream against an empty one drains without stalling forever."""
    long_keys = np.arange(500, dtype=np.int64)
    long_vals = np.ones(500)
    tree = StreamingMergeTree(num_layers=2, merger_width=4, fifo_capacity=16)
    keys, values, stats = tree.merge([
        (long_keys, long_vals),
        (np.empty(0, np.int64), np.empty(0)),
        (np.array([2, 7]), np.array([5.0, 6.0])),
    ])
    assert len(keys) == 502
    assert np.all(np.diff(keys) >= 0)
    assert stats.elements_out == 502
