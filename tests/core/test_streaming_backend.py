"""Unit tests for the streaming backend's two building blocks.

The end-to-end contract (streaming == vectorized == scalar) lives in
``tests/integration/test_engine_equivalence.py`` and the chunk-invariance
property test; this module exercises the pieces in isolation — the blocked
merge+fold against the one-shot sort, and the lazy leaf streamer against
the materialising one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.huffman import huffman_schedule
from repro.core.streaming import StreamingLeafStreamer, StreamingMergeTree
from repro.core.vectorized import VectorizedLeafStreamer, VectorizedMergeTree
from repro.hardware.multiplier_array import MultiplierArray
from repro.matrices.rmat import RMATConfig, generate_rmat
from repro.matrices.synthetic import random_matrix


def random_sorted_streams(rng, num_streams, max_len=120):
    """Sorted (key, value) streams with plenty of cross-stream ties."""
    streams = []
    for _ in range(num_streams):
        n = int(rng.integers(0, max_len))
        keys = np.sort(rng.integers(0, 60, size=n)).astype(np.int64)
        vals = rng.standard_normal(n)
        streams.append((keys, vals))
    return streams


class TestStreamingMergeTree:
    @pytest.mark.parametrize("block", [1, 2, 7, 64, 10**9])
    def test_blocked_merge_matches_one_shot(self, block):
        rng = np.random.default_rng(3)
        for trial in range(10):
            streams = random_sorted_streams(rng, int(rng.integers(1, 9)))
            reference = VectorizedMergeTree(num_layers=3)
            blocked = StreamingMergeTree(num_layers=3, block_elements=block)
            ref_keys, ref_vals = reference.merge([(k.copy(), v.copy())
                                                  for k, v in streams])
            got_keys, got_vals = blocked.merge([(k.copy(), v.copy())
                                                for k, v in streams])
            np.testing.assert_array_equal(ref_keys, got_keys)
            np.testing.assert_array_equal(ref_vals, got_vals)
            assert reference.stats.cycles == blocked.stats.cycles
            assert (reference.stats.comparator_ops
                    == blocked.stats.comparator_ops)
            assert reference.stats.additions == blocked.stats.additions
            assert (reference.stats.elements_into_root
                    == blocked.stats.elements_into_root)
            assert (reference.stats.elements_out
                    == blocked.stats.elements_out)
            assert (reference.stats.layer_elements
                    == blocked.stats.layer_elements)

    def test_tie_break_order_across_streams(self):
        # Equal keys must fold in ascending stream order (stable global
        # sort semantics): a block boundary must never split a run.
        streams = [
            (np.array([5, 5, 9], dtype=np.int64),
             np.array([1.0, 2.0, 4.0])),
            (np.array([5, 9, 9], dtype=np.int64),
             np.array([8.0, 16.0, 32.0])),
        ]
        reference = VectorizedMergeTree(num_layers=2)
        want = reference.merge([(k.copy(), v.copy()) for k, v in streams])
        for block in (1, 2, 3, 100):
            tree = StreamingMergeTree(num_layers=2, block_elements=block)
            got = tree.merge([(k.copy(), v.copy()) for k, v in streams])
            np.testing.assert_array_equal(want[0], got[0])
            np.testing.assert_array_equal(want[1], got[1])

    def test_empty_streams(self):
        tree = StreamingMergeTree(num_layers=2, block_elements=4)
        keys, vals = tree.merge([(np.empty(0, np.int64), np.empty(0))])
        assert len(keys) == 0 and len(vals) == 0

    def test_full_cancellation(self):
        streams = [
            (np.array([3], dtype=np.int64), np.array([2.5])),
            (np.array([3], dtype=np.int64), np.array([-2.5])),
        ]
        tree = StreamingMergeTree(num_layers=2, block_elements=1)
        keys, vals = tree.merge(streams)
        assert len(keys) == 0
        assert tree.stats.additions == 1


class TestStreamingLeafStreamer:
    @pytest.mark.parametrize("condensing", [True, False])
    @pytest.mark.parametrize("chunk", [1, 3, 10**6])
    def test_leaf_streams_match_vectorized(self, condensing, chunk):
        matrix = generate_rmat(RMATConfig(num_rows=120, edge_factor=4,
                                          seed=5))
        reference = VectorizedLeafStreamer(matrix, matrix,
                                           MultiplierArray(16),
                                           condensing=condensing)
        lazy_mults = MultiplierArray(16)
        lazy = StreamingLeafStreamer(matrix, matrix, lazy_mults,
                                     condensing=condensing,
                                     chunk_leaves=chunk)
        plan = huffman_schedule([float(w) for w in lazy.leaf_weights()], 8)
        lazy.bind_plan(plan)
        assert lazy.num_leaves == reference.num_leaves
        np.testing.assert_array_equal(lazy.leaf_weights(),
                                      reference.leaf_weights())
        # Consume in plan order, as the accelerator does.
        order = [node_id for merge_round in plan.rounds
                 for node_id in merge_round.input_ids
                 if node_id < plan.num_leaves]
        for leaf in order:
            want_keys, want_vals = reference.leaf_stream(leaf)
            got_keys, got_vals = lazy.leaf_stream(leaf)
            np.testing.assert_array_equal(want_keys, got_keys)
            np.testing.assert_array_equal(want_vals, got_vals)
        # The multiplier counters replay identically.
        ref_stats = reference._multipliers.stats
        assert lazy_mults.stats.multiplications == ref_stats.multiplications
        assert lazy_mults.stats.left_elements == ref_stats.left_elements
        assert lazy_mults.stats.cycles == ref_stats.cycles

    def test_unbound_streamer_falls_back_to_single_leaves(self):
        matrix = random_matrix(60, 60, 240, seed=2)
        reference = VectorizedLeafStreamer(matrix, matrix,
                                           MultiplierArray(16),
                                           condensing=True)
        lazy = StreamingLeafStreamer(matrix, matrix, MultiplierArray(16),
                                     condensing=True, chunk_leaves=4)
        # No bind_plan: every leaf generates on demand, out of any order.
        for leaf in reversed(range(lazy.num_leaves)):
            want = reference.leaf_stream(leaf)
            got = lazy.leaf_stream(leaf)
            np.testing.assert_array_equal(want[0], got[0])
            np.testing.assert_array_equal(want[1], got[1])

    def test_consumed_leaves_are_dropped(self):
        matrix = random_matrix(80, 80, 320, seed=4)
        lazy = StreamingLeafStreamer(matrix, matrix, MultiplierArray(16),
                                     condensing=True, chunk_leaves=2)
        plan = huffman_schedule([float(w) for w in lazy.leaf_weights()], 4)
        lazy.bind_plan(plan)
        order = [node_id for merge_round in plan.rounds
                 for node_id in merge_round.input_ids
                 if node_id < plan.num_leaves]
        for leaf in order:
            lazy.leaf_stream(leaf)
            # Popped on consumption: at most chunk-1 generated leaves wait.
            assert len(lazy._pending) < 2
