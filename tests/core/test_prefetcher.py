"""Unit and property tests for the MatB row prefetcher (§II-D, Figure 9)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prefetcher import RowPrefetcher
from repro.formats.csr import CSRMatrix
from repro.matrices.synthetic import powerlaw_matrix, random_matrix


def _uniform_matrix(num_rows: int, row_nnz: int) -> CSRMatrix:
    """Matrix whose every row has exactly ``row_nnz`` nonzeros."""
    indptr = np.arange(num_rows + 1, dtype=np.int64) * row_nnz
    indices = np.tile(np.arange(row_nnz, dtype=np.int64), num_rows)
    data = np.ones(num_rows * row_nnz)
    return CSRMatrix(indptr, indices, data, (num_rows, max(row_nnz, 1)))


def test_every_access_hits_when_buffer_is_large_enough():
    matrix = _uniform_matrix(8, 4)
    prefetcher = RowPrefetcher(matrix, num_lines=64, line_elements=8,
                               lookahead_window=64)
    sequence = np.array([0, 1, 2, 0, 1, 2, 0, 1, 2])
    stats = prefetcher.simulate(sequence)
    # First touch of each row misses; every later touch hits.
    assert stats.element_misses == 3 * 4
    assert stats.element_hits == 6 * 4
    assert stats.dram_bytes_read == 3 * 4 * 12
    assert stats.hit_rate == pytest.approx(2 / 3)


def test_zero_reuse_sequence_never_hits():
    matrix = _uniform_matrix(16, 3)
    prefetcher = RowPrefetcher(matrix, num_lines=4, line_elements=4,
                               lookahead_window=8)
    stats = prefetcher.simulate(np.arange(16))
    assert stats.element_hits == 0
    assert stats.dram_bytes_read == stats.bytes_without_buffer


def test_belady_keeps_the_sooner_needed_row():
    """With capacity for one row, the policy must keep the row needed sooner."""
    matrix = _uniform_matrix(4, 4)
    # One line holds a full row; the buffer holds exactly two rows.
    prefetcher = RowPrefetcher(matrix, num_lines=2, line_elements=4,
                               lookahead_window=16)
    # Rows 0 and 1 are buffered; fetching row 2 must evict row 1 (next used
    # later) and keep row 0 (needed immediately after).
    sequence = np.array([0, 1, 2, 0, 1])
    stats = prefetcher.simulate(sequence)
    # Misses: rows 0, 1, 2 (cold) and row 1 again after its eviction = 4.
    assert stats.segment_misses == 4
    assert stats.segment_hits == 1  # the second access to row 0


def test_line_granular_eviction_partial_rows():
    """Long rows are spilled line by line, so partial hits are possible."""
    matrix = _uniform_matrix(3, 8)  # each row = 2 lines of 4 elements
    prefetcher = RowPrefetcher(matrix, num_lines=3, line_elements=4,
                               lookahead_window=16)
    stats = prefetcher.simulate(np.array([0, 1, 0]))
    # Row 0 occupies 2 lines, row 1 evicts one of them; the second access to
    # row 0 hits on the surviving line and re-reads only the evicted one.
    assert stats.segment_hits >= 1
    assert stats.dram_bytes_read < stats.bytes_without_buffer


def test_empty_rows_and_empty_sequence():
    matrix = CSRMatrix.empty((4, 4))
    prefetcher = RowPrefetcher(matrix, num_lines=2, line_elements=4)
    stats = prefetcher.simulate(np.array([0, 1, 2]))
    assert stats.dram_bytes_read == 0
    assert stats.hit_rate == 0.0
    assert prefetcher.simulate(np.array([], dtype=np.int64)).accesses == 0


def test_simulate_without_buffer_rereads_every_row():
    matrix = _uniform_matrix(4, 5)
    prefetcher = RowPrefetcher(matrix, num_lines=8, line_elements=8)
    sequence = np.array([0, 0, 1, 0])
    stats = prefetcher.simulate_without_buffer(sequence)
    assert stats.dram_bytes_read == 4 * 5 * 12
    assert stats.element_hits == 0
    assert stats.traffic_reduction == 1.0


def test_traffic_reduction_property():
    matrix = powerlaw_matrix(128, 4.0, seed=3)
    access = np.asarray(matrix.indices, dtype=np.int64)
    prefetcher = RowPrefetcher(matrix, num_lines=32, line_elements=8,
                               lookahead_window=256)
    with_buffer = prefetcher.simulate(access)
    assert with_buffer.dram_bytes_read <= with_buffer.bytes_without_buffer
    assert 0.0 <= with_buffer.hit_rate <= 1.0
    assert with_buffer.traffic_reduction >= 1.0


def test_repeated_simulation_with_warm_buffer():
    """A second simulate() call must treat leftover resident rows as
    eviction candidates instead of crashing (regression test)."""
    matrix = powerlaw_matrix(256, 6.0, seed=19)
    access = np.asarray(matrix.indices, dtype=np.int64)
    prefetcher = RowPrefetcher(matrix, num_lines=16, line_elements=8,
                               lookahead_window=128)
    cold = prefetcher.simulate(access)
    warm = prefetcher.simulate(access)
    assert warm.accesses == cold.accesses
    # The warm run can only hit more (some rows are already resident).
    assert warm.dram_bytes_read <= cold.bytes_without_buffer
    assert prefetcher.buffer.lines_used <= prefetcher.buffer.num_lines


def test_buffer_exposes_capacity_for_area_model():
    matrix = _uniform_matrix(4, 4)
    prefetcher = RowPrefetcher(matrix, num_lines=16, line_elements=48,
                               element_bytes=12)
    assert prefetcher.buffer.capacity_bytes == 16 * 48 * 12


@given(
    st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=120),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=40, deadline=None)
def test_prefetcher_invariants_hold_for_random_sequences(sequence, lines,
                                                         line_elements):
    """Conservation: hits + misses == touched elements; traffic == misses."""
    matrix = random_matrix(16, 16, 80, seed=7)
    prefetcher = RowPrefetcher(matrix, num_lines=lines,
                               line_elements=line_elements,
                               lookahead_window=16)
    access = np.asarray(sequence, dtype=np.int64)
    stats = prefetcher.simulate(access)
    row_nnz = matrix.nnz_per_row()
    touched = int(sum(row_nnz[r] for r in sequence))
    assert stats.element_hits + stats.element_misses == touched
    assert stats.dram_bytes_read == stats.element_misses * 12
    assert stats.dram_bytes_read <= stats.bytes_without_buffer
    assert stats.accesses == len(sequence)
    # The buffer never exceeds its capacity.
    assert prefetcher.buffer.lines_used <= prefetcher.buffer.num_lines
