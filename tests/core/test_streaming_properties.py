"""Property test: streaming output is invariant under chunk-size choice.

``streaming_chunk_leaves`` and ``streaming_block_elements`` are
simulation-host knobs — per the contract in :mod:`repro.core.config` they
must never change a result array, a counter, or a DRAM byte.  This test
drives the full accelerator over random operands and random chunk sizes
(*including* the degenerate extremes: one leaf / one element per batch, and
batches larger than the whole problem) and compares everything against the
vectorized engine.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.formats.convert import coo_to_csr
from repro.formats.coo import COOMatrix

#: Every statistic that must be invariant (mirrors the integration harness).
COMPARED_STATS = (
    "cycles", "runtime_seconds", "multiplications", "additions", "output_nnz",
    "num_partial_matrices", "num_merge_rounds", "condensed_columns",
    "prefetch_hit_rate", "prefetch_bytes_saved", "comparator_ops",
    "memory_cycles", "compute_cycles", "merge_tree_elements",
    "buffer_element_reads", "scheduler",
)


@st.composite
def csr_pairs(draw, max_dim: int = 14, max_nnz: int = 50):
    """Pairs of small random CSR matrices with compatible shapes."""
    rows_a = draw(st.integers(1, max_dim))
    inner = draw(st.integers(1, max_dim))
    cols_b = draw(st.integers(1, max_dim))

    def build(num_rows, num_cols):
        nnz = draw(st.integers(0, max_nnz))
        rows = draw(st.lists(st.integers(0, num_rows - 1), min_size=nnz,
                             max_size=nnz))
        cols = draw(st.lists(st.integers(0, num_cols - 1), min_size=nnz,
                             max_size=nnz))
        vals = draw(st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False,
                      allow_infinity=False).filter(lambda v: abs(v) > 1e-6),
            min_size=nnz, max_size=nnz))
        coo = COOMatrix(np.array(rows, np.int64), np.array(cols, np.int64),
                        np.array(vals), (num_rows, num_cols))
        return coo_to_csr(coo.canonicalized())

    return build(rows_a, inner), build(inner, cols_b)


#: Chunk strategies always covering the extremes (1, and ≥ everything).
chunk_leaves = st.one_of(st.just(1), st.integers(2, 7), st.just(10 ** 6))
block_elements = st.one_of(st.just(1), st.integers(2, 50), st.just(10 ** 9))

ablations = st.sampled_from([
    dict(),
    dict(enable_matrix_condensing=False),
    dict(enable_huffman_scheduler=False),
    dict(enable_pipelined_merge=False, enable_row_prefetcher=False),
])


@given(csr_pairs(), chunk_leaves, block_elements, ablations)
@settings(max_examples=40, deadline=None)
def test_streaming_invariant_under_chunk_sizes(pair, chunk, block, features):
    matrix_a, matrix_b = pair
    config = SpArchConfig(merge_tree_layers=2, prefetch_buffer_lines=8,
                          prefetch_line_elements=4,
                          lookahead_fifo_elements=32, **features)
    reference = SpArch(config.replace(engine="vectorized")).multiply(
        matrix_a, matrix_b)
    streamed = SpArch(config.replace(
        engine="streaming", streaming_chunk_leaves=chunk,
        streaming_block_elements=block)).multiply(matrix_a, matrix_b)

    for field in COMPARED_STATS:
        assert (getattr(reference.stats, field)
                == getattr(streamed.stats, field)), field
    assert (reference.stats.traffic.by_category()
            == streamed.stats.traffic.by_category())
    np.testing.assert_array_equal(reference.matrix.indptr,
                                  streamed.matrix.indptr)
    np.testing.assert_array_equal(reference.matrix.indices,
                                  streamed.matrix.indices)
    np.testing.assert_array_equal(reference.matrix.data,
                                  streamed.matrix.data)
