"""Unit tests for the look-ahead FIFO and distance list builder (§II-E)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lookahead import UNKNOWN_NEXT_USE, DistanceListBuilder, LookaheadFifo


def test_visible_slice_window():
    fifo = LookaheadFifo(np.arange(10), window=3)
    np.testing.assert_array_equal(fifo.visible_slice(-1), [0, 1, 2])
    np.testing.assert_array_equal(fifo.visible_slice(4), [5, 6, 7])
    np.testing.assert_array_equal(fifo.visible_slice(8), [9])
    assert len(fifo) == 10
    assert fifo.window == 3
    with pytest.raises(ValueError):
        fifo.visible_slice(-2)
    with pytest.raises(ValueError):
        LookaheadFifo(np.arange(4), window=0)


def test_empty_access_sequence_yields_empty_window():
    """A zero-nnz left operand produces an empty sequence; the FIFO must
    degenerate to an empty window (even at depth 0) instead of raising."""
    for window in (0, 1, 8192):
        fifo = LookaheadFifo(np.array([], dtype=np.int64), window=window)
        assert len(fifo) == 0
        assert fifo.window == window
        np.testing.assert_array_equal(fifo.visible_slice(-1), [])
        np.testing.assert_array_equal(fifo.visible_slice(5), [])
        builder = DistanceListBuilder(fifo)
        assert builder.next_use(0, now=-1) == UNKNOWN_NEXT_USE
        assert builder.reuse_distance_histogram() == {}
    # A non-empty sequence still rejects a zero-depth window.
    with pytest.raises(ValueError):
        LookaheadFifo(np.array([1, 2]), window=0)


def test_next_use_basic():
    sequence = np.array([3, 1, 3, 2, 1, 3])
    builder = DistanceListBuilder(LookaheadFifo(sequence, window=10))
    assert builder.next_use(3, now=-1) == 0
    assert builder.next_use(3, now=0) == 2
    assert builder.next_use(3, now=2) == 5
    assert builder.next_use(3, now=5) == UNKNOWN_NEXT_USE
    assert builder.next_use(7, now=0) == UNKNOWN_NEXT_USE


def test_next_use_respects_window():
    sequence = np.array([0, 9, 9, 9, 9, 9, 0])
    builder = DistanceListBuilder(LookaheadFifo(sequence, window=3))
    # Row 0 is next used at position 6, which is 6 steps past now=0 — beyond
    # the 3-deep look-ahead window, so the prefetcher cannot see it.
    assert builder.next_use(0, now=0) == UNKNOWN_NEXT_USE
    # With a larger window the same access becomes visible.
    wide = DistanceListBuilder(LookaheadFifo(sequence, window=8))
    assert wide.next_use(0, now=0) == 6


def test_next_use_cursor_only_moves_forward():
    sequence = np.array([5, 5, 5])
    builder = DistanceListBuilder(LookaheadFifo(sequence, window=10))
    assert builder.next_use(5, now=1) == 2
    # Asking about an earlier time after the cursor advanced is not supported
    # semantics-wise, but must not crash and must stay monotone.
    assert builder.next_use(5, now=2) == UNKNOWN_NEXT_USE


def test_access_positions():
    sequence = np.array([4, 2, 4, 4])
    builder = DistanceListBuilder(LookaheadFifo(sequence, window=4))
    assert builder.access_positions(4) == [0, 2, 3]
    assert builder.access_positions(2) == [1]
    assert builder.access_positions(9) == []


def test_reuse_distance_histogram():
    sequence = np.array([1, 2, 1, 2, 1])
    builder = DistanceListBuilder(LookaheadFifo(sequence, window=10))
    histogram = builder.reuse_distance_histogram()
    assert histogram == {2: 3}
    assert builder.reuse_distance_histogram(max_distance=1) == {}


def test_window_property():
    builder = DistanceListBuilder(LookaheadFifo(np.array([1, 2]), window=7))
    assert builder.window == 7
