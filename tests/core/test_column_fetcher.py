"""Unit tests for the MatA column fetcher (§II-E, Figure 7 load order)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.column_fetcher import ColumnFetcher
from repro.formats.condensed import CondensedMatrix
from repro.formats.csr import CSRMatrix


def _matrix() -> CSRMatrix:
    dense = np.array([
        [1.0, 0.0, 2.0, 0.0],
        [0.0, 3.0, 0.0, 0.0],
        [4.0, 5.0, 6.0, 0.0],
        [0.0, 0.0, 0.0, 0.0],
    ])
    return CSRMatrix.from_dense(dense)


def test_fetch_single_column_streams_by_row():
    fetcher = ColumnFetcher(CondensedMatrix(_matrix()))
    elements = fetcher.fetch_columns([0])
    assert [e.row for e in elements] == [0, 1, 2]
    assert [e.original_col for e in elements] == [0, 1, 0]
    assert [e.condensed_col for e in elements] == [0, 0, 0]
    assert [e.value for e in elements] == [1.0, 3.0, 4.0]


def test_fetch_multiple_columns_uses_figure7_load_sequence():
    """Row-major over rows, condensed columns left to right within a row."""
    fetcher = ColumnFetcher(CondensedMatrix(_matrix()))
    elements = fetcher.fetch_columns([0, 1])
    order = [(e.row, e.condensed_col) for e in elements]
    assert order == [(0, 0), (0, 1), (1, 0), (2, 0), (2, 1)]
    # Duplicated or unordered requests do not change the stream.
    assert order == [(e.row, e.condensed_col)
                     for e in fetcher.fetch_columns([1, 0, 1])]


def test_access_order_matches_original_columns():
    fetcher = ColumnFetcher(CondensedMatrix(_matrix()))
    np.testing.assert_array_equal(fetcher.access_order([0, 1]),
                                  [0, 2, 1, 0, 1])


def test_byte_accounting():
    fetcher = ColumnFetcher(CondensedMatrix(_matrix()), element_bytes=16)
    fetcher.fetch_columns([0])
    assert fetcher.total_elements_fetched == 3
    assert fetcher.total_bytes_fetched == 48
    assert fetcher.column_bytes([0, 1]) == 5 * 16
    assert fetcher.column_bytes([2]) == 1 * 16


def test_empty_and_invalid_requests():
    fetcher = ColumnFetcher(CondensedMatrix(_matrix()))
    assert fetcher.fetch_columns([]) == []
    with pytest.raises(IndexError):
        fetcher.fetch_columns([5])


def test_all_columns_cover_every_nonzero():
    matrix = _matrix()
    condensed = CondensedMatrix(matrix)
    fetcher = ColumnFetcher(condensed)
    elements = fetcher.fetch_columns(list(range(condensed.num_condensed_columns)))
    assert len(elements) == matrix.nnz
    dense = np.zeros(matrix.shape)
    for element in elements:
        dense[element.row, element.original_col] = element.value
    np.testing.assert_allclose(dense, matrix.to_dense())
