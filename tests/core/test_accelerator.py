"""End-to-end tests of the SpArch accelerator model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.reference import matrices_allclose, scipy_spgemm
from repro.core.accelerator import SpArch, multiply
from repro.core.config import SpArchConfig
from repro.formats.csr import CSRMatrix
from repro.matrices.synthetic import (
    banded_matrix,
    bipartite_matrix,
    diagonal_matrix,
    powerlaw_matrix,
    random_matrix,
)
from repro.memory.traffic import TrafficCategory

#: Every combination of the four ablation switches exercised by Figure 16.
ABLATIONS = [
    dict(),
    dict(matrix_condensing=False),
    dict(huffman_scheduler=False),
    dict(row_prefetcher=False),
    dict(matrix_condensing=False, huffman_scheduler=False, row_prefetcher=False),
    dict(pipelined_merge=False, matrix_condensing=False,
         huffman_scheduler=False, row_prefetcher=False),
]


class TestFunctionalCorrectness:
    def test_small_known_product(self, small_csr_pair):
        a, b = small_csr_pair
        result = multiply(a, b)
        expected = a.to_dense() @ b.to_dense()
        np.testing.assert_allclose(result.matrix.to_dense(), expected)

    def test_family_matrices_squared(self, family_matrix):
        result = multiply(family_matrix, family_matrix)
        assert matrices_allclose(result.matrix,
                                 scipy_spgemm(family_matrix, family_matrix))

    def test_rectangular_product(self):
        a = bipartite_matrix(30, 50, 4.0, seed=1)
        b = bipartite_matrix(50, 20, 3.0, seed=2)
        result = multiply(a, b)
        assert result.matrix.shape == (30, 20)
        assert matrices_allclose(result.matrix, scipy_spgemm(a, b))

    @pytest.mark.parametrize("features", ABLATIONS)
    def test_every_ablation_is_functionally_exact(self, features):
        matrix = powerlaw_matrix(120, 5.0, seed=21)
        config = SpArchConfig().with_features(**features)
        result = SpArch(config).multiply(matrix, matrix)
        assert matrices_allclose(result.matrix, scipy_spgemm(matrix, matrix))

    def test_small_merge_tree_forces_many_rounds(self):
        matrix = powerlaw_matrix(150, 6.0, seed=3)
        config = SpArchConfig().replace(merge_tree_layers=2)  # 4-way merger
        result = SpArch(config).multiply(matrix, matrix)
        assert result.stats.num_merge_rounds > 1
        assert matrices_allclose(result.matrix, scipy_spgemm(matrix, matrix))

    def test_identity_product(self):
        identity = diagonal_matrix(32)
        matrix = random_matrix(32, 32, 128, seed=5)
        result = multiply(identity, matrix)
        assert matrices_allclose(result.matrix, matrix)

    def test_empty_operands(self):
        empty = CSRMatrix.empty((10, 10))
        matrix = random_matrix(10, 10, 30, seed=1)
        assert multiply(empty, matrix).matrix.nnz == 0
        assert multiply(matrix, empty).matrix.nnz == 0
        assert multiply(empty, empty).stats.dram_bytes == 0

    def test_dimension_mismatch_rejected(self):
        a = random_matrix(10, 11, 20, seed=1)
        with pytest.raises(ValueError, match="dimension mismatch"):
            multiply(a, a)

    def test_cancellation_is_eliminated_from_output(self):
        # A crafted product where entries cancel exactly: the zero eliminator
        # must drop them from the final CSR result.
        a = CSRMatrix.from_dense(np.array([[1.0, 1.0]]))
        b = CSRMatrix.from_dense(np.array([[3.0], [-3.0]]))
        result = multiply(a, b)
        assert result.matrix.nnz == 0
        assert result.stats.multiplications == 2


class TestStatistics:
    @pytest.fixture
    def result(self):
        matrix = powerlaw_matrix(200, 6.0, seed=8)
        return SpArch().multiply(matrix, matrix), matrix

    def test_multiplication_and_addition_counts(self, result):
        spgemm, matrix = result
        stats = spgemm.stats
        b_row_nnz = matrix.nnz_per_row()
        expected_multiplications = int(b_row_nnz[matrix.indices].sum())
        assert stats.multiplications == expected_multiplications
        # Every duplicate fold is one addition; output nnz + additions can
        # only exceed the product count when exact cancellations occur.
        assert stats.additions >= expected_multiplications - stats.output_nnz
        assert stats.output_nnz == spgemm.matrix.nnz

    def test_traffic_composition(self, result):
        spgemm, matrix = result
        traffic = spgemm.stats.traffic
        a_bytes = traffic.bytes_by_category[TrafficCategory.MATRIX_A_READ]
        assert a_bytes == matrix.nnz * 16
        assert traffic.bytes_by_category[TrafficCategory.RESULT_WRITE] == (
            spgemm.matrix.nnz * 16)
        assert traffic.total_bytes == traffic.read_bytes + traffic.write_bytes
        assert spgemm.stats.dram_bytes == traffic.total_bytes

    def test_condensing_statistics(self, result):
        spgemm, matrix = result
        stats = spgemm.stats
        assert stats.condensed_columns == matrix.max_row_length()
        assert stats.num_partial_matrices == stats.condensed_columns
        assert stats.scheduler == "huffman"

    def test_cycle_model_consistency(self, result):
        spgemm, _ = result
        stats = spgemm.stats
        assert stats.cycles >= max(stats.compute_cycles, stats.memory_cycles)
        assert stats.runtime_seconds == pytest.approx(stats.cycles / 1e9)
        assert 0.0 < stats.bandwidth_utilization <= 1.0
        assert stats.gflops > 0
        assert stats.operational_intensity > 0

    def test_prefetch_hit_rate_bounds(self, result):
        spgemm, _ = result
        assert 0.0 <= spgemm.stats.prefetch_hit_rate <= 1.0
        assert spgemm.stats.prefetch_bytes_saved >= 0


class TestTechniqueEffects:
    """The directional claims of Figure 2/16 hold on a sparse power-law matrix."""

    @pytest.fixture(scope="class")
    def matrix(self):
        return powerlaw_matrix(400, 5.0, seed=13)

    def _traffic(self, matrix, **features) -> int:
        config = SpArchConfig().replace(
            prefetch_buffer_lines=32, lookahead_fifo_elements=256,
        ).with_features(**features)
        return SpArch(config).multiply(matrix, matrix).stats.dram_bytes

    def test_condensing_reduces_partial_matrices(self, matrix):
        full = SpArch().multiply(matrix, matrix).stats
        uncondensed = SpArch(SpArchConfig().with_features(
            matrix_condensing=False)).multiply(matrix, matrix).stats
        assert full.num_partial_matrices < uncondensed.num_partial_matrices

    def test_prefetcher_reduces_traffic(self, matrix):
        with_prefetcher = self._traffic(matrix)
        without_prefetcher = self._traffic(matrix, row_prefetcher=False)
        assert with_prefetcher < without_prefetcher

    def test_huffman_never_worse_than_sequential(self, matrix):
        config = SpArchConfig().replace(merge_tree_layers=3,
                                        prefetch_buffer_lines=32)
        huffman = SpArch(config).multiply(matrix, matrix).stats
        sequential = SpArch(config.with_features(
            huffman_scheduler=False)).multiply(matrix, matrix).stats
        assert huffman.traffic.partial_matrix_bytes <= (
            sequential.traffic.partial_matrix_bytes)

    def test_two_phase_dataflow_spills_every_product(self, matrix):
        config = SpArchConfig().with_features(
            pipelined_merge=False, matrix_condensing=False,
            huffman_scheduler=False, row_prefetcher=False)
        stats = SpArch(config).multiply(matrix, matrix).stats
        # Every multiplied element is written to DRAM and read back at least
        # once — the OuterSPACE behaviour SpArch eliminates.
        assert stats.traffic.partial_matrix_bytes >= 2 * stats.multiplications * 16

    def test_pipelined_merge_avoids_leaf_spills(self, matrix):
        pipelined = SpArch(SpArchConfig()).multiply(matrix, matrix).stats
        assert pipelined.traffic.partial_matrix_bytes < (
            2 * pipelined.multiplications * 16)


def test_multiply_convenience_function_uses_config():
    matrix = random_matrix(64, 64, 256, seed=2)
    config = SpArchConfig().with_features(row_prefetcher=False)
    result = multiply(matrix, matrix, config)
    assert result.stats.prefetch_hit_rate in (0.0, pytest.approx(
        result.stats.prefetch_hit_rate))
    assert SpArch(config).config is config
    assert repr(result).startswith("SpGEMMResult")
