"""Unit tests for the partial-matrix store and result writer (§II-E)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partial_matrix import PartialMatrixStore, PartialMatrixWriter
from repro.memory.traffic import TrafficCategory, TrafficCounter


def test_store_write_read_roundtrip():
    traffic = TrafficCounter()
    store = PartialMatrixStore(traffic, element_bytes=16)
    keys = np.array([1, 5, 9])
    vals = np.array([1.0, 2.0, 3.0])
    store.write(7, keys, vals)
    assert store.num_stored == 1
    assert store.contains(7)
    assert store.peek_nnz(7) == 3
    got_keys, got_vals = store.read(7)
    np.testing.assert_array_equal(got_keys, keys)
    np.testing.assert_allclose(got_vals, vals)
    assert store.num_stored == 0
    assert not store.contains(7)


def test_store_traffic_accounting():
    traffic = TrafficCounter()
    store = PartialMatrixStore(traffic, element_bytes=16)
    store.write(1, np.array([1, 2]), np.array([1.0, 2.0]))
    store.read(1)
    assert traffic.bytes_by_category[TrafficCategory.PARTIAL_WRITE] == 32
    assert traffic.bytes_by_category[TrafficCategory.PARTIAL_READ] == 32
    assert store.total_spilled_elements == 2
    assert store.total_reloaded_elements == 2


def test_store_error_paths():
    store = PartialMatrixStore(TrafficCounter())
    store.write(1, np.array([1]), np.array([1.0]))
    with pytest.raises(ValueError, match="already stored"):
        store.write(1, np.array([2]), np.array([2.0]))
    with pytest.raises(ValueError, match="equal length"):
        store.write(2, np.array([1, 2]), np.array([1.0]))
    with pytest.raises(KeyError):
        store.read(99)


def test_writer_produces_csr_and_charges_traffic():
    traffic = TrafficCounter()
    writer = PartialMatrixWriter(traffic, element_bytes=16, fifo_depth=64)
    # Keys are linearised (row * num_cols + col) for a 3x4 result.
    keys = np.array([0 * 4 + 1, 1 * 4 + 2, 2 * 4 + 3])
    vals = np.array([1.0, 2.0, 3.0])
    result = writer.write_result(keys, vals, (3, 4))
    expected = np.zeros((3, 4))
    expected[0, 1], expected[1, 2], expected[2, 3] = 1.0, 2.0, 3.0
    np.testing.assert_allclose(result.to_dense(), expected)
    assert traffic.bytes_by_category[TrafficCategory.RESULT_WRITE] == 3 * 16
    assert writer.total_elements_written == 3
    assert writer.fifo_depth == 64


def test_writer_empty_result():
    writer = PartialMatrixWriter(TrafficCounter())
    result = writer.write_result(np.empty(0, np.int64), np.empty(0), (2, 2))
    assert result.nnz == 0
    with pytest.raises(ValueError):
        writer.write_result(np.array([1]), np.empty(0), (2, 2))
