"""Unit tests for the synthetic matrix generators and rMAT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices.rmat import RMATConfig, generate_rmat, rmat_benchmark_name
from repro.matrices.synthetic import (
    banded_matrix,
    bipartite_matrix,
    diagonal_matrix,
    powerlaw_matrix,
    random_matrix,
    road_network_matrix,
)


class TestRMAT:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            RMATConfig(num_rows=64, edge_factor=4, a=0.9, b=0.3, c=0.1, d=0.1)
        with pytest.raises(ValueError):
            RMATConfig(num_rows=0, edge_factor=4)
        config = RMATConfig(num_rows=128, edge_factor=8)
        assert config.num_edges == 1024
        assert config.density == pytest.approx(8 / 128)

    def test_generation_is_deterministic(self):
        config = RMATConfig(num_rows=256, edge_factor=4, seed=42)
        first = generate_rmat(config)
        second = generate_rmat(config)
        np.testing.assert_array_equal(first.indices, second.indices)
        np.testing.assert_allclose(first.data, second.data)

    def test_dimension_and_nnz(self):
        matrix = generate_rmat(RMATConfig(num_rows=500, edge_factor=8, seed=1))
        assert matrix.shape == (500, 500)
        # Duplicate edges are merged, so nnz is close to but at most E.
        assert 0.5 * 4000 < matrix.nnz <= 4000

    def test_skew_produces_heavier_tail_than_uniform(self):
        skewed = generate_rmat(RMATConfig(num_rows=512, edge_factor=8,
                                          a=0.7, b=0.1, c=0.1, d=0.1, seed=3))
        uniform = generate_rmat(RMATConfig(num_rows=512, edge_factor=8,
                                           a=0.25, b=0.25, c=0.25, d=0.25, seed=3))
        assert skewed.max_row_length() > uniform.max_row_length()

    def test_benchmark_name(self):
        assert rmat_benchmark_name(5000, 32) == "rmat-5k-x32"
        assert rmat_benchmark_name(1234, 4) == "rmat-1234-x4"


class TestSyntheticFamilies:
    def test_random_matrix_shape_and_nnz(self):
        matrix = random_matrix(100, 80, 500, seed=1)
        assert matrix.shape == (100, 80)
        assert 0.8 * 500 <= matrix.nnz <= 500
        assert matrix.has_sorted_rows()

    def test_diagonal_matrix(self):
        matrix = diagonal_matrix(10, value=3.0)
        np.testing.assert_allclose(matrix.to_dense(), 3.0 * np.eye(10))

    def test_banded_matrix_stays_near_diagonal(self):
        matrix = banded_matrix(200, 5.0, bandwidth=10, seed=2)
        rows = np.repeat(np.arange(200), matrix.nnz_per_row())
        assert np.all(np.abs(rows - matrix.indices) <= 10)
        # The diagonal is always present (FEM-style).
        dense = matrix.to_dense()
        assert np.all(np.diagonal(dense) != 0.0)

    def test_powerlaw_matrix_degree_skew(self):
        matrix = powerlaw_matrix(512, 4.0, seed=4)
        row_nnz = matrix.nnz_per_row()
        assert row_nnz.max() > 4 * max(1.0, np.median(row_nnz))

    def test_road_network_low_constant_degree(self):
        matrix = road_network_matrix(400, seed=5)
        assert matrix.shape == (400, 400)
        assert matrix.nnz_per_row().mean() < 8

    def test_bipartite_matrix_rectangular(self):
        matrix = bipartite_matrix(60, 200, 3.0, seed=6)
        assert matrix.shape == (60, 200)
        assert matrix.nnz >= 60  # every row has at least one element

    def test_generators_reject_bad_arguments(self):
        with pytest.raises(ValueError):
            random_matrix(0, 10, 5)
        with pytest.raises(ValueError):
            banded_matrix(10, 0.0)
        with pytest.raises(ValueError):
            powerlaw_matrix(10, -1.0)
        with pytest.raises(ValueError):
            road_network_matrix(10, extra_edge_fraction=2.0)
        with pytest.raises(ValueError):
            bipartite_matrix(10, 10, 0.0)

    def test_seeds_give_reproducible_matrices(self):
        first = powerlaw_matrix(128, 4.0, seed=11)
        second = powerlaw_matrix(128, 4.0, seed=11)
        different = powerlaw_matrix(128, 4.0, seed=12)
        np.testing.assert_array_equal(first.indices, second.indices)
        assert not np.array_equal(first.indices, different.indices) or (
            not np.allclose(first.data, different.data))
