"""Unit tests for the 20-matrix benchmark-suite proxies."""

from __future__ import annotations

import pytest

from repro.matrices.suite import (
    SUITE,
    benchmark_names,
    get_benchmark_spec,
    load_benchmark,
    load_suite,
    proxy_dimensions,
)


def test_suite_has_the_papers_20_matrices():
    names = benchmark_names()
    assert len(names) == 20
    for expected in ("2cubes_sphere", "wiki-Vote", "web-Google", "roadNet-CA",
                     "cit-Patents", "facebook"):
        assert expected in names


def test_specs_have_published_statistics():
    spec = get_benchmark_spec("wiki-Vote")
    assert spec.num_rows == 8_297
    assert spec.nnz == 103_689
    assert spec.avg_row_nnz == pytest.approx(103_689 / 8_297)
    assert 0 < spec.density < 1
    with pytest.raises(KeyError):
        get_benchmark_spec("not-a-matrix")


def test_proxy_dimensions_preserve_average_row_length():
    spec = get_benchmark_spec("web-Google")
    rows, cols, avg_row_nnz = proxy_dimensions(spec, max_rows=1000)
    assert rows <= 1000
    assert avg_row_nnz == pytest.approx(spec.avg_row_nnz)
    # Small matrices are not scaled up.
    small = get_benchmark_spec("facebook")
    rows, _, _ = proxy_dimensions(small, max_rows=100_000)
    assert rows == small.num_rows


def test_load_benchmark_is_deterministic():
    first = load_benchmark("wiki-Vote", max_rows=500)
    second = load_benchmark("wiki-Vote", max_rows=500)
    assert first.nnz == second.nnz
    assert first.shape == second.shape
    assert (first.indices == second.indices).all()


def test_load_benchmark_matches_family_statistics():
    matrix = load_benchmark("poisson3Da", max_rows=800)
    spec = get_benchmark_spec("poisson3Da")
    assert matrix.shape[0] <= 800
    # The proxy's average row length is within 2x of the original's.
    proxy_avg = matrix.nnz / matrix.shape[0]
    assert 0.5 * spec.avg_row_nnz < proxy_avg < 2.0 * spec.avg_row_nnz


def test_load_suite_subset():
    subset = load_suite(max_rows=300, names=["facebook", "wiki-Vote"])
    assert set(subset) == {"facebook", "wiki-Vote"}
    for matrix in subset.values():
        assert matrix.shape[0] <= 300
        assert matrix.nnz > 0


def test_every_spec_family_is_loadable():
    seen_families = set()
    for spec in SUITE:
        if spec.family in seen_families:
            continue
        seen_families.add(spec.family)
        matrix = load_benchmark(spec.name, max_rows=200)
        assert matrix.nnz > 0
