"""Per-cell wall-clock timeouts: hung engines fail retryable, never block.

A deliberately sleeping stub engine stands in for a pathological config
that hangs the simulator.  With ``timeout``/``cell_timeout`` set, the
runner kills the cell's process at its deadline and reports ``None`` for
that point, and ``run_sweep`` marks the cell failed-retryable while the
rest of the shard completes.
"""

from __future__ import annotations

import time

import pytest

from repro.engines.base import Engine, EngineRun
from repro.engines.sparch import SpArchEngine
from repro.experiments.runner import ExperimentRunner, run_tasks_with_timeout
from repro.matrices.synthetic import random_matrix


class SleepyEngine(Engine):
    """A baseline-kind engine that sleeps forever (for timeout tests)."""

    name = "sleepy"
    display_name = "Sleepy"
    kind = "baseline"

    def __init__(self, sleep_seconds: float = 3600.0) -> None:
        self.sleep_seconds = sleep_seconds

    def run(self, matrix_a, matrix_b=None) -> EngineRun:
        time.sleep(self.sleep_seconds)
        raise AssertionError("unreachable: the sleep should outlive any "
                             "test timeout")

    def cache_fields(self) -> dict:
        return {"model": "sleepy", "sleep": self.sleep_seconds}

    def using_backend(self, backend: str) -> "SleepyEngine":
        return self

    @property
    def backend(self) -> str:
        return "scalar"


class ExplodingEngine(SleepyEngine):
    """An engine whose run always raises (a crashing, not hanging, cell)."""

    name = "exploding"

    def run(self, matrix_a, matrix_b=None) -> EngineRun:
        raise RuntimeError("boom")


MATRIX = random_matrix(48, 48, 200, seed=7)


class TestRunTasksWithTimeout:
    def test_hung_task_is_killed_at_the_deadline(self):
        started = time.monotonic()
        outcomes = run_tasks_with_timeout(
            [("hung", (SleepyEngine(), MATRIX, None))], timeout=0.3)
        assert outcomes == {"hung": None}
        assert time.monotonic() - started < 30.0  # killed, not slept out

    def test_mixed_batch_completes_around_the_hung_task(self):
        outcomes = run_tasks_with_timeout(
            [("hung", (SleepyEngine(), MATRIX, None)),
             ("good", (SpArchEngine(), MATRIX, None)),
             ("crash", (ExplodingEngine(), MATRIX, None))],
            timeout=1.2, jobs=3)
        assert outcomes["hung"] is None
        assert isinstance(outcomes["good"], dict)  # a real report payload
        assert outcomes["good"]["engine"] == "sparch"
        assert isinstance(outcomes["crash"], str)  # the relayed error
        assert "boom" in outcomes["crash"]

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="timeout"):
            run_tasks_with_timeout([], timeout=0.0)


class TestRunnerTimeout:
    def test_run_engine_many_returns_none_for_hung_points(self):
        runner = ExperimentRunner()
        reports = runner.run_engine_many(
            [(SleepyEngine(), MATRIX), (SpArchEngine(), MATRIX)],
            timeout=1.0)
        assert reports[0] is None
        assert reports[1] is not None and reports[1].engine == "sparch"

    def test_failed_points_stay_uncached_and_retry(self):
        """A timed-out point must not enter the memo: a later attempt
        really re-executes instead of replaying the failure."""
        runner = ExperimentRunner()
        sleepy = SleepyEngine(sleep_seconds=0.4)
        [report] = runner.run_engine_many([(sleepy, MATRIX)], timeout=0.1)
        assert report is None
        assert (runner.cache_misses, runner.cache_hits) == (1, 0)
        [report] = runner.run_engine_many([(sleepy, MATRIX)], timeout=0.1)
        assert report is None
        # A second miss, not a hit: the failure was never memoised.
        assert (runner.cache_misses, runner.cache_hits) == (2, 0)

    def test_without_timeout_nothing_changes(self):
        runner = ExperimentRunner()
        reports = runner.run_engine_many([(SpArchEngine(), MATRIX)])
        assert all(report is not None for report in reports)


class TestSweepCellTimeout:
    def test_hung_cell_marks_failed_retryable_and_shard_completes(
            self, tmp_path, monkeypatch):
        """A sweep whose engine hangs on every cell must still terminate,
        reporting every cell failed-retryable; a later run with a sane
        engine picks exactly those cells back up."""
        from repro.sweeps import get_sweep, run_sweep

        smoke = get_sweep("smoke")
        runner = ExperimentRunner()

        # Hang only the 'mkl' cells: patch the registry resolution the
        # driver uses to build engines.
        import repro.sweeps.driver as driver_module

        real_create = driver_module.create_engine

        def hanging_create(name, config=None):
            if name == "mkl":
                return SleepyEngine()
            return (real_create(name, config=config) if config is not None
                    else real_create(name))

        monkeypatch.setattr(driver_module, "create_engine", hanging_create)
        store_path = tmp_path / "store.jsonl"
        summary, store = run_sweep(smoke, store=store_path, runner=runner,
                                   cell_timeout=0.5)
        assert summary.failed == 3  # the three mkl cells hung
        assert summary.executed == 3  # the sparch cells completed
        assert all("mkl" in cell for cell in summary.failed_cells)
        assert "failed-retryable" in summary.render()
        assert len(store) == 3

        # Resume with the healthy engine: only the failed cells re-run.
        monkeypatch.setattr(driver_module, "create_engine", real_create)
        resumed, store = run_sweep(smoke, store=store_path, runner=runner)
        assert resumed.executed == 3 and resumed.replayed == 3
        assert resumed.failed == 0
        assert len(store) == 6
