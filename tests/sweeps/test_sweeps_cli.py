"""The ``python -m repro.sweeps`` run / merge / summarise CLI."""

from __future__ import annotations

import pytest

from repro.sweeps.__main__ import _parse_shard, build_parser, main


class TestListing:
    def test_list_prints_sweeps_and_corpora(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        for name in ("smoke", "fig17-dse", "engines-suite", "rmat-sweep",
                     "suite-ladder", "density-sweep"):
            assert name in output

    def test_no_arguments_behaves_like_list(self, capsys):
        assert main([]) == 0
        assert "registered sweeps" in capsys.readouterr().out


class TestShardParsing:
    def test_valid_shard(self):
        assert _parse_shard("1/3") == (1, 3)

    @pytest.mark.parametrize("value", ["x", "3", "2/2", "-1/2", "0/0"])
    def test_invalid_shards_rejected(self, value):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_shard(value)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["run", "smoke"])
        assert args.shard == (0, 1)
        assert args.store is None and args.cache_dir is None


class TestEndToEnd:
    def test_shard_run_merge_summarise(self, capsys, tmp_path):
        shard_paths = []
        for shard_index in (0, 1):
            path = tmp_path / f"shard{shard_index}.jsonl"
            assert main(["run", "smoke", "--store", str(path),
                         "--shard", f"{shard_index}/2",
                         "--max-rows", "64"]) == 0
            assert "executed" in capsys.readouterr().out
            shard_paths.append(path)

        merged = tmp_path / "merged.jsonl"
        assert main(["merge", "--out", str(merged),
                     *map(str, shard_paths)]) == 0
        assert "6 records" in capsys.readouterr().out

        # The merge is canonical: a single-shard reference merges to the
        # same bytes the two shard artifacts did.
        reference = tmp_path / "reference.jsonl"
        assert main(["run", "smoke", "--store", str(reference),
                     "--max-rows", "64"]) == 0
        reference_merged = tmp_path / "reference-merged.jsonl"
        assert main(["merge", "--out", str(reference_merged),
                     str(reference)]) == 0
        capsys.readouterr()
        assert merged.read_bytes() == reference_merged.read_bytes()

        assert main(["summarise", str(merged)]) == 0
        output = capsys.readouterr().out
        assert "sparch" in output and "mkl" in output

    def test_resumed_run_reports_replayed_cells(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        assert main(["run", "smoke", "--store", str(store),
                     "--max-rows", "64", "--max-cells", "2"]) == 0
        assert "2 executed" in capsys.readouterr().out
        assert main(["run", "smoke", "--store", str(store),
                     "--max-rows", "64"]) == 0
        assert "2 replayed" in capsys.readouterr().out

    def test_unknown_sweep_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="unknown sweep"):
            main(["run", "not-a-sweep"])
