"""Sweep driver: cell enumeration, shard assignment, resume, memo sharing."""

from __future__ import annotations

import pytest

from repro.core.config import SpArchConfig
from repro.engines.registry import get_engine_entry
from repro.experiments.runner import ExperimentRunner
from repro.sweeps import (
    SweepSpec,
    enumerate_cells,
    get_sweep,
    list_sweeps,
    merge_records,
    render_records,
    run_sweep,
    shard_cells,
)
from repro.sweeps.driver import (
    group_reports,
    summarise_records,
    summarise_store_file,
)
from repro.sweeps.store import ResultStore

SMOKE = get_sweep("smoke")


@pytest.fixture(scope="module")
def warm_runner():
    """One memoising runner shared across the module: every test sees the
    same deterministic reports, and the engine points compute only once."""
    return ExperimentRunner()


class TestRegistry:
    def test_registered_sweeps(self):
        assert "smoke" in list_sweeps()
        assert "fig17-dse" in list_sweeps()
        with pytest.raises(KeyError, match="unknown sweep"):
            get_sweep("not-a-sweep")

    def test_fig17_sweep_reexpresses_the_grid(self):
        spec = get_sweep("fig17-dse")
        labels = [label for label, _ in spec.configs]
        # 7 line sizes + 4 shapes + 5 comparator sizes + 5 FIFO sizes.
        assert len(labels) == 21
        assert any(label.startswith("comparator:") for label in labels)
        assert len(enumerate_cells(spec)) == 21 * 5  # x 5 DSE benchmarks

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="no engines"):
            SweepSpec("x", "t", corpus="smoke", engines=())
        with pytest.raises(ValueError, match="duplicate config labels"):
            SweepSpec("x", "t", corpus="smoke", engines=("sparch",),
                      configs=(("a", SpArchConfig()), ("a", SpArchConfig())))
        with pytest.raises(ValueError, match="reserved"):
            SweepSpec("x", "t", corpus="smoke", engines=("sparch",),
                      configs=(("-", SpArchConfig()),))
        with pytest.raises(KeyError, match="unknown engine"):
            SweepSpec("x", "t", corpus="smoke", engines=("warp-drive",))


class TestCellEnumeration:
    def test_canonical_order_is_scenario_major(self):
        cells = enumerate_cells(SMOKE)
        assert [cell.index for cell in cells] == list(range(len(cells)))
        # Simulation engines get one cell per config, baselines one cell.
        per_scenario = len(SMOKE.configs) + 1  # sparch configs + mkl
        assert len(cells) == 3 * per_scenario
        assert cells[0].engine == "sparch" and cells[0].config is not None
        assert cells[1].engine == "mkl" and cells[1].config is None
        assert cells[1].config_label == "-"

    def test_baseline_cells_ignore_the_config_axis(self):
        for cell in enumerate_cells(SMOKE):
            kind = get_engine_entry(cell.engine).kind
            assert (cell.config is None) == (kind == "baseline")

    def test_shards_partition_the_grid(self):
        cells = enumerate_cells(SMOKE)
        for shard_count in (1, 2, 3, 4):
            shards = [shard_cells(cells, index, shard_count)
                      for index in range(shard_count)]
            indices = [cell.index for shard in shards for cell in shard]
            assert sorted(indices) == [cell.index for cell in cells]

    def test_shard_arguments_validated(self):
        cells = enumerate_cells(SMOKE)
        with pytest.raises(ValueError):
            shard_cells(cells, 0, 0)
        with pytest.raises(ValueError):
            shard_cells(cells, 2, 2)


class TestDriver:
    def test_full_run_covers_every_cell(self, warm_runner):
        summary, store = run_sweep(SMOKE, runner=warm_runner)
        assert summary.cells_grid == summary.cells_shard == len(store)
        assert summary.executed + summary.replayed == summary.cells_shard
        assert summary.remaining == 0
        for record in store.records:
            assert record.sweep_id == "smoke"
            assert record.report["schema_version"] > 0

    def test_rerun_on_same_store_executes_nothing(self, warm_runner,
                                                  tmp_path):
        path = tmp_path / "store.jsonl"
        first, _ = run_sweep(SMOKE, store=path, runner=warm_runner)
        again, _ = run_sweep(SMOKE, store=path, runner=warm_runner)
        assert first.executed == first.cells_shard
        assert (again.executed, again.replayed) == (0, again.cells_shard)

    def test_store_records_share_the_runner_fingerprint(self, warm_runner,
                                                        tmp_path):
        """The store key IS the runner's memo key: a sweep warmed through a
        cache-dir replays from the disk memo on a fresh runner."""
        cache_dir = tmp_path / "cache"
        writer = ExperimentRunner(cache_dir=cache_dir)
        run_sweep(SMOKE, runner=writer)
        reader = ExperimentRunner(cache_dir=cache_dir)
        summary, _ = run_sweep(SMOKE, runner=reader)
        assert summary.executed == summary.cells_shard  # cells re-append...
        assert reader.cache_misses == 0                 # ...from the memo

    def test_kill_and_resume_matches_uninterrupted_run(self, warm_runner,
                                                       tmp_path):
        reference, _ = run_sweep(SMOKE, store=tmp_path / "ref.jsonl",
                                 runner=warm_runner)
        partial_path = tmp_path / "part.jsonl"
        killed, _ = run_sweep(SMOKE, store=partial_path, runner=warm_runner,
                              max_cells=2)
        assert (killed.executed, killed.remaining) == (2, 4)
        resumed, resumed_store = run_sweep(SMOKE, store=partial_path,
                                           runner=warm_runner)
        assert resumed.executed == 4 and resumed.replayed == 2
        assert render_records(merge_records(resumed_store.records)) == \
            render_records(merge_records(ResultStore(tmp_path / "ref.jsonl")
                                         .records))
        assert reference.cells_grid == len(resumed_store)

    def test_resume_after_torn_tail_is_byte_identical(self, warm_runner,
                                                      tmp_path):
        """A kill that tears the store's final line mid-write must still
        resume to the canonical bytes: the torn cell recomputes and its
        record is not glued onto the fragment."""
        reference, _ = run_sweep(SMOKE, store=tmp_path / "ref.jsonl",
                                 runner=warm_runner)
        path = tmp_path / "torn.jsonl"
        run_sweep(SMOKE, store=path, runner=warm_runner, max_cells=3)
        content = path.read_text()
        path.write_text(content[:-15])  # tear the last record mid-line
        resumed, store = run_sweep(SMOKE, store=path, runner=warm_runner)
        assert resumed.executed == 4  # the torn cell recomputed
        assert render_records(merge_records(
            ResultStore(path).records)) == \
            render_records(merge_records(ResultStore(tmp_path / "ref.jsonl")
                                         .records))

    def test_two_shard_merge_equals_single_shard(self, warm_runner,
                                                 tmp_path):
        _, reference = run_sweep(SMOKE, store=tmp_path / "ref.jsonl",
                                 runner=warm_runner)
        shard_stores = []
        for shard_index in (0, 1):
            _, store = run_sweep(
                SMOKE, store=tmp_path / f"shard{shard_index}.jsonl",
                runner=warm_runner, shard_index=shard_index, shard_count=2)
            shard_stores.append(store)
        merged = merge_records([record for store in shard_stores
                                for record in store.records])
        assert render_records(merged) == \
            render_records(merge_records(reference.records))

    def test_coinciding_configs_record_every_cell_but_compute_once(self):
        """Two config labels collapsing to the same effective design (as
        fig17's line:64x48 / shape:1024x48 do at small scale) must both
        appear in the store — the grid never loses a point, including the
        paper's chosen one — while the computation runs once per
        fingerprint through the runner's memo."""
        spec = SweepSpec("twins", "coinciding configs", corpus="smoke",
                         engines=("sparch",),
                         configs=(("a", SpArchConfig()),
                                  ("b", SpArchConfig())))
        runner = ExperimentRunner()
        summary, store = run_sweep(spec, runner=runner)
        assert summary.executed == len(store) == 6  # 3 scenarios x 2 labels
        labels = {record.config_label for record in store.records}
        assert labels == {"a", "b"}
        assert runner.cache_misses == 3  # one computation per fingerprint
        assert runner.cache_hits == 3
        # Coinciding cells carry the same fingerprint and report payload.
        by_cell = {(r.scenario, r.config_label): r for r in store.records}
        for scenario in {r.scenario for r in store.records}:
            assert by_cell[(scenario, "a")].key == \
                by_cell[(scenario, "b")].key
            assert by_cell[(scenario, "a")].report == \
                by_cell[(scenario, "b")].report

    def test_max_cells_zero_executes_nothing(self, warm_runner):
        summary, store = run_sweep(SMOKE, runner=warm_runner, max_cells=0)
        assert summary.executed == 0 and len(store) == 0
        with pytest.raises(ValueError, match="max_cells"):
            run_sweep(SMOKE, runner=warm_runner, max_cells=-1)

    def test_resume_with_different_scale_is_refused(self, warm_runner,
                                                    tmp_path):
        """A store written at one corpus scale must not be resumed at
        another: the fingerprints differ, so every cell would re-execute
        and append a second, indistinguishable copy of the grid."""
        path = tmp_path / "store.jsonl"
        run_sweep(SMOKE, store=path, runner=warm_runner, max_rows=64)
        with pytest.raises(ValueError, match="different fingerprint"):
            run_sweep(SMOKE, store=path, runner=warm_runner)

    def test_resume_with_forced_backend_is_refused(self, warm_runner,
                                                   tmp_path):
        path = tmp_path / "store.jsonl"
        run_sweep(SMOKE, store=path, runner=warm_runner)
        forced = ExperimentRunner(engine="scalar")
        with pytest.raises(ValueError, match="different fingerprint"):
            run_sweep(SMOKE, store=path, runner=forced)

    def test_resume_of_another_shard_with_different_scale_is_refused(
            self, warm_runner, tmp_path):
        """The guard must also cover records *outside* the resuming
        shard's slice: running shard 1 onto a store shard 0 wrote at a
        different scale would otherwise mix two grids in one file."""
        path = tmp_path / "store.jsonl"
        run_sweep(SMOKE, store=path, runner=warm_runner, shard_index=0,
                  shard_count=2, max_rows=64)
        with pytest.raises(ValueError, match="different fingerprint"):
            run_sweep(SMOKE, store=path, runner=warm_runner, shard_index=1,
                      shard_count=2)

    def test_resume_after_spec_edit_reordering_cells_is_refused(
            self, warm_runner, tmp_path):
        """Reordering a sweep's grid (same fingerprints, new canonical
        indices) must refuse to resume: stale indices would scramble the
        canonical order the byte-identical merge contract rests on."""
        path = tmp_path / "store.jsonl"
        run_sweep(SMOKE, store=path, runner=warm_runner)
        edited = SweepSpec(SMOKE.sweep_id, SMOKE.title, corpus=SMOKE.corpus,
                           engines=tuple(reversed(SMOKE.engines)),
                           configs=SMOKE.configs)
        with pytest.raises(ValueError, match="does not match the current "
                                             "grid"):
            run_sweep(edited, store=path, runner=warm_runner)

    def test_shared_store_across_sweeps_keeps_each_grid_complete(
            self, warm_runner, tmp_path):
        """Two sweeps may share one store: cells record under their own
        sweep_id even when the computations coincide, and neither grid
        ends up with holes."""
        path = tmp_path / "store.jsonl"
        run_sweep(SMOKE, store=path, runner=warm_runner)
        other = SweepSpec("smoke-twin", "same grid, different id",
                          corpus=SMOKE.corpus, engines=SMOKE.engines,
                          configs=SMOKE.configs)
        summary, store = run_sweep(other, store=path, runner=warm_runner)
        # Every twin cell is recorded (replayed from the runner memo, not
        # silently skipped as done), under its own sweep_id.
        assert summary.executed == 6
        assert len([r for r in store.records
                    if r.sweep_id == "smoke-twin"]) == 6
        assert len(store) == 12

    def test_resume_with_different_shard_count_is_fine(self, warm_runner,
                                                       tmp_path):
        # Same parameters, different slicing: the overlapping cells match
        # their fingerprints, so re-sharding an existing store is legal.
        path = tmp_path / "store.jsonl"
        run_sweep(SMOKE, store=path, runner=warm_runner, shard_index=0,
                  shard_count=2)
        summary, _ = run_sweep(SMOKE, store=path, runner=warm_runner)
        assert summary.replayed == 3 and summary.executed == 3

    def test_noop_resume_builds_no_matrices(self, warm_runner, tmp_path,
                                            monkeypatch):
        """Resuming a fully-recorded sweep must not regenerate operands:
        fingerprints replay from the recipe-keyed memo."""
        from repro.corpus.spec import Scenario

        path = tmp_path / "store.jsonl"
        run_sweep(SMOKE, store=path, runner=warm_runner)  # primes the memo
        builds = []
        original = Scenario.build
        monkeypatch.setattr(Scenario, "build",
                            lambda self: builds.append(self.name)
                            or original(self))
        summary, _ = run_sweep(SMOKE, store=path, runner=warm_runner)
        assert summary.replayed == summary.cells_shard
        assert builds == []

    def test_max_rows_caps_the_corpus(self, warm_runner):
        summary, store = run_sweep(SMOKE, runner=warm_runner, max_rows=64)
        assert summary.cells_grid == 6
        for record in store.records:
            report = record.cost_report()
            assert report.output_nnz >= 0


class TestSummaries:
    def test_group_reports_follows_canonical_order(self, warm_runner):
        _, store = run_sweep(SMOKE, runner=warm_runner)
        groups = group_reports(merge_records(store.records))
        assert list(groups) == [("sparch", "table1"), ("mkl", "-")]
        assert all(len(reports) == 3 for reports in groups.values())

    def test_summarise_records_renders_one_row_per_group(self, warm_runner):
        _, store = run_sweep(SMOKE, runner=warm_runner)
        table = summarise_records(merge_records(store.records))
        assert len(table.rows) == 2
        rendered = table.render()
        assert "sparch" in rendered and "mkl" in rendered

    def test_summarise_store_file_matches_list_path(self, warm_runner,
                                                    tmp_path):
        # The streamed single-pass summary must render the exact table the
        # materialising path produces — same groups, same geomeans.
        path = tmp_path / "store.jsonl"
        run_sweep(SMOKE, store=path, runner=warm_runner)
        store = ResultStore(path)
        want = summarise_records(merge_records(store.records))
        got = summarise_store_file(path)
        assert got.render() == want.render()

    def test_summarise_store_file_filters_by_sweep(self, warm_runner,
                                                   tmp_path):
        import dataclasses

        path = tmp_path / "mixed.jsonl"
        run_sweep(SMOKE, store=path, runner=warm_runner)
        records = ResultStore(path).records
        with open(path, "a") as handle:
            for record in records:
                handle.write(dataclasses.replace(
                    record, sweep_id="other").to_line())
        # Unfiltered: refuse the ambiguous mixture.
        with pytest.raises(ValueError, match="multiple sweeps"):
            summarise_store_file(path)
        # Filtered: one sweep's records only, same table as before the mix.
        want = summarise_records(merge_records(records))
        got = summarise_store_file(path, sweep_id=SMOKE.sweep_id)
        assert got.render() == want.render()
