"""The registered ``sweep`` experiment harness."""

from __future__ import annotations

import pytest

from repro.experiments import get_experiment, list_experiments
from repro.experiments import sweep as sweep_experiment
from repro.experiments.runner import ExperimentRunner


class TestRegistration:
    def test_sweep_is_registered(self):
        assert "sweep" in list_experiments()
        assert get_experiment("sweep").run is sweep_experiment.run


class TestHarness:
    @pytest.fixture(scope="class")
    def result(self):
        return sweep_experiment.run(sweep="smoke",
                                    runner=ExperimentRunner())

    def test_summary_table_and_metrics(self, result):
        assert result.experiment_id == "sweep"
        assert result.metrics["cells"] == 6.0
        assert result.metrics["gflops[sparch|table1]"] > 0
        assert result.metrics["dram[mkl|-]"] > 0
        assert len(result.table.rows) == 2  # one row per (engine, config)

    def test_reports_attached_per_cell(self, result):
        assert len(result.reports) == 6
        assert "wiki-Vote@120|sparch|table1" in result.reports
        # The unified --json payload serialises them verbatim.
        payload = result.to_payload()
        assert len(payload["reports"]) == 6

    def test_shard_run_covers_only_its_slice(self):
        result = sweep_experiment.run(sweep="smoke", shard_index=0,
                                      shard_count=2,
                                      runner=ExperimentRunner())
        assert len(result.reports) == 3

    def test_store_path_persists_and_resumes(self, tmp_path):
        path = tmp_path / "store.jsonl"
        runner = ExperimentRunner()
        first = sweep_experiment.run(sweep="smoke", store_path=str(path),
                                     runner=runner)
        again = sweep_experiment.run(sweep="smoke", store_path=str(path),
                                     runner=runner)
        assert path.is_file()
        assert any("0 executed, 6 replayed" in note for note in again.notes)
        assert again.metrics == first.metrics
