"""The sqlite sidecar index: incremental maintenance, the freshness
protocol (high-water mark, head hash, generation), zero-scan queries,
and the lazy index-backed ``ResultStore`` open."""

from __future__ import annotations

import os

import pytest

from repro.metrics.report import SCHEMA_VERSION
from repro.sweeps.driver import summarise_store_file
from repro.sweeps.index import (
    SweepIndex,
    drop_index,
    ensure_index,
    index_path,
    open_fresh_index,
    summary_columns,
)
from repro.sweeps.store import ResultStore, SweepRecord
from repro.sweeps.synth import synthetic_record, write_synthetic_store


def build_store(path, cells, **kwargs):
    store = ResultStore(path, **kwargs)
    for position in range(cells):
        store.append(synthetic_record(position))
    return store


class TestIncrementalMaintenance:
    def test_appends_index_as_they_land(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = build_store(path, 7)
        assert store.index is not None
        assert store.index.count() == 7
        assert store.index.high_water == os.path.getsize(path)
        store.close()

    def test_incremental_rows_equal_a_from_scratch_rebuild(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = build_store(path, 9)
        incremental = store.index.dump_rows()
        store.index.rebuild()
        assert store.index.dump_rows() == incremental
        store.close()

    def test_catch_up_ingests_only_the_tail(self, tmp_path):
        path = tmp_path / "store.jsonl"
        build_store(path, 4).close()
        # A writer without index maintenance extends the file...
        no_index = ResultStore(path, index=False)
        no_index.append(synthetic_record(4))
        # ...and the next open catches up from the old high-water mark.
        store = ResultStore(path)
        assert len(store) == 5
        assert store.index.count() == 5
        assert store.index.high_water == os.path.getsize(path)
        store.close()

    def test_concurrent_unindexed_writer_gap_is_ingested_on_append(
            self, tmp_path):
        path = tmp_path / "store.jsonl"
        indexed = build_store(path, 2)
        other = ResultStore(path, index=False)
        other.append(synthetic_record(2))  # lands above the indexed hwm
        indexed.append(synthetic_record(3))  # gap-ingests record 2 first
        assert indexed.index.count() == 4
        assert {entry.cell_index
                for entry in indexed.index.cell_entries()} == {0, 1, 2, 3}
        indexed.close()

    def test_torn_tail_stays_below_the_high_water_mark(self, tmp_path):
        path = tmp_path / "store.jsonl"
        build_store(path, 3).close()
        fragment = synthetic_record(3).to_line()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(fragment[:len(fragment) // 2])
        index = ensure_index(path)
        assert index.count() == 3
        assert index.high_water < os.path.getsize(path)
        assert index.is_fresh()  # fully indexed in the record sense
        index.close()

    def test_unterminated_valid_final_line_is_indexed(self, tmp_path):
        path = tmp_path / "store.jsonl"
        build_store(path, 2).close()
        data = path.read_bytes()
        path.write_bytes(data[:-1])  # strip only the final newline
        drop_index(path)
        store = ResultStore(path)
        assert len(store) == 2
        assert store.index.high_water == os.path.getsize(path)
        store.close()


class TestFreshnessProtocol:
    def test_truncated_store_triggers_a_rebuild(self, tmp_path):
        path = tmp_path / "store.jsonl"
        build_store(path, 5).close()
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:2]))
        store = ResultStore(path)
        assert len(store) == 2
        assert [record.cell_index for record in store.records] == [0, 1]
        store.close()

    def test_rewritten_head_triggers_a_rebuild(self, tmp_path):
        # Same size, same line count — only the head hash can tell the
        # file was rewritten underneath the index.
        path = tmp_path / "store.jsonl"
        build_store(path, 6).close()
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(reversed(lines)))
        store = ResultStore(path)
        assert [record.cell_index for record in store.records] == [
            5, 4, 3, 2, 1, 0]
        store.close()

    def test_open_fresh_index_refuses_stale_sidecars(self, tmp_path):
        path = tmp_path / "store.jsonl"
        build_store(path, 3).close()
        assert open_fresh_index(path) is not None
        ResultStore(path, index=False).append(synthetic_record(3))
        assert open_fresh_index(path) is None  # new line is unindexed
        index = ensure_index(path)  # ...but ensure_index catches up
        assert index.count() == 4
        index.close()
        assert open_fresh_index(path) is not None

    def test_dropping_the_sidecar_is_always_recoverable(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = build_store(path, 6)
        reference = store.records
        store.close()
        drop_index(path)
        assert not os.path.exists(index_path(path))
        reopened = ResultStore(path)
        assert reopened.records == reference
        assert reopened.index.count() == 6
        reopened.close()

    def test_store_survives_an_unusable_sidecar_location(self, tmp_path):
        path = tmp_path / "store.jsonl"
        build_store(path, 3, index=False).close()
        os.mkdir(index_path(path))  # block sqlite from creating the db
        store = ResultStore(path)
        assert store.index is None  # silently degraded
        assert len(store) == 3
        store.append(synthetic_record(3))
        assert len(ResultStore(path, index=False)) == 4
        store.close()


class TestLazyStoreOpen:
    def test_lazy_open_defers_hydration(self, tmp_path):
        path = tmp_path / "store.jsonl"
        build_store(path, 5).close()
        store = ResultStore(path)
        assert store._records is None  # nothing parsed yet
        assert len(store) == 5
        assert len(store.done_cells) == 5
        assert store._records is None  # resume surface stays lazy
        store.close()

    def test_hydrated_records_equal_the_eager_scan(self, tmp_path):
        path = tmp_path / "store.jsonl"
        build_store(path, 8).close()
        lazy, eager = ResultStore(path), ResultStore(path, index=False)
        assert lazy.records == eager.records
        assert lazy.reports().keys() == eager.reports().keys()
        lazy.close()

    def test_cell_entries_agree_between_lazy_and_eager(self, tmp_path):
        path = tmp_path / "store.jsonl"
        build_store(path, 6).close()
        lazy, eager = ResultStore(path), ResultStore(path, index=False)
        assert lazy.cell_entries() == eager.cell_entries()
        entry = lazy.cell_entries()[0]
        assert entry.cell == ("synth-sweep", "synth/000000", "sparch",
                              "table1")
        assert entry.report_key == "synth/000000|sparch|table1"
        lazy.close()

    def test_conflicting_concatenated_file_is_refused_lazily_too(
            self, tmp_path):
        path = tmp_path / "store.jsonl"
        record = synthetic_record(0)
        conflicting = SweepRecord(
            sweep_id=record.sweep_id, cell_index=record.cell_index,
            scenario=record.scenario, engine=record.engine,
            config_label=record.config_label, key="other-fingerprint",
            report=record.report)
        path.write_text(record.to_line() + conflicting.to_line())
        with pytest.raises(ValueError, match="conflicting records"):
            ResultStore(path)

    def test_stale_schema_lines_rotate_out(self, tmp_path):
        path = tmp_path / "store.jsonl"
        good = synthetic_record(0)
        stale = dict(good.report, schema_version=SCHEMA_VERSION - 1)
        stale_record = SweepRecord(
            sweep_id=good.sweep_id, cell_index=1, scenario="synth/000000",
            engine="mkl", config_label="-", key="stale",
            report=stale)
        path.write_text(good.to_line() + stale_record.to_line())
        store = ResultStore(path)
        assert len(store) == 1  # the stale line reads as not-done
        store.close()


class TestZeroScanQueries:
    def test_summarise_matches_the_streamed_scan(self, tmp_path):
        path = tmp_path / "store.jsonl"
        write_synthetic_store(path, 400)
        index = ensure_index(path)
        assert (index.summarise(title="T").render()
                == summarise_store_file(path, title="T").render())
        assert (index.summarise(sweep_id="synth-sweep", title="T").render()
                == summarise_store_file(path, sweep_id="synth-sweep",
                                        title="T").render())
        index.close()

    def test_summarise_refuses_multi_sweep_without_a_filter(self,
                                                            tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(synthetic_record(0, sweep_id="sweep-a"))
        store.append(synthetic_record(1, sweep_id="sweep-b"))
        with pytest.raises(ValueError, match="span multiple sweeps"):
            store.index.summarise()
        assert store.index.summarise(sweep_id="sweep-a").rows
        store.close()

    def test_query_cells_filters_sorts_and_limits(self, tmp_path):
        path = tmp_path / "store.jsonl"
        write_synthetic_store(path, 200)
        index = ensure_index(path)
        rows = index.query_cells(where={"engine": "sparch",
                                        "config_label": "table1"},
                                 sort="gflops", limit=5)
        assert len(rows) == 5
        assert all(row["engine"] == "sparch" for row in rows)
        gflops = [row["gflops"] for row in rows]
        assert gflops == sorted(gflops, reverse=True)
        # the top-1 really is the global maximum for that column
        everything = index.query_cells(where={"engine": "sparch",
                                              "config_label": "table1"},
                                       sort="gflops")
        assert rows[0] == everything[0]
        assert len(everything) == 50
        index.close()

    def test_query_cells_rejects_unknown_columns(self, tmp_path):
        path = tmp_path / "store.jsonl"
        write_synthetic_store(path, 8)
        index = ensure_index(path)
        with pytest.raises(ValueError, match="unknown sort metric"):
            index.query_cells(sort="nope")
        with pytest.raises(ValueError, match="unknown filter column"):
            index.query_cells(where={"nope": "x"})
        with pytest.raises(ValueError, match="non-negative"):
            index.query_cells(limit=-1)
        index.close()

    def test_traffic_totals_by_category(self, tmp_path):
        path = tmp_path / "store.jsonl"
        write_synthetic_store(path, 40)
        index = ensure_index(path)
        totals = index.traffic_totals()
        expected: dict[str, int] = {}
        for record in ResultStore(path, index=False).records:
            for category, num_bytes in record.report["traffic"].items():
                expected[category] = expected.get(category, 0) + num_bytes
        assert totals == expected
        index.close()

    def test_sweep_counts(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        for position in range(3):
            store.append(synthetic_record(position, sweep_id="sweep-a"))
        store.append(synthetic_record(3, sweep_id="sweep-b"))
        assert store.index.sweep_counts() == {"sweep-a": 3, "sweep-b": 1}
        store.close()


class TestSummaryColumns:
    def test_mirrors_the_cost_report_formulas(self):
        record = synthetic_record(5)
        report = record.cost_report()
        columns = summary_columns(record.report)
        assert columns["gflops"] == report.gflops
        assert columns["dram_bytes"] == report.dram_bytes
        assert columns["cycles"] == report.cycles
        assert columns["energy_joules"] == report.energy_joules

    def test_tolerates_arbitrary_report_payloads(self):
        # Concurrent-append stress records carry filler payloads that are
        # not CostReports; indexing must not choke on them.
        columns = summary_columns({"schema_version": SCHEMA_VERSION,
                                   "filler": "x" * 64})
        assert columns["gflops"] == 0.0
        assert columns["dram_bytes"] == 0
        assert columns["runtime_seconds"] == 0.0


class TestWatcherIndexTailing:
    def test_poll_serves_from_the_index(self, tmp_path):
        from repro.sweeps.watch import StoreWatcher

        path = tmp_path / "store.jsonl"
        store = build_store(path, 3)
        watcher = StoreWatcher(path)
        assert len(watcher.poll()) == 3
        assert watcher._index is not None  # the index path was taken
        store.append(synthetic_record(3))
        fresh = watcher.poll()
        assert [record.cell_index for record in fresh] == [3]
        assert watcher.poll() == []
        store.close()
        watcher.close()

    def test_compaction_generation_bump_does_not_double_count(
            self, tmp_path):
        from repro.sweeps.compact import compact_store
        from repro.sweeps.watch import StoreWatcher

        path = tmp_path / "store.jsonl"
        store = build_store(path, 4)
        store.close()
        watcher = StoreWatcher(path)
        assert len(watcher.poll()) == 4
        compact_store(path, fsync=False)  # rowids + offsets reassigned
        assert watcher.poll() == []
        assert watcher.records_seen == 4
        store = ResultStore(path)
        store.append(synthetic_record(4))
        assert [record.cell_index
                for record in watcher.poll()] == [4]
        store.close()
        watcher.close()

    def test_stale_index_falls_back_to_byte_tailing(self, tmp_path):
        from repro.sweeps.watch import StoreWatcher

        path = tmp_path / "store.jsonl"
        build_store(path, 2).close()
        watcher = StoreWatcher(path)
        assert len(watcher.poll()) == 2
        # an unindexed writer appends: the sidecar is now stale, but the
        # byte path still surfaces the record
        ResultStore(path, index=False).append(synthetic_record(2))
        assert len(watcher.poll()) == 1
        assert watcher.records_seen == 3
        watcher.close()
