"""Property: sweep results are independent of kill points and shard counts.

The acceptance contract of the sweeps subsystem: a sweep killed after *k*
cells and resumed, and a sweep split over *n* shards and merged, must both
produce a merged result store **byte-identical** to an uninterrupted
single-shard run.  Hypothesis drives *k* over every prefix length and *n*
over realistic shard counts; all executions share one memoising runner, so
each engine point computes once for the whole module and the property runs
at unit-test speed.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import ExperimentRunner
from repro.sweeps import (
    enumerate_cells,
    get_sweep,
    merge_files,
    merge_records,
    render_records,
    run_sweep,
)

SMOKE = get_sweep("smoke")
NUM_CELLS = len(enumerate_cells(SMOKE))

#: One process-wide memoising runner: deterministic reports, computed once.
RUNNER = ExperimentRunner()


@pytest.fixture(scope="module")
def reference_bytes() -> str:
    """Canonical merged bytes of an uninterrupted single-shard run."""
    _, store = run_sweep(SMOKE, runner=RUNNER)
    return render_records(merge_records(store.records))


class TestResumeProperty:
    @given(kill_after=st.integers(min_value=0, max_value=NUM_CELLS))
    @settings(max_examples=NUM_CELLS + 1, deadline=None)
    def test_kill_after_k_cells_then_resume_is_byte_identical(
            self, kill_after, reference_bytes):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "store.jsonl"
            killed, _ = run_sweep(SMOKE, store=path, runner=RUNNER,
                                  max_cells=kill_after)
            assert killed.executed == kill_after
            resumed, store = run_sweep(SMOKE, store=path, runner=RUNNER)
            # Only unfinished cells re-execute after the kill.
            assert resumed.executed == NUM_CELLS - kill_after
            assert resumed.replayed == kill_after
            merged = render_records(merge_records(store.records))
            assert merged == reference_bytes

    @given(shard_count=st.integers(min_value=1, max_value=4))
    @settings(max_examples=4, deadline=None)
    def test_sharded_execution_merges_to_the_single_shard_bytes(
            self, shard_count, reference_bytes):
        with tempfile.TemporaryDirectory() as tmp:
            paths = []
            for shard_index in range(shard_count):
                path = Path(tmp) / f"shard{shard_index}.jsonl"
                summary, _ = run_sweep(SMOKE, store=path, runner=RUNNER,
                                       shard_index=shard_index,
                                       shard_count=shard_count)
                assert summary.executed == summary.cells_shard
                paths.append(path)
            merged = render_records(merge_files(paths))
            assert merged == reference_bytes

    @given(kill_after=st.integers(min_value=0, max_value=NUM_CELLS // 2),
           shard_count=st.integers(min_value=2, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_killed_shard_resumed_then_merged_is_byte_identical(
            self, kill_after, shard_count, reference_bytes):
        """Compose the two failure modes: shard 0 dies mid-flight, resumes,
        and the shard artifacts still merge to the canonical bytes."""
        with tempfile.TemporaryDirectory() as tmp:
            paths = []
            for shard_index in range(shard_count):
                path = Path(tmp) / f"shard{shard_index}.jsonl"
                if shard_index == 0:
                    run_sweep(SMOKE, store=path, runner=RUNNER,
                              shard_index=0, shard_count=shard_count,
                              max_cells=kill_after)
                run_sweep(SMOKE, store=path, runner=RUNNER,
                          shard_index=shard_index, shard_count=shard_count)
                paths.append(path)
            assert render_records(merge_files(paths)) == reference_bytes
