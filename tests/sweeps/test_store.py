"""ResultStore: append-only persistence, stale rotation, canonical merge."""

from __future__ import annotations

import json

import pytest

from repro.metrics.report import SCHEMA_VERSION, CostReport
import dataclasses

from repro.sweeps.store import (
    STORE_VERSION,
    ResultStore,
    SweepRecord,
    iter_records,
    merge_files,
    merge_files_to,
    merge_records,
    parse_line,
    records_to_reports,
    render_records,
    write_records,
)


def make_record(index: int, *, key: str | None = None,
                scenario: str | None = None, engine: str = "sparch",
                config_label: str = "table1") -> SweepRecord:
    # One scenario per index by default, mirroring real grids (cell
    # coordinates and canonical indices are one-to-one per spec).
    if scenario is None:
        scenario = f"s{index}"
    report = CostReport(engine=engine, kind="simulation", cycles=index + 1,
                        multiplications=10 * (index + 1))
    return SweepRecord(sweep_id="test", cell_index=index, scenario=scenario,
                       engine=engine, config_label=config_label,
                       key=key or f"key-{index}", report=report.to_dict())


class TestAppendAndLoad:
    def test_round_trip_through_the_file(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        for index in range(3):
            store.append(make_record(index))
        reopened = ResultStore(path)
        assert len(reopened) == 3
        assert reopened.done_keys == {"key-0", "key-1", "key-2"}
        assert reopened.records == store.records
        assert reopened.records[0].cost_report().cycles == 1

    def test_memory_only_store_has_no_path(self):
        store = ResultStore(None)
        store.append(make_record(0))
        assert store.path is None and len(store) == 1

    def test_duplicate_cells_append_once(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.append(make_record(0))
        store.append(make_record(0))
        assert len(store) == 1
        assert len(ResultStore(store.path)) == 1

    def test_coinciding_cells_each_keep_their_record(self, tmp_path):
        # Two grid cells may share one fingerprint (configs that collapse
        # to the same effective design); the grid must not lose a point.
        store = ResultStore(tmp_path / "store.jsonl")
        store.append(make_record(0, key="shared", scenario="s",
                                 config_label="line:64x48"))
        store.append(make_record(1, key="shared", scenario="s",
                                 config_label="shape:1024x48"))
        assert len(store) == 2
        assert len(ResultStore(store.path)) == 2
        assert store.done_keys == {"shared"}

    def test_contains_is_by_key(self):
        store = ResultStore()
        store.append(make_record(7))
        assert "key-7" in store and "key-8" not in store
        assert ("test", "s7", "sparch", "table1") in store.done_cells


class TestRotationAndCorruption:
    """A resumable store must treat anything it cannot trust as *not
    done* — a torn line from a kill, another layout, a stale report."""

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(make_record(0))
        store.append(make_record(1))
        with open(path, "a") as handle:  # a kill mid-append
            handle.write(make_record(2).to_line()[:25])
        assert ResultStore(path).done_keys == {"key-0", "key-1"}

    def test_append_after_torn_final_line_does_not_glue(self, tmp_path):
        """Regression: the first append after a torn tail must terminate
        the fragment, not concatenate onto it — gluing would corrupt the
        recomputed record too and the reloaded store would miss a cell."""
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(make_record(0))
        with open(path, "a") as handle:  # a kill mid-append
            handle.write(make_record(1).to_line()[:25])
        resumed = ResultStore(path)  # sees only record 0
        resumed.append(make_record(1))
        resumed.append(make_record(2))
        reloaded = ResultStore(path)
        assert reloaded.done_keys == {"key-0", "key-1", "key-2"}
        assert reloaded.records == resumed.records

    def test_stale_report_schema_rotates(self, tmp_path):
        path = tmp_path / "store.jsonl"
        record = make_record(0)
        stale = dict(record.report, schema_version=SCHEMA_VERSION - 1)
        path.write_text(json.dumps({
            "store_version": STORE_VERSION, "sweep_id": "test",
            "cell_index": 0, "scenario": "s0", "engine": "sparch",
            "config_label": "table1", "key": "key-0", "report": stale,
        }) + "\n" + record.to_line())
        # The stale line is invisible; the fresh one for the same cell wins.
        assert ResultStore(path).done_keys == {"key-0"}
        assert ResultStore(path).records[0].report["schema_version"] == \
            SCHEMA_VERSION

    def test_other_store_layout_rotates(self):
        line = make_record(0).to_line()
        payload = json.loads(line)
        payload["store_version"] = STORE_VERSION + 1
        assert parse_line(json.dumps(payload)) is None

    @pytest.mark.parametrize("line", ["", "   ", "not json", "[1, 2]",
                                      '{"store_version": 1}'])
    def test_garbage_lines_are_not_done(self, line):
        assert parse_line(line) is None


class TestCanonicalMerge:
    def test_merge_sorts_by_cell_index(self):
        records = [make_record(2), make_record(0), make_record(1)]
        assert [r.cell_index for r in merge_records(records)] == [0, 1, 2]

    def test_merge_keeps_distinct_cells_sharing_a_fingerprint(self):
        # Coinciding grid cells (one computation, two coordinates) both
        # survive the merge, in canonical cell order.
        first = make_record(1, key="shared")
        second = make_record(4, key="shared", config_label="alias")
        assert merge_records([second, first]) == [first, second]

    def test_merge_dedups_exact_duplicate_cells(self):
        # The same shard file merged twice (or a concurrent-writer race)
        # collapses to one record per cell.
        record = make_record(2)
        assert merge_records([record, record]) == [record]

    def test_loading_a_concatenated_mixed_file_is_refused(self, tmp_path):
        # `cat scaleA.jsonl scaleB.jsonl > both.jsonl` puts two
        # fingerprints for one cell in a single file; loading must refuse
        # rather than silently keep whichever came first.
        path = tmp_path / "both.jsonl"
        path.write_text(make_record(0, key="scale-a").to_line()
                        + make_record(0, key="scale-b").to_line())
        with pytest.raises(ValueError, match="conflicting records"):
            ResultStore(path)

    def test_merge_refuses_conflicting_records_for_one_cell(self):
        # The same cell recorded under two fingerprints means the inputs
        # were written under different parameters (e.g. two --max-rows
        # scales): merging would build a chimera store, so refuse loudly.
        with pytest.raises(ValueError, match="conflicting records"):
            merge_records([make_record(0, key="scale-150"),
                           make_record(0, key="scale-full")])

    def test_merge_refuses_index_conflicts_for_one_cell(self):
        # Same cell and fingerprint at two canonical indices: the stores
        # span different spec revisions (added/reordered scenarios) and
        # their orders cannot both be canonical.
        old = make_record(3, key="same", scenario="s")
        shifted = dataclasses.replace(old, cell_index=5)
        with pytest.raises(ValueError, match="conflicting records"):
            merge_records([old, shifted])

    def test_render_is_order_and_duplication_invariant(self):
        records = [make_record(0), make_record(1), make_record(2)]
        shuffled = [records[2], records[0], records[1], records[0]]
        assert render_records(merge_records(shuffled)) == \
            render_records(merge_records(records))

    def test_merge_files_round_trips_bytes(self, tmp_path):
        shard_a, shard_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        store_a, store_b = ResultStore(shard_a), ResultStore(shard_b)
        store_a.append(make_record(0))
        store_b.append(make_record(1))
        merged = merge_files([shard_a, shard_b])
        out = tmp_path / "merged.jsonl"
        write_records(out, merged)
        assert out.read_text() == render_records(merged)
        # Merging a merged store is the identity.
        assert merge_files([out]) == merged

    def test_merge_files_rejects_missing_stores(self, tmp_path):
        # A typo'd shard path must fail loudly: a merge silently missing a
        # shard would look complete while dropping half the grid.
        present = tmp_path / "present.jsonl"
        ResultStore(present).append(make_record(0))
        with pytest.raises(FileNotFoundError, match="not found"):
            merge_files([present, tmp_path / "typo.jsonl"])

    def test_report_keying_refuses_multi_sweep_record_sets(self):
        # Without sweep_id in the report key, two sweeps' coinciding cells
        # would silently overwrite each other — so keying (and everything
        # built on it: summaries, the sweep experiment's reports) demands
        # records of one sweep at a time.
        ours = make_record(0)
        theirs = dataclasses.replace(make_record(0), sweep_id="other")
        assert records_to_reports([ours])  # single sweep is fine
        with pytest.raises(ValueError, match="multiple sweeps"):
            records_to_reports([ours, theirs])

    def test_lines_are_canonical_json(self):
        line = make_record(0).to_line()
        assert line.endswith("\n")
        assert json.dumps(json.loads(line), sort_keys=True) + "\n" == line


class TestStreamingMerge:
    """`iter_records` / `merge_files_to`: the bounded-memory paths must be
    byte-identical to the list-based canonical merge they replace."""

    def test_iter_records_streams_and_skips_garbage(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(make_record(0))
        store.append(make_record(1))
        with open(path, "a") as handle:  # torn tail from a kill
            handle.write(make_record(2).to_line()[:20])
        assert [r.cell_index for r in iter_records(path)] == [0, 1]

    def test_merge_files_to_matches_list_merge_bytes(self, tmp_path):
        shard_a, shard_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        store_a, store_b = ResultStore(shard_a), ResultStore(shard_b)
        # Interleave cells across shards, out of canonical order, with an
        # exact duplicate between shards.
        for index in (4, 0, 2):
            store_a.append(make_record(index))
        for index in (3, 1, 2):
            store_b.append(make_record(index))
        out = tmp_path / "merged.jsonl"
        count = merge_files_to([shard_a, shard_b], out)
        want = merge_files([shard_a, shard_b])
        assert count == len(want) == 5
        assert out.read_text() == render_records(want)
        # Merging the merged store again is the identity.
        again = tmp_path / "again.jsonl"
        assert merge_files_to([out], again) == 5
        assert again.read_text() == out.read_text()

    def test_merge_files_to_refuses_conflicts(self, tmp_path):
        shard_a, shard_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        ResultStore(shard_a).append(make_record(0, key="scale-150"))
        ResultStore(shard_b).append(make_record(0, key="scale-full"))
        with pytest.raises(ValueError, match="conflicting records"):
            merge_files_to([shard_a, shard_b], tmp_path / "out.jsonl")

    def test_merge_files_to_rejects_missing_stores(self, tmp_path):
        present = tmp_path / "present.jsonl"
        ResultStore(present).append(make_record(0))
        with pytest.raises(FileNotFoundError, match="not found"):
            merge_files_to([present, tmp_path / "typo.jsonl"],
                           tmp_path / "out.jsonl")

    def test_merge_files_to_keeps_coinciding_cells(self, tmp_path):
        shard = tmp_path / "shard.jsonl"
        store = ResultStore(shard)
        store.append(make_record(1, key="shared", scenario="s"))
        store.append(make_record(4, key="shared", scenario="s",
                                 config_label="alias"))
        out = tmp_path / "out.jsonl"
        assert merge_files_to([shard], out) == 2
        assert [r.cell_index for r in iter_records(out)] == [1, 4]
