"""The ``sweeps watch`` progress view: incremental reads, torn tails,
sidecar integration."""

from __future__ import annotations

import dataclasses
import json

from repro.experiments.runner import ExperimentRunner
from repro.sweeps.driver import run_sweep
from repro.sweeps.registry import get_sweep
from repro.sweeps.store import ResultStore
from repro.sweeps.watch import (
    StoreWatcher,
    _RateWindow,
    observe,
    watch_store,
)

RUNNER = ExperimentRunner()
SMOKE = get_sweep("smoke")


def smoke_records():
    _, store = run_sweep(SMOKE, runner=RUNNER)
    return list(store.records)


class TestStoreWatcher:
    def test_picks_up_appends_incrementally(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        watcher = StoreWatcher(path)
        records = smoke_records()
        store.append(records[0])
        assert len(watcher.poll()) == 1
        assert watcher.poll() == []  # nothing new
        for record in records[1:3]:
            store.append(record)
        assert len(watcher.poll()) == 2
        assert watcher.records_seen == 3

    def test_missing_file_reads_as_empty(self, tmp_path):
        watcher = StoreWatcher(tmp_path / "absent.jsonl")
        assert watcher.poll() == []

    def test_unterminated_tail_waits_for_its_newline(self, tmp_path):
        path = tmp_path / "store.jsonl"
        records = smoke_records()
        line = records[0].to_line()
        path.write_text(line + records[1].to_line()[:40])  # torn append
        watcher = StoreWatcher(path)
        assert len(watcher.poll()) == 1  # only the complete line
        with open(path, "a") as handle:  # the append finishes
            handle.write(records[1].to_line()[40:])
        assert len(watcher.poll()) == 1

    def test_truncation_resets_without_double_counting(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        records = smoke_records()
        for record in records[:3]:
            store.append(record)
        watcher = StoreWatcher(path)
        assert len(watcher.poll()) == 3
        # rotation: rewritten with the same first two records
        path.write_text("".join(record.to_line()
                                for record in records[:2]))
        assert watcher.poll() == []  # re-read, but all seen before
        assert watcher.records_seen == 3


class TestObserve:
    def test_registry_supplies_the_total(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        for record in smoke_records()[:2]:
            store.append(record)
        view = observe(path, StoreWatcher(path), _RateWindow(), set(),
                       now=0.0)
        assert (view.done, view.total) == (2, 6)
        assert not view.finished
        assert "2/6 cells done" in view.render()

    def test_full_store_reads_finished(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        for record in smoke_records():
            store.append(record)
        view = observe(path, StoreWatcher(path), _RateWindow(), set(),
                       now=0.0)
        assert view.finished
        assert "finished" in view.render()

    def test_rate_and_eta_come_from_the_window(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        records = smoke_records()
        watcher = StoreWatcher(path)
        window = _RateWindow()
        sweeps: set[str] = set()
        for record in records[:2]:
            store.append(record)
        observe(path, watcher, window, sweeps, now=0.0)
        for record in records[2:4]:
            store.append(record)
        view = observe(path, watcher, window, sweeps, now=2.0)
        assert view.rate == 1.0  # 2 records / 2 seconds
        assert view.eta_seconds == 2.0  # 2 cells left at 1/s
        assert "1.00 rows/s" in view.render()

    def test_fabric_sidecar_supplies_pending_and_quarantine(
            self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        records = smoke_records()
        for record in records[:5]:
            store.append(record)
        sidecar = {
            "total_cells": 6,
            "finished": True,
            "counts": {"pending": 0, "leased": 0, "done": 5,
                       "quarantined": 1},
            "stats": {"failures": 3},
            "quarantined": [{"cell_index": 5, "attempts": 3,
                             "error": "boom"}],
        }
        (tmp_path / "store.jsonl.fabric.json").write_text(
            json.dumps(sidecar))
        view = observe(path, StoreWatcher(path), _RateWindow(), set(),
                       now=0.0)
        assert view.finished
        assert view.quarantined == 1
        assert view.failed == 3
        assert "1 quarantined" in view.render()


class TestWatchLoop:
    def test_iterations_bound_an_unfinished_watch(self, tmp_path,
                                                  capsys):
        path = tmp_path / "store.jsonl"
        ResultStore(path).append(smoke_records()[0])
        view = watch_store(path, interval=0.01, iterations=2)
        assert not view.finished
        assert capsys.readouterr().out.count("[watch]") == 2

    def test_finished_watch_reports_quarantine_details(self, tmp_path,
                                                       capsys):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        for record in smoke_records():
            store.append(record)
        view = watch_store(path, interval=0.01, iterations=5)
        assert view.finished
        assert "finished" in capsys.readouterr().out

    def test_cli_subcommand_runs(self, tmp_path, capsys):
        from repro.sweeps.__main__ import main as sweeps_main

        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        for record in smoke_records():
            store.append(record)
        assert sweeps_main(["watch", str(path), "--iterations", "1",
                            "--interval", "0.01"]) == 0
        assert "6/6 cells done" in capsys.readouterr().out
