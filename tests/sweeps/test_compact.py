"""Segment compaction: superseded duplicates and torn tails rewritten
away atomically, with the central guarantee that

    canonical_merge(compacted store)  ==  canonical_merge(original store)

byte for byte — including for every store a chaos-scripted fabric run
leaves behind (workers killed mid-lease, torn appends, coordinator
restarts)."""

from __future__ import annotations

import os
import shutil

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.fabric import SCHEDULES, run_chaos
from repro.sweeps.compact import compact_store
from repro.sweeps.driver import run_sweep
from repro.sweeps.index import ensure_index
from repro.sweeps.registry import get_sweep
from repro.sweeps.spec import enumerate_cells
from repro.sweeps.store import (
    ResultStore,
    SweepRecord,
    merge_records,
    render_records,
)
from repro.sweeps.synth import synthetic_record, write_synthetic_store

RUNNER = ExperimentRunner()
SMOKE = get_sweep("smoke")


def merged_bytes(path):
    return render_records(merge_records(
        list(ResultStore(path, index=False).records)))


class TestCompaction:
    def test_drops_duplicates_and_torn_tail(self, tmp_path):
        path = tmp_path / "store.jsonl"
        write_synthetic_store(path, 500, dirty=True)
        before = merged_bytes(path)
        stats = compact_store(path, fsync=False)
        assert stats.dropped_duplicates == 5  # one per 100 cells
        assert stats.dropped_invalid == 1  # the torn fragment
        assert stats.records == 500
        assert stats.bytes_after < stats.bytes_before
        assert stats.bytes_after == os.path.getsize(path)
        assert merged_bytes(path) == before

    def test_clean_store_compacts_to_itself(self, tmp_path):
        path = tmp_path / "store.jsonl"
        write_synthetic_store(path, 50)
        before = path.read_bytes()
        stats = compact_store(path, fsync=False)
        assert (stats.dropped_duplicates, stats.dropped_invalid) == (0, 0)
        assert path.read_bytes() == before

    def test_is_idempotent_and_bumps_generation(self, tmp_path):
        path = tmp_path / "store.jsonl"
        write_synthetic_store(path, 120, dirty=True)
        first = compact_store(path, fsync=False)
        after_first = path.read_bytes()
        second = compact_store(path, fsync=False)
        assert path.read_bytes() == after_first
        assert (second.dropped_duplicates, second.dropped_invalid) == (0, 0)
        assert second.generation == first.generation + 1
        index = ensure_index(path)
        assert index.generation == second.generation
        assert index.count() == 120
        index.close()

    def test_conflicting_store_is_refused_and_untouched(self, tmp_path):
        path = tmp_path / "store.jsonl"
        record = synthetic_record(0)
        conflicting = SweepRecord(
            sweep_id=record.sweep_id, cell_index=record.cell_index,
            scenario=record.scenario, engine=record.engine,
            config_label=record.config_label, key="other-fingerprint",
            report=record.report)
        path.write_text(record.to_line() + conflicting.to_line())
        before = path.read_bytes()
        with pytest.raises(ValueError, match="conflicting records"):
            compact_store(path, fsync=False)
        assert path.read_bytes() == before
        assert not os.path.exists(f"{path}.compact.tmp")

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="result store not"):
            compact_store(tmp_path / "absent.jsonl")

    def test_render_mentions_reclaimed_bytes(self, tmp_path):
        path = tmp_path / "store.jsonl"
        write_synthetic_store(path, 200, dirty=True)
        line = compact_store(path, fsync=False).render()
        assert "200 records" in line
        assert "duplicate" in line and "invalid" in line
        assert "generation" in line


class TestChaosByteParity:
    """The acceptance property: for every fault schedule, compacting the
    surviving store changes nothing about its canonical merge."""

    @pytest.fixture(scope="class")
    def reference_bytes(self):
        _, store = run_sweep(SMOKE, runner=RUNNER)
        return render_records(merge_records(list(store.records)))

    @pytest.mark.parametrize("schedule", SCHEDULES,
                             ids=[s.name for s in SCHEDULES])
    def test_compaction_preserves_merge_bytes(self, schedule,
                                              reference_bytes, tmp_path):
        store_path = tmp_path / "store.jsonl"
        run_chaos(SMOKE, schedule, workers=2, runner=RUNNER,
                  store_path=store_path)
        uncompacted = merged_bytes(store_path)
        assert uncompacted == reference_bytes
        compact_store(store_path, fsync=False)
        assert merged_bytes(store_path) == reference_bytes

    def test_resume_after_compaction_replays_every_cell(self, tmp_path):
        store_path = tmp_path / "store.jsonl"
        run_chaos(SMOKE, SCHEDULES[0], workers=2, runner=RUNNER,
                  store_path=store_path)
        compact_store(store_path, fsync=False)
        summary, _ = run_sweep(SMOKE, runner=RUNNER, store=store_path)
        assert summary.executed == 0
        assert summary.replayed == len(enumerate_cells(SMOKE))

    def test_copy_then_compact_leaves_the_original_alone(self, tmp_path):
        source = tmp_path / "store.jsonl"
        run_chaos(SMOKE, SCHEDULES[-1], workers=2, runner=RUNNER,
                  store_path=source)
        copy = tmp_path / "copy.jsonl"
        shutil.copyfile(source, copy)
        compact_store(copy, fsync=False)
        assert merged_bytes(copy) == merged_bytes(source)
