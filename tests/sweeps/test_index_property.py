"""Property tests for the sidecar index under adversarial histories.

Two invariants, for *any* interleaving of appends, mid-append kills
(torn tails), compactions, sidecar drops, and process restarts:

* the incrementally maintained index is row-for-row identical to a
  from-scratch rebuild of the same store file;
* the store's contents match the straightforward model (every fully
  appended record, first-wins, in arrival order) — dropping the sidecar
  at any point loses nothing.

The fabric's scripted fault schedules are replayed against the same
invariants, so the index inherits the chaos matrix the coordinator is
already tested under."""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import ExperimentRunner
from repro.fabric import SCHEDULES, run_chaos
from repro.sweeps.compact import compact_store
from repro.sweeps.driver import summarise_store_file
from repro.sweeps.index import drop_index, ensure_index
from repro.sweeps.registry import get_sweep
from repro.sweeps.store import ResultStore
from repro.sweeps.synth import synthetic_record

OPS = st.lists(
    st.sampled_from(["append", "reopen", "tear", "drop", "compact"]),
    min_size=1, max_size=24)


def replay(ops: list[str], root: Path) -> None:
    path = root / "store.jsonl"
    store = ResultStore(path)
    expected: dict[tuple, object] = {}  # cell -> record, arrival order
    position = 0
    for op in ops:
        if op == "append":
            record = synthetic_record(position)
            position += 1
            store.append(record)
            expected.setdefault(record.cell, record)
        elif op == "reopen":
            store.close()
            store = ResultStore(path)
        elif op == "tear":
            # A kill mid-append: half a line lands, the process dies.
            # The cell is retried later (position is NOT consumed), so
            # the history "torn fragment, then the same record whole"
            # is exercised too.
            line = synthetic_record(position).to_line()
            store.close()
            with open(path, "ab") as handle:
                handle.write(line.encode("utf-8")[:len(line) // 2])
            store = ResultStore(path)
        elif op == "drop":
            store.close()
            drop_index(path)
            store = ResultStore(path)
        elif op == "compact":
            store.close()
            if path.exists():
                compact_store(path, fsync=False)
            store = ResultStore(path)
    store.close()

    # Invariant 1: the store reads back exactly the model, in order —
    # through the lazy index-backed path and the eager scan alike.
    for kwargs in ({}, {"index": False}):
        reread = ResultStore(path, **kwargs) if path.exists() else None
        records = [] if reread is None else reread.records
        assert records == list(expected.values())
        if reread is not None:
            reread.close()

    # Invariant 2: whatever incremental maintenance left behind equals a
    # from-scratch rebuild, row for row (offsets, lengths, scalars).
    if path.exists():
        index = ensure_index(path)
        incremental = index.dump_rows()
        index.rebuild()
        assert index.dump_rows() == incremental

        # And the zero-scan summary agrees with the streamed scan.
        if expected:
            assert (index.summarise(title="T").render()
                    == summarise_store_file(path, title="T").render())
        index.close()


@given(ops=OPS)
@settings(max_examples=50, deadline=None)
def test_any_interleaving_keeps_index_and_store_consistent(ops):
    with tempfile.TemporaryDirectory() as root:
        replay(ops, Path(root))


def test_the_worst_known_history_directly():
    # A deterministic regression pin of the nastiest shape: torn tail,
    # retry, drop, compact, another tear, reopen.
    ops = ["append", "tear", "append", "drop", "append", "compact",
           "tear", "reopen", "append", "compact"]
    with tempfile.TemporaryDirectory() as root:
        replay(ops, Path(root))


RUNNER = ExperimentRunner()
SMOKE = get_sweep("smoke")


@pytest.mark.parametrize("schedule", SCHEDULES,
                         ids=[s.name for s in SCHEDULES])
def test_chaos_schedules_leave_index_equal_to_rebuild(schedule, tmp_path):
    store_path = tmp_path / "store.jsonl"
    run_chaos(SMOKE, schedule, workers=2, runner=RUNNER,
              store_path=store_path)
    index = ensure_index(store_path)
    incremental = index.dump_rows()
    index.rebuild()
    assert index.dump_rows() == incremental
    index.close()
    # The index-backed resume view equals the eager scan's.
    lazy = ResultStore(store_path)
    eager = ResultStore(store_path, index=False)
    assert lazy.done_cells == eager.done_cells
    assert lazy.done_keys == eager.done_keys
    lazy.close()
