"""Concurrent writers never interleave bytes within a store record.

`ResultStore.append` writes each record as a single ``write()`` to an
``O_APPEND`` descriptor, so two processes appending to one store file can
only ever produce whole, parseable lines — the fabric's workers and two
shard runs sharing a store rely on exactly this.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.metrics.report import SCHEMA_VERSION
from repro.sweeps.store import ResultStore, SweepRecord, parse_line

#: Records per writer process; large enough that appends from the two
#: processes genuinely overlap in time.
RECORDS_PER_WRITER = 150

#: Filler blown up past typical pipe/stdio buffer sizes so a non-atomic
#: append implementation would actually tear mid-record.
_FILLER = "x" * 8192


def _record(writer: int, index: int) -> SweepRecord:
    return SweepRecord(
        sweep_id="concurrency",
        cell_index=writer * RECORDS_PER_WRITER + index,
        scenario=f"scenario-{writer}-{index}",
        engine="sparch",
        config_label="table1",
        key=f"key-{writer}-{index}",
        report={"schema_version": SCHEMA_VERSION, "filler": _FILLER},
    )


def _writer(path, writer: int, barrier) -> None:
    store = ResultStore(path)
    barrier.wait()
    for index in range(RECORDS_PER_WRITER):
        store.append(_record(writer, index))


@pytest.mark.parametrize("fsync", [False, True])
def test_two_processes_append_without_interleaving(tmp_path, fsync):
    path = tmp_path / "store.jsonl"
    # fsync is a durability knob only — exercise both paths for atomicity.
    ResultStore(path, fsync=fsync).append(_record(99, 0))
    barrier = multiprocessing.Barrier(2)
    workers = [
        multiprocessing.Process(target=_writer, args=(path, writer, barrier))
        for writer in (0, 1)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
        assert worker.exitcode == 0

    # Every line must parse as a complete record: an interleaved append
    # would leave at least one line that json-decodes to garbage (and
    # parse_line returns None for it).
    lines = path.read_text().splitlines()
    records = [parse_line(line) for line in lines]
    assert all(record is not None for record in records)

    # And nothing was lost: both writers' full record sets are present.
    seen = {(record.sweep_id, record.scenario) for record in records}
    expected = {("concurrency", f"scenario-{writer}-{index}")
                for writer in (0, 1) for index in range(RECORDS_PER_WRITER)}
    expected.add(("concurrency", "scenario-99-0"))
    assert seen == expected


def test_fsync_append_round_trips(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ResultStore(path, fsync=True)
    store.append(_record(0, 0))
    reloaded = ResultStore(path)
    assert len(reloaded) == 1
    assert reloaded.records[0] == _record(0, 0)
