"""Unit tests for the FIFO primitive and the two-phase clock kernel."""

from __future__ import annotations

import pytest

from repro.hardware.clock import ClockedModule, CycleSimulator
from repro.hardware.fifo import Fifo


class TestFifo:
    def test_push_pop_order(self):
        fifo = Fifo(4, name="test")
        for item in (1, 2, 3):
            fifo.push(item)
        assert fifo.pop() == 1
        assert fifo.peek() == 2
        assert fifo.pop() == 2
        assert len(fifo) == 1

    def test_capacity_enforced(self):
        fifo = Fifo(2)
        fifo.push("a")
        fifo.push("b")
        assert fifo.is_full()
        with pytest.raises(OverflowError):
            fifo.push("c")

    def test_pop_from_empty_raises(self):
        fifo = Fifo(2)
        assert fifo.is_empty()
        with pytest.raises(IndexError):
            fifo.pop()
        with pytest.raises(IndexError):
            fifo.peek()

    def test_push_many_and_pop_many(self):
        fifo = Fifo(3)
        accepted = fifo.push_many([1, 2, 3, 4, 5])
        assert accepted == 3
        assert fifo.pop_many(10) == [1, 2, 3]
        assert fifo.pop_many(2) == []

    def test_statistics(self):
        fifo = Fifo(4)
        fifo.push_many([1, 2, 3])
        fifo.pop()
        fifo.push(4)
        assert fifo.total_pushed == 4
        assert fifo.total_popped == 1
        assert fifo.high_water_mark == 3
        assert fifo.free_space == 1
        fifo.clear()
        assert fifo.is_empty()
        assert fifo.total_pushed == 4  # statistics survive clear()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Fifo(0)


class _Counter(ClockedModule):
    """Counts cycles with proper two-phase semantics."""

    def __init__(self) -> None:
        self.value = 0
        self._next = 0

    def clock_update(self) -> None:
        self._next = self.value + 1

    def clock_apply(self) -> None:
        self.value = self._next


class _Follower(ClockedModule):
    """Samples the counter's *current* value, one cycle behind."""

    def __init__(self, counter: _Counter) -> None:
        self._counter = counter
        self.value = 0
        self._next = 0

    def clock_update(self) -> None:
        self._next = self._counter.value

    def clock_apply(self) -> None:
        self.value = self._next


class TestCycleSimulator:
    def test_two_phase_semantics(self):
        counter = _Counter()
        follower = _Follower(counter)
        sim = CycleSimulator([counter, follower])
        sim.step(5)
        assert counter.value == 5
        # The follower saw the counter value *before* this cycle's update.
        assert follower.value == 4
        assert sim.cycle == 5

    def test_module_order_does_not_matter(self):
        counter = _Counter()
        follower = _Follower(counter)
        sim = CycleSimulator([follower, counter])
        sim.step(5)
        assert follower.value == 4

    def test_run_until(self):
        counter = _Counter()
        sim = CycleSimulator([counter])
        cycles = sim.run_until(lambda: counter.value >= 10)
        assert cycles == 10

    def test_run_until_timeout(self):
        counter = _Counter()
        sim = CycleSimulator([counter])
        with pytest.raises(RuntimeError, match="converge"):
            sim.run_until(lambda: False, max_cycles=20)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            CycleSimulator([])
        sim = CycleSimulator([_Counter()])
        with pytest.raises(ValueError):
            sim.step(-1)
