"""Unit tests for the comparator-array merger (§II-A.1, Figure 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.comparator_array import (
    ComparatorArray,
    boundary_tiles,
    comparison_matrix,
    merge_windows,
)

#: The exact example of Figure 3: two sorted windows of four elements each.
FIG3_A = [(1, 0.1), (3, 0.5), (4, 0.2), (13, 1.2)]
FIG3_B = [(3, 0.6), (5, 1.3), (10, 2.2), (12, 1.1)]
#: The merged coordinate sequence of Figure 3 (before the adder folds the
#: two coordinate-3 entries into 1.1); ties may appear in either order.
FIG3_MERGED_KEYS = [1, 3, 3, 4, 5, 10, 12, 13]


def test_comparison_matrix_is_padded():
    ge = comparison_matrix([key for key, _ in FIG3_A], [key for key, _ in FIG3_B])
    assert len(ge) == 5 and len(ge[0]) == 5
    # Dummy column of '<' on the right, dummy row of '≥' at the bottom.
    assert all(row[-1] is False for row in ge[:-1])
    assert all(ge[-1])


def test_boundary_tiles_one_per_diagonal_group():
    ge = comparison_matrix([key for key, _ in FIG3_A], [key for key, _ in FIG3_B])
    tiles = boundary_tiles(ge)
    groups = sorted(i + j for i, j in tiles)
    # Every diagonal group 0..len(a)+len(b)-1 produces exactly one output.
    assert groups[: len(FIG3_A) + len(FIG3_B)] == list(range(8))


def test_merge_windows_reproduces_figure3():
    merged = merge_windows(FIG3_A, FIG3_B)
    assert [key for key, _ in merged] == FIG3_MERGED_KEYS
    assert sorted(merged) == sorted(FIG3_A + FIG3_B)
    # The two coordinate-3 entries are adjacent, ready for the adder slice to
    # fold them into (3, 1.1) as the figure shows.
    assert {merged[1][1], merged[2][1]} == {0.5, 0.6}


def test_merge_windows_handles_empty_inputs():
    assert merge_windows([], FIG3_B) == FIG3_B
    assert merge_windows(FIG3_A, []) == FIG3_A
    assert merge_windows([], []) == []


def test_merge_windows_keeps_duplicates_separate():
    # The merger interleaves only; the adder slice folds duplicates later.
    merged = merge_windows([(2, 1.0)], [(2, 3.0)])
    assert len(merged) == 2
    assert {value for _, value in merged} == {1.0, 3.0}


@pytest.mark.parametrize("size", [1, 4, 16])
def test_streaming_merge_matches_sorted_concatenation(size, rng):
    a_keys = np.sort(rng.integers(0, 1000, size=37))
    b_keys = np.sort(rng.integers(0, 1000, size=23))
    a_vals = rng.random(37)
    b_vals = rng.random(23)
    merger = ComparatorArray(size)
    keys, vals = merger.merge(a_keys, a_vals, b_keys, b_vals)
    assert len(keys) == 60
    assert np.all(np.diff(keys) >= 0)
    # Every (key, value) pair of the inputs appears exactly once.
    merged_pairs = sorted(zip(keys.tolist(), vals.tolist()))
    expected_pairs = sorted(zip(np.concatenate([a_keys, b_keys]).tolist(),
                                np.concatenate([a_vals, b_vals]).tolist()))
    assert merged_pairs == expected_pairs


def test_merge_empty_streams():
    merger = ComparatorArray(4)
    keys, vals = merger.merge(np.empty(0, np.int64), np.empty(0),
                              np.empty(0, np.int64), np.empty(0))
    assert len(keys) == 0 and len(vals) == 0
    assert merger.stats.cycles == 0


def test_cycle_and_comparator_accounting():
    merger = ComparatorArray(4)
    a = np.arange(8, dtype=np.int64)
    b = np.arange(8, 16, dtype=np.int64)
    merger.merge(a, np.ones(8), b, np.ones(8))
    # 16 merged elements at 4 per cycle.
    assert merger.stats.cycles == 4
    assert merger.stats.comparator_ops == 4 * merger.num_comparators
    assert merger.stats.elements_merged == 16
    assert merger.merge_cycles(16) == 4
    assert merger.merge_cycles(0) == 0
    merger.reset_stats()
    assert merger.stats.cycles == 0


def test_invalid_arguments_rejected():
    merger = ComparatorArray(4)
    with pytest.raises(ValueError):
        merger.merge(np.array([1]), np.array([1.0, 2.0]), np.array([2]),
                     np.array([1.0]))
    with pytest.raises(ValueError):
        merger.merge_cycles(-1)
    with pytest.raises(ValueError):
        ComparatorArray(0)


def test_throughput_and_comparator_count():
    merger = ComparatorArray(16)
    assert merger.throughput == 16
    assert merger.num_comparators == 256
