"""Unit tests for the adder slice and zero eliminator (§II-A.4, Figure 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.adder import AdderSlice, add_duplicates
from repro.hardware.zero_eliminator import (
    ZeroEliminator,
    ZeroEliminatorTrace,
    eliminate_zeros,
    zero_counts,
)


class TestAdderSlice:
    def test_folds_adjacent_duplicates(self):
        adder = AdderSlice()
        keys, vals = adder.fold(np.array([1, 1, 2, 3, 3, 3]),
                                np.array([1.0, 2.0, 5.0, 1.0, 1.0, 1.0]))
        np.testing.assert_array_equal(keys, [1, 2, 3])
        np.testing.assert_allclose(vals, [3.0, 5.0, 3.0])
        assert adder.stats.additions == 3
        assert adder.stats.elements_processed == 6

    def test_keeps_cancelled_zeros(self):
        keys, vals, additions = add_duplicates(np.array([4, 4]),
                                               np.array([1.5, -1.5]))
        np.testing.assert_array_equal(keys, [4])
        np.testing.assert_allclose(vals, [0.0])
        assert additions == 1

    def test_requires_sorted_input(self):
        adder = AdderSlice()
        with pytest.raises(ValueError, match="sorted"):
            adder.fold(np.array([3, 1]), np.array([1.0, 1.0]))

    def test_empty_input(self):
        adder = AdderSlice()
        keys, vals = adder.fold(np.empty(0, np.int64), np.empty(0))
        assert len(keys) == 0 and len(vals) == 0
        assert adder.stats.additions == 0

    def test_reset_stats(self):
        adder = AdderSlice()
        adder.fold(np.array([1, 1]), np.array([1.0, 1.0]))
        adder.reset_stats()
        assert adder.stats.additions == 0


class TestZeroEliminator:
    def test_figure6_example(self):
        """The worked example of Figure 6: [1,0,0,2,3,0,4,0] → [1,2,3,4]."""
        values = [1.0, 0.0, 0.0, 2.0, 3.0, 0.0, 4.0, 0.0]
        keys = list(range(8))
        assert zero_counts(values) == [0, 0, 1, 2, 2, 2, 3, 3]
        eliminator = ZeroEliminator(width=8)
        out_keys, out_vals = eliminator.compress(keys, values)
        assert out_vals == [1.0, 2.0, 3.0, 4.0]
        assert out_keys == [0, 3, 4, 6]

    def test_figure6_layer_count(self):
        eliminator = ZeroEliminator(width=8)
        assert eliminator.num_layers == 3
        assert eliminator.latency_cycles == 3
        assert ZeroEliminator(width=1).num_layers == 1

    def test_trace_records_every_layer(self):
        eliminator = ZeroEliminator(width=8)
        trace = ZeroEliminatorTrace()
        eliminator.compress(list(range(8)),
                            [1.0, 0.0, 0.0, 2.0, 3.0, 0.0, 4.0, 0.0],
                            trace=trace)
        assert len(trace.layers) == eliminator.num_layers
        # Non-zero values are never lost at any layer.
        for layer in trace.layers:
            assert sorted(v for v in layer if v != 0.0) == [1.0, 2.0, 3.0, 4.0]

    def test_all_zero_and_no_zero_windows(self):
        eliminator = ZeroEliminator(width=4)
        assert eliminator.compress([0, 1, 2], [0.0, 0.0, 0.0]) == ([], [])
        keys, vals = eliminator.compress([5, 6], [1.0, 2.0])
        assert keys == [5, 6] and vals == [1.0, 2.0]

    def test_oversized_window_rejected(self):
        eliminator = ZeroEliminator(width=4)
        with pytest.raises(ValueError, match="exceeds"):
            eliminator.compress(list(range(5)), [1.0] * 5)
        with pytest.raises(ValueError, match="equal length"):
            eliminator.compress([1], [1.0, 2.0])

    def test_statistics_accumulate(self):
        eliminator = ZeroEliminator(width=4)
        eliminator.compress([0, 1], [1.0, 0.0])
        eliminator.compress([2, 3], [0.0, 2.0])
        assert eliminator.total_invocations == 2
        assert eliminator.total_elements == 4

    @pytest.mark.parametrize("width", [2, 4, 8, 16])
    def test_matches_functional_contract(self, width, rng):
        eliminator = ZeroEliminator(width=width)
        values = rng.random(width)
        values[rng.random(width) < 0.5] = 0.0
        keys = list(range(width))
        got_keys, got_vals = eliminator.compress(keys, list(values))
        exp_keys, exp_vals = eliminate_zeros(np.array(keys), values)
        assert got_keys == list(exp_keys)
        np.testing.assert_allclose(got_vals, exp_vals)


def test_eliminate_zeros_functional():
    keys, vals = eliminate_zeros(np.array([1, 2, 3]), np.array([0.0, 5.0, 0.0]))
    np.testing.assert_array_equal(keys, [2])
    np.testing.assert_allclose(vals, [5.0])
    with pytest.raises(ValueError):
        eliminate_zeros(np.array([1]), np.array([1.0, 2.0]))
