"""Unit tests for the streaming merge tree (§II-A.3, Figure 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.merge_tree import MergeTree


def _sorted_stream(rng, length: int, key_range: int = 1000):
    keys = np.sort(rng.integers(0, key_range, size=length))
    vals = rng.random(length) + 0.1
    return keys, vals


def test_figure5_example_merges_four_streams():
    """The four coordinate arrays of Figure 5 merge into one sorted array."""
    streams = [
        (np.array([24, 26, 31, 52, 54, 56, 57, 58, 73, 75]), None),
        (np.array([22, 28, 42, 44, 46, 47, 48]), None),
        (np.array([11, 13, 15, 21, 23, 25, 41, 43, 45]), None),
        (np.array([12, 14, 16, 17, 18, 32, 34, 36, 37, 38, 72]), None),
    ]
    streams = [(keys, np.ones(len(keys))) for keys, _ in streams]
    tree = MergeTree(num_layers=2, merger_width=4, chunk_size=4)
    keys, vals = tree.merge(streams)
    expected = np.sort(np.concatenate([s[0] for s in streams]))
    np.testing.assert_array_equal(keys, expected)
    assert len(vals) == len(expected)


def test_merge_folds_duplicates_and_drops_zeros(rng):
    tree = MergeTree(num_layers=2, merger_width=4)
    streams = [
        (np.array([1, 5, 9]), np.array([1.0, 2.0, 3.0])),
        (np.array([1, 5, 9]), np.array([1.0, -2.0, 4.0])),
    ]
    keys, vals = tree.merge(streams)
    np.testing.assert_array_equal(keys, [1, 9])
    np.testing.assert_allclose(vals, [2.0, 7.0])
    assert tree.stats.additions == 3


def test_merge_many_streams_matches_numpy(rng):
    tree = MergeTree(num_layers=6, merger_width=16, chunk_size=4)
    streams = [_sorted_stream(rng, int(rng.integers(0, 40))) for _ in range(64)]
    keys, vals = tree.merge(streams)
    all_keys = np.concatenate([s[0] for s in streams])
    all_vals = np.concatenate([s[1] for s in streams])
    expected = {}
    for key, val in zip(all_keys.tolist(), all_vals.tolist()):
        expected[key] = expected.get(key, 0.0) + val
    expected_keys = sorted(expected)
    np.testing.assert_array_equal(keys, expected_keys)
    np.testing.assert_allclose(vals, [expected[k] for k in expected_keys])
    assert np.all(np.diff(keys) > 0)


def test_way_limit_enforced(rng):
    tree = MergeTree(num_layers=2, merger_width=4)
    streams = [_sorted_stream(rng, 4) for _ in range(5)]
    with pytest.raises(ValueError, match="4-way"):
        tree.merge(streams)


def test_unsorted_input_rejected():
    tree = MergeTree(num_layers=1, merger_width=4)
    with pytest.raises(ValueError, match="sorted"):
        tree.merge([(np.array([3, 1]), np.array([1.0, 1.0]))])
    with pytest.raises(ValueError, match="equal length"):
        tree.merge([(np.array([1]), np.array([1.0, 2.0]))])


def test_empty_and_single_stream_cases():
    tree = MergeTree(num_layers=2, merger_width=4)
    keys, vals = tree.merge([])
    assert len(keys) == 0
    keys, vals = tree.merge([(np.array([2, 4]), np.array([1.0, 0.0]))])
    np.testing.assert_array_equal(keys, [2])  # explicit zero eliminated
    np.testing.assert_allclose(vals, [1.0])


def test_structural_properties():
    tree = MergeTree(num_layers=6, merger_width=16, chunk_size=4)
    assert tree.num_ways == 64
    assert tree.num_layers == 6
    assert tree.num_mergers == 6
    assert tree.total_comparators == 6 * ((2 * 4 - 1) * 16 + 16)
    assert tree.total_fifo_entries == (2 ** 7 - 1) * 1024


def test_cycle_accounting_is_root_bound(rng):
    tree = MergeTree(num_layers=3, merger_width=8)
    streams = [_sorted_stream(rng, 32) for _ in range(8)]
    tree.merge(streams)
    total = 8 * 32
    assert tree.stats.elements_into_root == total
    assert tree.stats.cycles >= total // 8
    assert tree.merge_cycles(total) == -(-total // 8) + 3
    assert tree.merge_cycles(0) == 0
    with pytest.raises(ValueError):
        tree.merge_cycles(-1)


def test_reset_stats(rng):
    tree = MergeTree(num_layers=2, merger_width=4)
    tree.merge([_sorted_stream(rng, 8), _sorted_stream(rng, 8)])
    assert tree.stats.elements_into_root > 0
    tree.reset_stats()
    assert tree.stats.elements_into_root == 0
    assert tree.stats.cycles == 0
