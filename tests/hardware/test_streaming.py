"""Tests for the clock-stepped streaming merge tree and its agreement with
the transaction-level cycle model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.merge_tree import MergeTree
from repro.hardware.streaming import StreamingMergeTree


def _streams(rng, count: int, max_len: int = 60, key_range: int = 10_000):
    streams = []
    for _ in range(count):
        length = int(rng.integers(0, max_len))
        keys = np.sort(rng.integers(0, key_range, size=length))
        streams.append((keys, rng.random(length)))
    return streams


def test_output_is_the_sorted_interleaving(rng):
    tree = StreamingMergeTree(num_layers=3, merger_width=4, fifo_capacity=16)
    streams = _streams(rng, 8)
    keys, values, stats = tree.merge(streams)
    expected = np.sort(np.concatenate([s[0] for s in streams]))
    np.testing.assert_array_equal(keys, expected)
    assert stats.elements_out == len(expected)
    assert len(values) == len(keys)


def test_duplicates_are_preserved_not_folded(rng):
    tree = StreamingMergeTree(num_layers=1, merger_width=2, fifo_capacity=8)
    keys, _, _ = tree.merge([(np.array([5, 5]), np.array([1.0, 2.0])),
                             (np.array([5]), np.array([3.0]))])
    np.testing.assert_array_equal(keys, [5, 5, 5])


def test_empty_and_partial_inputs(rng):
    tree = StreamingMergeTree(num_layers=2, merger_width=4, fifo_capacity=8)
    keys, values, stats = tree.merge([])
    assert len(keys) == 0 and stats.cycles == 0
    # Fewer streams than ways, including empty ones.
    keys, _, _ = tree.merge([(np.array([3, 7]), np.ones(2)),
                             (np.empty(0, np.int64), np.empty(0))])
    np.testing.assert_array_equal(keys, [3, 7])


def test_rejects_unsorted_and_oversubscribed_inputs(rng):
    tree = StreamingMergeTree(num_layers=1, merger_width=4)
    with pytest.raises(ValueError, match="sorted"):
        tree.merge([(np.array([3, 1]), np.ones(2))])
    with pytest.raises(ValueError, match="2-way"):
        tree.merge(_streams(rng, 3, max_len=4))
    with pytest.raises(ValueError, match="equal length"):
        tree.merge([(np.array([1]), np.ones(2))])


def test_cycle_count_close_to_transaction_model(rng):
    """The clock-stepped cycle count validates the steady-state estimate."""
    streams = _streams(rng, 16, max_len=80)
    total = sum(len(keys) for keys, _ in streams)
    streaming = StreamingMergeTree(num_layers=4, merger_width=8,
                                   fifo_capacity=32)
    _, _, stats = streaming.merge(streams)
    estimate = MergeTree(num_layers=4, merger_width=8).merge_cycles(total)
    # The root can emit at most `merger_width` elements per cycle, so the
    # transaction estimate is a lower bound; pipeline bubbles cost at most
    # a modest constant factor on top.
    assert stats.cycles >= total // 8
    assert stats.cycles <= 3 * estimate + 20


def test_root_merger_is_the_throughput_bottleneck(rng):
    streams = _streams(rng, 8, max_len=100)
    tree = StreamingMergeTree(num_layers=3, merger_width=4, fifo_capacity=16)
    _, _, stats = tree.merge(streams)
    root_layer = 2
    # The root merger is busier than (or as busy as) the leaf layer mergers.
    assert stats.utilization(root_layer) >= stats.utilization(0) * 0.5
    assert 0.0 < stats.utilization(root_layer) <= 1.0


def test_small_fifos_still_produce_correct_output(rng):
    """Back-pressure from tiny FIFOs slows the tree but never corrupts it."""
    streams = _streams(rng, 8, max_len=50)
    roomy = StreamingMergeTree(num_layers=3, merger_width=4, fifo_capacity=64)
    cramped = StreamingMergeTree(num_layers=3, merger_width=4, fifo_capacity=4)
    keys_roomy, _, stats_roomy = roomy.merge(streams)
    keys_cramped, _, stats_cramped = cramped.merge(streams)
    np.testing.assert_array_equal(keys_roomy, keys_cramped)
    assert stats_cramped.cycles >= stats_roomy.cycles
