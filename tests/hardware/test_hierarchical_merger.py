"""Unit tests for the two-level hierarchical merger (§II-A.2, Figure 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.comparator_array import ComparatorArray
from repro.hardware.hierarchical_merger import (
    HierarchicalMerger,
    chunk_pairs,
    comparator_count,
)


def test_comparator_count_formula():
    # The paper's example: 16-wide merger from 4-wide chunks.
    assert comparator_count(16, 4) == (2 * 4 - 1) * 16 + 16
    # Degenerate case: one chunk is just a flat array plus a 1x1 top level.
    assert comparator_count(4, 4) == 16 + 1
    with pytest.raises(ValueError):
        comparator_count(10, 4)


def test_hierarchical_saves_comparators():
    merger = HierarchicalMerger(total_width=16, chunk_size=4)
    flat = ComparatorArray(16)
    assert merger.num_comparators < flat.num_comparators
    assert merger.comparator_savings > 1.0
    assert merger.throughput == flat.throughput == 16
    assert merger.num_chunks == 4


def test_chunk_pairs_figure4_example():
    """Figure 4: chunk maxima (13, 37, 58) vs (12, 40, 61) give 5 pairs."""
    pairs = chunk_pairs([13, 37, 58], [12, 40, 61])
    assert len(pairs) == 2 * 3 - 1
    assert pairs[0] == (0, 0)
    assert pairs[-1] == (2, 2)
    # The staircase is monotone in both coordinates.
    for (a0, b0), (a1, b1) in zip(pairs, pairs[1:]):
        assert a1 >= a0 and b1 >= b0
        assert (a1 - a0) + (b1 - b0) >= 1


def test_chunk_pairs_empty_inputs():
    assert chunk_pairs([], [1, 2]) == []
    assert chunk_pairs([1], []) == []


def test_merge_matches_flat_array(rng):
    merger = HierarchicalMerger(total_width=16, chunk_size=4)
    flat = ComparatorArray(16)
    a_keys = np.sort(rng.integers(0, 500, size=64))
    b_keys = np.sort(rng.integers(0, 500, size=50))
    a_vals = rng.random(64)
    b_vals = rng.random(50)
    h_keys, h_vals = merger.merge(a_keys, a_vals, b_keys, b_vals)
    f_keys, f_vals = flat.merge(a_keys, a_vals, b_keys, b_vals)
    np.testing.assert_array_equal(h_keys, f_keys)
    np.testing.assert_allclose(h_vals, f_vals)


def test_energy_accounting_uses_fewer_comparator_ops(rng):
    hierarchical = HierarchicalMerger(total_width=16, chunk_size=4)
    flat = ComparatorArray(16)
    keys = np.sort(rng.integers(0, 100, size=32))
    vals = rng.random(32)
    hierarchical.merge(keys, vals, keys, vals)
    flat.merge(keys, vals, keys, vals)
    assert hierarchical.stats.cycles == flat.stats.cycles
    assert hierarchical.stats.comparator_ops < flat.stats.comparator_ops


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        HierarchicalMerger(total_width=10, chunk_size=4)
    with pytest.raises(ValueError):
        HierarchicalMerger(total_width=0, chunk_size=1)


def test_merge_cycles_and_reset():
    merger = HierarchicalMerger(total_width=16, chunk_size=4)
    assert merger.merge_cycles(32) == 2
    assert merger.merge_cycles(0) == 0
    with pytest.raises(ValueError):
        merger.merge_cycles(-5)
    merger.merge(np.array([1]), np.array([1.0]), np.array([2]), np.array([2.0]))
    assert merger.stats.elements_merged == 2
    merger.reset_stats()
    assert merger.stats.elements_merged == 0
