"""Unit tests for the outer-product multiplier array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.hardware.multiplier_array import MultiplierArray


def _matrix_b() -> CSRMatrix:
    dense = np.array([
        [0.0, 2.0, 0.0, 4.0],
        [1.0, 0.0, 0.0, 0.0],
        [0.0, 0.0, 3.0, 0.0],
    ])
    return CSRMatrix.from_dense(dense)


def test_multiply_element_produces_scaled_row():
    multipliers = MultiplierArray(num_multipliers=4)
    b = _matrix_b()
    b_cols, b_vals = b.row(0)
    rows, cols, vals = multipliers.multiply_element(7, 0.5, b_cols, b_vals)
    np.testing.assert_array_equal(rows, [7, 7])
    np.testing.assert_array_equal(cols, [1, 3])
    np.testing.assert_allclose(vals, [1.0, 2.0])
    assert multipliers.stats.multiplications == 2
    assert multipliers.stats.left_elements == 1
    assert multipliers.stats.cycles == 1


def test_multiply_column_is_sorted_by_row_then_column():
    multipliers = MultiplierArray()
    b = _matrix_b()
    # Condensed column: rows ascending, each selecting a B row.
    left_rows = np.array([0, 2, 5])
    left_cols = np.array([0, 2, 0])
    left_vals = np.array([1.0, 2.0, -1.0])
    rows, cols, vals = multipliers.multiply_column(left_rows, left_cols,
                                                   left_vals, b)
    keys = rows * b.num_cols + cols
    assert np.all(np.diff(keys) > 0)
    assert multipliers.stats.multiplications == len(vals) == 5
    # Check one product exactly: row 2 element times B[2, :].
    mask = rows == 2
    np.testing.assert_array_equal(cols[mask], [2])
    np.testing.assert_allclose(vals[mask], [6.0])


def test_multiply_column_against_dense_reference(rng):
    b = CSRMatrix.from_dense((rng.random((6, 5)) > 0.5) * rng.random((6, 5)))
    multipliers = MultiplierArray()
    left_rows = np.array([1, 3, 4])
    left_cols = np.array([2, 0, 5])
    left_vals = np.array([2.0, -1.0, 0.5])
    # Column 5 of B does not exist (only 6 rows) — use a valid index instead.
    left_cols[2] = 5
    rows, cols, vals = multipliers.multiply_column(left_rows, left_cols,
                                                   left_vals, b)
    dense = np.zeros((6, 5))
    for r, c, v in zip(left_rows, left_cols, left_vals):
        dense[r, :] += v * b.to_dense()[c, :]
    produced = np.zeros((6, 5))
    np.add.at(produced, (rows, cols), vals)
    np.testing.assert_allclose(produced, dense)


def test_empty_column_and_empty_rows():
    multipliers = MultiplierArray()
    b = _matrix_b()
    rows, cols, vals = multipliers.multiply_column(np.empty(0, np.int64),
                                                   np.empty(0, np.int64),
                                                   np.empty(0), b)
    assert len(rows) == len(cols) == len(vals) == 0
    # An element selecting an empty B row produces nothing.
    empty_b = CSRMatrix.empty((3, 4))
    rows, cols, vals = multipliers.multiply_column(np.array([0]), np.array([1]),
                                                   np.array([2.0]), empty_b)
    assert len(vals) == 0


def test_throughput_and_cycle_model():
    multipliers = MultiplierArray(num_multipliers=8)
    assert multipliers.throughput == 8
    b_cols = np.arange(20, dtype=np.int64)
    b_vals = np.ones(20)
    multipliers.multiply_element(0, 1.0, b_cols, b_vals)
    assert multipliers.stats.cycles == 3  # ceil(20 / 8)


def test_validation():
    multipliers = MultiplierArray()
    with pytest.raises(ValueError):
        multipliers.multiply_element(0, 1.0, np.array([1, 2]), np.array([1.0]))
    with pytest.raises(ValueError):
        multipliers.multiply_column(np.array([1]), np.array([1, 2]),
                                    np.array([1.0]), _matrix_b())
    with pytest.raises(ValueError):
        MultiplierArray(num_multipliers=0)
    multipliers.reset_stats()
    assert multipliers.stats.multiplications == 0
