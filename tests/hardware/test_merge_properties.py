"""Property-based tests for the merge tree and the zero eliminator.

Hypothesis drives both merge-tree backends with arbitrary sorted streams and
whole SpGEMM executions with arbitrary sparse operands, asserting the
invariants the datapath promises:

* the merged stream equals the scipy ``A @ B`` contribution,
* output keys are strictly increasing (sorted and duplicate-free),
* no explicit zeros survive the eliminator.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.formats.csr import CSRMatrix
from repro.hardware.merge_tree import MergeTree
from repro.core.vectorized import VectorizedMergeTree
from repro.hardware.zero_eliminator import ZeroEliminator, eliminate_zeros

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_values = st.floats(min_value=-8.0, max_value=8.0,
                    allow_nan=False, allow_infinity=False)


@st.composite
def sorted_streams(draw):
    """A list of up to 8 key-sorted (keys, values) streams."""
    num_streams = draw(st.integers(min_value=0, max_value=8))
    streams = []
    for _ in range(num_streams):
        length = draw(st.integers(min_value=0, max_value=24))
        keys = sorted(draw(st.lists(st.integers(min_value=0, max_value=40),
                                    min_size=length, max_size=length)))
        values = draw(st.lists(_values, min_size=length, max_size=length))
        streams.append((np.array(keys, dtype=np.int64), np.array(values)))
    return streams


@st.composite
def sparse_matrices(draw, max_dim=24, max_nnz=60):
    """A small random CSR matrix (possibly empty)."""
    rows = draw(st.integers(min_value=1, max_value=max_dim))
    cols = draw(st.integers(min_value=1, max_value=max_dim))
    nnz = draw(st.integers(min_value=0, max_value=max_nnz))
    entries = draw(st.lists(
        st.tuples(st.integers(0, rows - 1), st.integers(0, cols - 1),
                  _values.filter(lambda v: v != 0.0)),
        min_size=nnz, max_size=nnz))
    dense = np.zeros((rows, cols))
    for r, c, v in entries:
        dense[r, c] = v
    return CSRMatrix.from_dense(dense)


# ----------------------------------------------------------------------
# Merge tree properties (both backends)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("tree_class", [MergeTree, VectorizedMergeTree])
@given(streams=sorted_streams())
@settings(max_examples=60, deadline=None)
def test_merge_output_is_folded_sorted_and_zero_free(tree_class, streams):
    tree = tree_class(num_layers=3, merger_width=4, chunk_size=2)
    out_keys, out_vals = tree.merge(streams)

    # Sorted with no duplicates.
    assert np.all(np.diff(out_keys) > 0)
    # No explicit zeros.
    assert np.all(out_vals != 0.0)
    # Values equal the per-key sums of the inputs (up to fp associativity).
    expected: dict[int, float] = {}
    for keys, values in streams:
        for key, value in zip(keys.tolist(), values.tolist()):
            expected[key] = expected.get(key, 0.0) + value
    for key, value in zip(out_keys.tolist(), out_vals.tolist()):
        assert expected[int(key)] == pytest.approx(value, rel=1e-9, abs=1e-12)
    # Keys whose sum cancelled (or never existed) must be absent.
    surviving = set(out_keys.tolist())
    for key, value in expected.items():
        if key not in surviving:
            assert value == pytest.approx(0.0, abs=1e-9)


@given(matrix_a=sparse_matrices(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_spgemm_matches_scipy(matrix_a, data):
    """Both engines' SpGEMM equals scipy's A @ B on random operands."""
    matrix_b = data.draw(sparse_matrices())
    if matrix_a.shape[1] != matrix_b.shape[0]:
        # Regenerate B with a compatible leading dimension.
        dense = np.zeros((matrix_a.shape[1], matrix_b.shape[1]))
        limit = min(matrix_b.shape[0], matrix_a.shape[1])
        dense[:limit, :] = matrix_b.to_dense()[:limit, :]
        matrix_b = CSRMatrix.from_dense(dense)

    expected = (sp.csr_matrix(matrix_a.to_dense())
                @ sp.csr_matrix(matrix_b.to_dense())).toarray()
    for engine in ("scalar", "vectorized"):
        config = SpArchConfig(engine=engine, merge_tree_layers=2,
                              prefetch_buffer_lines=4,
                              prefetch_line_elements=4)
        result = SpArch(config).multiply(matrix_a, matrix_b)
        np.testing.assert_allclose(result.matrix.to_dense(), expected,
                                   rtol=1e-9, atol=1e-12)
        # CSR invariants of the result: sorted, duplicate-free rows.
        assert result.matrix.has_sorted_rows()


# ----------------------------------------------------------------------
# Zero eliminator properties
# ----------------------------------------------------------------------

@given(values=st.lists(st.sampled_from([0.0, 1.0, -2.0, 0.5]), max_size=16))
@settings(max_examples=60, deadline=None)
def test_eliminate_zeros_drops_exact_zeros_in_order(values):
    keys = np.arange(len(values), dtype=np.int64)
    out_keys, out_vals = eliminate_zeros(keys, np.array(values))
    expected = [(k, v) for k, v in zip(keys.tolist(), values) if v != 0.0]
    assert list(zip(out_keys.tolist(), out_vals.tolist())) == expected


@given(values=st.lists(st.sampled_from([0.0, 1.0, -2.0, 0.5]),
                       min_size=0, max_size=16))
@settings(max_examples=60, deadline=None)
def test_staged_shifter_matches_functional_eliminator(values):
    """The log-shifter hardware model agrees with the functional contract."""
    keys = list(range(len(values)))
    eliminator = ZeroEliminator(width=16)
    packed_keys, packed_vals = eliminator.compress(keys, values)
    ref_keys, ref_vals = eliminate_zeros(np.array(keys, dtype=np.int64),
                                         np.array(values))
    assert packed_keys == ref_keys.tolist()
    assert packed_vals == ref_vals.tolist()
