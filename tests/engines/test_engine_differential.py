"""Differential harness: the registry path reproduces every native path.

The refactor's acceptance contract: dispatching any engine through the
registry / runner / pipeline stack must produce byte-identical functional
results and identical counters to driving the native simulator or baseline
by hand.  (The figure-harness side of the contract is locked by
``tests/experiments/test_golden_values.py``, which pins pre-refactor
numbers.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GustavsonSpGEMM
from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.engines import create_engine, list_engines
from repro.engines.registry import get_engine_entry
from repro.experiments.runner import ExperimentRunner
from repro.matrices.synthetic import powerlaw_matrix
from repro.metrics.compare import assert_reports_equal
from repro.workloads.pipeline import BaselineExecutor, EngineExecutor
from repro.workloads.registry import run_workload


@pytest.fixture(scope="module")
def matrix():
    return powerlaw_matrix(90, 4.5, seed=31)


def _assert_same_matrix(left, right) -> None:
    np.testing.assert_array_equal(left.indptr, right.indptr)
    np.testing.assert_array_equal(left.indices, right.indices)
    np.testing.assert_array_equal(left.data, right.data)


@pytest.mark.parametrize("name", list_engines())
def test_registry_path_equals_native_path(name, matrix):
    """engine.run() == driving the native simulator/baseline by hand."""
    engine = create_engine(name)
    run = engine.run(matrix)
    if engine.kind == "simulation":
        native = SpArch(SpArchConfig()).multiply(matrix, matrix)
        _assert_same_matrix(run.matrix, native.matrix)
        assert run.report.to_stats() == native.stats
    else:
        native = engine.baseline.multiply(matrix, matrix)
        _assert_same_matrix(run.matrix, native.matrix)
        assert run.report.runtime_seconds == native.runtime_seconds
        assert run.report.dram_bytes == native.traffic_bytes
        assert run.report.multiplications == native.multiplications
        assert run.report.additions == native.additions
        assert run.report.energy_joules == native.energy_joules
        assert run.report.output_nnz == native.nnz


@pytest.mark.parametrize("name", list_engines())
def test_runner_memoised_report_equals_direct_run(name, matrix):
    """runner.run_engine == engine.run, fresh and replayed from cache."""
    engine = create_engine(name)
    direct = engine.run(matrix).report
    runner = ExperimentRunner()
    fresh = runner.run_engine(name, matrix)
    replayed = runner.run_engine(name, matrix)
    assert (runner.cache_hits, runner.cache_misses) == (1, 1)
    assert_reports_equal(fresh, direct)
    assert fresh == replayed


def test_runner_views_are_lossless_over_the_report(matrix):
    """simulate/run_baseline rebuild native objects from the report memo."""
    runner = ExperimentRunner()
    stats = runner.simulate(matrix)
    assert stats == SpArch(SpArchConfig()).multiply(matrix, matrix).stats

    baseline = GustavsonSpGEMM()
    summary = runner.run_baseline(baseline, matrix)
    native = baseline.multiply(matrix, matrix)
    assert summary.runtime_seconds == native.runtime_seconds
    assert summary.extras == native.extras


def test_simulate_and_run_engine_share_one_memo_pool(matrix):
    """The legacy and unified entry points hit the same cache entries."""
    runner = ExperimentRunner()
    runner.simulate(matrix)
    runner.run_engine("sparch", matrix)
    assert (runner.cache_hits, runner.cache_misses) == (1, 1)

    runner.run_baseline(GustavsonSpGEMM(), matrix)
    runner.run_engine("mkl", matrix)
    assert (runner.cache_hits, runner.cache_misses) == (2, 2)


def test_pipeline_dispatch_by_name_equals_dispatch_by_instance(matrix):
    """EngineExecutor("mkl") == BaselineExecutor(GustavsonSpGEMM())."""
    by_name = run_workload("triangles", matrix,
                           executor=EngineExecutor("mkl"))
    by_instance = run_workload("triangles", matrix,
                               executor=BaselineExecutor(GustavsonSpGEMM()))
    assert by_name == by_instance  # WorkloadResult equality covers stages
    assert by_name.backend == "MKL"


def test_string_executor_rejects_conflicting_backends_and_honours_config(matrix):
    from repro.baselines import GustavsonSpGEMM
    from repro.core.config import SpArchConfig

    with pytest.raises(ValueError, match="not both"):
        run_workload("triangles", matrix, executor="sparch",
                     baseline=GustavsonSpGEMM())
    # config= reaches the named sparch engine instead of being dropped.
    config = SpArchConfig(engine="scalar")
    result = run_workload("triangles", matrix, executor="sparch",
                          config=config)
    assert result.spgemm_stages[0].stats is not None
    reference = run_workload("triangles", matrix, config=config)
    assert result.spgemm_stages[0].stats == reference.spgemm_stages[0].stats
    # ... and is rejected clearly for engines that take no configuration.
    with pytest.raises(ValueError, match="simulation engines only"):
        run_workload("triangles", matrix, executor="mkl", config=config)


def test_every_engine_runs_a_workload_through_the_registry(matrix):
    """The acceptance sweep: every registered engine drives a pipeline."""
    totals = {}
    for name in list_engines():
        result = run_workload("triangles", matrix, executor=name)
        assert result.backend == get_engine_entry(name).factory().display_name
        totals[name] = result.summary()["triangles"]
    # Functional invariant: identical triangle counts on every backend.
    assert len(set(totals.values())) == 1, totals
