"""The engine registry: every system reachable by name, one invariant suite."""

from __future__ import annotations

import pytest

from repro.baselines import GustavsonSpGEMM
from repro.engines import (
    BaselineEngineAdapter,
    Engine,
    SpArchEngine,
    create_engine,
    get_engine_entry,
    list_engines,
    resolve_engine,
)
from repro.matrices.synthetic import (
    banded_matrix,
    powerlaw_matrix,
    random_matrix,
)

#: The acceptance surface: SpArch plus the baselines, all by name.
EXPECTED_ENGINES = ("sparch", "outerspace", "mkl", "cusparse", "cusp",
                    "armadillo", "heap", "innerproduct")

#: Shared invariant suite: structurally diverse small matrices.
SUITE = {
    "powerlaw": powerlaw_matrix(80, 4.0, seed=21),
    "random": random_matrix(64, 64, 400, seed=22),
    "banded": banded_matrix(72, 5.0, seed=23),
}


class TestRegistrySurface:
    def test_every_expected_engine_is_registered(self):
        assert list_engines() == list(EXPECTED_ENGINES)

    @pytest.mark.parametrize("name", EXPECTED_ENGINES)
    def test_create_engine_builds_a_runnable_engine(self, name):
        engine = create_engine(name)
        assert isinstance(engine, Engine)
        assert engine.name == name
        assert engine.kind in ("simulation", "baseline")
        assert get_engine_entry(name).kind == engine.kind

    def test_unknown_engine_fails_with_suggestions(self):
        with pytest.raises(KeyError, match="known engines"):
            create_engine("not-an-engine")

    def test_resolve_engine_passes_instances_through(self):
        engine = SpArchEngine()
        assert resolve_engine(engine) is engine
        assert resolve_engine("mkl").display_name == "MKL"

    def test_baseline_adapter_wraps_any_baseline(self):
        adapter = BaselineEngineAdapter(GustavsonSpGEMM())
        assert adapter.name == "mkl"
        assert adapter.display_name == "MKL"
        assert adapter.backend == "vectorized"

    @pytest.mark.parametrize("name", [n for n in EXPECTED_ENGINES
                                      if n != "sparch"])
    def test_adapter_name_round_trips_to_the_registry_id(self, name):
        """Wrapping a baseline directly yields the registry id, so a
        report's ``engine`` label always resolves via create_engine."""
        wrapped = BaselineEngineAdapter(create_engine(name).baseline)
        assert wrapped.name == name
        assert create_engine(wrapped.name).display_name == wrapped.display_name

    def test_using_backend_pins_the_execution_backend(self):
        scalar = create_engine("mkl").using_backend("scalar")
        assert scalar.backend == "scalar"
        assert scalar.using_backend("scalar") is scalar
        sparch_scalar = create_engine("sparch").using_backend("scalar")
        assert sparch_scalar.backend == "scalar"
        assert sparch_scalar.config.engine == "scalar"


class TestCrossEngineInvariants:
    """Counters that every formulation must agree on, engine by engine.

    Inner, row-wise and outer products all generate exactly one partial
    product per (A element, matching B row element) pair, and all engines
    are functionally exact — so multiplications and output nonzeros are
    engine-independent on any input.
    """

    @pytest.fixture(scope="class")
    def suite_runs(self):
        return {
            matrix_name: {name: create_engine(name).run(matrix)
                          for name in list_engines()}
            for matrix_name, matrix in SUITE.items()
        }

    @pytest.mark.parametrize("matrix_name", list(SUITE))
    def test_multiplications_identical_across_engines(self, suite_runs,
                                                      matrix_name):
        counts = {name: run.report.multiplications
                  for name, run in suite_runs[matrix_name].items()}
        assert len(set(counts.values())) == 1, counts

    @pytest.mark.parametrize("matrix_name", list(SUITE))
    def test_output_nnz_identical_across_engines(self, suite_runs,
                                                 matrix_name):
        counts = {name: run.report.output_nnz
                  for name, run in suite_runs[matrix_name].items()}
        assert len(set(counts.values())) == 1, counts

    @pytest.mark.parametrize("matrix_name", list(SUITE))
    def test_result_matrices_structurally_identical(self, suite_runs,
                                                    matrix_name):
        import numpy as np

        runs = suite_runs[matrix_name]
        reference = runs["sparch"].matrix
        for name, run in runs.items():
            np.testing.assert_array_equal(run.matrix.indptr,
                                          reference.indptr, err_msg=name)
            np.testing.assert_array_equal(run.matrix.indices,
                                          reference.indices, err_msg=name)

    @pytest.mark.parametrize("matrix_name", list(SUITE))
    def test_reports_carry_consistent_derived_metrics(self, suite_runs,
                                                      matrix_name):
        for name, run in suite_runs[matrix_name].items():
            report = run.report
            assert report.flops == report.multiplications + report.additions
            assert report.dram_bytes == sum(report.traffic.values())
            if report.runtime_seconds > 0:
                assert report.gflops > 0
