"""Differential harness: scalar and vectorized baseline backends are identical.

Every baseline runs on two backends (``BaselineEngine``): the scalar
reference loop and the vectorized fast path with closed-form counters.  This
harness proves, over the benchmark matrix suite plus adversarial edge cases,
that the two backends agree *exactly* — bit-identical result matrices and
equal values for every modelled quantity (runtime, traffic, energy,
multiplications, additions, bookkeeping and all algorithm-specific extras).

This equivalence is what licenses :class:`ExperimentRunner` to share cached
baseline points between engines (and the comparison sweeps to default to the
fast backend).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ArmadilloSpGEMM,
    ESCSpGEMM,
    GustavsonSpGEMM,
    HashSpGEMM,
    HeapSpGEMM,
    InnerProductSpGEMM,
    OuterSpaceAccelerator,
)
from repro.formats.csr import CSRMatrix
from repro.matrices.rmat import RMATConfig, generate_rmat
from repro.matrices.suite import benchmark_names, load_suite
from repro.matrices.synthetic import bipartite_matrix, powerlaw_matrix, random_matrix

ALL_BASELINES = [
    OuterSpaceAccelerator,
    GustavsonSpGEMM,
    HashSpGEMM,
    ESCSpGEMM,
    HeapSpGEMM,
    ArmadilloSpGEMM,
    InnerProductSpGEMM,
]

#: Exactly-compared scalar fields of a BaselineResult.
EXACT_FIELDS = ("runtime_seconds", "traffic_bytes", "multiplications",
                "additions", "bookkeeping_ops", "energy_joules", "platform")


def _suite_matrices() -> dict[str, CSRMatrix]:
    """The benchmark suite (scaled down) plus synthetic stress matrices."""
    matrices = dict(load_suite(max_rows=200, names=benchmark_names()[:8]))
    matrices["powerlaw"] = powerlaw_matrix(150, 5.0, seed=17)
    matrices["rmat"] = generate_rmat(RMATConfig(num_rows=300, edge_factor=8,
                                                seed=3))
    return matrices


SUITE = _suite_matrices()


def assert_backends_identical(baseline_cls, matrix_a: CSRMatrix,
                              matrix_b: CSRMatrix, **kwargs) -> None:
    """Assert scalar and vectorized runs of one baseline agree exactly."""
    scalar = baseline_cls(engine="scalar", **kwargs).multiply(matrix_a, matrix_b)
    fast = baseline_cls(engine="vectorized", **kwargs).multiply(matrix_a, matrix_b)

    # Bit-identical functional result.
    assert scalar.matrix.shape == fast.matrix.shape
    np.testing.assert_array_equal(scalar.matrix.indptr, fast.matrix.indptr)
    np.testing.assert_array_equal(scalar.matrix.indices, fast.matrix.indices)
    assert scalar.matrix.data.tobytes() == fast.matrix.data.tobytes(), (
        f"{baseline_cls.__name__}: result values differ between backends")

    # Identical counters, modelled quantities and extras.
    for field in EXACT_FIELDS:
        assert getattr(scalar, field) == getattr(fast, field), (
            f"{baseline_cls.__name__}.{field}: "
            f"scalar={getattr(scalar, field)!r} "
            f"vectorized={getattr(fast, field)!r}")
    assert scalar.extras == fast.extras, (
        f"{baseline_cls.__name__}.extras: {scalar.extras} != {fast.extras}")


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
@pytest.mark.parametrize("name", sorted(SUITE))
def test_backends_identical_on_matrix_suite(baseline_cls, name):
    """Squaring every suite matrix gives identical results and counters."""
    matrix = SUITE[name]
    assert_backends_identical(baseline_cls, matrix, matrix)


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
def test_backends_identical_on_rectangular_product(baseline_cls):
    a = bipartite_matrix(40, 60, 4.0, seed=1)
    b = bipartite_matrix(60, 30, 3.0, seed=2)
    assert_backends_identical(baseline_cls, a, b)


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
def test_backends_identical_on_empty_operands(baseline_cls):
    empty = CSRMatrix.empty((8, 8))
    dense = random_matrix(8, 8, 20, seed=1)
    assert_backends_identical(baseline_cls, empty, dense)
    assert_backends_identical(baseline_cls, dense, empty)
    assert_backends_identical(baseline_cls, empty, empty)


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
def test_backends_identical_under_exact_cancellation(baseline_cls):
    """Products that cancel to exactly zero stress the structural-nnz
    closed form: insertions happen, but the entry vanishes from the result."""
    a = CSRMatrix.from_dense(np.array([[1.0, -1.0], [2.0, 0.0]]))
    b = CSRMatrix.from_dense(np.array([[1.0, 3.0], [1.0, 0.0]]))
    assert_backends_identical(baseline_cls, a, b)


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
def test_backends_identical_with_empty_b_rows(baseline_cls):
    """A selects B rows that are empty — exercises cursor/table skip paths."""
    a = CSRMatrix.from_dense(np.array([[1.0, 2.0, 3.0],
                                       [0.0, 4.0, 0.0],
                                       [5.0, 0.0, 6.0]]))
    b = CSRMatrix.from_dense(np.array([[1.0, 0.0, 2.0],
                                       [0.0, 0.0, 0.0],
                                       [0.0, 3.0, 0.0]]))
    assert_backends_identical(baseline_cls, a, b)


def test_gustavson_cache_parameter_respected_by_both_backends():
    """A thrashing cache capacity must change both backends identically."""
    matrix = SUITE["powerlaw"]
    assert_backends_identical(GustavsonSpGEMM, matrix, matrix,
                              cache_bytes=64.0)


def test_vectorized_is_the_default_engine():
    for baseline_cls in ALL_BASELINES:
        assert baseline_cls().engine == "vectorized"
        assert baseline_cls(engine="scalar").engine == "scalar"


def test_using_engine_returns_pinned_copy():
    baseline = GustavsonSpGEMM(cache_bytes=123.0)
    pinned = baseline.using_engine("scalar")
    assert pinned is not baseline
    assert pinned.engine == "scalar"
    assert baseline.engine == "vectorized"
    # Algorithm parameters carry over to the copy.
    assert pinned.cache_fields()["cache_bytes"] == 123.0
    # Same engine: no copy needed.
    assert baseline.using_engine("vectorized") is baseline
    with pytest.raises(ValueError, match="engine must be one of"):
        baseline.using_engine("turbo")
