"""Correctness and model tests for every baseline SpGEMM implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ArmadilloSpGEMM,
    ESCSpGEMM,
    GustavsonSpGEMM,
    HashSpGEMM,
    HeapSpGEMM,
    InnerProductSpGEMM,
    OuterSpaceAccelerator,
)
from repro.baselines.reference import matrices_allclose, scipy_spgemm
from repro.formats.csr import CSRMatrix
from repro.matrices.synthetic import bipartite_matrix, powerlaw_matrix, random_matrix

ALL_BASELINES = [
    OuterSpaceAccelerator,
    GustavsonSpGEMM,
    HashSpGEMM,
    ESCSpGEMM,
    HeapSpGEMM,
    ArmadilloSpGEMM,
    InnerProductSpGEMM,
]


@pytest.fixture(scope="module")
def square_matrix() -> CSRMatrix:
    return powerlaw_matrix(150, 5.0, seed=17)


@pytest.fixture(scope="module")
def rectangular_pair() -> tuple[CSRMatrix, CSRMatrix]:
    return (bipartite_matrix(40, 60, 4.0, seed=1),
            bipartite_matrix(60, 30, 3.0, seed=2))


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
class TestFunctionalCorrectness:
    def test_square_product_matches_scipy(self, baseline_cls, square_matrix):
        result = baseline_cls().multiply(square_matrix, square_matrix)
        assert matrices_allclose(result.matrix,
                                 scipy_spgemm(square_matrix, square_matrix))

    def test_rectangular_product_matches_scipy(self, baseline_cls,
                                               rectangular_pair):
        a, b = rectangular_pair
        result = baseline_cls().multiply(a, b)
        assert result.matrix.shape == (40, 30)
        assert matrices_allclose(result.matrix, scipy_spgemm(a, b))

    def test_empty_operand(self, baseline_cls):
        empty = CSRMatrix.empty((8, 8))
        dense = random_matrix(8, 8, 20, seed=1)
        result = baseline_cls().multiply(empty, dense)
        assert result.matrix.nnz == 0
        assert result.runtime_seconds >= 0

    def test_dimension_mismatch_rejected(self, baseline_cls):
        a = random_matrix(5, 6, 10, seed=1)
        with pytest.raises(ValueError, match="dimension mismatch"):
            baseline_cls().multiply(a, a)


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
class TestPerformanceModel:
    def test_result_counters_are_consistent(self, baseline_cls, square_matrix):
        result = baseline_cls().multiply(square_matrix, square_matrix)
        b_row_nnz = square_matrix.nnz_per_row()
        expected_multiplications = int(b_row_nnz[square_matrix.indices].sum())
        assert result.multiplications == expected_multiplications
        assert result.additions >= 0
        assert result.flops == result.multiplications + result.additions
        assert result.traffic_bytes > 0
        assert result.runtime_seconds > 0
        assert result.energy_joules > 0
        assert result.gflops > 0
        assert result.nnz == result.matrix.nnz
        assert result.platform

    def test_repr_is_informative(self, baseline_cls, square_matrix):
        result = baseline_cls().multiply(square_matrix, square_matrix)
        assert "BaselineResult" in repr(result)
        assert repr(baseline_cls()).endswith("()")


class TestRelativeOrdering:
    """The cross-platform ordering of Figure 11 holds on a typical matrix."""

    @pytest.fixture(scope="class")
    def runtimes(self, square_matrix=None):
        matrix = powerlaw_matrix(200, 5.0, seed=23)
        return {cls.name: cls().multiply(matrix, matrix).runtime_seconds
                for cls in ALL_BASELINES}

    def test_outerspace_is_fastest_baseline(self, runtimes):
        others = [v for k, v in runtimes.items() if k != "OuterSPACE"]
        assert runtimes["OuterSPACE"] < min(others)

    def test_armadillo_is_slowest(self, runtimes):
        others = [v for k, v in runtimes.items() if k != "Armadillo"]
        assert runtimes["Armadillo"] > max(others)

    def test_gpu_and_cpu_libraries_within_an_order_of_magnitude(self, runtimes):
        ratio = runtimes["MKL"] / runtimes["cuSPARSE"]
        assert 0.1 < ratio < 10.0


class TestAlgorithmSpecificCounters:
    def test_hash_spgemm_counts_probes_and_collisions(self, square_matrix):
        result = HashSpGEMM().multiply(square_matrix, square_matrix)
        assert result.extras["hash_probes"] >= result.multiplications
        assert result.extras["hash_collisions"] >= 0

    def test_esc_expansion_size_equals_multiplications(self, square_matrix):
        result = ESCSpGEMM().multiply(square_matrix, square_matrix)
        assert result.extras["expanded_products"] == result.multiplications
        assert result.extras["sort_passes"] >= 1

    def test_heap_operations_exceed_products(self, square_matrix):
        result = HeapSpGEMM().multiply(square_matrix, square_matrix)
        assert result.extras["heap_operations"] >= result.multiplications

    def test_inner_product_redundant_fetches(self, square_matrix):
        result = InnerProductSpGEMM().multiply(square_matrix, square_matrix)
        # The vanilla inner product re-fetches inputs many times over.
        assert result.extras["redundant_fetch_ratio"] > 10.0

    def test_outerspace_partial_matrix_traffic_dominates(self, square_matrix):
        result = OuterSpaceAccelerator().multiply(square_matrix, square_matrix)
        assert result.extras["partial_matrix_bytes"] == pytest.approx(
            2 * result.multiplications * 16)
        assert result.extras["partial_matrix_bytes"] > result.extras["input_bytes"]

    def test_gustavson_cache_model_bounds(self):
        from repro.baselines.gustavson import estimate_b_read_bytes

        a = random_matrix(64, 64, 256, seed=3)
        b = random_matrix(64, 64, 256, seed=4)
        unique_bytes = estimate_b_read_bytes(a, b, cache_bytes=1e12)
        thrash_bytes = estimate_b_read_bytes(a, b, cache_bytes=1.0)
        touch_bytes = int(b.nnz_per_row()[a.indices].sum()) * 16
        assert unique_bytes <= thrash_bytes <= touch_bytes
