"""Open-addressing coverage for the cuSPARSE-style hash accumulator.

The differential harness checks whole-matrix equivalence; these tests force
the degenerate table geometries the suite rarely hits — a tiny table whose
linear probing actually wraps past the end, near-full occupancy, and the
power-of-two growth of the sizing function — and pin down the probe and
collision accounting slot by slot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.hash_spgemm import (
    HashSpGEMM,
    _HASH_MULTIPLIER,
    _RowHashTable,
    _table_size,
)
from repro.formats.csr import CSRMatrix


def _home_slot(column: int, size: int) -> int:
    return (column * _HASH_MULTIPLIER) % size


def _columns_with_home(size: int, home: int, count: int) -> list[int]:
    """First ``count`` column indices whose home slot is ``home``."""
    found = []
    column = 0
    while len(found) < count:
        if _home_slot(column, size) == home:
            found.append(column)
        column += 1
    return found


class TestTableSizing:
    def test_minimum_size_is_eight(self):
        assert _table_size(0) == 8
        assert _table_size(1) == 8
        assert _table_size(4) == 8

    def test_growth_is_power_of_two_above_oversize_target(self):
        # Target is 2 × the product upper bound, rounded up to a power of 2.
        assert _table_size(5) == 16
        assert _table_size(8) == 16
        assert _table_size(9) == 32
        assert _table_size(100) == 256

    def test_sizes_are_powers_of_two(self):
        for upper_bound in range(0, 300, 7):
            size = _table_size(upper_bound)
            assert size & (size - 1) == 0
            assert size >= 2 * max(1, upper_bound) or size == 8


class TestCollisionChains:
    def test_colliding_inserts_probe_linearly(self):
        size = 8
        first, second, third = _columns_with_home(size, 3, 3)
        table = _RowHashTable(size)
        table.insert(first, 1.0)
        assert (table.probes, table.collisions) == (1, 0)
        # Same home slot: one collision, lands in the next slot.
        table.insert(second, 2.0)
        assert (table.probes, table.collisions) == (3, 1)
        # Third key walks the full chain of two occupied slots.
        table.insert(third, 3.0)
        assert (table.probes, table.collisions) == (6, 3)
        # Re-inserting an existing key re-walks its fixed displacement: the
        # probe cost of a column never changes after insertion.
        table.insert(third, 4.0)
        assert (table.probes, table.collisions) == (9, 5)
        assert table.additions == 1
        cols, vals = table.extract()
        np.testing.assert_array_equal(cols, sorted([first, second, third]))
        assert vals[list(cols).index(third)] == 7.0

    def test_probe_wraps_past_table_end(self):
        size = 8
        # Fill the tail of the table so a home slot near the end must wrap
        # around to slot 0.
        tail_home = size - 1
        first, second = _columns_with_home(size, tail_home, 2)
        table = _RowHashTable(size)
        table.insert(first, 1.0)
        table.insert(second, 1.0)  # wraps: lands in slot 0
        assert bool(table._keys[tail_home] == first)
        assert bool(table._keys[0] == second)
        assert table.collisions == 1
        # A later hit on the wrapped key walks the same wrapped chain.
        probes_before = table.probes
        table.insert(second, 1.0)
        assert table.probes - probes_before == 2
        assert table.additions == 1

    def test_nearly_full_table_resolves_all_keys(self):
        size = 8
        table = _RowHashTable(size)
        # Seven keys in an 8-slot table: long chains, multiple wraps.
        keys = list(range(7))
        for key in keys:
            table.insert(key, float(key))
        assert table.occupied == 7
        cols, vals = table.extract()
        np.testing.assert_array_equal(cols, keys)
        np.testing.assert_array_equal(vals, [float(k) for k in keys])
        # Every key is retrievable at its fixed displacement.
        for key in keys:
            before = table.probes
            table.insert(key, 0.0)
            assert table.probes - before >= 1


class TestEndToEndCollisions:
    def _collision_heavy_pair(self) -> tuple[CSRMatrix, CSRMatrix]:
        """A one-row product whose table is minimal (8 slots) and clustered.

        The single A row selects one B row with four entries, so the upper
        bound (4) keeps the table at the 8-slot minimum; the B columns are
        chosen to share home slots, forcing probing to wrap.
        """
        size = 8
        cluster = _columns_with_home(size, 6, 3) + _columns_with_home(size, 7, 1)
        num_cols = max(cluster) + 1
        a = CSRMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (1, 1))
        b_cols = np.sort(np.array(cluster, dtype=np.int64))
        b = CSRMatrix(np.array([0, len(b_cols)]), b_cols,
                      np.ones(len(b_cols)), (1, num_cols))
        return a, b

    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    def test_forced_collisions_are_counted(self, engine):
        a, b = self._collision_heavy_pair()
        result = HashSpGEMM(engine=engine).multiply(a, b)
        assert result.extras["hash_collisions"] > 0
        assert result.extras["hash_probes"] == (result.multiplications
                                                + result.extras["hash_collisions"])

    def test_collision_counts_identical_across_backends(self):
        a, b = self._collision_heavy_pair()
        scalar = HashSpGEMM(engine="scalar").multiply(a, b)
        fast = HashSpGEMM(engine="vectorized").multiply(a, b)
        assert scalar.extras == fast.extras
        assert scalar.bookkeeping_ops == fast.bookkeeping_ops
