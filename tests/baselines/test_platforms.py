"""Unit tests for the platform performance/energy models."""

from __future__ import annotations

import pytest

from repro.baselines.platforms import (
    ARM_A53,
    INTEL_CPU,
    NVIDIA_GPU_CUSP,
    NVIDIA_GPU_CUSPARSE,
    OUTERSPACE_ASIC,
    PlatformModel,
)


def test_runtime_is_max_of_bottlenecks():
    platform = PlatformModel(
        name="test", memory_bandwidth=100.0, sustained_flops=10.0,
        seconds_per_bookkeeping_op=1.0, fixed_overhead_seconds=0.5,
        dynamic_power_watts=2.0)
    # Memory-bound: 1000 bytes at 100 B/s = 10 s > 1 flop / 10 = 0.1 s.
    assert platform.runtime_seconds(flops=1, traffic_bytes=1000,
                                    bookkeeping_ops=0) == pytest.approx(10.5)
    # Compute-bound.
    assert platform.runtime_seconds(flops=100, traffic_bytes=1,
                                    bookkeeping_ops=0) == pytest.approx(10.5)
    # Bookkeeping-bound.
    assert platform.runtime_seconds(flops=1, traffic_bytes=1,
                                    bookkeeping_ops=20) == pytest.approx(20.5)
    with pytest.raises(ValueError):
        platform.runtime_seconds(flops=-1, traffic_bytes=0, bookkeeping_ops=0)


def test_energy_is_power_times_runtime():
    assert INTEL_CPU.energy_joules(2.0) == pytest.approx(160.0)
    with pytest.raises(ValueError):
        INTEL_CPU.energy_joules(-1.0)


def test_platform_constants_are_ordered_sensibly():
    # Peak bandwidth: GPU > CPU > ARM; the ASIC sits between CPU and GPU.
    assert NVIDIA_GPU_CUSPARSE.memory_bandwidth > INTEL_CPU.memory_bandwidth
    assert INTEL_CPU.memory_bandwidth > ARM_A53.memory_bandwidth
    # Dynamic power: GPU > CPU > ASIC > ARM.
    assert (NVIDIA_GPU_CUSPARSE.dynamic_power_watts
            > INTEL_CPU.dynamic_power_watts
            > OUTERSPACE_ASIC.dynamic_power_watts
            > ARM_A53.dynamic_power_watts)
    # Per-operation bookkeeping cost: ARM is by far the slowest.
    assert ARM_A53.seconds_per_bookkeeping_op > 10 * max(
        INTEL_CPU.seconds_per_bookkeeping_op,
        NVIDIA_GPU_CUSPARSE.seconds_per_bookkeeping_op)


def test_outerspace_matches_published_operating_point():
    # 128 GB/s HBM at the measured 48.3 % utilisation.
    assert OUTERSPACE_ASIC.memory_bandwidth == pytest.approx(0.483 * 128e9)
    assert OUTERSPACE_ASIC.dynamic_power_watts == pytest.approx(12.39)
