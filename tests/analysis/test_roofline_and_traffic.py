"""Unit tests for the roofline and analytical DRAM-traffic models."""

from __future__ import annotations

import math

import pytest

from repro.analysis.dram_traffic import (
    condensed_traffic_elements,
    expected_partial_reads,
    merge_rounds,
    outerspace_traffic_elements,
    uncondensed_traffic_elements,
)
from repro.analysis.roofline import (
    compulsory_traffic_bytes,
    roofline_analysis,
    theoretical_operational_intensity,
)
from repro.baselines.reference import scipy_spgemm
from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.matrices.synthetic import powerlaw_matrix


class TestAnalyticalTraffic:
    def test_merge_rounds(self):
        assert merge_rounds(1, 64) == 0
        assert merge_rounds(64, 64) == 1
        assert merge_rounds(65, 64) == 2
        assert merge_rounds(140_000, 64) == math.ceil(139_999 / 63)
        with pytest.raises(ValueError):
            merge_rounds(10, 1)

    def test_expected_reads_matches_papers_example(self):
        """§III-C: each element is read ≈ ln(140000/63) ≈ 7.7 times, i.e.
        ≈ 6.7 DRAM round trips once the multiplier-fed first round is free."""
        expected = expected_partial_reads(140_000, 64)
        assert expected == pytest.approx(math.log(140_000 / 63) * 64 / 63,
                                         rel=1e-2)
        assert 6.3 < expected - 1.0 < 7.3

    def test_expected_reads_zero_when_everything_fits(self):
        assert expected_partial_reads(64, 64) == 0.0
        assert expected_partial_reads(10, 64) == 0.0

    def test_exact_sum_close_to_log_approximation(self):
        approx = expected_partial_reads(10_000, 64)
        exact = expected_partial_reads(10_000, 64, exact=True)
        assert approx == pytest.approx(exact, rel=0.1)

    def test_outerspace_traffic_is_2_5M(self):
        assert outerspace_traffic_elements(1_000_000) == pytest.approx(2.5e6)

    def test_uncondensed_traffic_reproduces_the_5_7x_regression(self):
        """Figure 2/16: pipelining alone is ~5.7× more traffic than OuterSPACE."""
        uncondensed = uncondensed_traffic_elements(1.0, 140_000, 64)
        outerspace = outerspace_traffic_elements(1.0)
        assert 12.0 < uncondensed < 16.0       # the paper estimates ≈ 13.9 M
        assert 4.5 < uncondensed / outerspace < 6.5

    def test_condensed_traffic_recovers_to_2_5M(self):
        condensed = condensed_traffic_elements(1.0, 100, 64)
        assert 2.0 < condensed < 3.0
        saving = uncondensed_traffic_elements(1.0, 140_000, 64) / condensed
        assert saving > 4.0                     # the paper reports ≈ 5.5×

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            expected_partial_reads(100, 1)
        with pytest.raises(ValueError):
            outerspace_traffic_elements(-1)


class TestRoofline:
    @pytest.fixture(scope="class")
    def run(self):
        matrix = powerlaw_matrix(250, 5.0, seed=41)
        result = SpArch().multiply(matrix, matrix)
        return matrix, result

    def test_compulsory_traffic_and_intensity(self, run):
        matrix, result = run
        reference = scipy_spgemm(matrix, matrix)
        traffic = compulsory_traffic_bytes(matrix, matrix, reference)
        assert traffic == (2 * matrix.nnz + reference.nnz) * 16
        intensity = theoretical_operational_intensity(
            matrix, matrix, reference, result.stats.flops)
        assert 0.05 < intensity < 1.0

    def test_roofline_point_properties(self, run):
        _, result = run
        point = roofline_analysis(result.stats, config=SpArchConfig())
        assert point.compute_roof_gflops == pytest.approx(32.0)
        assert point.roof_gflops == min(point.compute_roof_gflops,
                                        point.bandwidth_roof_gflops)
        assert 0.0 < point.roof_fraction <= 1.0
        assert point.achieved_gflops <= point.compute_roof_gflops

    def test_paper_operating_point(self):
        """At OI = 0.19 and 128 GB/s the bandwidth roof is the paper's 23.9."""
        stats = SpArch().multiply(powerlaw_matrix(64, 3.0, seed=1),
                                  powerlaw_matrix(64, 3.0, seed=1)).stats
        point = roofline_analysis(stats, operational_intensity=0.19)
        assert point.bandwidth_roof_gflops == pytest.approx(24.32, rel=0.02)
        assert point.roof_gflops < point.compute_roof_gflops
