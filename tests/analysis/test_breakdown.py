"""Unit tests for the cumulative-technique breakdown (Figure 16)."""

from __future__ import annotations

import pytest

from repro.analysis.breakdown import BREAKDOWN_STEPS, cumulative_breakdown
from repro.core.config import SpArchConfig
from repro.matrices.synthetic import powerlaw_matrix


@pytest.fixture(scope="module")
def steps():
    matrices = {f"m{i}": powerlaw_matrix(250, 5.0, seed=50 + i) for i in range(3)}
    return cumulative_breakdown(matrices)


def test_walk_order_matches_figure16(steps):
    names = [step.name for step in steps]
    assert names[0] == "OuterSPACE baseline"
    assert names[1:] == [name for name, _ in BREAKDOWN_STEPS]


def test_baseline_step_is_normalised(steps):
    assert steps[0].speedup_vs_previous == 1.0
    assert steps[0].speedup_vs_outerspace == 1.0
    assert steps[0].gflops > 0


def test_chained_speedups_are_consistent(steps):
    for previous, current in zip(steps, steps[1:]):
        assert current.speedup_vs_previous == pytest.approx(
            current.gflops / previous.gflops)
        assert current.speedup_vs_outerspace == pytest.approx(
            current.gflops / steps[0].gflops)


def test_full_design_beats_outerspace(steps):
    assert steps[-1].speedup_vs_outerspace > 1.5
    assert steps[-1].dram_bytes < steps[0].dram_bytes


def test_prefetcher_step_reduces_dram_traffic(steps):
    without_prefetcher = steps[-2]
    with_prefetcher = steps[-1]
    assert with_prefetcher.dram_bytes < without_prefetcher.dram_bytes
    assert with_prefetcher.speedup_vs_previous >= 1.0


def test_empty_input_rejected():
    with pytest.raises(ValueError):
        cumulative_breakdown({})


def test_custom_base_config_is_respected():
    matrices = {"m": powerlaw_matrix(150, 4.0, seed=99)}
    small = SpArchConfig().replace(merge_tree_layers=3, prefetch_buffer_lines=32)
    steps = cumulative_breakdown(matrices, base_config=small)
    assert len(steps) == 1 + len(BREAKDOWN_STEPS)
