"""Unit tests for the energy and area models (Table II/III, Figure 13)."""

from __future__ import annotations

import pytest

from repro.analysis.area import AreaModel, PAPER_AREA_MM2, SPARCH_TOTAL_AREA_MM2
from repro.analysis.energy import (
    ENERGY_PER_DRAM_BYTE,
    EnergyConstants,
    EnergyModel,
)
from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.core.stats import SimulationStats
from repro.matrices.synthetic import powerlaw_matrix


@pytest.fixture(scope="module")
def simulated_stats():
    matrix = powerlaw_matrix(300, 5.0, seed=31)
    return SpArch().multiply(matrix, matrix).stats


class TestEnergyModel:
    def test_dram_constant_matches_jedec_figure(self):
        assert ENERGY_PER_DRAM_BYTE == pytest.approx(1.0 / 42.6e9)

    def test_breakdown_totals_and_fractions(self, simulated_stats):
        model = EnergyModel()
        breakdown = model.breakdown(simulated_stats)
        assert breakdown.total > 0
        assert breakdown.on_chip == pytest.approx(breakdown.total - breakdown.hbm)
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert set(fractions) == {"Column Fetcher", "Row Prefetcher",
                                  "Multiplier Array", "Merge Tree",
                                  "Partial Mat Writer", "HBM"}

    def test_merge_tree_dominates_power(self, simulated_stats):
        """Figure 13(b): the merge tree is the largest power consumer."""
        fractions = EnergyModel().breakdown(simulated_stats).fractions()
        assert fractions["Merge Tree"] == max(fractions.values())
        assert fractions["Merge Tree"] > 0.4
        assert fractions["Multiplier Array"] < 0.1

    def test_dram_energy_scales_with_bytes(self, simulated_stats):
        model = EnergyModel()
        breakdown = model.breakdown(simulated_stats)
        assert breakdown.hbm == pytest.approx(
            simulated_stats.dram_bytes * ENERGY_PER_DRAM_BYTE)

    def test_energy_per_flop_in_the_accelerator_regime(self, simulated_stats):
        """Table III: SpArch sits well below 1 nJ/FLOP."""
        per_flop = EnergyModel().energy_per_flop(simulated_stats)
        assert 0.05e-9 < per_flop < 2e-9

    def test_table3_breakdown_sums_to_overall(self, simulated_stats):
        table = EnergyModel().table3_breakdown(simulated_stats)
        assert table["Overall"] == pytest.approx(
            table["Computation"] + table["SRAM"] + table["DRAM"])

    def test_zero_stats_edge_cases(self):
        model = EnergyModel()
        empty = SimulationStats()
        assert model.total_energy(empty) == 0.0
        assert model.average_power(empty) == 0.0
        assert model.energy_per_flop(empty) == 0.0

    def test_report_categories_dispatch_on_report_kind(self, simulated_stats):
        """Simulation reports get the exact module grouping; baseline and
        aggregate reports get the per-event split over their counters —
        no energy is ever dropped from a mixed aggregate."""
        from repro.engines import create_engine
        from repro.metrics.report import CostReport

        model = EnergyModel()
        matrix = powerlaw_matrix(120, 4.0, seed=33)
        sparch = create_engine("sparch").run(matrix).report
        mkl = create_engine("mkl").run(matrix).report

        sim_cats = model.report_categories(sparch)
        assert sum(sim_cats.values()) == pytest.approx(sparch.energy_joules)

        base_cats = model.report_categories(mkl)
        assert base_cats["SRAM"] == 0.0
        assert sum(base_cats.values()) == pytest.approx(
            sum(mkl.energy.values()))

        mixed = CostReport.aggregate([sparch, mkl])
        mixed_cats = model.report_categories(mixed)
        # Per-event over the summed counters: both engines' DRAM bytes
        # are charged, not just SpArch's HBM module.
        assert mixed_cats["DRAM"] == pytest.approx(
            mixed.dram_bytes * model.constants.dram_byte)
        events = model.event_energy(
            multiplications=mixed.multiplications, additions=mixed.additions,
            bookkeeping_ops=mixed.bookkeeping_ops,
            dram_bytes=mixed.dram_bytes)
        assert mixed_cats["Computation"] == pytest.approx(
            events["Computation"] + events["Bookkeeping"])

    def test_custom_constants_scale_linearly(self, simulated_stats):
        base = EnergyModel().breakdown(simulated_stats)
        doubled = EnergyModel(EnergyConstants(
            multiply=40e-12, add=24e-12, comparator_op=14e-12,
            merge_fifo_element=120e-12, prefetch_element=300e-12,
            fetcher_element=30e-12, writer_element=60e-12,
            dram_byte=ENERGY_PER_DRAM_BYTE)).breakdown(simulated_stats)
        assert doubled.merge_tree == pytest.approx(2 * base.merge_tree)
        assert doubled.hbm == pytest.approx(base.hbm)


class TestAreaModel:
    def test_default_configuration_reproduces_paper_total(self):
        area = AreaModel().breakdown()
        assert area.total == pytest.approx(SPARCH_TOTAL_AREA_MM2, rel=1e-3)
        for module, value in area.by_module().items():
            assert value == pytest.approx(PAPER_AREA_MM2[module], rel=1e-6)

    def test_merge_tree_dominates_area(self):
        fractions = AreaModel().breakdown().fractions()
        assert fractions["Merge Tree"] == max(fractions.values())
        assert fractions["Merge Tree"] == pytest.approx(0.606, abs=0.02)

    def test_area_scales_with_buffer_capacity(self):
        model = AreaModel()
        bigger = SpArchConfig().replace(prefetch_buffer_lines=2048)
        assert model.breakdown(bigger).row_prefetcher == pytest.approx(
            2 * PAPER_AREA_MM2["Row Prefetcher"])
        smaller = SpArchConfig().replace(lookahead_fifo_elements=4096)
        assert model.breakdown(smaller).column_fetcher == pytest.approx(
            0.5 * PAPER_AREA_MM2["Column Fetcher"])

    def test_area_scales_with_merge_tree_size(self):
        model = AreaModel()
        deeper = SpArchConfig().replace(merge_tree_layers=7)
        shallower = SpArchConfig().replace(merge_tree_layers=5)
        assert model.total_area(deeper) > model.total_area()
        assert model.total_area(shallower) < model.total_area()

    def test_fractions_sum_to_one(self):
        fractions = AreaModel().breakdown().fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
