"""Shared fixtures for the SpArch reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.matrices.synthetic import (
    banded_matrix,
    diagonal_matrix,
    powerlaw_matrix,
    random_matrix,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that need ad-hoc random data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dense_pair() -> tuple[np.ndarray, np.ndarray]:
    """A tiny dense matrix pair with an exactly known product."""
    a = np.array([
        [1.0, 0.0, 2.0, 0.0],
        [0.0, 0.0, 0.0, 0.0],
        [3.0, 4.0, 0.0, 0.0],
        [0.0, 0.0, 0.0, 5.0],
    ])
    b = np.array([
        [0.0, 1.0, 0.0, 0.0],
        [2.0, 0.0, 0.0, 3.0],
        [0.0, 0.0, 4.0, 0.0],
        [5.0, 0.0, 0.0, 6.0],
    ])
    return a, b


@pytest.fixture
def small_csr_pair(small_dense_pair) -> tuple[CSRMatrix, CSRMatrix]:
    """The dense pair above as CSR matrices."""
    a, b = small_dense_pair
    return CSRMatrix.from_dense(a), CSRMatrix.from_dense(b)


@pytest.fixture(params=["random", "banded", "powerlaw", "diagonal"])
def family_matrix(request) -> CSRMatrix:
    """One representative matrix per structural family."""
    if request.param == "random":
        return random_matrix(96, 96, 700, seed=3)
    if request.param == "banded":
        return banded_matrix(120, 6.0, seed=4)
    if request.param == "powerlaw":
        return powerlaw_matrix(128, 5.0, seed=5)
    return diagonal_matrix(64, value=2.0)


def assert_same_product(result: CSRMatrix, matrix_a: CSRMatrix,
                        matrix_b: CSRMatrix, *, atol: float = 1e-9) -> None:
    """Assert ``result`` equals the dense product of the operands."""
    expected = matrix_a.to_dense() @ matrix_b.to_dense()
    np.testing.assert_allclose(result.to_dense(), expected, atol=atol)
