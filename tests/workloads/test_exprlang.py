"""The tiny expression language: lowering rules and line-numbered errors.

Programs are line-oriented; every assignment lowers to named IR stages
(nested sub-expressions get generated ``target.N`` names), ``·``/``@``
lower to SpGEMM stages, ``⊙`` to the host mask, postfix ``'``/``ᵀ``/``.T``
to transposes, ``^ k`` to a chain of k−1 SpGEMMs, and ``when P else Q``
to a conditional stage.  Malformed programs fail at compile time with the
offending line number.
"""

from __future__ import annotations

import pytest

from repro.matrices import random_matrix
from repro.workloads import PipelineBuilder, SpArchExecutor
from repro.workloads.compiler import (
    SpecError,
    compile_expression,
    compile_workload,
)
from repro.workloads.compiler.ir import AnnotateIR, ChainIR, ParamRef, StageIR


def _stages(compiled):
    return [compiled.graph.nodes[index] for index in compiled.order]


def test_binary_operators_lower_to_spgemm_and_mask_stages():
    compiled = compile_expression("""
        workload w
        input A square
        tri = (A · A) ⊙ A
        output tri
    """)
    spgemm, masked = _stages(compiled)
    assert spgemm == StageIR("tri.1", "spgemm", ("A", "A"))
    assert masked == StageIR("tri", "mask", ("tri.1", "A"))


@pytest.mark.parametrize("postfix", ["'", "ᵀ", ".T"])
def test_postfix_transpose_forms_are_equivalent(postfix):
    compiled = compile_expression(f"""
        workload w
        input A square
        t = A{postfix}
        output t
    """)
    assert _stages(compiled) == [StageIR("t", "transpose", ("A",))]


def test_power_lowers_to_a_chain_of_spgemms():
    compiled = compile_expression("""
        workload w
        input A square
        param k = 3 min 2
        power = A ^ k
        output power
    """)
    (chain,) = _stages(compiled)
    assert isinstance(chain, ChainIR)
    assert chain.template == "power[{step}]"
    assert chain.count == ParamRef("k", -1)
    assert chain.start == 2
    assert chain.bind == "power"


def test_conditional_assignment_lowers_to_when_otherwise():
    compiled = compile_expression("""
        workload w
        input A square
        param normalize = true
        adjacency = simple_graph(A) when normalize else A
        output adjacency
    """)
    (stage,) = _stages(compiled)
    assert stage.when == "normalize"
    assert stage.otherwise == "A"


def test_annotate_probe_and_param_forms():
    compiled = compile_expression("""
        workload w
        input A square
        param k = 3 min 2
        b = binarize(A)
        annotate k = param k
        annotate mass = matrix_sum(b)
        output b
    """)
    annotations = [node for node in _stages(compiled)
                   if isinstance(node, AnnotateIR)]
    assert annotations == [
        AnnotateIR("k", param="k"),
        AnnotateIR("mass", probe="matrix_sum", of="b"),
    ]


def test_compiled_expression_runs_on_the_pipeline():
    compiled = compile_workload("""
        workload smoke
        input A square
        param threshold = 0.5
        b = binarize(A)
        wedges = b · b
        strong = prune(wedges, threshold=threshold)
        annotate kept = nnz(strong)
        output strong
    """)
    matrix = random_matrix(16, 16, 48, seed=3)
    pipeline = PipelineBuilder(SpArchExecutor(), inputs={"A": matrix})
    output = compiled.run(pipeline, params=compiled.resolve_params())
    result = pipeline.result("smoke", output)
    assert [s.name for s in result.stages] == ["b", "wedges", "strong"]
    assert result.annotations["kept"] == result.output.nnz


@pytest.mark.parametrize("source, message", [
    ("input A\noutput A",
     r"never names its workload"),
    ("workload w\ninput A square\nx = A \\$ A\noutput x",
     r"line 3: cannot tokenize '\$ A'"),
    ("workload w\ninput A square\nx = A\noutput x",
     r"line 3: 'x' would merely alias 'A'"),
    ("workload w\ninput A square\nfrobnicate A\noutput A",
     r"line 3: expected '=', got 'A'"),
    ("workload w\ninput A square\nx = binarize(A) junk\noutput x",
     r"line 3: unexpected trailing 'junk'"),
])
def test_malformed_programs_fail_with_the_line_number(source, message):
    with pytest.raises(SpecError, match=message):
        compile_expression(source.replace("\\$", "$"))
