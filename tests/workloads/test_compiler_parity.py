"""Golden byte-parity: compiled specs vs the hand-written build programs.

The compiler's contract with the legacy five workloads is not "close" —
it is *byte-identical*: the canonical JSON encoding of a compiled run
(stage names, kinds, inputs, costs, annotations, output hash) must equal
the hand-written build program's, for every workload, parameterisation
and backend below.  ``host_seconds`` is wall-clock and therefore excluded
from the canonical payload (it lives behind ``host_seconds=True``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import HashSpGEMM
from repro.experiments.runner import ExperimentRunner
from repro.matrices import powerlaw_matrix, random_matrix
from repro.workloads import list_workloads, run_workload
from repro.workloads.compiler import payload_bytes, result_payload
from repro.workloads.registry import get_workload

#: The five legacy workloads and a non-default parameterisation each.
LEGACY = {
    "triangles": {},
    "mcl": {"max_iterations": 4, "inflation": 1.8},
    "khop": {"k": 4},
    "galerkin": {"group_size": 3},
    "cosine": {"threshold": 0.35},
}


def _matrix(seed: int = 7):
    return random_matrix(24, 24, 110, seed=seed)


@pytest.mark.parametrize("workload_id", sorted(LEGACY))
def test_compiled_run_is_byte_identical_to_the_build_program(workload_id):
    matrix = _matrix()
    params = LEGACY[workload_id]
    built = run_workload(workload_id, matrix, runner=ExperimentRunner(),
                         via="build", **params)
    compiled = run_workload(workload_id, matrix, runner=ExperimentRunner(),
                            via="compiled", **params)
    assert payload_bytes(compiled) == payload_bytes(built)
    # The parity is structural too, not just through the encoding.
    assert [s.name for s in compiled.stages] == [s.name for s in built.stages]
    assert compiled.annotations == built.annotations
    np.testing.assert_array_equal(compiled.output.data, built.output.data)


@pytest.mark.parametrize("workload_id", ["triangles", "khop"])
def test_parity_holds_with_normalisation_disabled(workload_id):
    matrix = powerlaw_matrix(30, 3.0, seed=3)
    built = run_workload(workload_id, matrix, runner=ExperimentRunner(),
                         via="build", normalize=False)
    compiled = run_workload(workload_id, matrix, runner=ExperimentRunner(),
                            via="compiled", normalize=False)
    assert payload_bytes(compiled) == payload_bytes(built)
    # normalize=False skips the simple_graph stage on both paths.
    assert "adjacency" not in [s.name for s in compiled.stages]


def test_parity_holds_on_a_baseline_backend():
    matrix = _matrix(seed=11)
    built = run_workload("mcl", matrix, baseline=HashSpGEMM(),
                         via="build", max_iterations=3)
    compiled = run_workload("mcl", matrix, baseline=HashSpGEMM(),
                            via="compiled", max_iterations=3)
    assert payload_bytes(compiled) == payload_bytes(built)


def test_canonical_payload_excludes_host_wall_time_by_default():
    matrix = _matrix(seed=5)
    result = run_workload("triangles", matrix, runner=ExperimentRunner())
    lean = result_payload(result)
    timed = result_payload(result, host_seconds=True)
    assert all("host_seconds" not in stage for stage in lean["stages"])
    host = [stage["host_seconds"] for stage in timed["stages"]
            if stage["kind"] != "spgemm"]
    assert host and all(value > 0.0 for value in host)


def test_every_registered_workload_has_a_compiled_spec():
    for workload_id in list_workloads():
        assert get_workload(workload_id).compiled is not None


def test_build_path_is_rejected_for_spec_only_workloads():
    matrix = _matrix(seed=9)
    with pytest.raises(ValueError, match="no hand-written build program"):
        run_workload("pagerank", matrix, via="build")
    with pytest.raises(ValueError, match="via must be"):
        run_workload("triangles", matrix, via="interpreted")
    with pytest.raises(ValueError, match="compiled path only"):
        run_workload("triangles", matrix, via="build", fuse=True)
