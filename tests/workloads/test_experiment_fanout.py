"""The ``--jobs`` fan-out of the workloads experiment is a pure speedup.

Whole (workload, backend, matrix) pipeline runs ship to worker processes,
each reducing to one aggregate cost report — so the fanned-out sweep must
produce *identical* tables, metrics and reports to the serial path.
"""

from __future__ import annotations

import pytest

from repro.baselines import GustavsonSpGEMM
from repro.experiments.runner import ExperimentRunner
from repro.experiments.workloads_e2e import run


@pytest.fixture(scope="module")
def serial_and_parallel():
    kwargs = dict(max_rows=150, names=["wiki-Vote"],
                  workload_ids=["triangles", "khop"],
                  baselines=[GustavsonSpGEMM()])
    serial = run(runner=ExperimentRunner(), **kwargs)
    parallel = run(runner=ExperimentRunner(jobs=2), **kwargs)
    return serial, parallel


def test_fanout_metrics_identical(serial_and_parallel):
    serial, parallel = serial_and_parallel
    assert parallel.metrics == serial.metrics


def test_fanout_tables_identical(serial_and_parallel):
    serial, parallel = serial_and_parallel
    assert parallel.table.rows == serial.table.rows


def test_fanout_aggregate_reports_identical(serial_and_parallel):
    serial, parallel = serial_and_parallel
    assert set(parallel.reports) == set(serial.reports)
    for key, report in serial.reports.items():
        assert parallel.reports[key] == report, key


def test_fanout_with_forced_scalar_backend_matches_serial():
    kwargs = dict(max_rows=120, names=["wiki-Vote", "ca-CondMat"],
                  workload_ids=["triangles"], baselines=[])
    serial = run(runner=ExperimentRunner(engine="scalar"), **kwargs)
    parallel = run(runner=ExperimentRunner(engine="scalar", jobs=2), **kwargs)
    assert parallel.metrics == serial.metrics
