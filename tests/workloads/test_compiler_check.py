"""The spec checker rejects ill-formed graphs *before* any engine runs.

Each test feeds the compiler a graph that is wrong in a distinct way and
pins the diagnostic: a :class:`~repro.workloads.compiler.SpecError` that
names the failing stage and says what to fix.  The workload registry
compiles every spec at import, so these are exactly the mistakes a new
workload author would otherwise discover mid-pipeline as a scipy
traceback.
"""

from __future__ import annotations

import pytest

from repro.workloads.compiler import SpecError, compile_graph


def _graph(nodes, *, inputs=None, params=(), output="s"):
    return {
        "workload": "w",
        "inputs": inputs or [{"name": "A"}],
        "params": list(params),
        "nodes": nodes,
        "output": output,
    }


def test_spgemm_inner_dimension_mismatch_names_the_stage():
    with pytest.raises(SpecError, match=r"stage 'bad': shape mismatch — "
                                        r"SpGEMM inner dimensions"):
        compile_graph(_graph([
            {"stage": "p", "op": "aggregation", "inputs": ["A"]},
            {"stage": "bad", "op": "spgemm", "inputs": ["A", "p"]},
        ], output="bad"))


def test_square_inputs_admit_the_same_product():
    # The identical product type-checks once A is declared square.
    compile_graph(_graph([
        {"stage": "p", "op": "aggregation", "inputs": ["A"]},
        {"stage": "fine", "op": "spgemm", "inputs": ["A", "p"]},
    ], inputs=[{"name": "A", "square": True}], output="fine"))


def test_unknown_host_op_lists_the_registered_vocabulary():
    with pytest.raises(SpecError, match=r"stage 's': unknown host op "
                                        r"'frobnicate'; registered ops: "
                                        r".*mask.*transpose"):
        compile_graph(_graph(
            [{"stage": "s", "op": "frobnicate", "inputs": ["A"]}]))


def test_dangling_reference_lists_the_defined_values():
    with pytest.raises(SpecError, match=r"stage 's': unknown value 'B'; "
                                        r"defined values: A"):
        compile_graph(_graph(
            [{"stage": "s", "op": "transpose", "inputs": ["B"]}]))


def test_duplicate_definition_is_rejected():
    with pytest.raises(SpecError, match=r"value 's' is defined more than "
                                        r"once"):
        compile_graph(_graph([
            {"stage": "s", "op": "transpose", "inputs": ["A"]},
            {"stage": "s", "op": "binarize", "inputs": ["A"]},
        ]))


def test_dependency_cycle_names_the_participating_stages():
    with pytest.raises(SpecError, match=r"dependency cycle among stages: "
                                        r"x, y"):
        compile_graph(_graph([
            {"stage": "x", "op": "mask", "inputs": ["A", "y"]},
            {"stage": "y", "op": "mask", "inputs": ["A", "x"]},
        ], output="y"))


def test_operand_count_mismatch_names_op_and_arity():
    with pytest.raises(SpecError, match=r"stage 's': host op 'transpose' "
                                        r"takes 1 operand\(s\), got 2"):
        compile_graph(_graph(
            [{"stage": "s", "op": "transpose", "inputs": ["A", "A"]}]))


def test_structure_domain_violation_suggests_the_fix():
    # inflate raises entries to a power: meaningless on possibly-negative
    # data, fine once the input is declared nonnegative.
    bad = _graph([{"stage": "s", "op": "inflate", "inputs": ["A"],
                   "params": {"power": 2.0}}])
    with pytest.raises(SpecError, match=r"stage 's': host op 'inflate' "
                                        r"requires a nonnegative operand"):
        compile_graph(bad)
    compile_graph(_graph(
        [{"stage": "s", "op": "inflate", "inputs": ["A"],
          "params": {"power": 2.0}}],
        inputs=[{"name": "A", "assume": ["nonnegative"]}]))


def test_undeclared_parameter_reference_is_rejected():
    with pytest.raises(SpecError, match=r"stage 's': references undeclared "
                                        r"parameter 'thresh'"):
        compile_graph(_graph(
            [{"stage": "s", "op": "prune", "inputs": ["A"],
              "params": {"threshold": {"param": "thresh"}}}]))


def test_unknown_output_is_rejected():
    with pytest.raises(SpecError, match=r"output 't' names no input or "
                                        r"stage"):
        compile_graph(_graph(
            [{"stage": "s", "op": "transpose", "inputs": ["A"]}],
            output="t"))


def test_unknown_probe_lists_the_registry():
    with pytest.raises(SpecError, match=r"stage 'annotate\[x\]': unknown "
                                        r"probe 'zorps'; known probes"):
        compile_graph(_graph(
            [{"annotate": "x", "probe": "zorps", "of": "A"}], output="A"))


def test_chain_fixed_operand_must_be_square():
    with pytest.raises(SpecError, match=r"stage 'c\[\{step\}\]': shape "
                                        r"mismatch"):
        compile_graph(_graph([
            {"stage": "p", "op": "aggregation", "inputs": ["A"]},
            {"chain": "c[{step}]", "first": "A", "fixed": "p",
             "count": 2, "bind": "out"},
        ], output="out"))


def test_parameter_bounds_are_validated_at_run_time():
    from repro.matrices import random_matrix
    from repro.workloads import run_workload

    matrix = random_matrix(16, 16, 40, seed=1)
    with pytest.raises(ValueError, match=r"k.*must be at least 2, got 1"):
        run_workload("khop", matrix, k=1)
    with pytest.raises(TypeError, match=r"unexpected parameter 'zorp'"):
        run_workload("khop", matrix, zorp=3)
