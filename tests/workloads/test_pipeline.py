"""Tests for the pipeline builder, stage executors and host ops."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines import GustavsonSpGEMM
from repro.core.accelerator import SpArch
from repro.experiments.runner import ExperimentRunner
from repro.formats.convert import to_scipy
from repro.matrices import powerlaw_matrix, random_matrix
from repro.workloads import (
    BaselineExecutor,
    PipelineBuilder,
    SpArchExecutor,
    register_host_op,
)
from repro.workloads.ops import HOST_OPS, get_host_op, triangles_from_masked


@pytest.fixture()
def matrix():
    return random_matrix(60, 60, 300, seed=7)


class TestPipelineBuilder:
    def test_spgemm_stage_computes_the_product(self, matrix):
        pipeline = PipelineBuilder(SpArchExecutor(), inputs={"A": matrix})
        pipeline.spgemm("squared", "A", "A")
        expected = matrix.to_dense() @ matrix.to_dense()
        np.testing.assert_allclose(pipeline.value("squared").to_dense(),
                                   expected, atol=1e-9)

    def test_runner_mode_matches_engine_mode(self, matrix):
        engine = PipelineBuilder(SpArchExecutor(), inputs={"A": matrix})
        engine.spgemm("squared", "A", "A")
        runner = PipelineBuilder(SpArchExecutor(runner=ExperimentRunner()),
                                 inputs={"A": matrix})
        runner.spgemm("squared", "A", "A")
        # Identical statistics; functional results agree to fp association.
        assert engine.stages[0].stats == runner.stages[0].stats
        np.testing.assert_allclose(runner.value("squared").to_dense(),
                                   engine.value("squared").to_dense(),
                                   atol=1e-9)

    def test_engine_mode_threads_the_engine_result(self, matrix):
        reference = SpArch().multiply(matrix, matrix)
        pipeline = PipelineBuilder(SpArchExecutor(), inputs={"A": matrix})
        pipeline.spgemm("squared", "A", "A")
        result = pipeline.value("squared")
        np.testing.assert_array_equal(result.data, reference.matrix.data)
        np.testing.assert_array_equal(result.indices, reference.matrix.indices)

    def test_baseline_executor_prices_with_the_platform_model(self, matrix):
        baseline = GustavsonSpGEMM()
        direct = baseline.multiply(matrix, matrix)
        pipeline = PipelineBuilder(BaselineExecutor(baseline),
                                   inputs={"A": matrix})
        pipeline.spgemm("squared", "A", "A")
        stage = pipeline.stages[0]
        assert pipeline.executor.backend_name == "MKL"
        assert stage.runtime_seconds == direct.runtime_seconds
        assert stage.dram_bytes == direct.traffic_bytes
        assert stage.energy_joules == direct.energy_joules
        assert stage.summary is not None and stage.summary.baseline == "MKL"

    def test_baseline_runner_mode_memoises(self, matrix):
        runner = ExperimentRunner()
        pipeline = PipelineBuilder(
            BaselineExecutor(GustavsonSpGEMM(), runner=runner),
            inputs={"A": matrix})
        pipeline.spgemm("squared", "A", "A")
        pipeline.spgemm("again", "A", "A")
        assert (runner.cache_hits, runner.cache_misses) == (1, 1)
        assert pipeline.stages[0].summary == pipeline.stages[1].summary

    def test_stage_records_name_kind_and_inputs(self, matrix):
        pipeline = PipelineBuilder(SpArchExecutor(), inputs={"A": matrix})
        pipeline.spgemm("squared", "A", "A")
        pipeline.host("masked", "mask", "squared", "A")
        spgemm, host = pipeline.stages
        assert (spgemm.name, spgemm.kind, spgemm.inputs) == (
            "squared", "spgemm", ("A", "A"))
        assert spgemm.is_spgemm and spgemm.stats is not None
        assert (host.name, host.kind, host.inputs) == (
            "masked", "mask", ("squared", "A"))
        assert not host.is_spgemm
        assert (host.cycles, host.dram_bytes, host.energy_joules) == (0, 0, 0.0)

    def test_duplicate_stage_name_rejected(self, matrix):
        pipeline = PipelineBuilder(SpArchExecutor(), inputs={"A": matrix})
        pipeline.spgemm("squared", "A", "A")
        with pytest.raises(ValueError, match="already exists"):
            pipeline.spgemm("squared", "A", "A")
        with pytest.raises(ValueError, match="already exists"):
            pipeline.host("A", "transpose", "A")

    def test_unknown_value_and_op_errors(self, matrix):
        pipeline = PipelineBuilder(SpArchExecutor(), inputs={"A": matrix})
        with pytest.raises(KeyError, match="unknown pipeline value"):
            pipeline.spgemm("squared", "A", "B")
        with pytest.raises(KeyError, match="unknown host op"):
            pipeline.host("out", "not-an-op", "A")
        with pytest.raises(ValueError, match="at least one input"):
            PipelineBuilder(SpArchExecutor(), inputs={})

    def test_executor_argument_conflicts_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            SpArchExecutor(engine=SpArch(), runner=ExperimentRunner())

    def test_result_carries_output_and_annotations(self, matrix):
        pipeline = PipelineBuilder(SpArchExecutor(), inputs={"A": matrix})
        pipeline.spgemm("squared", "A", "A")
        pipeline.annotate("flag", 1)
        result = pipeline.result("demo", "squared")
        assert result.workload_id == "demo"
        assert result.backend == "SpArch"
        assert result.annotations == {"flag": 1.0}
        assert result.output is not None and result.output.nnz > 0
        assert result.num_stages == 1
        assert len(result.spgemm_stats) == 1


class TestHostOps:
    def test_registry_lookup_and_registration(self):
        assert "mask" in HOST_OPS
        with pytest.raises(KeyError, match="known ops"):
            get_host_op("missing")
        with pytest.raises(ValueError, match="already registered"):
            register_host_op("mask")(lambda m: m)

    def test_mask_is_elementwise(self, matrix):
        value = to_scipy(matrix)
        masked = get_host_op("mask")(value, value)
        np.testing.assert_allclose(masked.toarray(),
                                   value.toarray() * value.toarray())

    def test_normalize_columns_makes_columns_stochastic(self, matrix):
        normalized = get_host_op("normalize_columns")(abs(to_scipy(matrix)))
        sums = np.asarray(normalized.sum(axis=0)).ravel()
        nonempty = sums > 0
        np.testing.assert_allclose(sums[nonempty], 1.0)

    def test_normalize_rows_gives_unit_l2_rows(self, matrix):
        normalized = get_host_op("normalize_rows")(to_scipy(matrix))
        norms = np.sqrt(np.asarray(
            normalized.multiply(normalized).sum(axis=1)).ravel())
        nonempty = norms > 0
        np.testing.assert_allclose(norms[nonempty], 1.0)

    def test_prune_drops_small_entries(self):
        value = sp.csr_matrix(np.array([[0.5, 0.01], [0.0, 0.2]]))
        pruned = get_host_op("prune")(value, threshold=0.1)
        assert pruned.nnz == 2
        assert pruned.data.min() >= 0.1

    def test_simple_graph_is_symmetric_binary_zero_diagonal(self, matrix):
        graph = get_host_op("simple_graph")(to_scipy(matrix))
        dense = graph.toarray()
        np.testing.assert_array_equal(dense, dense.T)
        assert np.all(np.diag(dense) == 0)
        assert set(np.unique(dense)) <= {0.0, 1.0}

    def test_aggregation_builds_a_partition_prolongator(self, matrix):
        prolongator = get_host_op("aggregation")(to_scipy(matrix),
                                                 group_size=7)
        dense = prolongator.toarray()
        assert dense.shape == (60, 9)
        np.testing.assert_allclose(dense.sum(axis=1), 1.0)  # one group each
        with pytest.raises(ValueError, match="group_size"):
            get_host_op("aggregation")(to_scipy(matrix), group_size=0)

    def test_transpose_and_binarize(self, matrix):
        value = to_scipy(matrix)
        transposed = get_host_op("transpose")(value)
        np.testing.assert_allclose(transposed.toarray(), value.toarray().T)
        binary = get_host_op("binarize")(value)
        assert set(np.unique(binary.data)) == {1.0}

    def test_triangles_from_masked_rejects_inconsistent_input(self):
        bad = sp.csr_matrix(np.array([[2.0, 0.0], [0.0, 0.0]]))
        with pytest.raises(ArithmeticError, match="divisible by 3"):
            triangles_from_masked(bad)

    def test_triangles_from_masked_exact_on_a_clique(self):
        n = 6
        adjacency = sp.csr_matrix(np.ones((n, n)) - np.eye(n))
        masked = (adjacency @ adjacency).multiply(adjacency)
        per_node, total = triangles_from_masked(masked)
        assert total == n * (n - 1) * (n - 2) // 6
        np.testing.assert_allclose(per_node,
                                   (n - 1) * (n - 2) / 2 * np.ones(n))


def test_ops_do_not_mutate_their_operands():
    matrix = powerlaw_matrix(50, 4.0, seed=1)
    value = to_scipy(matrix)
    snapshot = value.copy()
    for name, params in [("mask", {}), ("normalize_columns", {}),
                         ("normalize_rows", {}), ("inflate", {"power": 2.0}),
                         ("prune", {"threshold": 0.5}), ("binarize", {}),
                         ("transpose", {}), ("simple_graph", {}),
                         ("mcl_setup", {}), ("aggregation", {})]:
        op = get_host_op(name)
        operands = (value, value) if name == "mask" else (value,)
        op(*operands, **params)
        assert (value != snapshot).nnz == 0, f"{name} mutated its operand"
