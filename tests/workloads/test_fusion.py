"""Host-op fusion: fewer host stages, identical functional results.

``fuse=True`` collapses adjacent single-consumer host stages into one
fused stage per run of ops (``fused(inflate+prune+normalize_columns)``),
inside loop bodies included.  The functional output, the annotations and
every SpGEMM stage record are unchanged — only the host-stage bookkeeping
shrinks, which the per-stage host wall-times make measurable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import ExperimentRunner
from repro.matrices import powerlaw_matrix
from repro.workloads import run_workload
from repro.workloads.compiler.fuse import fuse_graph
from repro.workloads.graphs import COMPILED


def _mcl_runs():
    matrix = powerlaw_matrix(40, 3.0, seed=19)
    plain = run_workload("mcl", matrix, runner=ExperimentRunner(),
                         max_iterations=4)
    fused = run_workload("mcl", matrix, runner=ExperimentRunner(),
                         max_iterations=4, fuse=True)
    return plain, fused


def test_fusion_reduces_the_host_stage_count():
    plain, fused = _mcl_runs()
    assert len(fused.host_stages) < len(plain.host_stages)
    assert len(fused.stages) < len(plain.stages)
    # Every iteration's inflate/prune/normalize triple became one stage.
    kinds = {stage.kind for stage in fused.host_stages
             if stage.kind.startswith("fused(")}
    assert kinds == {"fused(inflate+prune+normalize_columns)"}


def test_fusion_preserves_outputs_annotations_and_spgemm_records():
    plain, fused = _mcl_runs()
    np.testing.assert_array_equal(fused.output.data, plain.output.data)
    np.testing.assert_array_equal(fused.output.indices,
                                  plain.output.indices)
    assert fused.annotations == plain.annotations
    assert fused.spgemm_stages == plain.spgemm_stages
    assert fused.total_cycles == plain.total_cycles
    assert fused.total_dram_bytes == plain.total_dram_bytes


def test_fused_stages_record_their_host_wall_time():
    plain, fused = _mcl_runs()
    assert plain.total_host_seconds > 0.0
    assert fused.total_host_seconds > 0.0
    for stage in fused.host_stages:
        assert stage.host_seconds > 0.0
    # The wall-time shows up in the aggregate report only on request —
    # the default report stays comparable across runs.
    lean = fused.aggregate_report()
    timed = fused.aggregate_report(include_host_seconds=True)
    assert "host_seconds" not in lean.extras
    assert timed.extras["host_seconds"] == pytest.approx(
        fused.total_host_seconds)


def test_fused_stage_inputs_name_every_consumed_value():
    _, fused = _mcl_runs()
    stage = next(s for s in fused.host_stages
                 if s.kind.startswith("fused("))
    # The fused record keeps the *last* step's stage name and lists the
    # first step's operand, so lineage stays traceable.
    assert stage.name.startswith("normalize[")
    assert stage.inputs[0].startswith("expand[")


def test_fusion_is_idempotent_and_leaves_unfusable_graphs_alone():
    mcl = COMPILED["mcl"].graph
    once = fuse_graph(mcl)
    assert fuse_graph(once) == once
    # cosine's host stages all feed the SpGEMM or have two consumers —
    # nothing to fuse.
    cosine = COMPILED["cosine"].graph
    assert fuse_graph(cosine) == cosine


def test_fusion_never_changes_any_registered_workload_result():
    matrix = powerlaw_matrix(30, 3.0, seed=23)
    params = {"mcl": {"max_iterations": 2},
              "pagerank": {"max_iterations": 3},
              "amg_vcycle": {"max_levels": 2}}
    for workload_id in COMPILED:
        overrides = params.get(workload_id, {})
        plain = run_workload(workload_id, matrix,
                             runner=ExperimentRunner(), **overrides)
        fused = run_workload(workload_id, matrix,
                             runner=ExperimentRunner(), fuse=True,
                             **overrides)
        np.testing.assert_array_equal(fused.output.data, plain.output.data)
        assert fused.annotations == plain.annotations
