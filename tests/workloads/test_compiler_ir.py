"""The compiler IR: payload encodings, parameter validation, diagnostics.

The IR is a lossless value type: ``GraphSpec.to_dict`` and ``from_dict``
are exact inverses (the hypothesis property lives in
``test_compiler_roundtrip.py``), scalars (literals, ``{"param": ...}``
references with offsets, ``{"counter": ...}`` references) survive the
JSON encoding, and every malformed payload or out-of-range parameter is
rejected with a message that names the offending piece.
"""

from __future__ import annotations

import pytest

from repro.workloads.compiler import SpecError, compile_graph
from repro.workloads.compiler.ir import (
    CounterRef,
    GraphSpec,
    ParamIR,
    ParamRef,
    scalar_from_payload,
    scalar_to_payload,
)


@pytest.mark.parametrize("scalar", [
    ParamRef("k"), ParamRef("expansion", -1), CounterRef("j"),
    3, 2.5, True, False, 1e-6,
])
def test_scalar_payloads_round_trip(scalar):
    assert scalar_from_payload(scalar_to_payload(scalar)) == scalar


def test_unknown_node_kind_is_rejected():
    with pytest.raises(SpecError, match=r"unknown node kind.*bogus.*"
                                        r"stage/fused/chain/loop/repeat"):
        GraphSpec.from_dict({"workload": "w", "inputs": [{"name": "A"}],
                             "nodes": [{"bogus": 1}], "output": "A"})


def test_non_mapping_stage_params_are_rejected():
    with pytest.raises(SpecError, match=r"stage params must be a mapping"):
        GraphSpec.from_dict({"workload": "w", "inputs": [{"name": "A"}],
                             "nodes": [{"stage": "s", "op": "binarize",
                                        "inputs": ["A"], "params": [1]}],
                             "output": "s"})


def test_missing_workload_name_is_rejected():
    with pytest.raises(SpecError, match=r"missing workload"):
        GraphSpec.from_dict({"inputs": [{"name": "A"}], "nodes": [],
                             "output": "A"})


def test_param_bounds_name_the_parameter():
    with pytest.raises(ValueError, match=r"k must be at least 2, got 1"):
        ParamIR("k", 3, 2, None).validate(1)
    with pytest.raises(ValueError, match=r"inflation must exceed 1, "
                                         r"got 1.0"):
        ParamIR("inflation", 2.0, None, 1).validate(1.0)


def test_unexpected_parameter_names_the_workload():
    graph = compile_graph({
        "workload": "w", "inputs": [{"name": "A"}],
        "nodes": [{"stage": "s", "op": "binarize", "inputs": ["A"]}],
        "output": "s"})
    with pytest.raises(TypeError, match=r"workload 'w' got an unexpected "
                                        r"parameter 'zorp'"):
        graph.resolve_params({"zorp": 1})


def test_param_key_order_is_canonical():
    # Params are keyword arguments: declaring {index, count} and
    # {count, index} must produce the same IR (and the same JSON).
    def build(params):
        return GraphSpec.from_dict({
            "workload": "w", "inputs": [{"name": "A", "square": True}],
            "nodes": [{"stage": "s", "op": "extract_block", "inputs": ["A"],
                       "params": params}],
            "output": "s"})

    one = build({"index": 0, "count": 4})
    two = build({"count": 4, "index": 0})
    assert one == two
    assert one.to_dict() == two.to_dict()


def test_compiled_workload_schedule_is_declaration_order():
    graph = compile_graph({
        "workload": "w", "inputs": [{"name": "A", "square": True}],
        "nodes": [
            {"stage": "b", "op": "binarize", "inputs": ["A"]},
            {"stage": "t", "op": "transpose", "inputs": ["b"]},
            {"stage": "m", "op": "mask", "inputs": ["t", "b"]},
        ],
        "output": "m"})
    assert graph.order == (0, 1, 2)


def test_out_of_declaration_order_graphs_are_scheduled_topologically():
    graph = compile_graph({
        "workload": "w", "inputs": [{"name": "A", "square": True}],
        "nodes": [
            {"stage": "m", "op": "mask", "inputs": ["t", "b"]},
            {"stage": "b", "op": "binarize", "inputs": ["A"]},
            {"stage": "t", "op": "transpose", "inputs": ["b"]},
        ],
        "output": "m"})
    assert graph.order == (1, 2, 0)
