"""Scipy goldens for the five spec-only workload families.

Each test recomputes the workload's documented semantics directly with
scipy/numpy — independent reference code, not a call back into the host-op
registry — and checks the compiled pipeline reproduces it exactly, under
both the scalar and the vectorized simulation engine (whose stage records
must be bit-identical, so the canonical payloads agree byte for byte).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.config import SpArchConfig
from repro.formats.convert import to_scipy
from repro.matrices import powerlaw_matrix, random_matrix
from repro.workloads import run_workload
from repro.workloads.compiler import payload_bytes

ENGINES = ["scalar", "vectorized"]


def _config(engine: str) -> SpArchConfig:
    return SpArchConfig(engine=engine)


def _simple_graph(dense: np.ndarray) -> np.ndarray:
    adjacency = dense + dense.T
    np.fill_diagonal(adjacency, 0.0)
    return (adjacency != 0).astype(float)


def _column_normalize(dense: np.ndarray) -> np.ndarray:
    sums = dense.sum(axis=0)
    scale = np.divide(1.0, sums, out=np.zeros_like(sums), where=sums > 0)
    return dense * scale


@pytest.mark.parametrize("engine", ENGINES)
def test_pagerank_matches_the_power_iteration(engine):
    matrix = powerlaw_matrix(30, 3.0, seed=11)
    alpha, tol = 0.85, 1e-10
    result = run_workload("pagerank", matrix, config=_config(engine),
                          alpha=alpha, tolerance=tol, max_iterations=60)

    stochastic = _column_normalize(_simple_graph(matrix.to_dense()))
    n = matrix.shape[0]
    seed = np.full((n, 1), 1.0 / n)
    rank, iterations, converged = seed, 0, False
    for _ in range(60):
        updated = alpha * (stochastic @ rank) + (1.0 - alpha) * seed
        iterations += 1
        delta = np.max(np.abs(updated - rank))
        rank = updated
        if delta < tol:
            converged = True
            break

    np.testing.assert_allclose(result.output.to_dense(), rank)
    assert result.annotations["iterations"] == iterations
    assert result.annotations["converged"] == float(converged)
    np.testing.assert_allclose(result.annotations["rank_sum"],
                               rank.sum())
    assert result.output.shape == (n, 1)


def _sample_rows(dense: np.ndarray, fanout: int) -> np.ndarray:
    sampled = np.zeros_like(dense)
    for row in range(dense.shape[0]):
        columns = np.flatnonzero(dense[row])
        ranked = sorted(columns,
                        key=lambda col: (-abs(dense[row, col]), col))
        for col in ranked[:fanout]:
            sampled[row, col] = dense[row, col]
    return sampled


@pytest.mark.parametrize("engine", ENGINES)
def test_gnn_sampling_caps_fanout_then_propagates(engine):
    matrix = powerlaw_matrix(28, 4.0, seed=5)
    fanout, layers = 2, 3
    result = run_workload("gnn_sample", matrix, config=_config(engine),
                          fanout=fanout, layers=layers)

    dense = matrix.to_dense()
    sampled = _sample_rows(_simple_graph(dense), fanout)
    norms = np.sqrt((dense ** 2).sum(axis=1, keepdims=True))
    features = np.divide(dense, norms, out=np.zeros_like(dense),
                         where=norms > 0)
    embedded = features
    for _ in range(layers):
        embedded = sampled @ embedded

    np.testing.assert_allclose(result.output.to_dense(), embedded)
    assert result.annotations["sampled_edges"] == np.count_nonzero(sampled)
    assert np.count_nonzero(sampled.sum(axis=1) > fanout) == 0
    assert len([s for s in result.stages if s.is_spgemm]) == layers


@pytest.mark.parametrize("engine", ENGINES)
def test_amg_vcycle_coarsens_until_the_operator_is_small(engine):
    matrix = random_matrix(40, 40, 240, seed=9)
    group_size, max_levels, coarse_rows = 3, 4, 6
    result = run_workload("amg_vcycle", matrix, config=_config(engine),
                          group_size=group_size, max_levels=max_levels,
                          coarse_rows=coarse_rows)

    operator = matrix.to_dense()
    levels, reached = 0, False
    for _ in range(max_levels):
        rows = operator.shape[0]
        groups = (rows + group_size - 1) // group_size
        prolongator = np.zeros((rows, groups))
        prolongator[np.arange(rows), np.arange(rows) // group_size] = 1.0
        operator = prolongator.T @ (operator @ prolongator)
        levels += 1
        if operator.shape[0] < coarse_rows:
            reached = True
            break

    np.testing.assert_allclose(result.output.to_dense(), operator)
    assert result.annotations["levels"] == levels
    assert result.annotations["reached_coarse"] == float(reached)
    assert result.annotations["coarse_rows"] == operator.shape[0]
    assert result.annotations["coarse_nnz"] == np.count_nonzero(operator)


@pytest.mark.parametrize("engine", ENGINES)
def test_masked_triangle_enumeration_lists_each_triangle_once(engine):
    matrix = powerlaw_matrix(26, 4.0, seed=13)
    result = run_workload("tri_enum", matrix, config=_config(engine))

    lower = np.tril(_simple_graph(matrix.to_dense()), k=-1)
    tri = (lower @ lower) * lower

    np.testing.assert_allclose(result.output.to_dense(), tri)
    assert result.annotations["triangles"] == tri.sum()
    assert result.annotations["edges"] == np.count_nonzero(lower)
    # Cross-check against the (A·A) ⊙ A triangle count, which counts each
    # triangle six times over the full adjacency.
    full = _simple_graph(matrix.to_dense())
    assert 6 * tri.sum() == ((full @ full) * full).sum()


@pytest.mark.parametrize("engine", ENGINES)
def test_serve_mix_runs_one_product_per_diagonal_block(engine):
    matrix = random_matrix(30, 30, 200, seed=17)
    batch = 3
    result = run_workload("serve_mix", matrix, config=_config(engine),
                          batch=batch)

    dense = matrix.to_dense()
    n = dense.shape[0]
    products = []
    for index in range(batch):
        start, end = index * n // batch, (index + 1) * n // batch
        block = dense[start:end, start:end]
        products.append(block @ block)
    stacked = sp.block_diag(products).toarray()

    np.testing.assert_allclose(result.output.to_dense(), stacked)
    assert result.annotations["batches"] == batch
    assert result.annotations["stacked_nnz"] == result.output.nnz
    assert len([s for s in result.stages if s.is_spgemm]) == batch


@pytest.mark.parametrize("workload_id", ["pagerank", "gnn_sample",
                                         "amg_vcycle", "tri_enum",
                                         "serve_mix"])
def test_engine_variants_agree_byte_for_byte(workload_id):
    matrix = random_matrix(24, 24, 120, seed=29)
    params = {"pagerank": {"max_iterations": 5},
              "amg_vcycle": {"max_levels": 2}}.get(workload_id, {})
    payloads = {
        engine: payload_bytes(run_workload(workload_id, matrix,
                                           config=_config(engine), **params))
        for engine in ENGINES
    }
    assert payloads["scalar"] == payloads["vectorized"]


@pytest.mark.parametrize("workload_id", ["pagerank", "tri_enum"])
def test_new_workloads_run_on_baseline_backends(workload_id):
    from repro.baselines import HashSpGEMM

    matrix = random_matrix(24, 24, 120, seed=31)
    params = {"max_iterations": 4} if workload_id == "pagerank" else {}
    result = run_workload(workload_id, matrix, baseline=HashSpGEMM(),
                          **params)
    assert result.output is not None


def test_sampled_output_nnz_is_visible_to_scipy():
    # sanity: the compiled sampled matrix equals scipy's idea of the op
    matrix = powerlaw_matrix(24, 5.0, seed=7)
    result = run_workload("gnn_sample", matrix, fanout=2, layers=1)
    sampled = _sample_rows(_simple_graph(matrix.to_dense()), 2)
    stage = next(s for s in result.stages if s.name == "sampled")
    assert stage.output_nnz == np.count_nonzero(sampled)
    assert to_scipy(result.output).nnz == result.output.nnz
