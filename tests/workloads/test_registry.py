"""Tests for the workload registry, the five pipelines, and the CLI."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps import count_triangles
from repro.baselines import GustavsonSpGEMM
from repro.experiments.runner import ExperimentRunner
from repro.formats.convert import to_scipy
from repro.matrices import powerlaw_matrix
from repro.workloads import (
    WORKLOADS,
    get_workload,
    list_workloads,
    run_workload,
)
from repro.workloads.__main__ import main
from repro.workloads.ops import simple_graph


@pytest.fixture()
def matrix():
    return powerlaw_matrix(80, 4.0, seed=13)


@pytest.fixture()
def runner():
    return ExperimentRunner()


class TestRegistry:
    def test_at_least_five_workloads_registered(self):
        ids = list_workloads()
        assert len(ids) >= 5
        for expected in ("triangles", "mcl", "khop", "galerkin", "cosine"):
            assert expected in ids

    def test_specs_are_frozen_with_titles(self):
        for spec in WORKLOADS:
            assert spec.title and spec.description
            with pytest.raises(AttributeError):
                spec.title = "mutated"

    def test_get_workload_unknown_id_lists_known_ids(self):
        with pytest.raises(KeyError, match="known ids: triangles, mcl"):
            get_workload("not-a-workload")

    def test_param_merging(self):
        spec = get_workload("khop")
        assert spec.params() == {"k": 3}
        assert spec.params({"k": 5}) == {"k": 5}

    def test_backend_argument_conflicts_rejected(self, matrix, runner):
        with pytest.raises(ValueError, match="not both"):
            run_workload("khop", matrix, baseline=GustavsonSpGEMM(),
                         engine=object())


class TestWorkloadFunctionalResults:
    def test_triangles_matches_the_app(self, matrix, runner):
        result = run_workload("triangles", matrix, runner=runner)
        app = count_triangles(matrix)
        assert result.annotations["triangles"] == app.triangles
        assert result.annotations["wedges"] == app.wedges
        assert len(result.spgemm_stages) == 1

    def test_khop_counts_walks_exactly(self, matrix, runner):
        result = run_workload("khop", matrix, runner=runner, k=4)
        adjacency = simple_graph(to_scipy(matrix)).toarray()
        expected = np.linalg.matrix_power(adjacency, 4)
        np.testing.assert_allclose(result.output.to_dense(), expected)
        assert result.annotations["total_walks"] == expected.sum()
        assert len(result.spgemm_stages) == 3

    def test_galerkin_equals_the_dense_triple_product(self, matrix, runner):
        result = run_workload("galerkin", matrix, runner=runner, group_size=5)
        dense = to_scipy(matrix).toarray()
        groups = (np.arange(80) // 5)
        prolongator = np.zeros((80, 16))
        prolongator[np.arange(80), groups] = 1.0
        expected = prolongator.T @ dense @ prolongator
        np.testing.assert_allclose(result.output.to_dense(), expected,
                                   atol=1e-9)
        assert result.annotations["coarse_rows"] == 16

    def test_cosine_join_keeps_only_high_similarity_pairs(self, matrix, runner):
        threshold = 0.3
        result = run_workload("cosine", matrix, runner=runner,
                              threshold=threshold)
        values = result.output.data
        assert values.min() >= threshold
        assert values.max() <= 1.0 + 1e-9
        # The join of a row with itself is cosine 1 — kept for nonzero rows.
        dense = result.output.to_dense()
        row_nonzero = to_scipy(matrix).getnnz(axis=1) > 0
        np.testing.assert_allclose(np.diag(dense)[row_nonzero], 1.0)

    def test_mcl_runs_and_annotates_convergence(self, matrix, runner):
        result = run_workload("mcl", matrix, runner=runner, max_iterations=3)
        assert 1 <= result.annotations["iterations"] <= 3
        assert set(result.annotations) >= {"iterations", "converged"}
        assert len(result.spgemm_stages) >= 1
        assert result.backend == "SpArch"

    def test_invalid_parameters_raise(self, matrix, runner):
        with pytest.raises(ValueError, match="k must be at least 2"):
            run_workload("khop", matrix, runner=runner, k=1)
        with pytest.raises(ValueError, match="expansion"):
            run_workload("mcl", matrix, runner=runner, expansion=1)

    def test_baseline_backend_produces_same_functional_output(self, matrix,
                                                              runner):
        on_sparch = run_workload("khop", matrix, runner=runner)
        on_mkl = run_workload("khop", matrix, baseline=GustavsonSpGEMM(),
                              runner=runner)
        assert on_mkl.backend == "MKL"
        np.testing.assert_array_equal(on_mkl.output.indptr,
                                      on_sparch.output.indptr)
        np.testing.assert_array_equal(on_mkl.output.data,
                                      on_sparch.output.data)
        assert on_mkl.total_runtime_seconds > 0
        assert on_mkl.total_cycles == 0  # baselines model runtime, not cycles


class TestWorkloadsCli:
    def test_list_prints_every_workload(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        for workload_id in list_workloads():
            assert workload_id in output

    def test_no_arguments_behaves_like_list(self, capsys):
        assert main([]) == 0
        assert "mcl" in capsys.readouterr().out

    def test_running_one_workload_prints_the_stage_table(self, capsys):
        assert main(["galerkin", "--matrix", "wiki-Vote",
                     "--max-rows", "150"]) == 0
        output = capsys.readouterr().out
        assert "RAP" in output and "TOTAL" in output
        assert "stage simulations computed" in output

    def test_unknown_workload_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known ids"):
            main(["not-a-workload"])

    def test_verify_compiled_passes_on_the_registry(self, capsys):
        assert main(["--verify-compiled"]) == 0
        assert "compiled spec" in capsys.readouterr().out

    def test_engine_fuse_and_json_flags(self, capsys, tmp_path):
        import json

        out = tmp_path / "payloads.json"
        assert main(["triangles", "tri_enum", "--matrix", "wiki-Vote",
                     "--max-rows", "120", "--engine", "scalar", "--fuse",
                     "--json", str(out)]) == 0
        assert "host [s]" in capsys.readouterr().out
        merged = json.loads(out.read_text())
        assert merged["engine"] == "scalar"
        assert merged["fused"] is True
        assert [r["workload_id"] for r in merged["results"]] == [
            "triangles", "tri_enum"]
        for result in merged["results"]:
            assert "output_sha256" in result
            host = [stage for stage in result["stages"]
                    if stage["kind"] != "spgemm"]
            assert all("host_seconds" in stage for stage in host)

    def test_scenario_flag_runs_on_a_corpus_scenario(self, capsys):
        assert main(["galerkin", "--scenario", "smoke/wiki-Vote@120"]) == 0
        assert "smoke/wiki-Vote@120" in capsys.readouterr().out

    def test_via_build_matches_compiled_output(self, capsys):
        assert main(["khop", "--matrix", "wiki-Vote", "--max-rows", "120",
                     "--via", "build"]) == 0
        assert "power[3]" in capsys.readouterr().out
