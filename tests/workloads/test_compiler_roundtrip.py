"""Hypothesis property: IR → JSON → IR is lossless and schedule-stable.

Two sources of graphs: every *registered* workload spec (loops, repeats,
chains, fusions — the full IR surface), and randomly generated straight-
line pipelines over the structure-safe host-op vocabulary.  In both cases
the JSON encoding must reconstruct an *identical* ``GraphSpec`` (dataclass
equality, not just semantic equivalence) and an identical deterministic
schedule.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.compiler import CompiledWorkload, compile_graph
from repro.workloads.compiler.ir import GraphSpec
from repro.workloads.compiler.schedule import schedule_nodes
from repro.workloads.graphs import COMPILED
from repro.workloads.registry import list_workloads

#: Unary host ops that keep a square operand square — chaining any mix of
#: them after a square input always type-checks.
SQUARE_SAFE_OPS = ["transpose", "binarize", "simple_graph",
                   "normalize_rows", "normalize_columns"]


def _roundtrip(graph: GraphSpec) -> GraphSpec:
    return GraphSpec.from_dict(json.loads(json.dumps(graph.to_dict())))


@given(workload_id=st.sampled_from(list_workloads()))
@settings(max_examples=20, deadline=None)
def test_registered_specs_round_trip_to_an_identical_schedule(workload_id):
    compiled = COMPILED[workload_id]
    back = _roundtrip(compiled.graph)
    assert back == compiled.graph
    assert schedule_nodes(back) == compiled.order
    # The CompiledWorkload JSON form is a fixed point too.
    again = CompiledWorkload.from_json(compiled.to_json())
    assert again.graph == compiled.graph
    assert again.order == compiled.order
    assert CompiledWorkload.from_json(again.to_json()).graph == again.graph


@st.composite
def _random_pipelines(draw):
    ops = draw(st.lists(st.sampled_from(SQUARE_SAFE_OPS + ["spgemm",
                                                           "prune"]),
                        min_size=1, max_size=8))
    nodes = []
    previous = "A"
    for index, op in enumerate(ops):
        stage = f"s{index}"
        if op == "spgemm":
            nodes.append({"stage": stage, "op": "spgemm",
                          "inputs": [previous, previous]})
        elif op == "prune":
            threshold = draw(st.floats(min_value=0.0, max_value=1.0,
                                       allow_nan=False))
            nodes.append({"stage": stage, "op": "prune",
                          "inputs": [previous],
                          "params": {"threshold": threshold}})
        else:
            nodes.append({"stage": stage, "op": op, "inputs": [previous]})
        previous = stage
    return {"workload": "generated",
            "inputs": [{"name": "A", "square": True}],
            "nodes": nodes, "output": previous}


@given(payload=_random_pipelines())
@settings(max_examples=40, deadline=None)
def test_generated_pipelines_round_trip_losslessly(payload):
    compiled = compile_graph(payload)
    back = _roundtrip(compiled.graph)
    assert back == compiled.graph
    assert schedule_nodes(back) == compiled.order
