"""Stage-stats accounting: aggregates, memoisation, cached-re-run identity.

The satellite property: a pipeline's aggregate cycles / DRAM bytes / energy
always equal the sum over its stages' records (SpGEMM stages carry the
simulator's numbers, host stages are charged zero), and re-running a
workload against a warm cache returns an identical
:class:`~repro.workloads.pipeline.WorkloadResult` without recomputing any
simulation point.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.energy import EnergyModel
from repro.baselines import HashSpGEMM
from repro.core.config import SpArchConfig
from repro.experiments.runner import ExperimentRunner
from repro.matrices import powerlaw_matrix, random_matrix
from repro.workloads import list_workloads, run_workload

#: Cheap per-workload parameters for the property test.
TINY_PARAMS = {"mcl": {"max_iterations": 2}, "khop": {"k": 3},
               "pagerank": {"max_iterations": 4},
               "amg_vcycle": {"max_levels": 2},
               "gnn_sample": {"layers": 2}}


def _tiny_matrix(seed: int, family: str):
    if family == "powerlaw":
        return powerlaw_matrix(40, 3.0, seed=seed)
    return random_matrix(40, 40, 150, seed=seed)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       family=st.sampled_from(["powerlaw", "random"]),
       workload_id=st.sampled_from(list_workloads()))
def test_aggregate_equals_the_sum_over_stages(seed, family, workload_id):
    matrix = _tiny_matrix(seed, family)
    config = SpArchConfig()
    result = run_workload(workload_id, matrix, runner=ExperimentRunner(),
                          config=config, **TINY_PARAMS.get(workload_id, {}))

    spgemms = [stage for stage in result.stages if stage.is_spgemm]
    hosts = [stage for stage in result.stages if not stage.is_spgemm]

    # Host stages are charged zero accelerator cost...
    for stage in hosts:
        assert (stage.cycles, stage.dram_bytes, stage.energy_joules,
                stage.runtime_seconds) == (0, 0, 0.0, 0.0)
        assert stage.stats is None and stage.summary is None
    # ...so the totals must equal the sum of the simulator's own numbers.
    energy_model = EnergyModel()
    assert result.total_cycles == sum(s.stats.cycles for s in spgemms)
    assert result.total_dram_bytes == sum(s.stats.dram_bytes for s in spgemms)
    assert result.total_multiplications == sum(
        s.stats.multiplications for s in spgemms)
    assert result.total_additions == sum(s.stats.additions for s in spgemms)
    np.testing.assert_allclose(
        result.total_runtime_seconds,
        sum(s.stats.runtime_seconds for s in spgemms))
    np.testing.assert_allclose(
        result.total_energy_joules,
        sum(energy_model.total_energy(s.stats, config) for s in spgemms))


def test_cached_rerun_returns_an_identical_workload_result(tmp_path):
    matrix = powerlaw_matrix(70, 4.0, seed=21)
    runner = ExperimentRunner(cache_dir=tmp_path)
    cold = run_workload("mcl", matrix, runner=runner, max_iterations=3)
    cold_misses = runner.cache_misses
    # One miss per distinct simulation point (iterations can repeat a point
    # once the process becomes idempotent, so ≤, not ==).
    assert 1 <= cold_misses <= len(cold.spgemm_stages)

    warm = run_workload("mcl", matrix, runner=runner, max_iterations=3)
    assert warm == cold  # stage records, annotations, backend — everything
    assert runner.cache_misses == cold_misses  # zero new simulations
    assert runner.cache_hits >= len(cold.spgemm_stages)
    np.testing.assert_array_equal(warm.output.data, cold.output.data)

    # A fresh runner on the same disk cache replays without simulating.
    replay_runner = ExperimentRunner(cache_dir=tmp_path)
    replay = run_workload("mcl", matrix, runner=replay_runner,
                          max_iterations=3)
    assert replay == cold
    assert replay_runner.cache_misses == 0


def test_cached_rerun_is_identical_for_baseline_backends():
    matrix = powerlaw_matrix(70, 4.0, seed=22)
    runner = ExperimentRunner()
    baseline = HashSpGEMM()
    cold = run_workload("khop", matrix, baseline=baseline, runner=runner)
    misses = runner.cache_misses
    warm = run_workload("khop", matrix, baseline=baseline, runner=runner)
    assert warm == cold
    assert runner.cache_misses == misses
