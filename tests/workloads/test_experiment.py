"""Tests for the end-to-end ``workloads`` experiment harness."""

from __future__ import annotations

import pytest

from repro.baselines import GustavsonSpGEMM
from repro.experiments import get_experiment, list_experiments
from repro.experiments.runner import ExperimentRunner
from repro.experiments.workloads_e2e import run


@pytest.fixture(scope="module")
def result_and_runner():
    runner = ExperimentRunner()
    result = run(max_rows=150, names=["wiki-Vote"],
                 workload_ids=["triangles", "khop"],
                 baselines=[GustavsonSpGEMM()], runner=runner)
    return result, runner


def test_registered_in_the_experiment_registry():
    assert "workloads" in list_experiments()
    entry = get_experiment("workloads")
    assert entry.run is run
    assert "workload" in entry.title.lower()


def test_table_has_one_row_per_workload_and_backend(result_and_runner):
    result, _ = result_and_runner
    assert result.experiment_id == "workloads"
    labels = [(row[0], row[1]) for row in result.table.rows]
    assert ("triangles", "SpArch") in labels
    assert ("triangles", "MKL") in labels
    assert ("khop", "SpArch") in labels
    assert ("khop", "MKL") in labels
    assert len(labels) == 4


def test_metrics_cover_cycles_dram_energy_and_ratios(result_and_runner):
    result, _ = result_and_runner
    for workload_id in ("triangles", "khop"):
        assert result.metrics[f"sparch_cycles[{workload_id}]"] > 0
        assert result.metrics[f"sparch_dram_bytes[{workload_id}]"] > 0
        assert result.metrics[f"sparch_energy_joules[{workload_id}]"] > 0
        assert result.metrics[f"speedup[{workload_id}][MKL]"] > 0
        assert result.metrics[f"energy_saving[{workload_id}][MKL]"] > 0


def test_rerun_replays_entirely_from_the_cache(result_and_runner):
    """Acceptance check: per-stage results memoise through the runner."""
    result, runner = result_and_runner
    misses_before = runner.cache_misses
    replay = run(max_rows=150, names=["wiki-Vote"],
                 workload_ids=["triangles", "khop"],
                 baselines=[GustavsonSpGEMM()], runner=runner)
    assert runner.cache_misses == misses_before  # zero new simulations
    assert replay.metrics == result.metrics
    assert replay.table.rows == result.table.rows


def test_shared_stages_simulate_once_across_workloads():
    """triangles' A·A and khop's A² are one cached simulation point."""
    runner = ExperimentRunner()
    run(max_rows=150, names=["wiki-Vote"], workload_ids=["triangles"],
        baselines=[], runner=runner)
    misses_after_triangles = runner.cache_misses
    run(max_rows=150, names=["wiki-Vote"], workload_ids=["khop"],
        baselines=[], runner=runner)
    # khop needs A² (shared, cached) and A³ (one fresh point).
    assert runner.cache_misses == misses_after_triangles + 1


def test_unknown_workload_id_fails_with_suggestions():
    with pytest.raises(KeyError, match="known ids"):
        run(max_rows=120, names=["wiki-Vote"], workload_ids=["nope"],
            baselines=[], runner=ExperimentRunner())
