"""Differential harness: every engine must match the scalar reference.

The vectorized backend (:mod:`repro.core.vectorized`) and the streaming
backend (:mod:`repro.core.streaming`) are only allowed to be *faster* /
*leaner* — every functional output and every statistic must be exactly the
output of the scalar reference model.  This module locks that contract down
over

* a grid of synthetic + rMAT matrices (square and rectangular, with
  explicit-zero products, hub-dominated and uniform),
* all 16 combinations of the four ablation switches,
* merge-tree depths that force multi-round spilling, and
* prefetch buffers both larger (fast path) and smaller (Bélády pressure)
  than the right operand.

Equality is asserted on the result matrix arrays and on the full statistics
surface: cycles, per-category DRAM traffic, counters and derived rates.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.formats.csr import CSRMatrix
from repro.matrices.rmat import RMATConfig, generate_rmat
from repro.matrices.synthetic import random_matrix

#: Every statistic that must match bit for bit between the engines.
COMPARED_STATS = (
    "cycles", "runtime_seconds", "multiplications", "additions", "output_nnz",
    "num_partial_matrices", "num_merge_rounds", "condensed_columns",
    "prefetch_hit_rate", "prefetch_bytes_saved", "comparator_ops",
    "memory_cycles", "compute_cycles", "merge_tree_elements",
    "buffer_element_reads", "scheduler",
)

ABLATION_GRID = list(itertools.product([True, False], repeat=4))


def assert_engines_agree(matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                         config: SpArchConfig) -> None:
    """Run all three engines on ``A · B`` and compare result + statistics."""
    scalar = SpArch(config.replace(engine="scalar")).multiply(matrix_a, matrix_b)
    for engine in ("vectorized", "streaming"):
        other = SpArch(config.replace(engine=engine)).multiply(
            matrix_a, matrix_b)

        for field in COMPARED_STATS:
            assert getattr(scalar.stats, field) == getattr(other.stats, field), \
                f"stats field {field!r} diverges on engine {engine!r}"
        assert (scalar.stats.traffic.by_category()
                == other.stats.traffic.by_category()), engine

        assert scalar.matrix.shape == other.matrix.shape
        np.testing.assert_array_equal(scalar.matrix.indptr,
                                      other.matrix.indptr)
        np.testing.assert_array_equal(scalar.matrix.indices,
                                      other.matrix.indices)
        np.testing.assert_array_equal(scalar.matrix.data, other.matrix.data)


@pytest.fixture(scope="module")
def grid_matrices() -> dict[str, CSRMatrix]:
    """Small synthetic + rMAT operands covering distinct structures."""
    return {
        "random-200": random_matrix(200, 200, 1400, seed=11),
        "rmat-400-x8": generate_rmat(
            RMATConfig(num_rows=400, edge_factor=8, seed=3)),
        "rmat-uniform-300": generate_rmat(
            RMATConfig(num_rows=300, edge_factor=4,
                       a=0.25, b=0.25, c=0.25, d=0.25, seed=9)),
    }


@pytest.mark.parametrize(
    "pipelined,condensing,huffman,prefetcher", ABLATION_GRID,
    ids=lambda value: "on" if value is True else
        ("off" if value is False else str(value)))
def test_all_ablation_combinations(grid_matrices, pipelined, condensing,
                                   huffman, prefetcher):
    """Engines agree under every ablation combination (Figure 16 walk)."""
    config = SpArchConfig(
        enable_pipelined_merge=pipelined,
        enable_matrix_condensing=condensing,
        enable_huffman_scheduler=huffman,
        enable_row_prefetcher=prefetcher,
        # A shallow tree + small buffers force multi-round spilling and
        # genuine Bélády eviction pressure on these small proxies.
        merge_tree_layers=3,
        prefetch_buffer_lines=48,
        prefetch_line_elements=8,
        lookahead_fifo_elements=256,
    )
    for matrix in grid_matrices.values():
        assert_engines_agree(matrix, matrix, config)


def test_default_table1_configuration(grid_matrices):
    """Engines agree under the full Table I default configuration."""
    for matrix in grid_matrices.values():
        assert_engines_agree(matrix, matrix, SpArchConfig())


def test_rectangular_operands():
    """Engines agree on A · B with distinct rectangular operands."""
    matrix_a = random_matrix(120, 90, 700, seed=5)
    matrix_b = random_matrix(90, 150, 800, seed=6)
    assert_engines_agree(matrix_a, matrix_b, SpArchConfig())
    assert_engines_agree(matrix_a, matrix_b,
                         SpArchConfig(enable_matrix_condensing=False,
                                      merge_tree_layers=2))


def test_merge_tree_depth_sweep(grid_matrices):
    """Engines agree across merge-tree depths (Figure 18 sweep regime)."""
    matrix = grid_matrices["rmat-400-x8"]
    for layers in (2, 4, 6):
        assert_engines_agree(matrix, matrix,
                             SpArchConfig(merge_tree_layers=layers))


def test_prefetch_fast_path_and_pressure(grid_matrices):
    """Engines agree whether or not the right operand fits the row buffer."""
    matrix = grid_matrices["rmat-400-x8"]
    # Everything fits: the eviction-free fast path runs.
    assert_engines_agree(matrix, matrix,
                         SpArchConfig(prefetch_buffer_lines=4096))
    # Nothing fits: constant eviction pressure.
    assert_engines_agree(matrix, matrix,
                         SpArchConfig(prefetch_buffer_lines=8,
                                      prefetch_line_elements=4,
                                      lookahead_fifo_elements=64))


def test_cancelling_products():
    """Engines agree when partial products cancel to explicit zeros."""
    dense = np.zeros((6, 6))
    dense[0, 0], dense[0, 1] = 1.0, -1.0
    dense[1, 0], dense[1, 1] = 2.0, -2.0
    matrix_a = CSRMatrix.from_dense(dense)
    dense_b = np.zeros((6, 6))
    dense_b[0, 2] = 3.0
    dense_b[1, 2] = 3.0  # A[0,:] · B[:,2] == 0 exactly
    dense_b[1, 3] = 5.0
    matrix_b = CSRMatrix.from_dense(dense_b)
    assert_engines_agree(matrix_a, matrix_b, SpArchConfig())
    assert_engines_agree(matrix_a, matrix_b,
                         SpArchConfig(enable_matrix_condensing=False))


@pytest.mark.parametrize(
    "pipelined,condensing,huffman,prefetcher", ABLATION_GRID,
    ids=lambda value: "on" if value is True else
        ("off" if value is False else str(value)))
def test_streaming_tiny_chunks_all_ablations(grid_matrices, pipelined,
                                             condensing, huffman, prefetcher):
    """Streaming with forced multi-chunk execution matches the vectorized
    engine under every ablation combination.

    Chunk sizes far below the leaf/product counts force many generation
    chunks and many fold blocks per round — the regime where a carry or
    tie-break bug would surface.  (The scalar cross-check of the same grid
    runs in ``test_all_ablation_combinations``.)
    """
    config = SpArchConfig(
        enable_pipelined_merge=pipelined,
        enable_matrix_condensing=condensing,
        enable_huffman_scheduler=huffman,
        enable_row_prefetcher=prefetcher,
        merge_tree_layers=3,
        prefetch_buffer_lines=48,
        prefetch_line_elements=8,
        lookahead_fifo_elements=256,
    )
    matrix = grid_matrices["rmat-400-x8"]
    reference = SpArch(config.replace(engine="vectorized")).multiply(
        matrix, matrix)
    streamed = SpArch(config.replace(
        engine="streaming", streaming_chunk_leaves=3,
        streaming_block_elements=97)).multiply(matrix, matrix)
    for field in COMPARED_STATS:
        assert (getattr(reference.stats, field)
                == getattr(streamed.stats, field)), field
    np.testing.assert_array_equal(reference.matrix.indptr,
                                  streamed.matrix.indptr)
    np.testing.assert_array_equal(reference.matrix.indices,
                                  streamed.matrix.indices)
    np.testing.assert_array_equal(reference.matrix.data,
                                  streamed.matrix.data)


def test_scalar_engine_validates_unsorted_streams():
    """Only the scalar tree is the validating reference for stream order."""
    from repro.hardware.merge_tree import MergeTree

    tree = MergeTree(num_layers=2)
    with pytest.raises(ValueError, match="key-sorted"):
        tree.merge([(np.array([3, 1]), np.array([1.0, 2.0]))])
