"""Cross-module integration tests: the paper's claims hold end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.energy import EnergyModel
from repro.baselines import GustavsonSpGEMM, OuterSpaceAccelerator
from repro.baselines.reference import matrices_allclose, scipy_spgemm
from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.matrices.rmat import RMATConfig, generate_rmat
from repro.matrices.suite import load_benchmark
from repro.utils.maths import geometric_mean


@pytest.fixture(scope="module")
def benchmark_matrices():
    names = ["wiki-Vote", "facebook", "poisson3Da", "p2p-Gnutella31"]
    return {name: load_benchmark(name, max_rows=500) for name in names}


@pytest.fixture(scope="module")
def constrained_config():
    """A buffer-constrained configuration matching the proxies' scale."""
    return SpArchConfig().replace(prefetch_buffer_lines=32,
                                  lookahead_fifo_elements=256)


class TestHeadlineClaims:
    def test_all_paths_agree_on_the_functional_result(self, benchmark_matrices,
                                                      constrained_config):
        for matrix in benchmark_matrices.values():
            reference = scipy_spgemm(matrix, matrix)
            sparch = SpArch(constrained_config).multiply(matrix, matrix)
            outerspace = OuterSpaceAccelerator().multiply(matrix, matrix)
            mkl = GustavsonSpGEMM().multiply(matrix, matrix)
            assert matrices_allclose(sparch.matrix, reference)
            assert matrices_allclose(outerspace.matrix, reference)
            assert matrices_allclose(mkl.matrix, reference)

    def test_sparch_moves_less_dram_than_outerspace(self, benchmark_matrices,
                                                    constrained_config):
        """The abstract's headline: a multi-x DRAM-access reduction."""
        reductions = []
        for matrix in benchmark_matrices.values():
            sparch = SpArch(constrained_config).multiply(matrix, matrix)
            outerspace = OuterSpaceAccelerator().multiply(matrix, matrix)
            reductions.append(outerspace.traffic_bytes
                              / max(1, sparch.stats.dram_bytes))
        assert geometric_mean(reductions) > 1.5

    def test_sparch_is_faster_and_more_efficient_than_outerspace(
            self, benchmark_matrices, constrained_config):
        energy_model = EnergyModel()
        speedups, savings = [], []
        for matrix in benchmark_matrices.values():
            sparch = SpArch(constrained_config).multiply(matrix, matrix)
            outerspace = OuterSpaceAccelerator().multiply(matrix, matrix)
            speedups.append(outerspace.runtime_seconds
                            / sparch.stats.runtime_seconds)
            savings.append(outerspace.energy_joules
                           / energy_model.total_energy(sparch.stats,
                                                       constrained_config))
        assert geometric_mean(speedups) > 2.0
        assert geometric_mean(savings) > 2.0

    def test_bandwidth_utilization_beats_outerspace(self, benchmark_matrices,
                                                    constrained_config):
        utilizations = [
            SpArch(constrained_config).multiply(matrix, matrix)
            .stats.bandwidth_utilization
            for matrix in benchmark_matrices.values()
        ]
        assert float(np.mean(utilizations)) > 0.483


class TestScalingBehaviour:
    def test_performance_is_stable_across_density(self):
        """Figure 14's qualitative claim: SpArch tolerates sparser matrices."""
        config = SpArchConfig().replace(prefetch_buffer_lines=64,
                                        lookahead_fifo_elements=512)
        gflops = []
        for rows, degree in ((512, 16), (1024, 8), (2048, 4)):
            matrix = generate_rmat(RMATConfig(num_rows=rows, edge_factor=degree,
                                              seed=3))
            result = SpArch(config).multiply(matrix, matrix)
            gflops.append(result.stats.gflops)
        assert max(gflops) / min(gflops) < 4.0

    def test_condensing_gain_grows_with_matrix_size(self):
        """More columns → more partial matrices → condensing matters more."""
        ratios = []
        for rows in (200, 800):
            matrix = generate_rmat(RMATConfig(num_rows=rows, edge_factor=4,
                                              seed=9))
            condensed = SpArch().multiply(matrix, matrix).stats
            uncondensed = SpArch(SpArchConfig().with_features(
                matrix_condensing=False)).multiply(matrix, matrix).stats
            ratios.append(uncondensed.num_partial_matrices
                          / max(1, condensed.num_partial_matrices))
        assert ratios[1] > ratios[0]

    def test_merge_tree_depth_trades_area_for_traffic(self):
        from repro.analysis.area import AreaModel

        matrix = generate_rmat(RMATConfig(num_rows=600, edge_factor=6, seed=5))
        area_model = AreaModel()
        shallow_config = SpArchConfig().replace(merge_tree_layers=3)
        deep_config = SpArchConfig().replace(merge_tree_layers=6)
        shallow = SpArch(shallow_config).multiply(matrix, matrix).stats
        deep = SpArch(deep_config).multiply(matrix, matrix).stats
        assert deep.traffic.partial_matrix_bytes <= (
            shallow.traffic.partial_matrix_bytes)
        assert area_model.total_area(deep_config) > area_model.total_area(
            shallow_config)
