"""Unit tests for the HBM bandwidth model (Table I)."""

from __future__ import annotations

import pytest

from repro.memory.hbm import HBMConfig, HBMModel


def test_default_configuration_matches_table1():
    config = HBMConfig()
    assert config.num_channels == 16
    assert config.total_bandwidth_bytes_per_second == pytest.approx(128e9)
    assert config.bytes_per_cycle == pytest.approx(128.0)


def test_transfer_cycles_scale_with_bytes_and_efficiency():
    model = HBMModel(HBMConfig(read_efficiency=0.5, write_efficiency=1.0))
    # 128 bytes/cycle peak, 50 % read efficiency → 64 bytes/cycle effective.
    assert model.transfer_cycles(6400, is_read=True) == 100
    assert model.transfer_cycles(6400, is_read=False) == 50
    assert model.transfer_cycles(0) == 0
    assert model.transfer_cycles(1) == 1  # never less than one cycle
    with pytest.raises(ValueError):
        model.transfer_cycles(-1)


def test_memory_cycles_sums_read_and_write():
    model = HBMModel()
    read_only = model.transfer_cycles(10_000, is_read=True)
    write_only = model.transfer_cycles(5_000, is_read=False)
    assert model.memory_cycles(10_000, 5_000) == read_only + write_only


def test_byte_recording_and_utilization():
    model = HBMModel()
    model.record_read(1000)
    model.record_write(500)
    assert model.read_bytes == 1000
    assert model.write_bytes == 500
    assert model.total_bytes == 1500
    with pytest.raises(ValueError):
        model.record_read(-1)
    assert model.bandwidth_utilization(1280, 10) == pytest.approx(1.0)
    assert model.bandwidth_utilization(640, 10) == pytest.approx(0.5)
    assert model.bandwidth_utilization(999999, 10) == 1.0  # clamped
    assert model.bandwidth_utilization(100, 0) == 0.0


def test_runtime_conversion():
    model = HBMModel()
    assert model.runtime_seconds(1_000_000) == pytest.approx(1e-3)
    with pytest.raises(ValueError):
        model.runtime_seconds(-1)
