"""Unit tests for DRAM traffic accounting."""

from __future__ import annotations

import pytest

from repro.memory.traffic import TrafficCategory, TrafficCounter


def test_categories_classified_as_read_or_write():
    reads = {TrafficCategory.MATRIX_A_READ, TrafficCategory.MATRIX_B_READ,
             TrafficCategory.PARTIAL_READ}
    for category in TrafficCategory:
        assert category.is_read() == (category in reads)


def test_add_and_aggregate():
    counter = TrafficCounter()
    counter.add(TrafficCategory.MATRIX_A_READ, 100)
    counter.add(TrafficCategory.MATRIX_B_READ, 200)
    counter.add(TrafficCategory.PARTIAL_WRITE, 50)
    counter.add(TrafficCategory.PARTIAL_READ, 50)
    counter.add(TrafficCategory.RESULT_WRITE, 25)
    assert counter.read_bytes == 350
    assert counter.write_bytes == 75
    assert counter.total_bytes == 425
    assert counter.partial_matrix_bytes == 100
    assert counter.input_bytes == 300
    assert counter.by_category()["matrix_a_read"] == 100


def test_negative_bytes_rejected():
    counter = TrafficCounter()
    with pytest.raises(ValueError):
        counter.add(TrafficCategory.MATRIX_A_READ, -1)


def test_merge_combines_counters():
    first = TrafficCounter()
    second = TrafficCounter()
    first.add(TrafficCategory.MATRIX_A_READ, 10)
    second.add(TrafficCategory.MATRIX_A_READ, 5)
    second.add(TrafficCategory.RESULT_WRITE, 7)
    merged = first.merge(second)
    assert merged.bytes_by_category[TrafficCategory.MATRIX_A_READ] == 15
    assert merged.bytes_by_category[TrafficCategory.RESULT_WRITE] == 7
    # The originals are untouched.
    assert first.total_bytes == 10
    assert second.total_bytes == 12
