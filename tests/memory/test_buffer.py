"""Unit tests for the prefetch row buffer (§II-D)."""

from __future__ import annotations

import pytest

from repro.memory.buffer import BufferLine, RowBuffer


def test_capacity_and_geometry():
    buffer = RowBuffer(num_lines=4, line_elements=48, element_bytes=12)
    assert buffer.line_bytes == 576
    assert buffer.capacity_bytes == 4 * 576
    assert buffer.lines_free == 4
    assert buffer.segments_for_row(0) == 0
    assert buffer.segments_for_row(48) == 1
    assert buffer.segments_for_row(49) == 2
    with pytest.raises(ValueError):
        buffer.segments_for_row(-1)


def test_insert_evict_lifecycle():
    buffer = RowBuffer(num_lines=2, line_elements=4)
    buffer.insert(7, 0)
    buffer.insert(7, 1)
    assert buffer.lines_used == 2
    assert buffer.is_resident(7, 0)
    assert buffer.resident_segments(7) == {0, 1}
    assert buffer.resident_rows == {7}
    with pytest.raises(OverflowError):
        buffer.insert(8, 0)
    buffer.evict(7, 1)
    assert buffer.lines_free == 1
    buffer.insert(8, 0)
    assert buffer.resident_rows == {7, 8}
    assert buffer.evictions == 1


def test_duplicate_insert_is_idempotent():
    buffer = RowBuffer(num_lines=2, line_elements=4)
    buffer.insert(1, 0)
    buffer.insert(1, 0)
    assert buffer.lines_used == 1


def test_evict_missing_segment_raises():
    buffer = RowBuffer(num_lines=2, line_elements=4)
    with pytest.raises(KeyError):
        buffer.evict(3, 0)


def test_evict_row_frees_all_segments():
    buffer = RowBuffer(num_lines=4, line_elements=4)
    for segment in range(3):
        buffer.insert(5, segment)
    assert buffer.evict_row(5) == 3
    assert buffer.lines_used == 0
    assert buffer.evict_row(5) == 0


def test_hit_statistics_and_clear():
    buffer = RowBuffer(num_lines=2, line_elements=4)
    buffer.record_hit(3)
    buffer.record_miss(1)
    assert buffer.hit_rate == pytest.approx(0.75)
    buffer.insert(1, 0)
    buffer.clear()
    assert buffer.lines_used == 0
    assert buffer.hit_rate == pytest.approx(0.75)  # statistics preserved


def test_invalid_construction():
    with pytest.raises(ValueError):
        RowBuffer(0, 4)
    with pytest.raises(ValueError):
        RowBuffer(4, 0)


def test_buffer_line_identity():
    assert BufferLine(3, 1) == BufferLine(3, 1)
    assert BufferLine(3, 1) != BufferLine(3, 2)
