"""Tests for the multi-channel HBM model (§II-D overlapped fetchers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices.suite import load_benchmark
from repro.memory.channels import (
    ChannelStats,
    HBMChannelModel,
    MemoryTransaction,
    csr_row_addresses,
)


def test_transaction_validation():
    with pytest.raises(ValueError):
        MemoryTransaction(address=-1, num_bytes=8)
    with pytest.raises(ValueError):
        MemoryTransaction(address=0, num_bytes=0)


def test_channel_mapping_is_interleaved():
    model = HBMChannelModel(num_channels=4, interleave_bytes=256)
    assert model.channel_of(0) == 0
    assert model.channel_of(255) == 0
    assert model.channel_of(256) == 1
    assert model.channel_of(4 * 256) == 0
    with pytest.raises(ValueError):
        model.channel_of(-1)


def test_single_transaction_split_across_channels():
    model = HBMChannelModel(num_channels=4, interleave_bytes=256,
                            access_latency_cycles=0)
    # A 1024-byte read starting at 0 touches all four channels equally.
    stats = model.schedule([MemoryTransaction(0, 1024)])
    np.testing.assert_array_equal(stats.bytes_per_channel, [256] * 4)
    assert stats.load_imbalance == pytest.approx(1.0)
    assert stats.total_cycles == 32      # 256 bytes at 8 bytes/cycle


def test_conflicting_transactions_serialize_on_one_channel():
    model = HBMChannelModel(num_channels=4, interleave_bytes=256,
                            access_latency_cycles=0)
    # Four reads that all land on channel 0.
    stride = 4 * 256
    stats = model.schedule([MemoryTransaction(i * stride, 256) for i in range(4)])
    assert stats.bytes_per_channel[0] == 4 * 256
    assert stats.bytes_per_channel[1:].sum() == 0
    assert stats.load_imbalance == pytest.approx(4.0)
    assert stats.total_cycles == 4 * 32
    assert stats.effective_bandwidth_fraction == pytest.approx(0.25)


def test_latency_charged_once_per_stream():
    model = HBMChannelModel(num_channels=2, interleave_bytes=64,
                            access_latency_cycles=100)
    empty = model.schedule([])
    assert empty.total_cycles == 0
    single = model.schedule([MemoryTransaction(0, 64)])
    assert single.total_cycles == 100 + 8


def test_schedule_row_reads_matches_manual_transactions():
    model = HBMChannelModel(num_channels=4, interleave_bytes=128,
                            access_latency_cycles=0)
    addresses = np.array([0, 512, 1024])
    sizes = np.array([128, 256, 0])
    stats = model.schedule_row_reads(addresses, sizes)
    assert stats.transactions == 2      # zero-byte rows are skipped
    assert int(stats.bytes_per_channel.sum()) == 384
    with pytest.raises(ValueError):
        model.schedule_row_reads(addresses, sizes[:2])


def test_csr_row_addresses_layout():
    indptr = np.array([0, 3, 3, 7])
    addresses, sizes = csr_row_addresses(indptr, element_bytes=16,
                                         base_address=1000)
    np.testing.assert_array_equal(addresses, [1000, 1048, 1048])
    np.testing.assert_array_equal(sizes, [48, 0, 64])


def test_benchmark_matrix_rows_balance_across_channels():
    """CSR rows of a real-ish matrix spread roughly evenly over 16 channels,
    which is what lets the aggregate-bandwidth model stand in for the
    channel-level model (§II-D)."""
    matrix = load_benchmark("wiki-Vote", max_rows=800)
    addresses, sizes = csr_row_addresses(matrix.indptr)
    model = HBMChannelModel()
    stats = model.schedule_row_reads(addresses, sizes)
    assert isinstance(stats, ChannelStats)
    assert stats.load_imbalance < 1.5
    assert stats.effective_bandwidth_fraction > 0.5
