"""Registry mapping engine names to their factories.

Mirrors :mod:`repro.experiments.registry` and
:mod:`repro.workloads.registry`: frozen entries, id lookup with a helpful
unknown-id error, and one resolution entry point — :func:`resolve_engine` —
that the runner, the pipelines and the sweeps dispatch through.

Registered engines::

    sparch        SpArch simulator (cycle-accurate; Table I by default)
    outerspace    OuterSPACE outer-product accelerator model
    mkl           Intel MKL-class row-wise Gustavson SpGEMM (6-core CPU)
    cusparse      cuSPARSE-class hash SpGEMM (TITAN Xp)
    cusp          CUSP-class expand-sort-compress SpGEMM (TITAN Xp)
    armadillo     ARM Armadillo-class naive SpGEMM (quad A53)
    heap          heap-based row-merge SpGEMM (related work, §IV)
    innerproduct  vanilla inner-product dataflow model (Figure 1)
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.baselines.armadillo import ArmadilloSpGEMM
from repro.baselines.gustavson import GustavsonSpGEMM
from repro.baselines.hash_spgemm import HashSpGEMM
from repro.baselines.heap_spgemm import HeapSpGEMM
from repro.baselines.inner_product import InnerProductSpGEMM
from repro.baselines.outerspace import OuterSpaceAccelerator
from repro.baselines.sort_spgemm import ESCSpGEMM
from repro.engines.adapters import BaselineEngineAdapter
from repro.engines.base import Engine
from repro.engines.sparch import SpArchEngine


@dataclass(frozen=True)
class EngineEntry:
    """One registered engine.

    Attributes:
        name: registry id used for dispatch ("sparch", "mkl", ...).
        title: what the engine models.
        kind: ``"simulation"`` or ``"baseline"``.
        factory: builds a fresh engine; keyword arguments are forwarded
            (``config=`` for sparch, ``engine=`` backend for baselines).
    """

    name: str
    title: str
    kind: str
    factory: Callable[..., Engine]


def _baseline_factory(cls, name: str):
    def build(**kwargs) -> Engine:
        return BaselineEngineAdapter(cls(**kwargs), name=name)
    return build


#: Every engine: the SpArch simulator plus the seven baselines, in the
#: order the paper introduces them.
ENGINES: tuple[EngineEntry, ...] = (
    EngineEntry("sparch", "SpArch accelerator simulator (this paper)",
                "simulation", SpArchEngine),
    EngineEntry("outerspace", "OuterSPACE outer-product accelerator",
                "baseline", _baseline_factory(OuterSpaceAccelerator,
                                              "outerspace")),
    EngineEntry("mkl", "Intel MKL-class Gustavson SpGEMM (6-core CPU)",
                "baseline", _baseline_factory(GustavsonSpGEMM, "mkl")),
    EngineEntry("cusparse", "cuSPARSE-class hash SpGEMM (TITAN Xp)",
                "baseline", _baseline_factory(HashSpGEMM, "cusparse")),
    EngineEntry("cusp", "CUSP-class expand-sort-compress SpGEMM (TITAN Xp)",
                "baseline", _baseline_factory(ESCSpGEMM, "cusp")),
    EngineEntry("armadillo", "ARM Armadillo-class naive SpGEMM (quad A53)",
                "baseline", _baseline_factory(ArmadilloSpGEMM, "armadillo")),
    EngineEntry("heap", "Heap-based row-merge SpGEMM (related work)",
                "baseline", _baseline_factory(HeapSpGEMM, "heap")),
    EngineEntry("innerproduct", "Vanilla inner-product dataflow (Figure 1)",
                "baseline", _baseline_factory(InnerProductSpGEMM,
                                              "innerproduct")),
)

_BY_NAME = {entry.name: entry for entry in ENGINES}


def list_engines() -> list[str]:
    """Return the registered engine names in presentation order."""
    return [entry.name for entry in ENGINES]


def get_engine_entry(name: str) -> EngineEntry:
    """Look up one engine entry; raises ``KeyError`` with suggestions."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; known engines: "
            f"{', '.join(list_engines())}"
        ) from None


def create_engine(name: str, **kwargs) -> Engine:
    """Build a fresh engine by registry name.

    Keyword arguments are forwarded to the factory: ``config=`` for the
    sparch simulator, the baseline constructor arguments (``engine=``
    backend, platform/model parameters) for the baselines.
    """
    return get_engine_entry(name).factory(**kwargs)


def resolve_engine(engine: Engine | str) -> Engine:
    """Return ``engine`` itself, or build it from a registry name."""
    if isinstance(engine, Engine):
        return engine
    return create_engine(engine)
