"""The :class:`Engine` protocol: one interface over every SpGEMM executor.

An *engine* computes ``A · B`` exactly and prices the execution in the
canonical :class:`~repro.metrics.report.CostReport` schema.  The SpArch
simulator and all seven comparison baselines implement it, which is what
lets the experiment runner, the workload pipelines and the sweeps dispatch
any of them *by registry name* instead of branching per result type.

Engines are lightweight, picklable descriptions (a configuration, a
platform model) — safe to ship to worker processes — and the heavyweight
simulator state is constructed per :meth:`run` call.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.formats.csr import CSRMatrix
from repro.metrics.report import CostReport

#: The execution backends every engine understands, proven identical by the
#: differential harnesses: a scalar reference loop, a vectorized fast path,
#: and (for the SpArch core) the bounded-memory streaming backend used at
#: paper scale.  Baselines have no streaming core and map "streaming" to
#: their vectorized path.
BACKENDS = ("scalar", "vectorized", "streaming")


@dataclass
class EngineRun:
    """Outcome of one engine execution.

    Attributes:
        matrix: the exact functional result (every engine is exact).
        report: the execution's canonical cost report.
    """

    matrix: CSRMatrix
    report: CostReport


class Engine(abc.ABC):
    """One SpGEMM executor behind the registry.

    Attributes:
        name: registry id, lowercase ("sparch", "mkl", "outerspace", ...).
        display_name: label used in comparison tables ("SpArch", "MKL").
        kind: ``"simulation"`` (cycle-accurate, cached under ``sim/``) or
            ``"baseline"`` (platform performance model, cached under
            ``baseline/``).
    """

    name: str = "engine"
    display_name: str = "Engine"
    kind: str = "baseline"

    @abc.abstractmethod
    def run(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix | None = None
            ) -> EngineRun:
        """Execute ``A · B`` (``B = A`` by default) and price it."""

    @abc.abstractmethod
    def cache_fields(self) -> dict:
        """Identity of this engine for experiment-cache fingerprinting."""

    @abc.abstractmethod
    def using_backend(self, backend: str) -> "Engine":
        """Return this engine pinned to the given execution backend."""

    @property
    @abc.abstractmethod
    def backend(self) -> str:
        """The execution backend this engine runs on."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
