"""One engine interface and registry over SpArch and every baseline.

* :mod:`repro.engines.base` — the :class:`Engine` protocol (run a SpGEMM,
  return the exact result plus a canonical
  :class:`~repro.metrics.report.CostReport`).
* :mod:`repro.engines.sparch` — the cycle-accurate simulator as an engine.
* :mod:`repro.engines.adapters` — the seven baselines as engines.
* :mod:`repro.engines.registry` — name → factory dispatch
  (:func:`create_engine`, :func:`resolve_engine`, :func:`list_engines`).
"""

from repro.engines.adapters import BaselineEngineAdapter
from repro.engines.base import BACKENDS, Engine, EngineRun
from repro.engines.registry import (
    ENGINES,
    EngineEntry,
    create_engine,
    get_engine_entry,
    list_engines,
    resolve_engine,
)
from repro.engines.sparch import SpArchEngine

__all__ = [
    "Engine",
    "EngineRun",
    "BACKENDS",
    "SpArchEngine",
    "BaselineEngineAdapter",
    "EngineEntry",
    "ENGINES",
    "list_engines",
    "get_engine_entry",
    "create_engine",
    "resolve_engine",
]
