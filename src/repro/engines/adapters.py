"""Baseline simulators as registry engines."""

from __future__ import annotations

from repro.baselines.base import BaselineSummary, SpGEMMBaseline
from repro.engines.base import Engine, EngineRun
from repro.formats.csr import CSRMatrix
from repro.metrics.report import CostReport

#: Registry ids whose baseline display name does not lowercase to them.
#: Kept in sync by ``tests/engines/test_engine_registry.py``, which checks
#: every registered baseline round-trips to its registry id.
_REGISTRY_IDS = {"HeapSpGEMM": "heap"}


class BaselineEngineAdapter(Engine):
    """Any :class:`~repro.baselines.base.SpGEMMBaseline` as an engine.

    Args:
        baseline: the wrapped baseline simulator.
        name: registry id; defaults to the id registered for the
            baseline's display name ("MKL" → "mkl").
    """

    kind = "baseline"

    def __init__(self, baseline: SpGEMMBaseline, *, name: str | None = None
                 ) -> None:
        self._baseline = baseline
        self.name = name or _REGISTRY_IDS.get(baseline.name,
                                              baseline.name.lower())
        self.display_name = baseline.name

    # ------------------------------------------------------------------
    @property
    def baseline(self) -> SpGEMMBaseline:
        """The wrapped baseline simulator."""
        return self._baseline

    @property
    def backend(self) -> str:
        return getattr(self._baseline, "engine", "scalar")

    def using_backend(self, backend: str) -> "BaselineEngineAdapter":
        # The baselines carry no streaming core: their vectorized path is
        # already bounded-memory, so a streaming pin runs vectorized (the
        # two SpArch backends it bridges are proven identical anyway).
        if backend == "streaming":
            backend = "vectorized"
        pinned = self._baseline.using_engine(backend)
        if pinned is self._baseline:
            return self
        return BaselineEngineAdapter(pinned, name=self.name)

    def cache_fields(self) -> dict:
        """Cache identity: the baseline's model identity, backend excluded
        (re-added by the runner only for forced cross-check runs)."""
        return dict(self._baseline.cache_fields())

    # ------------------------------------------------------------------
    def run(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix | None = None
            ) -> EngineRun:
        right = matrix_a if matrix_b is None else matrix_b
        result = self._baseline.multiply(matrix_a, right)
        summary = BaselineSummary.from_result(self._baseline, result)
        report = CostReport.from_baseline_summary(summary, engine=self.name)
        return EngineRun(matrix=result.matrix, report=report)
