"""The SpArch simulator as a registry engine."""

from __future__ import annotations

from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.engines.base import Engine, EngineRun
from repro.formats.csr import CSRMatrix
from repro.metrics.report import CostReport


class SpArchEngine(Engine):
    """Cycle-accurate SpArch simulation behind the :class:`Engine` interface.

    The engine object holds only the configuration (picklable, cheap); a
    fresh :class:`~repro.core.accelerator.SpArch` is built per run unless an
    explicit ``simulator`` instance is pinned (the workload pipelines use
    that to reproduce hand-driven simulator sessions exactly).

    Args:
        config: architectural configuration (Table I by default).
        simulator: explicit simulator instance to reuse across runs; its
            configuration wins over ``config``.
        energy_model: per-event energy model for the report's per-module
            split (paper constants by default).
    """

    name = "sparch"
    display_name = "SpArch"
    kind = "simulation"

    def __init__(self, config: SpArchConfig | None = None, *,
                 simulator: SpArch | None = None,
                 energy_model=None) -> None:
        if simulator is not None:
            config = simulator.config
        self._config = config or SpArchConfig()
        self._simulator = simulator
        self._energy_model = energy_model

    # ------------------------------------------------------------------
    @property
    def config(self) -> SpArchConfig:
        """The architectural configuration simulations run under."""
        return self._config

    @property
    def backend(self) -> str:
        return self._config.engine

    def using_backend(self, backend: str) -> "SpArchEngine":
        """Return this engine pinned to the scalar/vectorized/streaming core."""
        if backend == self._config.engine:
            return self
        return SpArchEngine(self._config.replace(engine=backend),
                            energy_model=self._energy_model)

    def cache_fields(self) -> dict:
        """Cache identity: the configuration (minus the backend) and the
        energy constants.

        The backend fields — engine choice and the streaming chunk sizes —
        are excluded because all cores are proven to produce identical
        statistics; the runner re-adds the engine for forced cross-check
        runs, exactly as it always keyed SpArch points.  The energy
        constants are *included* because the memoised report bakes the
        per-module energy in — two engines differing only in their energy
        model must not share a cache entry.
        """
        import dataclasses

        from repro.analysis.energy import EnergyModel
        from repro.core.config import BACKEND_FIELDS

        payload = dataclasses.asdict(self._config)
        for field in BACKEND_FIELDS:
            payload.pop(field, None)
        constants = (self._energy_model or EnergyModel()).constants
        return {"engine": self.name, "config": payload,
                "energy": dataclasses.asdict(constants)}

    # ------------------------------------------------------------------
    def run(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix | None = None
            ) -> EngineRun:
        simulator = self._simulator or SpArch(self._config)
        right = matrix_a if matrix_b is None else matrix_b
        result = simulator.multiply(matrix_a, right)
        report = CostReport.from_stats(result.stats, config=self._config,
                                       engine=self.name,
                                       energy_model=self._energy_model)
        return EngineRun(matrix=result.matrix, report=report)
