"""The canonical cost schema: one :class:`CostReport` per executed point.

Before this module existed the codebase carried three parallel result
schemas — :class:`~repro.core.stats.SimulationStats` for the SpArch
simulator, :class:`~repro.baselines.base.BaselineSummary` for the seven
comparison baselines, and the per-stage records of
:mod:`repro.workloads.pipeline` — and every consumer (experiment harnesses,
the memoising runner, the workload pipelines, the analysis views) had to
know which one it was holding.  :class:`CostReport` is the single schema
they all translate into:

* **canonical counters** — cycles, modelled runtime, multiplications,
  additions, bookkeeping and comparator operations, output nonzeros;
* **DRAM traffic by category** — the SpArch engines report the full
  per-category split (``matrix_a_read``, ``partial_write``, ...); baseline
  platform models report one ``total`` bucket;
* **per-module energy** — SpArch reports the Figure 13b module split;
  baselines get the uniform per-event accounting of
  :func:`repro.analysis.energy.event_energy` (see DESIGN.md) while their
  headline ``energy_joules`` stays the platform model's runtime × power;
* **derived metrics** — GFLOP/s, operational intensity, bandwidth
  utilisation, energy per FLOP — computed one way for every engine;
* **a lossless ``detail`` payload** — the producing schema's full dict, so
  :meth:`to_stats` / :meth:`to_baseline_summary` reconstruct the native
  object bit for bit and nothing the old schemas recorded is ever dropped.

Reports serialise to JSON (:meth:`to_dict` / :meth:`from_dict`,
:meth:`to_json` / :meth:`from_json`) with an explicit
:data:`SCHEMA_VERSION`; the experiment runner folds that version into its
cache fingerprints, so entries written under an older schema are never
deserialised into the new shape — their keys simply no longer match.
Comparison helpers live in :mod:`repro.metrics.compare`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily inside the converters to keep
    # repro.metrics importable without pulling the whole simulator stack
    from repro.baselines.base import BaselineSummary
    from repro.core.config import SpArchConfig
    from repro.core.stats import SimulationStats

#: Version of the serialised report layout.  Bump on any incompatible
#: change; the experiment runner keys its cache on this number, so old
#: entries invalidate instead of deserialising into the wrong shape.
#: v3: integer op counters (cycles, multiplications, additions, output_nnz,
#: ...) serialise and summarise as ints — earlier layouts floated them in
#: ``summary()``, losing precision past 2**53 on large sweep aggregates.
SCHEMA_VERSION = 3

#: The counter fields that must stay exact integers through every
#: serialisation path (floats lose precision past 2**53, which aggregated
#: corpus sweeps do reach).
_INT_COUNTER_FIELDS = ("cycles", "multiplications", "additions",
                       "bookkeeping_ops", "comparator_ops", "output_nnz")

#: The two point kinds plus the sum of several points.
KINDS = ("simulation", "baseline", "aggregate")


@dataclass
class CostReport:
    """Canonical cost record of one executed SpGEMM point (or a sum of them).

    Attributes:
        engine: registry name of the producing engine ("sparch", "mkl", ...).
        kind: ``"simulation"`` (cycle-accurate SpArch), ``"baseline"``
            (platform performance model) or ``"aggregate"`` (sum of stages).
        backend: execution backend that produced the numbers
            (``"scalar"`` / ``"vectorized"``); informational only — the
            backends are proven to produce identical counters.
        cycles: simulated core cycles (simulation kind; baselines model
            runtime, not cycles, and report 0).
        runtime_seconds: modelled kernel runtime.
        multiplications: scalar multiplications performed.
        additions: scalar additions performed.
        bookkeeping_ops: insert/hash/sort/merge-bookkeeping operations.
        comparator_ops: comparator evaluations (SpArch merge tree).
        output_nnz: stored nonzeros of the functional result.
        traffic: DRAM bytes by category; baselines use one ``"total"`` key.
        energy: per-module dynamic energy in joules (Figure 13b modules for
            SpArch, uniform per-event categories for baselines).
        energy_joules: headline dynamic energy.  For simulation reports this
            equals ``sum(energy.values())``; for baselines it is the
            platform model's runtime × power (the Figure 12 methodology),
            with ``energy`` holding the per-event view alongside.
        clock_hz: simulated clock (simulation kind).
        peak_bandwidth_bytes_per_cycle: peak DRAM bandwidth (simulation
            kind), for the bandwidth-utilisation metric.
        extras: algorithm-specific scalar counters.
        detail: the producing schema's full serialised payload, kept
            verbatim so the native object can be reconstructed exactly.
        schema_version: layout version this report was produced under.
    """

    engine: str = ""
    kind: str = "simulation"
    backend: str = ""
    cycles: int = 0
    runtime_seconds: float = 0.0
    multiplications: int = 0
    additions: int = 0
    bookkeeping_ops: int = 0
    comparator_ops: int = 0
    output_nnz: int = 0
    traffic: dict[str, int] = field(default_factory=dict)
    energy: dict[str, float] = field(default_factory=dict)
    energy_joules: float = 0.0
    clock_hz: float = 0.0
    peak_bandwidth_bytes_per_cycle: float = 0.0
    extras: dict[str, float] = field(default_factory=dict)
    detail: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")

    # ------------------------------------------------------------------
    # Derived metrics (identical formulas for every engine)
    # ------------------------------------------------------------------
    @property
    def flops(self) -> int:
        """Useful floating point operations (multiplications + additions)."""
        return self.multiplications + self.additions

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s of the modelled execution."""
        if self.runtime_seconds <= 0:
            return 0.0
        return self.flops / self.runtime_seconds / 1e9

    @property
    def dram_bytes(self) -> int:
        """Total DRAM traffic in bytes (all categories)."""
        return sum(self.traffic.values())

    @property
    def operational_intensity(self) -> float:
        """FLOPs per DRAM byte actually moved."""
        if self.dram_bytes == 0:
            return 0.0
        return self.flops / self.dram_bytes

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of peak DRAM bandwidth used over the whole execution
        (simulation reports only — requires cycles and a peak figure)."""
        if self.cycles <= 0:
            return 0.0
        peak = self.peak_bandwidth_bytes_per_cycle * self.cycles
        return min(1.0, self.dram_bytes / peak) if peak else 0.0

    @property
    def energy_per_flop(self) -> float:
        """Headline energy per useful FLOP, in joules."""
        if self.flops == 0:
            return 0.0
        return self.energy_joules / self.flops

    def energy_fractions(self) -> dict[str, float]:
        """Each module's share of the per-module energy sum."""
        total = sum(self.energy.values())
        if total <= 0:
            return {name: 0.0 for name in self.energy}
        return {name: value / total for name, value in self.energy.items()}

    # ------------------------------------------------------------------
    # Serialisation (lossless JSON round trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialise every field to a JSON-compatible dict.

        Integer op counters are emitted as Python ints (never floats, never
        numpy scalars): JSON round-trips arbitrary-precision ints exactly,
        while a float representation silently loses precision past 2**53.
        """
        payload = dataclasses.asdict(self)
        for name in _INT_COUNTER_FIELDS:
            payload[name] = int(payload[name])
        payload["traffic"] = {str(k): int(v)
                              for k, v in payload["traffic"].items()}
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CostReport":
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: when the payload was written under a different
                schema version — callers must recompute, never coerce.
        """
        data = dict(payload)
        version = data.get("schema_version", 0)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"cost report schema mismatch: payload version {version}, "
                f"supported version {SCHEMA_VERSION}"
            )
        for name in _INT_COUNTER_FIELDS:
            data[name] = int(data.get(name, 0))
        data["traffic"] = {str(k): int(v)
                           for k, v in data.get("traffic", {}).items()}
        data["energy"] = {str(k): float(v)
                          for k, v in data.get("energy", {}).items()}
        return cls(**data)

    def to_json(self) -> str:
        """Serialise to a JSON string (inverse of :meth:`from_json`)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CostReport":
        """Rebuild a report from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def summary(self) -> dict[str, float | int]:
        """Flat dict of the headline numbers, for tables and ``--json``.

        Op counters stay exact ints (an earlier revision floated them,
        losing precision past 2**53 — which aggregated corpus sweeps reach);
        genuinely continuous metrics stay floats.
        """
        return {
            "cycles": int(self.cycles),
            "runtime_seconds": self.runtime_seconds,
            "gflops": self.gflops,
            "dram_bytes": int(self.dram_bytes),
            "energy_joules": self.energy_joules,
            "energy_per_flop": self.energy_per_flop,
            "operational_intensity": self.operational_intensity,
            "bandwidth_utilization": self.bandwidth_utilization,
            "multiplications": int(self.multiplications),
            "additions": int(self.additions),
            "output_nnz": int(self.output_nnz),
        }

    # ------------------------------------------------------------------
    # Converters from/to the native schemas
    # ------------------------------------------------------------------
    @classmethod
    def from_stats(cls, stats: "SimulationStats", *,
                   config: "SpArchConfig | None" = None,
                   engine: str = "sparch",
                   energy_model=None) -> "CostReport":
        """Build a simulation report from :class:`SimulationStats`.

        Args:
            stats: the simulator's native statistics.
            config: architectural configuration the point ran under —
                needed for the per-module energy split (element widths,
                merge tree depth); Table I by default.
            engine: registry name recorded on the report.
            energy_model: per-event :class:`~repro.analysis.energy.EnergyModel`
                (paper constants by default).
        """
        from repro.analysis.energy import EnergyModel
        from repro.core.config import SpArchConfig

        config = config or SpArchConfig()
        energy_model = energy_model or EnergyModel()
        breakdown = energy_model.breakdown(stats, config)
        return cls(
            engine=engine,
            kind="simulation",
            backend=config.engine,
            cycles=stats.cycles,
            runtime_seconds=stats.runtime_seconds,
            multiplications=stats.multiplications,
            additions=stats.additions,
            bookkeeping_ops=stats.comparator_ops,
            comparator_ops=stats.comparator_ops,
            output_nnz=stats.output_nnz,
            traffic={str(k): int(v)
                     for k, v in stats.traffic.by_category().items()},
            energy=breakdown.by_module(),
            energy_joules=breakdown.total,
            clock_hz=stats.clock_hz,
            peak_bandwidth_bytes_per_cycle=stats.peak_bandwidth_bytes_per_cycle,
            extras={},
            detail=stats.to_dict(),
        )

    def to_stats(self) -> "SimulationStats":
        """Reconstruct the native :class:`SimulationStats` exactly.

        Only valid for ``kind == "simulation"`` reports; the lossless
        ``detail`` payload carries every native field verbatim.
        """
        from repro.core.stats import SimulationStats

        if self.kind != "simulation":
            raise ValueError(
                f"cannot rebuild SimulationStats from a {self.kind!r} report"
            )
        return SimulationStats.from_dict(self.detail)

    @classmethod
    def from_baseline_summary(cls, summary: "BaselineSummary", *,
                              engine: str = "",
                              energy_model=None) -> "CostReport":
        """Build a baseline report from a :class:`BaselineSummary`.

        The headline ``energy_joules`` keeps the platform model's number
        (runtime × dynamic power — the Figure 12 methodology); ``energy``
        additionally carries the uniform per-event accounting so baseline
        points get the same Table III-style view as SpArch (DESIGN.md).
        """
        from repro.analysis.energy import EnergyModel

        energy_model = energy_model or EnergyModel()
        return cls(
            engine=engine or summary.baseline.lower(),
            kind="baseline",
            backend=summary.engine,
            cycles=0,
            runtime_seconds=summary.runtime_seconds,
            multiplications=summary.multiplications,
            additions=summary.additions,
            bookkeeping_ops=summary.bookkeeping_ops,
            comparator_ops=0,
            output_nnz=summary.result_nnz,
            traffic={"total": int(summary.traffic_bytes)},
            energy=energy_model.event_energy(
                multiplications=summary.multiplications,
                additions=summary.additions,
                bookkeeping_ops=summary.bookkeeping_ops,
                dram_bytes=summary.traffic_bytes,
            ),
            energy_joules=summary.energy_joules,
            extras=dict(summary.extras),
            detail=summary.to_dict(),
        )

    def to_baseline_summary(self) -> "BaselineSummary":
        """Reconstruct the native :class:`BaselineSummary` exactly.

        Only valid for ``kind == "baseline"`` reports.
        """
        from repro.baselines.base import BaselineSummary

        if self.kind != "baseline":
            raise ValueError(
                f"cannot rebuild BaselineSummary from a {self.kind!r} report"
            )
        return BaselineSummary.from_dict(self.detail)

    # ------------------------------------------------------------------
    @classmethod
    def aggregate(cls, reports: "list[CostReport]", *,
                  engine: str = "", extras: dict[str, float] | None = None
                  ) -> "CostReport":
        """Sum several reports into one ``kind="aggregate"`` report.

        Counters, traffic categories and per-module energy add up;
        ``clock_hz`` / peak bandwidth carry over when all parts agree
        (and reset to 0 when they do not, making the derived
        bandwidth-utilisation metric undefined rather than wrong).
        """
        traffic: dict[str, int] = {}
        energy: dict[str, float] = {}
        for report in reports:
            for category, num_bytes in report.traffic.items():
                traffic[category] = traffic.get(category, 0) + int(num_bytes)
            for module, joules in report.energy.items():
                energy[module] = energy.get(module, 0.0) + joules
        clocks = {r.clock_hz for r in reports if r.clock_hz}
        peaks = {r.peak_bandwidth_bytes_per_cycle for r in reports
                 if r.peak_bandwidth_bytes_per_cycle}
        return cls(
            engine=engine or (reports[0].engine if reports else ""),
            kind="aggregate",
            backend=(reports[0].backend if reports else ""),
            cycles=sum(r.cycles for r in reports),
            runtime_seconds=sum(r.runtime_seconds for r in reports),
            multiplications=sum(r.multiplications for r in reports),
            additions=sum(r.additions for r in reports),
            bookkeeping_ops=sum(r.bookkeeping_ops for r in reports),
            comparator_ops=sum(r.comparator_ops for r in reports),
            output_nnz=sum(r.output_nnz for r in reports),
            traffic=traffic,
            energy=energy,
            energy_joules=sum(r.energy_joules for r in reports),
            clock_hz=clocks.pop() if len(clocks) == 1 else 0.0,
            peak_bandwidth_bytes_per_cycle=(peaks.pop() if len(peaks) == 1
                                            else 0.0),
            extras=dict(extras or {}),
            detail={"aggregated": len(reports)},
        )
