"""One canonical cost-model schema from the datapath to the workloads.

* :mod:`repro.metrics.report` — :class:`CostReport`, the schema every
  engine's result translates into: canonical counters, DRAM traffic by
  category, per-module energy, derived GFLOP/s / intensity / utilisation
  metrics, and a lossless JSON round trip versioned by
  :data:`SCHEMA_VERSION`.
* :mod:`repro.metrics.compare` — field-by-field diff/equality helpers used
  by the differential harnesses.
"""

from repro.metrics.compare import (
    assert_reports_equal,
    format_diff,
    report_diff,
    reports_equal,
)
from repro.metrics.report import KINDS, SCHEMA_VERSION, CostReport

__all__ = [
    "CostReport",
    "SCHEMA_VERSION",
    "KINDS",
    "report_diff",
    "reports_equal",
    "format_diff",
    "assert_reports_equal",
]
