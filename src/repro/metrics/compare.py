"""Comparison and diff helpers over :class:`~repro.metrics.report.CostReport`.

The differential harnesses (pre/post refactor identity, scalar vs
vectorized cross-checks, cached vs fresh replays) all reduce to the same
question: *do two cost reports describe the same execution?*  These helpers
answer it field by field, with an optional relative tolerance for the
floating-point fields, and render a human-readable discrepancy list when
they do not.
"""

from __future__ import annotations

import math

from repro.metrics.report import CostReport

#: Fields compared exactly (integers and identity strings).
EXACT_FIELDS = ("kind", "cycles", "multiplications", "additions",
                "bookkeeping_ops", "comparator_ops", "output_nnz")

#: Fields compared within the relative tolerance.
FLOAT_FIELDS = ("runtime_seconds", "energy_joules")


def _close(a: float, b: float, rel_tol: float) -> bool:
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=0.0)


def report_diff(left: CostReport, right: CostReport, *,
                rel_tol: float = 0.0,
                compare_identity: bool = False) -> dict[str, tuple]:
    """Field-by-field differences between two reports.

    Args:
        left: first report.
        right: second report.
        rel_tol: relative tolerance applied to the float fields, the
            traffic byte counts and the per-module energy (0 = exact).
        compare_identity: also compare the ``engine`` / ``backend`` labels
            (off by default — the usual question is whether two *paths*
            produced the same numbers, not whether the labels match).

    Returns:
        ``{field: (left_value, right_value)}`` for every differing field;
        empty when the reports agree.
    """
    diffs: dict[str, tuple] = {}
    identity = ("engine", "backend") if compare_identity else ()
    for name in identity + EXACT_FIELDS:
        if getattr(left, name) != getattr(right, name):
            diffs[name] = (getattr(left, name), getattr(right, name))
    for name in FLOAT_FIELDS:
        if not _close(getattr(left, name), getattr(right, name), rel_tol):
            diffs[name] = (getattr(left, name), getattr(right, name))
    for category in sorted(set(left.traffic) | set(right.traffic)):
        ours, theirs = left.traffic.get(category, 0), right.traffic.get(category, 0)
        if not _close(ours, theirs, rel_tol):
            diffs[f"traffic[{category}]"] = (ours, theirs)
    for module in sorted(set(left.energy) | set(right.energy)):
        ours, theirs = left.energy.get(module, 0.0), right.energy.get(module, 0.0)
        if not _close(ours, theirs, rel_tol):
            diffs[f"energy[{module}]"] = (ours, theirs)
    for key in sorted(set(left.extras) | set(right.extras)):
        ours, theirs = left.extras.get(key), right.extras.get(key)
        if ours != theirs and not (
                isinstance(ours, float) and isinstance(theirs, float)
                and _close(ours, theirs, rel_tol)):
            diffs[f"extras[{key}]"] = (ours, theirs)
    return diffs


def reports_equal(left: CostReport, right: CostReport, *,
                  rel_tol: float = 0.0) -> bool:
    """True when :func:`report_diff` finds no differences."""
    return not report_diff(left, right, rel_tol=rel_tol)


def format_diff(diffs: dict[str, tuple]) -> str:
    """Render a :func:`report_diff` result as one line per discrepancy."""
    if not diffs:
        return "reports agree"
    lines = [f"  {field}: {ours!r} != {theirs!r}"
             for field, (ours, theirs) in sorted(diffs.items())]
    return "\n".join([f"{len(diffs)} field(s) differ:"] + lines)


def assert_reports_equal(left: CostReport, right: CostReport, *,
                         rel_tol: float = 0.0) -> None:
    """Raise ``AssertionError`` with the rendered diff when reports differ."""
    diffs = report_diff(left, right, rel_tol=rel_tol)
    assert not diffs, format_diff(diffs)
