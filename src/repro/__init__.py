"""SpArch reproduction: an outer-product SpGEMM accelerator simulator.

This package reproduces *SpArch: Efficient Architecture for Sparse Matrix
Multiplication* (Zhang, Wang, Han, Dally — HPCA 2020).  The public surface
is intentionally small:

* :class:`repro.core.SpArch` / :func:`repro.core.multiply` — simulate a
  generalized sparse matrix-matrix multiplication on the accelerator and get
  back the exact result plus DRAM-traffic / cycle / energy statistics.
* :class:`repro.core.SpArchConfig` — the Table I architectural configuration
  with ablation switches for the paper's four techniques.
* :mod:`repro.formats` — COO/CSR/CSC containers and the condensed view.
* :mod:`repro.matrices` — synthetic workloads (benchmark-suite proxies, rMAT).
* :mod:`repro.baselines` — OuterSPACE, MKL-, cuSPARSE-, CUSP- and
  Armadillo-class baselines used by the paper's comparisons.
* :mod:`repro.metrics` — the canonical :class:`~repro.metrics.CostReport`
  cost schema every engine's result translates into.
* :mod:`repro.engines` — the :class:`~repro.engines.Engine` protocol and
  registry dispatching SpArch and every baseline by name.
* :mod:`repro.analysis` — energy, area, roofline and analytical DRAM models.
* :mod:`repro.corpus` / :mod:`repro.sweeps` — frozen scenario corpora and
  sharded, resumable sweeps over them with an append-only result store.
* :mod:`repro.experiments` — one runnable module per paper table/figure.
"""

from repro.core.accelerator import SpArch, multiply
from repro.core.config import SpArchConfig
from repro.core.stats import SimulationStats, SpGEMMResult
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.metrics.report import CostReport

__version__ = "1.1.0"

__all__ = [
    "SpArch",
    "multiply",
    "SpArchConfig",
    "SimulationStats",
    "SpGEMMResult",
    "CostReport",
    "COOMatrix",
    "CSRMatrix",
    "__version__",
]
