"""Recursive-MATrix (rMAT) graph generator.

The paper's Figure 14 sweeps synthetic rMAT matrices named ``rmat-<rows>-x<d>``
where ``<rows>`` is the dimension (5k/10k/20k/40k/80k) and ``<d>`` the average
number of nonzeros per row (4/8/16/32).  rMAT [Chakrabarti et al., 2004; used
by Graph500] recursively subdivides the adjacency matrix into quadrants with
probabilities ``(a, b, c, d)``; the skew between quadrants yields the heavy
power-law degree distribution that makes SpGEMM irregular.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr
from repro.formats.csr import CSRMatrix
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class RMATConfig:
    """Parameters of an rMAT matrix.

    Attributes:
        num_rows: matrix dimension (the matrix is square).
        edge_factor: target average nonzeros per row.
        a, b, c, d: quadrant probabilities, must sum to 1.  The Graph500
            defaults (0.57, 0.19, 0.19, 0.05) are used by the paper's
            benchmark generator.
        seed: RNG seed for reproducible generation.
    """

    num_rows: int
    edge_factor: int
    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    d: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.num_rows, "num_rows")
        check_positive_int(self.edge_factor, "edge_factor")
        total = self.a + self.b + self.c + self.d
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"quadrant probabilities must sum to 1, got {total}")
        if min(self.a, self.b, self.c, self.d) < 0:
            raise ValueError("quadrant probabilities must be non-negative")

    @property
    def num_edges(self) -> int:
        """Number of directed edges generated before deduplication."""
        return self.num_rows * self.edge_factor

    @property
    def density(self) -> float:
        """Approximate density of the generated matrix."""
        return self.edge_factor / self.num_rows


def rmat_benchmark_name(num_rows: int, edge_factor: int) -> str:
    """Return the paper's naming convention, e.g. ``rmat-5k-x32``."""
    if num_rows % 1000 == 0:
        size = f"{num_rows // 1000}k"
    else:
        size = str(num_rows)
    return f"rmat-{size}-x{edge_factor}"


def generate_rmat(config: RMATConfig) -> CSRMatrix:
    """Generate an rMAT adjacency matrix as a :class:`CSRMatrix`.

    Edge endpoints are drawn bit-by-bit: at each of ``ceil(log2(n))`` levels a
    quadrant is chosen with probabilities ``(a, b, c, d)``, setting one bit of
    the row and column index.  Duplicate edges are merged (values summed),
    which slightly reduces the realised edge factor for dense configurations —
    the same behaviour as the Graph500 reference generator.
    """
    rng = np.random.default_rng(config.seed)
    levels = max(1, int(np.ceil(np.log2(config.num_rows))))
    num_edges = config.num_edges

    rows = np.zeros(num_edges, dtype=np.int64)
    cols = np.zeros(num_edges, dtype=np.int64)
    # Probability that the row bit is 1 is c + d; given the row bit, the
    # column bit distribution follows from the quadrant probabilities.
    prob_row1 = config.c + config.d
    prob_col1_given_row0 = config.b / (config.a + config.b) if config.a + config.b else 0.0
    prob_col1_given_row1 = config.d / (config.c + config.d) if config.c + config.d else 0.0

    for level in range(levels):
        row_bit = rng.random(num_edges) < prob_row1
        col_prob = np.where(row_bit, prob_col1_given_row1, prob_col1_given_row0)
        col_bit = rng.random(num_edges) < col_prob
        rows = (rows << 1) | row_bit.astype(np.int64)
        cols = (cols << 1) | col_bit.astype(np.int64)

    # Fold indices that exceed the requested dimension back into range (the
    # dimension need not be a power of two, e.g. 5k/10k/20k in the paper).
    rows %= config.num_rows
    cols %= config.num_rows
    vals = rng.standard_normal(num_edges)
    # Avoid exact zeros so nnz is not silently reduced by canonicalisation.
    vals[vals == 0.0] = 1.0
    coo = COOMatrix(rows, cols, vals, (config.num_rows, config.num_rows))
    return coo_to_csr(coo)
