"""The paper's 20-matrix benchmark suite, regenerated as synthetic proxies.

The paper (Figure 11/12) evaluates on 20 matrices from SuiteSparse [27] and
SNAP [28].  Without network access, we cannot download the originals, so each
matrix is replaced by a synthetic proxy matching its published dimension,
nonzero count, and structural family.  The proxies are generated at a
configurable *scale* (fraction of the original dimension) because a pure
Python simulator cannot sweep matrices with millions of rows in reasonable
time; the average row length (and hence condensed column count, partial
matrix count and reuse distances) is preserved at every scale.

Like the paper (and OuterSPACE before it), the evaluated kernel is ``C = A·A``
for square matrices and ``C = A·Aᵀ`` for rectangular ones.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.formats.csr import CSRMatrix
from repro.matrices.synthetic import (
    banded_matrix,
    bipartite_matrix,
    powerlaw_matrix,
    random_matrix,
    road_network_matrix,
)

#: Structural families used to pick a generator for each proxy.
FAMILIES = ("fem", "powerlaw", "road", "bipartite", "random")


@dataclass(frozen=True)
class BenchmarkSpec:
    """Published statistics of one benchmark matrix.

    Attributes:
        name: SuiteSparse / SNAP matrix name.
        num_rows: published row count.
        num_cols: published column count.
        nnz: published nonzero count.
        family: structural family used to choose the synthetic generator.
        description: one-line description of the original matrix.
    """

    name: str
    num_rows: int
    num_cols: int
    nnz: int
    family: str
    description: str

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"unknown family {self.family!r}")

    @property
    def avg_row_nnz(self) -> float:
        """Average nonzeros per row of the original matrix."""
        return self.nnz / self.num_rows

    @property
    def density(self) -> float:
        """Density of the original matrix."""
        return self.nnz / (self.num_rows * self.num_cols)


#: The 20 matrices of Figure 11/12 with their published sizes.
SUITE: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("2cubes_sphere", 101_492, 101_492, 1_647_264, "fem",
                  "Electromagnetics FEM, two cubes in a sphere"),
    BenchmarkSpec("amazon0312", 400_727, 400_727, 3_200_440, "powerlaw",
                  "Amazon product co-purchasing network (SNAP)"),
    BenchmarkSpec("ca-CondMat", 23_133, 23_133, 186_936, "powerlaw",
                  "Condensed-matter collaboration network (SNAP)"),
    BenchmarkSpec("cage12", 130_228, 130_228, 2_032_536, "fem",
                  "DNA electrophoresis transition matrix"),
    BenchmarkSpec("cit-Patents", 3_774_768, 3_774_768, 16_518_948, "powerlaw",
                  "US patent citation graph (SNAP)"),
    BenchmarkSpec("cop20k_A", 121_192, 121_192, 2_624_331, "fem",
                  "Accelerator cavity design FEM"),
    BenchmarkSpec("email-Enron", 36_692, 36_692, 367_662, "powerlaw",
                  "Enron email communication network (SNAP)"),
    BenchmarkSpec("facebook", 4_039, 4_039, 176_468, "powerlaw",
                  "Facebook combined ego networks (SNAP)"),
    BenchmarkSpec("filter3D", 106_437, 106_437, 2_707_179, "fem",
                  "3-D optical filter FEM"),
    BenchmarkSpec("m133-b3", 200_200, 200_200, 800_800, "bipartite",
                  "Simplicial complex boundary map"),
    BenchmarkSpec("mario002", 389_874, 389_874, 2_101_242, "fem",
                  "2-D linear elasticity mesh"),
    BenchmarkSpec("offshore", 259_789, 259_789, 4_242_673, "fem",
                  "Transient field diffusion FEM, offshore structure"),
    BenchmarkSpec("p2p-Gnutella31", 62_586, 62_586, 147_892, "powerlaw",
                  "Gnutella peer-to-peer network (SNAP)"),
    BenchmarkSpec("patents_main", 240_547, 240_547, 560_943, "powerlaw",
                  "Main component of the patent citation graph"),
    BenchmarkSpec("poisson3Da", 13_514, 13_514, 352_762, "fem",
                  "3-D Poisson problem FEM"),
    BenchmarkSpec("roadNet-CA", 1_971_281, 1_971_281, 5_533_214, "road",
                  "California road network (SNAP)"),
    BenchmarkSpec("scircuit", 170_998, 170_998, 958_936, "road",
                  "Integrated circuit simulation matrix"),
    BenchmarkSpec("web-Google", 916_428, 916_428, 5_105_039, "powerlaw",
                  "Google web graph (SNAP)"),
    BenchmarkSpec("webbase-1M", 1_000_005, 1_000_005, 3_105_536, "powerlaw",
                  "Web connectivity matrix, 1M-page crawl"),
    BenchmarkSpec("wiki-Vote", 8_297, 8_297, 103_689, "powerlaw",
                  "Wikipedia adminship vote network (SNAP)"),
)

_SUITE_BY_NAME = {spec.name: spec for spec in SUITE}

#: Default dimension cap for proxies so that the pure-Python simulator can
#: sweep the full suite in seconds.  Experiments may raise it.
DEFAULT_MAX_ROWS = 2_000


def benchmark_names() -> list[str]:
    """Return the names of all 20 benchmark matrices in paper order."""
    return [spec.name for spec in SUITE]


def get_benchmark_spec(name: str) -> BenchmarkSpec:
    """Look up the published statistics of benchmark ``name``."""
    try:
        return _SUITE_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(benchmark_names())}"
        ) from None


def proxy_dimensions(spec: BenchmarkSpec, *, max_rows: int = DEFAULT_MAX_ROWS
                     ) -> tuple[int, int, float]:
    """Return ``(rows, cols, avg_row_nnz)`` of the scaled synthetic proxy.

    The row count is capped at ``max_rows`` while the average row length of
    the original matrix is preserved, because the quantities SpArch's results
    depend on (condensed-column count, partial-matrix sizes, reuse distance
    relative to buffer capacity) are functions of row length, not of the raw
    dimension.
    """
    scale = min(1.0, max_rows / spec.num_rows)
    rows = max(64, int(round(spec.num_rows * scale)))
    cols = max(64, int(round(spec.num_cols * scale)))
    return rows, cols, spec.avg_row_nnz


def load_benchmark(name: str, *, max_rows: int = DEFAULT_MAX_ROWS,
                   seed: int | None = None) -> CSRMatrix:
    """Generate the synthetic proxy for benchmark ``name``.

    Args:
        name: one of :func:`benchmark_names`.
        max_rows: dimension cap applied by :func:`proxy_dimensions`.
        seed: RNG seed; defaults to a per-benchmark stable seed so repeated
            runs of the harness see identical matrices.
    """
    spec = get_benchmark_spec(name)
    rows, cols, avg_row_nnz = proxy_dimensions(spec, max_rows=max_rows)
    if seed is None:
        seed = zlib.crc32(name.encode("utf-8")) % (2**31)
    if spec.family == "fem":
        return banded_matrix(rows, avg_row_nnz, seed=seed)
    if spec.family == "powerlaw":
        return powerlaw_matrix(rows, avg_row_nnz, seed=seed)
    if spec.family == "road":
        return road_network_matrix(rows, seed=seed)
    if spec.family == "bipartite":
        return bipartite_matrix(rows, cols, avg_row_nnz, seed=seed)
    return random_matrix(rows, cols, int(rows * avg_row_nnz), seed=seed)


def load_suite(*, max_rows: int = DEFAULT_MAX_ROWS,
               names: list[str] | None = None) -> dict[str, CSRMatrix]:
    """Generate proxies for every benchmark (or the subset ``names``)."""
    selected = names if names is not None else benchmark_names()
    return {name: load_benchmark(name, max_rows=max_rows) for name in selected}
