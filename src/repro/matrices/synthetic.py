"""Synthetic sparse matrix generators for the benchmark-suite proxies.

Each generator produces a structural *family* found in the paper's 20-matrix
suite:

* :func:`banded_matrix` — FEM / PDE meshes (2cubes_sphere, filter3D, offshore,
  poisson3Da, cop20k_A): nonzeros cluster near the diagonal.
* :func:`powerlaw_matrix` — web / social / citation graphs (web-Google,
  wiki-Vote, cit-Patents, email-Enron): heavy-tailed degree distribution.
* :func:`road_network_matrix` — road networks (roadNet-CA, patents_main in
  spirit): near-constant small degree, local connectivity.
* :func:`bipartite_matrix` — rectangular relation matrices (m133-b3).
* :func:`random_matrix` — uniform Erdős–Rényi style fill, the control case.
* :func:`diagonal_matrix` — degenerate case used by tests.

All generators return :class:`repro.formats.csr.CSRMatrix` and accept a seed
so that experiments are reproducible run to run.
"""

from __future__ import annotations

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr
from repro.formats.csr import CSRMatrix
from repro.matrices.rmat import RMATConfig, generate_rmat
from repro.utils.validation import check_nonnegative_int, check_positive_int


def _finalize(rows: np.ndarray, cols: np.ndarray, shape: tuple[int, int],
              rng: np.random.Generator) -> CSRMatrix:
    """Attach random nonzero values and convert to canonical CSR."""
    vals = rng.standard_normal(len(rows))
    vals[vals == 0.0] = 1.0
    return coo_to_csr(COOMatrix(rows, cols, vals, shape))


def random_matrix(num_rows: int, num_cols: int, nnz: int, *,
                  seed: int = 0) -> CSRMatrix:
    """Uniformly random sparse matrix with approximately ``nnz`` nonzeros.

    Duplicate coordinates are merged, so the realised nnz can be slightly
    smaller than requested for dense configurations.
    """
    check_positive_int(num_rows, "num_rows")
    check_positive_int(num_cols, "num_cols")
    check_nonnegative_int(nnz, "nnz")
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, num_rows, size=nnz)
    cols = rng.integers(0, num_cols, size=nnz)
    return _finalize(rows, cols, (num_rows, num_cols), rng)


def diagonal_matrix(num_rows: int, *, value: float = 1.0) -> CSRMatrix:
    """Identity-like diagonal matrix, useful as a degenerate test case."""
    check_positive_int(num_rows, "num_rows")
    indptr = np.arange(num_rows + 1, dtype=np.int64)
    indices = np.arange(num_rows, dtype=np.int64)
    data = np.full(num_rows, float(value))
    return CSRMatrix(indptr, indices, data, (num_rows, num_rows))


def banded_matrix(num_rows: int, avg_row_nnz: float, *, bandwidth: int | None = None,
                  seed: int = 0) -> CSRMatrix:
    """Mesh-like matrix: nonzeros fall within a band around the diagonal.

    FEM matrices have each row coupled to a handful of geometric neighbours;
    a random selection within a band reproduces the short row-reuse distances
    that make these matrices prefetcher-friendly.
    """
    check_positive_int(num_rows, "num_rows")
    if avg_row_nnz <= 0:
        raise ValueError(f"avg_row_nnz must be positive, got {avg_row_nnz}")
    rng = np.random.default_rng(seed)
    if bandwidth is None:
        bandwidth = max(4, int(4 * avg_row_nnz))
    bandwidth = min(bandwidth, num_rows)

    row_lengths = rng.poisson(avg_row_nnz - 1, size=num_rows) + 1
    row_lengths = np.minimum(row_lengths, bandwidth)
    rows = np.repeat(np.arange(num_rows, dtype=np.int64), row_lengths)
    offsets = rng.integers(-(bandwidth // 2), bandwidth // 2 + 1, size=len(rows))
    cols = np.clip(rows + offsets, 0, num_rows - 1)
    # Guarantee the diagonal is present: FEM stiffness matrices always have it.
    diag = np.arange(num_rows, dtype=np.int64)
    rows = np.concatenate([rows, diag])
    cols = np.concatenate([cols, diag])
    return _finalize(rows, cols, (num_rows, num_rows), rng)


def powerlaw_matrix(num_rows: int, avg_row_nnz: float, *, skew: float = 0.57,
                    seed: int = 0) -> CSRMatrix:
    """Power-law graph adjacency matrix built on the rMAT generator.

    Args:
        num_rows: matrix dimension.
        avg_row_nnz: target average nonzeros per row.
        skew: probability mass of the top-left rMAT quadrant; larger values
            give heavier-tailed degree distributions.
        seed: RNG seed.
    """
    check_positive_int(num_rows, "num_rows")
    if avg_row_nnz <= 0:
        raise ValueError(f"avg_row_nnz must be positive, got {avg_row_nnz}")
    remaining = 1.0 - skew
    config = RMATConfig(
        num_rows=num_rows,
        edge_factor=max(1, int(round(avg_row_nnz))),
        a=skew,
        b=remaining * 0.4,
        c=remaining * 0.4,
        d=remaining * 0.2,
        seed=seed,
    )
    return generate_rmat(config)


def road_network_matrix(num_rows: int, *, extra_edge_fraction: float = 0.2,
                        seed: int = 0) -> CSRMatrix:
    """Road-network-like matrix: a 2-D grid graph plus a few shortcut edges.

    Road networks have average degree ≈ 2.8 and strong locality; a square
    grid with a sprinkle of random shortcuts reproduces both properties.
    """
    check_positive_int(num_rows, "num_rows")
    if not 0.0 <= extra_edge_fraction <= 1.0:
        raise ValueError("extra_edge_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    side = max(2, int(np.sqrt(num_rows)))
    ids = np.arange(num_rows, dtype=np.int64)
    x = ids % side
    y = ids // side

    edges_r: list[np.ndarray] = []
    edges_c: list[np.ndarray] = []
    # Right neighbours.
    mask = (x + 1 < side) & (ids + 1 < num_rows)
    edges_r.append(ids[mask])
    edges_c.append(ids[mask] + 1)
    # Down neighbours.
    mask = ids + side < num_rows
    edges_r.append(ids[mask])
    edges_c.append(ids[mask] + side)
    rows = np.concatenate(edges_r)
    cols = np.concatenate(edges_c)
    # Symmetrise.
    rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
    # Random shortcut edges (highways).
    num_extra = int(extra_edge_fraction * num_rows)
    if num_extra:
        extra_r = rng.integers(0, num_rows, size=num_extra)
        extra_c = rng.integers(0, num_rows, size=num_extra)
        rows = np.concatenate([rows, extra_r, extra_c])
        cols = np.concatenate([cols, extra_c, extra_r])
    return _finalize(rows, cols, (num_rows, num_rows), rng)


def bipartite_matrix(num_rows: int, num_cols: int, avg_row_nnz: float, *,
                     seed: int = 0) -> CSRMatrix:
    """Rectangular relation matrix with uniform random column choices per row."""
    check_positive_int(num_rows, "num_rows")
    check_positive_int(num_cols, "num_cols")
    if avg_row_nnz <= 0:
        raise ValueError(f"avg_row_nnz must be positive, got {avg_row_nnz}")
    rng = np.random.default_rng(seed)
    row_lengths = rng.poisson(avg_row_nnz - 1, size=num_rows) + 1
    rows = np.repeat(np.arange(num_rows, dtype=np.int64), row_lengths)
    cols = rng.integers(0, num_cols, size=len(rows))
    return _finalize(rows, cols, (num_rows, num_cols), rng)
