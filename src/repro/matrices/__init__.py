"""Workload generation: synthetic sparse matrices and the benchmark suite.

The paper evaluates SpArch on 20 real-world matrices from SuiteSparse and
SNAP plus synthetic rMAT matrices.  This environment has no network access,
so the real matrices are replaced by synthetic proxies that match each
matrix's published dimension, nonzero count, and structural family (see
DESIGN.md §3 for the substitution rationale).
"""

from repro.matrices.rmat import RMATConfig, generate_rmat, rmat_benchmark_name
from repro.matrices.synthetic import (
    banded_matrix,
    bipartite_matrix,
    diagonal_matrix,
    powerlaw_matrix,
    random_matrix,
    road_network_matrix,
)
from repro.matrices.suite import (
    BenchmarkSpec,
    SUITE,
    benchmark_names,
    get_benchmark_spec,
    load_benchmark,
    load_suite,
)

__all__ = [
    "RMATConfig",
    "generate_rmat",
    "rmat_benchmark_name",
    "banded_matrix",
    "bipartite_matrix",
    "diagonal_matrix",
    "powerlaw_matrix",
    "random_matrix",
    "road_network_matrix",
    "BenchmarkSpec",
    "SUITE",
    "benchmark_names",
    "get_benchmark_spec",
    "load_benchmark",
    "load_suite",
]
