"""DRAM traffic accounting.

Every byte moved to or from HBM is charged to a :class:`TrafficCategory`.
The categories mirror the paper's breakdown analysis (§III-C): input operand
reads, partial-matrix spills/reloads, and final-result writes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TrafficCategory(enum.Enum):
    """Why a DRAM transfer happened."""

    MATRIX_A_READ = "matrix_a_read"
    MATRIX_B_READ = "matrix_b_read"
    PARTIAL_WRITE = "partial_write"
    PARTIAL_READ = "partial_read"
    RESULT_WRITE = "result_write"

    def is_read(self) -> bool:
        """True for read categories, False for writes."""
        return self in (TrafficCategory.MATRIX_A_READ,
                        TrafficCategory.MATRIX_B_READ,
                        TrafficCategory.PARTIAL_READ)


@dataclass
class TrafficCounter:
    """Byte counters per traffic category."""

    bytes_by_category: dict[TrafficCategory, int] = field(
        default_factory=lambda: {category: 0 for category in TrafficCategory}
    )

    def add(self, category: TrafficCategory, num_bytes: int) -> None:
        """Charge ``num_bytes`` to ``category``."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        self.bytes_by_category[category] += int(num_bytes)

    # ------------------------------------------------------------------
    @property
    def read_bytes(self) -> int:
        """Total bytes read from DRAM."""
        return sum(v for k, v in self.bytes_by_category.items() if k.is_read())

    @property
    def write_bytes(self) -> int:
        """Total bytes written to DRAM."""
        return sum(v for k, v in self.bytes_by_category.items() if not k.is_read())

    @property
    def total_bytes(self) -> int:
        """Total DRAM traffic in bytes."""
        return self.read_bytes + self.write_bytes

    @property
    def partial_matrix_bytes(self) -> int:
        """Traffic spent on partially merged results (spill + reload)."""
        return (self.bytes_by_category[TrafficCategory.PARTIAL_WRITE]
                + self.bytes_by_category[TrafficCategory.PARTIAL_READ])

    @property
    def input_bytes(self) -> int:
        """Traffic spent reading the two input operands."""
        return (self.bytes_by_category[TrafficCategory.MATRIX_A_READ]
                + self.bytes_by_category[TrafficCategory.MATRIX_B_READ])

    def by_category(self) -> dict[str, int]:
        """Return a plain ``{category name: bytes}`` dict for reporting."""
        return {category.value: count
                for category, count in self.bytes_by_category.items()}

    def merge(self, other: "TrafficCounter") -> "TrafficCounter":
        """Return a new counter with the sums of both operands."""
        merged = TrafficCounter()
        for category in TrafficCategory:
            merged.bytes_by_category[category] = (
                self.bytes_by_category[category] + other.bytes_by_category[category]
            )
        return merged

    def __repr__(self) -> str:
        return (f"TrafficCounter(total={self.total_bytes}, "
                f"read={self.read_bytes}, write={self.write_bytes})")
