"""High Bandwidth Memory model (Table I).

SpArch uses 16 × 64-bit HBM channels, each providing 8 GB/s, for an aggregate
128 GB/s at a 1 GHz core clock — i.e. 128 bytes per core cycle across all
channels.  The model converts byte counts into memory cycles, applies an
efficiency factor for access-pattern overheads, and reports the achieved
bandwidth utilisation that Table II compares against OuterSPACE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class HBMConfig:
    """HBM configuration.

    Attributes:
        num_channels: independent channels (16 in Table I).
        bytes_per_second_per_channel: per-channel bandwidth (8 GB/s).
        clock_hz: accelerator core clock used to convert to bytes/cycle.
        read_efficiency: fraction of the peak usable by the observed read
            pattern (row activations, refresh, open-page misses).
        write_efficiency: same for writes; the streaming write pattern of the
            merge-tree output is very regular, so it defaults higher.
    """

    num_channels: int = 16
    bytes_per_second_per_channel: float = 8e9
    clock_hz: float = 1e9
    read_efficiency: float = 0.80
    write_efficiency: float = 0.90

    def __post_init__(self) -> None:
        check_positive_int(self.num_channels, "num_channels")
        if self.bytes_per_second_per_channel <= 0:
            raise ValueError("bytes_per_second_per_channel must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        for name, value in (("read_efficiency", self.read_efficiency),
                            ("write_efficiency", self.write_efficiency)):
            if not 0 < value <= 1:
                raise ValueError(f"{name} must be in (0, 1], got {value}")

    @property
    def total_bandwidth_bytes_per_second(self) -> float:
        """Aggregate peak bandwidth across all channels."""
        return self.num_channels * self.bytes_per_second_per_channel

    @property
    def bytes_per_cycle(self) -> float:
        """Peak bytes transferred per core clock cycle."""
        return self.total_bandwidth_bytes_per_second / self.clock_hz


class HBMModel:
    """Converts DRAM byte counts into cycle counts and utilisation figures."""

    def __init__(self, config: HBMConfig | None = None) -> None:
        self._config = config or HBMConfig()
        self._read_bytes = 0
        self._write_bytes = 0

    @property
    def config(self) -> HBMConfig:
        return self._config

    @property
    def read_bytes(self) -> int:
        return self._read_bytes

    @property
    def write_bytes(self) -> int:
        return self._write_bytes

    @property
    def total_bytes(self) -> int:
        return self._read_bytes + self._write_bytes

    # ------------------------------------------------------------------
    def record_read(self, num_bytes: int) -> None:
        """Account ``num_bytes`` of DRAM reads."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self._read_bytes += int(num_bytes)

    def record_write(self, num_bytes: int) -> None:
        """Account ``num_bytes`` of DRAM writes."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self._write_bytes += int(num_bytes)

    # ------------------------------------------------------------------
    def transfer_cycles(self, num_bytes: int, *, is_read: bool = True) -> int:
        """Core cycles to move ``num_bytes`` at the effective bandwidth."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0
        efficiency = (self._config.read_efficiency if is_read
                      else self._config.write_efficiency)
        effective = self._config.bytes_per_cycle * efficiency
        return max(1, int(round(num_bytes / effective)))

    def memory_cycles(self, read_bytes: int, write_bytes: int) -> int:
        """Cycles for a phase moving ``read_bytes`` + ``write_bytes``.

        Reads and writes share the channel bandwidth, so the cycle count is
        the sum of both directions at their respective efficiencies.
        """
        return (self.transfer_cycles(read_bytes, is_read=True)
                + self.transfer_cycles(write_bytes, is_read=False))

    def bandwidth_utilization(self, total_bytes: int, cycles: int) -> float:
        """Achieved fraction of peak bandwidth over ``cycles`` core cycles."""
        if cycles <= 0:
            return 0.0
        peak = self._config.bytes_per_cycle * cycles
        return min(1.0, total_bytes / peak) if peak else 0.0

    def runtime_seconds(self, cycles: int) -> float:
        """Convert a cycle count to wall-clock seconds at the core clock."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        return cycles / self._config.clock_hz

    def __repr__(self) -> str:
        return (f"HBMModel(channels={self._config.num_channels}, "
                f"peak={self._config.total_bandwidth_bytes_per_second / 1e9:.0f} GB/s)")
