"""Memory system models: HBM channels, DRAM traffic accounting, row buffer.

SpArch's performance is memory-bandwidth bound (the roofline of Fig. 15), so
the single most important quantity the simulator tracks is the number of
DRAM bytes moved, broken down by purpose (left matrix, right matrix,
partially merged results, final output).  The HBM model converts byte counts
into cycle counts given the per-channel bandwidth of Table I.
"""

from repro.memory.buffer import BufferLine, RowBuffer
from repro.memory.channels import (
    ChannelStats,
    HBMChannelModel,
    MemoryTransaction,
    csr_row_addresses,
)
from repro.memory.hbm import HBMConfig, HBMModel
from repro.memory.traffic import TrafficCategory, TrafficCounter

__all__ = [
    "BufferLine",
    "RowBuffer",
    "ChannelStats",
    "HBMChannelModel",
    "MemoryTransaction",
    "csr_row_addresses",
    "HBMConfig",
    "HBMModel",
    "TrafficCategory",
    "TrafficCounter",
]
