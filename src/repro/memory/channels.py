"""Multi-channel HBM model with per-channel data fetchers (§II-D).

The prefetcher "uses a data fetcher for each DRAM channel; accesses to
different DRAM channels and banks are overlapped, thus the DRAM latency can
be hidden".  The aggregate-bandwidth model in :mod:`repro.memory.hbm` is
what the performance experiments use (SpArch is bandwidth-bound, so the sum
of bytes is what matters); this module adds the channel-level view needed to
check that assumption: transactions are interleaved across channels at a
fixed address granularity, each channel serialises its own queue, and the
completion time is set by the most-loaded channel.

A well-interleaved access stream keeps the load imbalance near 1.0, which is
what lets the aggregate model stand in for the channel model; the tests and
the channel-balance experiment quantify that for the benchmark matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class MemoryTransaction:
    """One DRAM request.

    Attributes:
        address: byte address of the first byte touched.
        num_bytes: transfer size in bytes.
        is_read: read (True) or write (False).
    """

    address: int
    num_bytes: int
    is_read: bool = True

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.num_bytes <= 0:
            raise ValueError(f"num_bytes must be positive, got {self.num_bytes}")


@dataclass
class ChannelStats:
    """Outcome of scheduling a transaction stream over the channels.

    Attributes:
        busy_cycles: per-channel busy cycle counts.
        total_cycles: completion time (most-loaded channel plus the fixed
            access latency, which overlapped fetchers hide for all but the
            first access).
        bytes_per_channel: bytes handled by each channel.
        transactions: number of transactions scheduled.
    """

    busy_cycles: np.ndarray
    total_cycles: int
    bytes_per_channel: np.ndarray
    transactions: int = 0
    access_latency_cycles: int = 0
    bytes_per_cycle_per_channel: float = 8.0

    @property
    def load_imbalance(self) -> float:
        """Max-to-mean ratio of per-channel bytes (1.0 = perfectly balanced)."""
        mean = self.bytes_per_channel.mean()
        if mean == 0:
            return 1.0
        return float(self.bytes_per_channel.max() / mean)

    @property
    def effective_bandwidth_fraction(self) -> float:
        """Achieved fraction of the aggregate peak over the busy window."""
        total_bytes = int(self.bytes_per_channel.sum())
        if self.total_cycles == 0:
            return 0.0
        peak = (len(self.busy_cycles) * self.bytes_per_cycle_per_channel
                * self.total_cycles)
        return min(1.0, total_bytes / peak) if peak else 0.0


class HBMChannelModel:
    """Schedules a transaction stream over address-interleaved HBM channels.

    Args:
        num_channels: independent channels (16 in Table I).
        bytes_per_cycle_per_channel: per-channel transfer rate at the core
            clock (8 GB/s at 1 GHz = 8 bytes/cycle).
        interleave_bytes: address-interleaving granularity; consecutive
            ``interleave_bytes`` blocks map to consecutive channels.
        access_latency_cycles: fixed latency of one access (row activation +
            CAS); overlapping fetchers expose it only once per stream.
    """

    def __init__(self, *, num_channels: int = 16,
                 bytes_per_cycle_per_channel: float = 8.0,
                 interleave_bytes: int = 256,
                 access_latency_cycles: int = 100) -> None:
        check_positive_int(num_channels, "num_channels")
        check_positive_int(interleave_bytes, "interleave_bytes")
        if bytes_per_cycle_per_channel <= 0:
            raise ValueError("bytes_per_cycle_per_channel must be positive")
        if access_latency_cycles < 0:
            raise ValueError("access_latency_cycles must be non-negative")
        self._num_channels = num_channels
        self._rate = bytes_per_cycle_per_channel
        self._interleave = interleave_bytes
        self._latency = access_latency_cycles

    @property
    def num_channels(self) -> int:
        return self._num_channels

    @property
    def interleave_bytes(self) -> int:
        return self._interleave

    # ------------------------------------------------------------------
    def channel_of(self, address: int) -> int:
        """Channel that owns byte ``address`` under the interleaving."""
        if address < 0:
            raise ValueError("address must be non-negative")
        return (address // self._interleave) % self._num_channels

    def schedule(self, transactions: list[MemoryTransaction]) -> ChannelStats:
        """Spread ``transactions`` over the channels and compute completion time.

        A transaction spanning several interleave blocks is split across the
        owning channels, exactly as a long CSR row read is striped over the
        HBM channels in hardware.
        """
        bytes_per_channel = np.zeros(self._num_channels, dtype=np.int64)
        for transaction in transactions:
            first_block = transaction.address // self._interleave
            last_block = (transaction.address + transaction.num_bytes - 1
                          ) // self._interleave
            remaining = transaction.num_bytes
            offset = transaction.address
            for block in range(first_block, last_block + 1):
                block_end = (block + 1) * self._interleave
                chunk = min(remaining, block_end - offset)
                bytes_per_channel[block % self._num_channels] += chunk
                offset += chunk
                remaining -= chunk

        busy = np.ceil(bytes_per_channel / self._rate).astype(np.int64)
        total = int(busy.max(initial=0))
        if transactions:
            total += self._latency
        return ChannelStats(
            busy_cycles=busy,
            total_cycles=total,
            bytes_per_channel=bytes_per_channel,
            transactions=len(transactions),
            access_latency_cycles=self._latency,
            bytes_per_cycle_per_channel=self._rate,
        )

    def schedule_row_reads(self, row_addresses: np.ndarray,
                           row_bytes: np.ndarray) -> ChannelStats:
        """Convenience wrapper: one read transaction per (address, bytes) row."""
        row_addresses = np.asarray(row_addresses, dtype=np.int64)
        row_bytes = np.asarray(row_bytes, dtype=np.int64)
        if len(row_addresses) != len(row_bytes):
            raise ValueError("row_addresses and row_bytes must have equal length")
        transactions = [MemoryTransaction(int(address), int(size))
                        for address, size in zip(row_addresses, row_bytes)
                        if size > 0]
        return self.schedule(transactions)


def csr_row_addresses(indptr: np.ndarray, *, element_bytes: int = 16,
                      base_address: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Byte address and size of every CSR row, for channel-balance analysis.

    Args:
        indptr: CSR row pointer array.
        element_bytes: bytes per stored element.
        base_address: address of the first element.

    Returns:
        ``(addresses, sizes)`` arrays of length ``len(indptr) - 1``.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    addresses = base_address + indptr[:-1] * element_bytes
    sizes = np.diff(indptr) * element_bytes
    return addresses, sizes
