"""Prefetch row buffer (the on-chip buffer of §II-D, Figure 9).

The buffer caches rows of the right matrix in fixed-size *lines* (Table I:
1024 lines × 48 elements × 12 bytes).  A row longer than one line occupies
several lines; lines are spilled individually ("Spilling a row line by line
instead of as a whole can bring benefits"), so partially resident rows are
normal.  The replacement *policy* lives in
:class:`repro.core.prefetcher.RowPrefetcher`; this class only tracks
residency, capacity and hit/miss statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class BufferLine:
    """Identity of one buffer line: a segment of one right-matrix row.

    Attributes:
        row: right-matrix row index.
        segment: which line-sized chunk of the row this is (0-based).
    """

    row: int
    segment: int


class RowBuffer:
    """Tracks which right-matrix row segments are resident on chip.

    Args:
        num_lines: number of buffer lines (1024 in Table I).
        line_elements: elements per line (48 in Table I).
        element_bytes: bytes per element (12 in Table I: 4-byte index +
            8-byte value).
    """

    def __init__(self, num_lines: int, line_elements: int,
                 element_bytes: int = 12) -> None:
        check_positive_int(num_lines, "num_lines")
        check_positive_int(line_elements, "line_elements")
        check_positive_int(element_bytes, "element_bytes")
        self._num_lines = num_lines
        self._line_elements = line_elements
        self._element_bytes = element_bytes
        # Maps row -> set of resident segment indices.
        self._resident: dict[int, set[int]] = {}
        self._lines_used = 0
        self.segment_hits = 0
        self.segment_misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @property
    def num_lines(self) -> int:
        return self._num_lines

    @property
    def line_elements(self) -> int:
        return self._line_elements

    @property
    def element_bytes(self) -> int:
        return self._element_bytes

    @property
    def line_bytes(self) -> int:
        """Capacity of one line in bytes."""
        return self._line_elements * self._element_bytes

    @property
    def capacity_bytes(self) -> int:
        """Total buffer capacity in bytes (feeds the SRAM area model)."""
        return self._num_lines * self.line_bytes

    @property
    def lines_used(self) -> int:
        """Number of currently occupied lines."""
        return self._lines_used

    @property
    def lines_free(self) -> int:
        return self._num_lines - self._lines_used

    @property
    def resident_rows(self) -> set[int]:
        """Rows with at least one resident segment."""
        return set(self._resident)

    @property
    def resident_map(self) -> dict[int, set[int]]:
        """Internal ``row -> resident segments`` mapping (treat as read-only).

        Exposed for the replacement-policy hot loop, which queries residency
        once per access and cannot afford a set copy per query.
        """
        return self._resident

    @property
    def hit_rate(self) -> float:
        """Segment-granularity hit rate observed so far."""
        total = self.segment_hits + self.segment_misses
        return self.segment_hits / total if total else 0.0

    # ------------------------------------------------------------------
    def segments_for_row(self, row_nnz: int) -> int:
        """Number of lines a row with ``row_nnz`` elements occupies."""
        if row_nnz < 0:
            raise ValueError("row_nnz must be non-negative")
        if row_nnz == 0:
            return 0
        return -(-row_nnz // self._line_elements)

    def is_resident(self, row: int, segment: int) -> bool:
        """True when the given row segment is currently buffered."""
        return segment in self._resident.get(row, set())

    def resident_segments(self, row: int) -> set[int]:
        """Segments of ``row`` currently buffered (possibly empty)."""
        return set(self._resident.get(row, set()))

    def resident_segments_view(self, row: int) -> frozenset[int] | set[int]:
        """Resident segments of ``row`` without copying.

        The returned set is the buffer's internal state — callers must treat
        it as read-only.  The replacement-policy simulation queries residency
        once per access, where the defensive copy of
        :meth:`resident_segments` dominated the runtime.
        """
        segments = self._resident.get(row)
        return segments if segments is not None else frozenset()

    # ------------------------------------------------------------------
    def insert(self, row: int, segment: int) -> None:
        """Insert a segment; raises when the buffer is full.

        Callers must evict first when :attr:`lines_free` is zero — choosing
        the victim is the replacement policy's job, not the buffer's.
        """
        if self.is_resident(row, segment):
            return
        if self._lines_used >= self._num_lines:
            raise OverflowError("row buffer is full; evict a line first")
        self._resident.setdefault(row, set()).add(segment)
        self._lines_used += 1

    def evict(self, row: int, segment: int) -> None:
        """Remove one resident segment (no-op guard: must be resident)."""
        segments = self._resident.get(row)
        if not segments or segment not in segments:
            raise KeyError(f"segment {segment} of row {row} is not resident")
        segments.remove(segment)
        if not segments:
            del self._resident[row]
        self._lines_used -= 1
        self.evictions += 1

    def evict_row(self, row: int) -> int:
        """Evict every resident segment of ``row``; returns lines freed."""
        segments = sorted(self._resident.get(row, set()), reverse=True)
        for segment in segments:
            self.evict(row, segment)
        return len(segments)

    def apply_policy_effects(self, *, inserted_lines: int,
                             evicted_lines: int) -> None:
        """Reconcile counters after a policy loop mutated ``resident_map``.

        The replacement-policy simulation inlines insert/evict on the
        residency mapping for speed; this applies the net line-count and
        eviction effects in one call.  Counts must describe exactly what was
        done to :attr:`resident_map`.
        """
        if inserted_lines < 0 or evicted_lines < 0:
            raise ValueError("line counts must be non-negative")
        self._lines_used += inserted_lines - evicted_lines
        if not 0 <= self._lines_used <= self._num_lines:
            raise ValueError("policy effects left the buffer inconsistent")
        self.evictions += evicted_lines

    def record_hit(self, count: int = 1) -> None:
        """Account ``count`` segment hits."""
        self.segment_hits += count

    def record_miss(self, count: int = 1) -> None:
        """Account ``count`` segment misses."""
        self.segment_misses += count

    def clear(self) -> None:
        """Empty the buffer (statistics are preserved)."""
        self._resident.clear()
        self._lines_used = 0

    def __repr__(self) -> str:
        return (f"RowBuffer(lines={self._lines_used}/{self._num_lines}, "
                f"line_elements={self._line_elements})")
