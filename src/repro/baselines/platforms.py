"""Platform performance/energy models for the baseline systems.

The paper measures its baselines on real hardware (a 6-core Core i7-5930K
for MKL, an NVIDIA TITAN Xp for cuSPARSE/CUSP, a quad-core ARM A53 for
Armadillo).  Without that hardware we model each platform with a small set
of first-principles constants — effective memory bandwidth, sustainable
SpGEMM floating point throughput, per-product bookkeeping overhead and
dynamic power — so that per-matrix performance variation comes from the
*simulated* work and traffic of each algorithm, not from hard-coded answers.

The constants are taken from public hardware specifications and from the
throughput levels the paper itself reports (e.g. MKL sustains roughly half a
GFLOP/s on the rMAT sweep of Figure 14); DESIGN.md §3 records this
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlatformModel:
    """Analytic model of one execution platform.

    The runtime of a SpGEMM with ``flops`` useful floating point operations,
    ``traffic_bytes`` of main-memory traffic, and ``bookkeeping_ops``
    insert/sort/hash operations is estimated as::

        runtime = max(traffic_bytes / memory_bandwidth,
                      flops / sustained_flops,
                      bookkeeping_ops * seconds_per_bookkeeping_op)
                  + fixed_overhead_seconds

    i.e. the platform is limited by whichever of memory, arithmetic or
    irregular bookkeeping is the bottleneck — for SpGEMM this is almost
    always the bookkeeping/memory term, which is exactly why the accelerators
    win.

    Attributes:
        name: human-readable platform name.
        memory_bandwidth: effective main-memory bandwidth in bytes/s.
        sustained_flops: floating point throughput sustainable on sparse
            kernels, in FLOP/s.
        seconds_per_bookkeeping_op: cost of one output-insertion operation
            (hash probe, heap update, sorted-list insert); this models the
            irregular, latency-bound part of CPU/GPU SpGEMM.
        fixed_overhead_seconds: per-call overhead (kernel launches, thread
            fork/join, library setup).
        dynamic_power_watts: measured-style dynamic power while running the
            kernel, used for the energy comparison of Figure 12.
    """

    name: str
    memory_bandwidth: float
    sustained_flops: float
    seconds_per_bookkeeping_op: float
    fixed_overhead_seconds: float
    dynamic_power_watts: float

    def runtime_seconds(self, *, flops: float, traffic_bytes: float,
                        bookkeeping_ops: float) -> float:
        """Estimate the kernel runtime for the given work quantities."""
        if min(flops, traffic_bytes, bookkeeping_ops) < 0:
            raise ValueError("work quantities must be non-negative")
        memory_time = traffic_bytes / self.memory_bandwidth
        compute_time = flops / self.sustained_flops
        bookkeeping_time = bookkeeping_ops * self.seconds_per_bookkeeping_op
        return max(memory_time, compute_time, bookkeeping_time) + self.fixed_overhead_seconds

    def energy_joules(self, runtime_seconds: float) -> float:
        """Dynamic energy consumed over ``runtime_seconds``."""
        if runtime_seconds < 0:
            raise ValueError("runtime_seconds must be non-negative")
        return runtime_seconds * self.dynamic_power_watts


#: Intel Core i7-5930K (6 cores, 3.5 GHz) running MKL ``mkl_sparse_spmm``.
#: ~68 GB/s four-channel DDR4, ~168 GFLOP/s FP64 peak but SpGEMM is bound by
#: the per-product accumulator update (~2.4 ns effective across 6 cores).
INTEL_CPU = PlatformModel(
    name="Intel MKL (Core i7-5930K)",
    memory_bandwidth=60e9,
    sustained_flops=25e9,
    seconds_per_bookkeeping_op=2.4e-9,
    fixed_overhead_seconds=2e-5,
    dynamic_power_watts=80.0,
)

#: NVIDIA TITAN Xp running cuSPARSE ``cusparseDcsrgemm`` (hash-table SpGEMM).
#: 547 GB/s GDDR5X; double-precision throughput is capped at 1/32 of single
#: precision on this part, and the hash insertions serialize on atomics
#: (~2.2 ns effective per probe across the device).
NVIDIA_GPU_CUSPARSE = PlatformModel(
    name="cuSPARSE (NVIDIA TITAN Xp)",
    memory_bandwidth=400e9,
    sustained_flops=100e9,
    seconds_per_bookkeeping_op=2.2e-9,
    fixed_overhead_seconds=5e-5,
    dynamic_power_watts=225.0,
)

#: NVIDIA TITAN Xp running CUSP ``generalized_spgemm`` (expand-sort-compress).
#: Same silicon as cuSPARSE but the ESC algorithm is bandwidth-hungry: the
#: expanded product list makes several sorted passes through DRAM.
NVIDIA_GPU_CUSP = PlatformModel(
    name="CUSP (NVIDIA TITAN Xp)",
    memory_bandwidth=400e9,
    sustained_flops=100e9,
    seconds_per_bookkeeping_op=0.75e-9,
    fixed_overhead_seconds=5e-5,
    dynamic_power_watts=170.0,
)

#: Quad-core ARM Cortex-A53 (1.2 GHz) running Armadillo's overloaded ``*``.
#: Armadillo's SpGEMM is effectively single-threaded and every product is a
#: random access into a map-like structure that misses the tiny caches.
ARM_A53 = PlatformModel(
    name="ARM Armadillo (Cortex-A53)",
    memory_bandwidth=3e9,
    sustained_flops=1.2e9,
    seconds_per_bookkeeping_op=165e-9,
    fixed_overhead_seconds=1e-4,
    dynamic_power_watts=0.45,
)

#: OuterSPACE ASIC (HPCA 2018): same 128 GB/s HBM as SpArch but only 48.3 %
#: bandwidth utilisation (Table II) and 2.5 M-element DRAM traffic per
#: multiply (§III-C analysis).
OUTERSPACE_ASIC = PlatformModel(
    name="OuterSPACE (ASIC)",
    memory_bandwidth=0.483 * 128e9,
    sustained_flops=27.2e9,
    seconds_per_bookkeeping_op=0.0,
    fixed_overhead_seconds=1e-6,
    dynamic_power_watts=12.39,
)
