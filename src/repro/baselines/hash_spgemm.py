"""Hash-table SpGEMM — the algorithm class behind NVIDIA cuSPARSE.

``cusparseDcsrgemm`` parallelises the computation across result rows and
accumulates each row's partial products in a hash table (§IV of the paper).
The scalar backend uses open addressing with linear probing, sized per row,
so the probe/collision counts the performance model charges reflect the
actual irregularity of the workload: power-law rows with many products per
output entry cause long probe chains, which is one reason GPU hash SpGEMM
underperforms on the paper's matrices.

The vectorized backend computes the same product with one batched CSR kernel
and reproduces the probe/collision counts exactly without touching the
per-product loop, via a linear-probing invariant: once a column is inserted
at displacement *d* from its home slot, every later probe for that column
walks the same *d* occupied slots (open addressing never deletes), so the
probe cost of a column is fixed at insertion time.  The backend therefore
only replays the *distinct* columns of each row (in first-product order)
through a table, then charges ``count × (d + 1)`` probes per column in
closed form — O(result nonzeros) work instead of O(partial products).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineCounters,
    BaselineEngine,
    ELEMENT_BYTES,
    expand_product_structure,
)
from repro.baselines.platforms import NVIDIA_GPU_CUSPARSE, PlatformModel
from repro.baselines.reference import fast_structural_spgemm
from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr
from repro.formats.csr import CSRMatrix

_ELEMENT_BYTES = ELEMENT_BYTES

#: Knuth's multiplicative hashing constant, shared by both backends.
_HASH_MULTIPLIER = 2654435761

#: Hash tables are sized to the next power of two at least this factor times
#: the upper bound of the row's product count, like cuSPARSE's NNZ estimate.
_TABLE_OVERSIZE = 2.0


def _table_size(upper_bound_nnz: int) -> int:
    """Power-of-two hash table size for a row with ``upper_bound_nnz`` products."""
    size = 8
    target = max(8, int(_TABLE_OVERSIZE * max(1, upper_bound_nnz)))
    while size < target:
        size *= 2
    return size


class _RowHashTable:
    """Open-addressing hash accumulator for one result row."""

    def __init__(self, size: int) -> None:
        self._size = size
        self._keys = np.full(size, -1, dtype=np.int64)
        self._vals = np.zeros(size)
        self.probes = 0
        self.collisions = 0
        self.additions = 0
        self.occupied = 0

    def insert(self, column: int, value: float) -> None:
        """Accumulate ``value`` into slot ``column``, probing linearly."""
        slot = (column * _HASH_MULTIPLIER) % self._size
        while True:
            self.probes += 1
            key = self._keys[slot]
            if key == column:
                self._vals[slot] += value
                self.additions += 1
                return
            if key == -1:
                self._keys[slot] = column
                self._vals[slot] = value
                self.occupied += 1
                return
            self.collisions += 1
            slot = (slot + 1) % self._size

    def extract(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the accumulated (columns, values), sorted by column."""
        mask = self._keys >= 0
        cols = self._keys[mask]
        vals = self._vals[mask]
        order = np.argsort(cols)
        return cols[order], vals[order]


class HashSpGEMM(BaselineEngine):
    """cuSPARSE-style row-parallel hash SpGEMM.

    Args:
        platform: platform model (defaults to the TITAN Xp used by the paper).
        engine: execution backend (``"vectorized"`` default, ``"scalar"``
            reference); both produce identical results and counters.
    """

    name = "cuSPARSE"

    def __init__(self, platform: PlatformModel = NVIDIA_GPU_CUSPARSE, *,
                 engine: str | None = None) -> None:
        super().__init__(platform, engine=engine)

    # ------------------------------------------------------------------
    def _multiply_scalar(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                         ) -> tuple[CSRMatrix, BaselineCounters]:
        """Compute ``A · B`` with one hash table per result row."""
        b_row_nnz = matrix_b.nnz_per_row()

        out_rows: list[np.ndarray] = []
        out_cols: list[np.ndarray] = []
        out_vals: list[np.ndarray] = []
        multiplications = 0
        additions = 0
        probes = 0
        collisions = 0

        for i in range(matrix_a.num_rows):
            a_cols, a_vals = matrix_a.row(i)
            if len(a_cols) == 0:
                continue
            upper_bound = int(b_row_nnz[a_cols].sum())
            if upper_bound == 0:
                continue
            table = _RowHashTable(_table_size(upper_bound))
            for k, a_value in zip(a_cols, a_vals):
                b_cols, b_vals = matrix_b.row(int(k))
                multiplications += len(b_cols)
                for c, b_value in zip(b_cols, b_vals):
                    table.insert(int(c), a_value * b_value)
            cols, vals = table.extract()
            additions += table.additions
            probes += table.probes
            collisions += table.collisions
            if len(cols):
                out_rows.append(np.full(len(cols), i, dtype=np.int64))
                out_cols.append(cols)
                out_vals.append(vals)

        shape = (matrix_a.num_rows, matrix_b.num_cols)
        if out_rows:
            coo = COOMatrix(np.concatenate(out_rows), np.concatenate(out_cols),
                            np.concatenate(out_vals), shape)
            result = coo_to_csr(coo.canonicalized())
        else:
            result = CSRMatrix.empty(shape)
        counters = BaselineCounters(
            multiplications=multiplications,
            additions=additions,
            bookkeeping_ops=probes,
            extras={"hash_probes": float(probes),
                    "hash_collisions": float(collisions)},
        )
        return result, counters

    def _multiply_vectorized(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                             ) -> tuple[CSRMatrix, BaselineCounters]:
        """Batched product; probe/collision counts via the displacement invariant."""
        result, structural_nnz = fast_structural_spgemm(matrix_a, matrix_b)
        exp_rows, exp_cols, _ = expand_product_structure(matrix_a, matrix_b)
        multiplications = len(exp_cols)
        probes, collisions = self._probe_counts(matrix_a, matrix_b,
                                                exp_rows, exp_cols)
        counters = BaselineCounters(
            multiplications=multiplications,
            additions=multiplications - structural_nnz,
            bookkeeping_ops=probes,
            extras={"hash_probes": float(probes),
                    "hash_collisions": float(collisions)},
        )
        return result, counters

    @staticmethod
    def _probe_counts(matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                      exp_rows: np.ndarray, exp_cols: np.ndarray
                      ) -> tuple[int, int]:
        """Exact probe/collision totals from the distinct-column replay.

        Each row's distinct columns are inserted (in the order their first
        product appears, which is the scalar backend's insertion order) into
        a table of the same size; a column landing at displacement ``d``
        costs ``d + 1`` probes and ``d`` collisions for *every* product that
        maps to it.
        """
        if len(exp_cols) == 0:
            return 0, 0
        # Per-row product upper bounds size the tables, exactly as the
        # scalar backend sizes them (2.0 × the bound is exact in float for
        # any realistic count, so the integer doubling below matches).
        a_rows = np.repeat(np.arange(matrix_a.num_rows, dtype=np.int64),
                           matrix_a.nnz_per_row())
        upper_bounds = np.zeros(matrix_a.num_rows, dtype=np.int64)
        np.add.at(upper_bounds, a_rows, matrix_b.nnz_per_row()[matrix_a.indices])
        targets = np.maximum(8, 2 * np.maximum(1, upper_bounds))
        table_sizes = np.int64(1) << np.ceil(np.log2(targets)).astype(np.int64)
        # Distinct (row, column) pairs in first-product order, with their
        # product multiplicities.
        keys = exp_rows * np.int64(matrix_b.num_cols) + exp_cols
        unique_keys, first_index, counts = np.unique(
            keys, return_index=True, return_counts=True)
        order = np.argsort(first_index, kind="stable")
        unique_keys = unique_keys[order]
        distinct_rows = unique_keys // matrix_b.num_cols
        distinct_cols = unique_keys % matrix_b.num_cols
        sizes_per_key = table_sizes[distinct_rows]
        homes = ((distinct_cols * _HASH_MULTIPLIER) % sizes_per_key).tolist()

        # Replay only the distinct insertions; the probe walk itself is the
        # one inherently sequential piece (each slot depends on the ones
        # claimed before it), kept to plain-int operations on a bytearray.
        displacements = [0] * len(homes)
        row_list = distinct_rows.tolist()
        size_list = sizes_per_key.tolist()
        index = 0
        num_distinct = len(homes)
        while index < num_distinct:
            row = row_list[index]
            size = size_list[index]
            table = bytearray(size)
            while index < num_distinct and row_list[index] == row:
                slot = homes[index]
                displacement = 0
                while table[slot]:
                    slot += 1
                    if slot == size:
                        slot = 0
                    displacement += 1
                table[slot] = 1
                displacements[index] = displacement
                index += 1
        displacement_arr = np.asarray(displacements, dtype=np.int64)
        counts = counts[order]
        probes = int((counts * (displacement_arr + 1)).sum())
        collisions = int((counts * displacement_arr).sum())
        return probes, collisions

    def _traffic_bytes(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                       result: CSRMatrix, counters: BaselineCounters) -> int:
        # GPU memory traffic: A once, every touched B row per touch (the GPU
        # has no cross-row reuse guarantee; the L2 is small relative to the
        # matrices), the hash tables spill to global memory when long, and
        # the result is written once.
        b_touch_bytes = int(matrix_b.nnz_per_row()[matrix_a.indices].sum()
                            ) * _ELEMENT_BYTES
        return (matrix_a.nnz * _ELEMENT_BYTES + b_touch_bytes
                + result.nnz * 2 * _ELEMENT_BYTES)
