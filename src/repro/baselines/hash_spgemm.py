"""Hash-table SpGEMM — the algorithm class behind NVIDIA cuSPARSE.

``cusparseDcsrgemm`` parallelises the computation across result rows and
accumulates each row's partial products in a hash table (§IV of the paper).
The functional implementation below uses open addressing with linear
probing, sized per row, so the probe/collision counts the performance model
charges reflect the actual irregularity of the workload: power-law rows with
many products per output entry cause long probe chains, which is one reason
GPU hash SpGEMM underperforms on the paper's matrices.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, SpGEMMBaseline
from repro.baselines.platforms import NVIDIA_GPU_CUSPARSE, PlatformModel
from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr
from repro.formats.csr import CSRMatrix

_ELEMENT_BYTES = 16

#: Hash tables are sized to the next power of two at least this factor times
#: the upper bound of the row's product count, like cuSPARSE's NNZ estimate.
_TABLE_OVERSIZE = 2.0


def _table_size(upper_bound_nnz: int) -> int:
    """Power-of-two hash table size for a row with ``upper_bound_nnz`` products."""
    size = 8
    target = max(8, int(_TABLE_OVERSIZE * max(1, upper_bound_nnz)))
    while size < target:
        size *= 2
    return size


class _RowHashTable:
    """Open-addressing hash accumulator for one result row."""

    def __init__(self, size: int) -> None:
        self._size = size
        self._keys = np.full(size, -1, dtype=np.int64)
        self._vals = np.zeros(size)
        self.probes = 0
        self.collisions = 0
        self.additions = 0
        self.occupied = 0

    def insert(self, column: int, value: float) -> None:
        """Accumulate ``value`` into slot ``column``, probing linearly."""
        slot = (column * 2654435761) % self._size
        while True:
            self.probes += 1
            key = self._keys[slot]
            if key == column:
                self._vals[slot] += value
                self.additions += 1
                return
            if key == -1:
                self._keys[slot] = column
                self._vals[slot] = value
                self.occupied += 1
                return
            self.collisions += 1
            slot = (slot + 1) % self._size

    def extract(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the accumulated (columns, values), sorted by column."""
        mask = self._keys >= 0
        cols = self._keys[mask]
        vals = self._vals[mask]
        order = np.argsort(cols)
        return cols[order], vals[order]


class HashSpGEMM(SpGEMMBaseline):
    """cuSPARSE-style row-parallel hash SpGEMM.

    Args:
        platform: platform model (defaults to the TITAN Xp used by the paper).
    """

    name = "cuSPARSE"

    def __init__(self, platform: PlatformModel = NVIDIA_GPU_CUSPARSE) -> None:
        self._platform = platform

    @property
    def platform(self) -> PlatformModel:
        return self._platform

    def multiply(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> BaselineResult:
        """Compute ``A · B`` with one hash table per result row."""
        self._check_shapes(matrix_a, matrix_b)
        b_row_nnz = matrix_b.nnz_per_row()

        out_rows: list[np.ndarray] = []
        out_cols: list[np.ndarray] = []
        out_vals: list[np.ndarray] = []
        multiplications = 0
        additions = 0
        probes = 0
        collisions = 0

        for i in range(matrix_a.num_rows):
            a_cols, a_vals = matrix_a.row(i)
            if len(a_cols) == 0:
                continue
            upper_bound = int(b_row_nnz[a_cols].sum())
            if upper_bound == 0:
                continue
            table = _RowHashTable(_table_size(upper_bound))
            for k, a_value in zip(a_cols, a_vals):
                b_cols, b_vals = matrix_b.row(int(k))
                multiplications += len(b_cols)
                for c, b_value in zip(b_cols, b_vals):
                    table.insert(int(c), a_value * b_value)
            cols, vals = table.extract()
            additions += table.additions
            probes += table.probes
            collisions += table.collisions
            if len(cols):
                out_rows.append(np.full(len(cols), i, dtype=np.int64))
                out_cols.append(cols)
                out_vals.append(vals)

        shape = (matrix_a.num_rows, matrix_b.num_cols)
        if out_rows:
            coo = COOMatrix(np.concatenate(out_rows), np.concatenate(out_cols),
                            np.concatenate(out_vals), shape)
            result = coo_to_csr(coo.canonicalized())
        else:
            result = CSRMatrix.empty(shape)

        # GPU memory traffic: A once, every touched B row per touch (the GPU
        # has no cross-row reuse guarantee; the L2 is small relative to the
        # matrices), the hash tables spill to global memory when long, and
        # the result is written once.
        b_touch_bytes = int(b_row_nnz[matrix_a.indices].sum()) * _ELEMENT_BYTES
        traffic = (matrix_a.nnz * _ELEMENT_BYTES + b_touch_bytes
                   + result.nnz * 2 * _ELEMENT_BYTES)
        runtime = self._platform.runtime_seconds(
            flops=multiplications + additions,
            traffic_bytes=traffic,
            bookkeeping_ops=probes,
        )
        return BaselineResult(
            matrix=result,
            runtime_seconds=runtime,
            traffic_bytes=traffic,
            multiplications=multiplications,
            additions=additions,
            bookkeeping_ops=probes,
            energy_joules=self._platform.energy_joules(runtime),
            platform=self._platform.name,
            extras={"hash_probes": float(probes),
                    "hash_collisions": float(collisions)},
        )
