"""Baseline SpGEMM implementations and platform performance models.

The paper compares SpArch against five systems (Figure 11/12):

* **OuterSPACE** — the prior-state-of-the-art ASIC outer-product accelerator
  (:mod:`repro.baselines.outerspace`).
* **Intel MKL** on a 6-core desktop CPU — row-wise Gustavson SpGEMM
  (:mod:`repro.baselines.gustavson`).
* **cuSPARSE** on an NVIDIA TITAN Xp — hash-table based row-parallel SpGEMM
  (:mod:`repro.baselines.hash_spgemm`).
* **CUSP** on the same GPU — expand-sort-compress (ESC) SpGEMM
  (:mod:`repro.baselines.sort_spgemm`).
* **ARM Armadillo** on a quad-core A53 — naive single-threaded SpGEMM
  (:mod:`repro.baselines.armadillo`).

Related-work algorithms referenced in §IV are also provided: heap-based
SpGEMM (:mod:`repro.baselines.heap_spgemm`) and the vanilla inner-product
dataflow (:mod:`repro.baselines.inner_product`).

Every baseline implements the *actual algorithm* functionally (verified
against scipy) and attaches a platform performance/energy model; see
DESIGN.md §3 for the measured-hardware → model substitution rationale.
Each baseline additionally runs on one of two backends
(:class:`~repro.baselines.base.BaselineEngine`): the ``"scalar"`` reference
loop and a ``"vectorized"`` fast path with batched CSR kernels and
closed-form counters, proven identical by
``tests/baselines/test_backend_equivalence.py``.
"""

from repro.baselines.armadillo import ArmadilloSpGEMM
from repro.baselines.base import (
    DEFAULT_ENGINE,
    ENGINES,
    BaselineCounters,
    BaselineEngine,
    BaselineResult,
    BaselineSummary,
    SpGEMMBaseline,
)
from repro.baselines.gustavson import GustavsonSpGEMM
from repro.baselines.hash_spgemm import HashSpGEMM
from repro.baselines.heap_spgemm import HeapSpGEMM
from repro.baselines.inner_product import InnerProductSpGEMM
from repro.baselines.outerspace import OuterSpaceAccelerator
from repro.baselines.platforms import (
    ARM_A53,
    INTEL_CPU,
    NVIDIA_GPU_CUSP,
    NVIDIA_GPU_CUSPARSE,
    PlatformModel,
)
from repro.baselines.reference import fast_structural_spgemm, scipy_spgemm
from repro.baselines.sort_spgemm import ESCSpGEMM

__all__ = [
    "BaselineCounters",
    "BaselineEngine",
    "BaselineResult",
    "BaselineSummary",
    "SpGEMMBaseline",
    "DEFAULT_ENGINE",
    "ENGINES",
    "OuterSpaceAccelerator",
    "GustavsonSpGEMM",
    "HashSpGEMM",
    "ESCSpGEMM",
    "HeapSpGEMM",
    "InnerProductSpGEMM",
    "ArmadilloSpGEMM",
    "PlatformModel",
    "INTEL_CPU",
    "NVIDIA_GPU_CUSPARSE",
    "NVIDIA_GPU_CUSP",
    "ARM_A53",
    "scipy_spgemm",
    "fast_structural_spgemm",
]
