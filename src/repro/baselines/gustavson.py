"""Row-wise Gustavson SpGEMM — the algorithm behind Intel MKL's SpGEMM.

Gustavson's algorithm [1978] computes the result row by row: row *i* of C is
the linear combination of the rows of B selected by the nonzeros of row *i*
of A, accumulated in a sparse accumulator (SPA).  Intel MKL's
``mkl_sparse_spmm`` parallelises this across rows with OpenMP.

The scalar backend uses a dictionary as the SPA (one probe and possibly one
insertion per partial product).  The vectorized backend computes the same
product with one batched CSR kernel and derives the counters in closed form:
every partial product is one multiplication and one SPA update, and the
updates that hit an existing entry — the additions — are exactly the
products minus the distinct output coordinates.  The performance model
charges:

* one read of A and one write of C;
* one read of the B rows actually touched, re-reading rows whose reuse
  distance exceeds the last-level cache (a simple working-set cache model);
* one bookkeeping operation per partial product (the SPA update, which is
  the latency-bound part of the algorithm on a CPU).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineCounters,
    BaselineEngine,
    ELEMENT_BYTES,
    accumulator_counters,
)
from repro.baselines.platforms import INTEL_CPU, PlatformModel
from repro.baselines.reference import fast_structural_spgemm
from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr
from repro.formats.csr import CSRMatrix

#: Bytes of one stored element on a CPU (8-byte column index + 8-byte value).
_ELEMENT_BYTES = ELEMENT_BYTES


def estimate_b_read_bytes(matrix_a: CSRMatrix, matrix_b: CSRMatrix, *,
                          cache_bytes: float, element_bytes: int = _ELEMENT_BYTES
                          ) -> int:
    """Estimate B-read traffic under a working-set cache model.

    Row-wise Gustavson touches the B rows selected by A's column indices.
    When the *working set* of touched B rows fits in the cache, each row is
    read from DRAM once; when it does not, the fraction that spills is
    re-read on every touch.  This coarse model captures the qualitative
    behaviour that makes large power-law matrices slow on CPUs without
    simulating a full cache hierarchy.
    """
    b_row_nnz = matrix_b.nnz_per_row()
    touched = np.unique(matrix_a.indices)
    unique_bytes = int(b_row_nnz[touched].sum()) * element_bytes
    total_touch_bytes = int(b_row_nnz[matrix_a.indices].sum()) * element_bytes
    if unique_bytes <= cache_bytes or total_touch_bytes == 0:
        return unique_bytes
    # Fraction of the working set that cannot stay resident.
    spill_fraction = 1.0 - cache_bytes / unique_bytes
    return int(unique_bytes + spill_fraction * (total_touch_bytes - unique_bytes))


class GustavsonSpGEMM(BaselineEngine):
    """MKL-style row-wise Gustavson SpGEMM with a sparse accumulator.

    Args:
        platform: platform model used for runtime/energy estimates
            (defaults to the paper's 6-core Intel CPU).
        cache_bytes: last-level cache capacity of the platform, used by the
            B-reuse model (15 MiB on the i7-5930K).
        engine: execution backend (``"vectorized"`` default, ``"scalar"``
            reference); both produce identical results and counters.
    """

    name = "MKL"

    def __init__(self, platform: PlatformModel = INTEL_CPU,
                 cache_bytes: float = 15 * 2**20, *,
                 engine: str | None = None) -> None:
        super().__init__(platform, engine=engine)
        self._cache_bytes = cache_bytes

    def cache_fields(self) -> dict:
        fields = super().cache_fields()
        fields["cache_bytes"] = self._cache_bytes
        return fields

    # ------------------------------------------------------------------
    def _multiply_scalar(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                         ) -> tuple[CSRMatrix, BaselineCounters]:
        """Compute ``A · B`` row by row with a dictionary SPA."""
        num_rows = matrix_a.num_rows
        num_cols = matrix_b.num_cols

        out_rows: list[np.ndarray] = []
        out_cols: list[np.ndarray] = []
        out_vals: list[np.ndarray] = []
        multiplications = 0
        additions = 0
        spa_updates = 0

        for i in range(num_rows):
            a_cols, a_vals = matrix_a.row(i)
            if len(a_cols) == 0:
                continue
            accumulator: dict[int, float] = {}
            for k, a_value in zip(a_cols, a_vals):
                b_cols, b_vals = matrix_b.row(int(k))
                multiplications += len(b_cols)
                spa_updates += len(b_cols)
                for c, b_value in zip(b_cols, b_vals):
                    c = int(c)
                    if c in accumulator:
                        accumulator[c] += a_value * b_value
                        additions += 1
                    else:
                        accumulator[c] = a_value * b_value
            if not accumulator:
                continue
            cols = np.fromiter(accumulator.keys(), dtype=np.int64,
                               count=len(accumulator))
            vals = np.fromiter(accumulator.values(), dtype=np.float64,
                               count=len(accumulator))
            out_rows.append(np.full(len(cols), i, dtype=np.int64))
            out_cols.append(cols)
            out_vals.append(vals)

        result = self._assemble(out_rows, out_cols, out_vals,
                                (num_rows, num_cols))
        counters = BaselineCounters(
            multiplications=multiplications,
            additions=additions,
            bookkeeping_ops=spa_updates,
            extras={"spa_updates": float(spa_updates)},
        )
        return result, counters

    def _multiply_vectorized(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                             ) -> tuple[CSRMatrix, BaselineCounters]:
        """Batched product; SPA counters in closed form.

        Every partial product is one multiplication and one SPA update; the
        updates that hit an existing accumulator entry are additions, so
        ``additions = products - distinct output coordinates``.
        """
        result, structural_nnz = fast_structural_spgemm(matrix_a, matrix_b)
        return result, accumulator_counters(matrix_a, matrix_b, structural_nnz,
                                            extras_key="spa_updates")

    # ------------------------------------------------------------------
    @staticmethod
    def _assemble(rows: list[np.ndarray], cols: list[np.ndarray],
                  vals: list[np.ndarray], shape: tuple[int, int]) -> CSRMatrix:
        if not rows:
            return CSRMatrix.empty(shape)
        coo = COOMatrix(np.concatenate(rows), np.concatenate(cols),
                        np.concatenate(vals), shape)
        return coo_to_csr(coo.canonicalized())

    def _traffic_bytes(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                       result: CSRMatrix, counters: BaselineCounters) -> int:
        a_bytes = matrix_a.nnz * _ELEMENT_BYTES
        b_bytes = estimate_b_read_bytes(matrix_a, matrix_b,
                                        cache_bytes=self._cache_bytes)
        c_bytes = result.nnz * _ELEMENT_BYTES
        return a_bytes + b_bytes + c_bytes
