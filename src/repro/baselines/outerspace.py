"""OuterSPACE baseline accelerator model (Pal et al., HPCA 2018).

OuterSPACE is the prior state-of-the-art SpGEMM ASIC the paper compares
against.  It also uses the outer-product formulation (perfect input reuse),
but it runs the multiply and merge phases separately: the multiply phase
writes *every* partial product to DRAM, and the merge phase reads them all
back and combines them row by row with general-purpose processing elements.
That round trip is exactly the output-reuse problem SpArch's pipelined merge
tree removes, and it limits OuterSPACE to 10.4 % of its theoretical peak
(48.3 % bandwidth utilisation, Table II).

The model below executes both phases functionally (so the result is exact)
and charges the DRAM traffic of each phase:

* multiply phase — read A (by column) and B (by row) once each, write all
  ``M`` partial products;
* merge phase — read the ``M`` partial products back, write the final
  result.

The runtime is bandwidth-bound at the paper's measured 48.3 % utilisation of
the same 128 GB/s HBM that SpArch uses.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, SpGEMMBaseline
from repro.baselines.platforms import OUTERSPACE_ASIC, PlatformModel
from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr, csr_to_csc
from repro.formats.csr import CSRMatrix
from repro.memory.traffic import TrafficCategory, TrafficCounter

#: Bytes of one COO element in DRAM (32-bit row + 32-bit column + 64-bit value,
#: the same element layout SpArch's Table I uses).
_ELEMENT_BYTES = 16

#: Published OuterSPACE implementation figures (Table II of the paper),
#: reused by the area/energy comparison experiments.
OUTERSPACE_AREA_MM2 = 87.0
OUTERSPACE_POWER_W = 12.39
OUTERSPACE_BANDWIDTH_UTILIZATION = 0.483


class OuterSpaceAccelerator(SpGEMMBaseline):
    """Two-phase outer-product accelerator (the OuterSPACE dataflow).

    Args:
        platform: platform model; defaults to the published OuterSPACE
            configuration (128 GB/s HBM at 48.3 % utilisation, 12.39 W).
    """

    name = "OuterSPACE"

    def __init__(self, platform: PlatformModel = OUTERSPACE_ASIC) -> None:
        self._platform = platform

    @property
    def platform(self) -> PlatformModel:
        return self._platform

    def multiply(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> BaselineResult:
        """Run the two-phase outer-product SpGEMM and model its DRAM cost."""
        self._check_shapes(matrix_a, matrix_b)
        shape = (matrix_a.num_rows, matrix_b.num_cols)
        traffic = TrafficCounter()

        # --- Multiply phase -------------------------------------------------
        # The left operand is streamed column by column (CSC view) and the
        # right operand row by row; every partial product goes to DRAM.
        csc_a = csr_to_csc(matrix_a)
        b_row_nnz = matrix_b.nnz_per_row()
        traffic.add(TrafficCategory.MATRIX_A_READ, matrix_a.nnz * _ELEMENT_BYTES)
        touched_rows = np.nonzero(np.bincount(matrix_a.indices,
                                              minlength=matrix_b.num_rows))[0]
        traffic.add(TrafficCategory.MATRIX_B_READ,
                    int(b_row_nnz[touched_rows].sum()) * _ELEMENT_BYTES)

        product_rows: list[np.ndarray] = []
        product_cols: list[np.ndarray] = []
        product_vals: list[np.ndarray] = []
        multiplications = 0
        for k in range(csc_a.num_cols):
            a_rows, a_vals = csc_a.col(k)
            if len(a_rows) == 0:
                continue
            b_cols, b_vals = matrix_b.row(k)
            if len(b_cols) == 0:
                continue
            # Outer product of column k of A with row k of B.
            rows = np.repeat(a_rows, len(b_cols))
            cols = np.tile(b_cols, len(a_rows))
            vals = np.repeat(a_vals, len(b_cols)) * np.tile(b_vals, len(a_rows))
            multiplications += len(vals)
            product_rows.append(rows)
            product_cols.append(cols)
            product_vals.append(vals)
        traffic.add(TrafficCategory.PARTIAL_WRITE, multiplications * _ELEMENT_BYTES)

        # --- Merge phase ------------------------------------------------------
        # Every partial product is read back and merged into the final rows.
        traffic.add(TrafficCategory.PARTIAL_READ, multiplications * _ELEMENT_BYTES)
        if product_rows:
            coo = COOMatrix(np.concatenate(product_rows),
                            np.concatenate(product_cols),
                            np.concatenate(product_vals), shape)
            result = coo_to_csr(coo.canonicalized())
        else:
            result = CSRMatrix.empty(shape)
        additions = max(0, multiplications - result.nnz)
        traffic.add(TrafficCategory.RESULT_WRITE, result.nnz * _ELEMENT_BYTES)

        runtime = self._platform.runtime_seconds(
            flops=multiplications + additions,
            traffic_bytes=traffic.total_bytes,
            bookkeeping_ops=0,
        )
        return BaselineResult(
            matrix=result,
            runtime_seconds=runtime,
            traffic_bytes=traffic.total_bytes,
            multiplications=multiplications,
            additions=additions,
            bookkeeping_ops=multiplications,
            energy_joules=self._platform.energy_joules(runtime),
            platform=self._platform.name,
            extras={
                "partial_matrix_bytes": float(traffic.partial_matrix_bytes),
                "input_bytes": float(traffic.input_bytes),
                "result_bytes": float(
                    traffic.bytes_by_category[TrafficCategory.RESULT_WRITE]),
            },
        )
