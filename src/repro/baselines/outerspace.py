"""OuterSPACE baseline accelerator model (Pal et al., HPCA 2018).

OuterSPACE is the prior state-of-the-art SpGEMM ASIC the paper compares
against.  It also uses the outer-product formulation (perfect input reuse),
but it runs the multiply and merge phases separately: the multiply phase
writes *every* partial product to DRAM, and the merge phase reads them all
back and combines them row by row with general-purpose processing elements.
That round trip is exactly the output-reuse problem SpArch's pipelined merge
tree removes, and it limits OuterSPACE to 10.4 % of its theoretical peak
(48.3 % bandwidth utilisation, Table II).

The scalar backend executes both phases functionally, column of A by column
of A; the vectorized backend computes the same product with one batched CSR
kernel and derives the phase traffic in closed form (the partial-product
count is a pure function of the operands' row/column lengths).  Both charge
the DRAM traffic of each phase:

* multiply phase — read A (by column) and B (by row) once each, write all
  ``M`` partial products;
* merge phase — read the ``M`` partial products back, write the final
  result.

The runtime is bandwidth-bound at the paper's measured 48.3 % utilisation of
the same 128 GB/s HBM that SpArch uses.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineCounters,
    BaselineEngine,
    ELEMENT_BYTES,
    total_products,
)
from repro.baselines.platforms import OUTERSPACE_ASIC, PlatformModel
from repro.baselines.reference import fast_structural_spgemm
from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr, csr_to_csc
from repro.formats.csr import CSRMatrix
from repro.memory.traffic import TrafficCategory, TrafficCounter

#: Bytes of one COO element in DRAM (32-bit row + 32-bit column + 64-bit value,
#: the same element layout SpArch's Table I uses).
_ELEMENT_BYTES = ELEMENT_BYTES

#: Published OuterSPACE implementation figures (Table II of the paper),
#: reused by the area/energy comparison experiments.
OUTERSPACE_AREA_MM2 = 87.0
OUTERSPACE_POWER_W = 12.39
OUTERSPACE_BANDWIDTH_UTILIZATION = 0.483


class OuterSpaceAccelerator(BaselineEngine):
    """Two-phase outer-product accelerator (the OuterSPACE dataflow).

    Args:
        platform: platform model; defaults to the published OuterSPACE
            configuration (128 GB/s HBM at 48.3 % utilisation, 12.39 W).
        engine: execution backend (``"vectorized"`` default, ``"scalar"``
            reference); both produce identical results and counters.
    """

    name = "OuterSPACE"

    def __init__(self, platform: PlatformModel = OUTERSPACE_ASIC, *,
                 engine: str | None = None) -> None:
        super().__init__(platform, engine=engine)

    # ------------------------------------------------------------------
    def _phase_traffic(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                       result: CSRMatrix, multiplications: int
                       ) -> TrafficCounter:
        """DRAM traffic of both phases — identical for the two backends."""
        traffic = TrafficCounter()
        traffic.add(TrafficCategory.MATRIX_A_READ,
                    matrix_a.nnz * _ELEMENT_BYTES)
        b_row_nnz = matrix_b.nnz_per_row()
        touched_rows = np.nonzero(np.bincount(matrix_a.indices,
                                              minlength=matrix_b.num_rows))[0]
        traffic.add(TrafficCategory.MATRIX_B_READ,
                    int(b_row_nnz[touched_rows].sum()) * _ELEMENT_BYTES)
        traffic.add(TrafficCategory.PARTIAL_WRITE,
                    multiplications * _ELEMENT_BYTES)
        traffic.add(TrafficCategory.PARTIAL_READ,
                    multiplications * _ELEMENT_BYTES)
        traffic.add(TrafficCategory.RESULT_WRITE, result.nnz * _ELEMENT_BYTES)
        return traffic

    def _counters(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                  result: CSRMatrix, multiplications: int) -> BaselineCounters:
        """Shared counter/traffic construction for both backends."""
        traffic = self._phase_traffic(matrix_a, matrix_b, result,
                                      multiplications)
        return BaselineCounters(
            multiplications=multiplications,
            additions=max(0, multiplications - result.nnz),
            bookkeeping_ops=multiplications,
            extras={
                "partial_matrix_bytes": float(traffic.partial_matrix_bytes),
                "input_bytes": float(traffic.input_bytes),
                "result_bytes": float(
                    traffic.bytes_by_category[TrafficCategory.RESULT_WRITE]),
            },
            traffic_bytes=traffic.total_bytes,
        )

    def _multiply_scalar(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                         ) -> tuple[CSRMatrix, BaselineCounters]:
        """Run the two-phase outer-product SpGEMM column by column."""
        shape = (matrix_a.num_rows, matrix_b.num_cols)

        # --- Multiply phase -----------------------------------------------
        # The left operand is streamed column by column (CSC view) and the
        # right operand row by row; every partial product goes to DRAM.
        csc_a = csr_to_csc(matrix_a)
        product_rows: list[np.ndarray] = []
        product_cols: list[np.ndarray] = []
        product_vals: list[np.ndarray] = []
        multiplications = 0
        for k in range(csc_a.num_cols):
            a_rows, a_vals = csc_a.col(k)
            if len(a_rows) == 0:
                continue
            b_cols, b_vals = matrix_b.row(k)
            if len(b_cols) == 0:
                continue
            # Outer product of column k of A with row k of B.
            rows = np.repeat(a_rows, len(b_cols))
            cols = np.tile(b_cols, len(a_rows))
            vals = np.repeat(a_vals, len(b_cols)) * np.tile(b_vals, len(a_rows))
            multiplications += len(vals)
            product_rows.append(rows)
            product_cols.append(cols)
            product_vals.append(vals)

        # --- Merge phase --------------------------------------------------
        # Every partial product is read back and merged into the final rows.
        if product_rows:
            coo = COOMatrix(np.concatenate(product_rows),
                            np.concatenate(product_cols),
                            np.concatenate(product_vals), shape)
            result = coo_to_csr(coo.canonicalized())
        else:
            result = CSRMatrix.empty(shape)
        return result, self._counters(matrix_a, matrix_b, result,
                                      multiplications)

    def _multiply_vectorized(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                             ) -> tuple[CSRMatrix, BaselineCounters]:
        """Batched product; both phases' traffic in closed form."""
        result, _ = fast_structural_spgemm(matrix_a, matrix_b)
        multiplications = total_products(matrix_a, matrix_b)
        return result, self._counters(matrix_a, matrix_b, result,
                                      multiplications)
