"""Heap-based SpGEMM (HeapSpGEMM, Azad et al. 2016 — §IV related work).

Each result row is formed by a k-way merge of the selected B rows using a
binary heap keyed on column index.  The heap is hard to parallelise, so the
only parallelism comes from processing rows independently — which, as the
paper notes, "would suffer from the load-balance problem" on power-law
matrices.  The model charges one heap operation (log-depth sift) per partial
product.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.baselines.base import BaselineResult, SpGEMMBaseline
from repro.baselines.platforms import INTEL_CPU, PlatformModel
from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr
from repro.formats.csr import CSRMatrix

_ELEMENT_BYTES = 16


class HeapSpGEMM(SpGEMMBaseline):
    """Row-wise SpGEMM that merges the selected B rows with a binary heap.

    Args:
        platform: platform model used for runtime/energy estimates.
    """

    name = "HeapSpGEMM"

    def __init__(self, platform: PlatformModel = INTEL_CPU) -> None:
        self._platform = platform

    @property
    def platform(self) -> PlatformModel:
        return self._platform

    def multiply(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> BaselineResult:
        """Compute ``A · B`` with one k-way heap merge per result row."""
        self._check_shapes(matrix_a, matrix_b)
        shape = (matrix_a.num_rows, matrix_b.num_cols)

        out_rows: list[np.ndarray] = []
        out_cols: list[int] = []
        out_vals: list[float] = []
        row_boundaries: list[int] = []
        multiplications = 0
        additions = 0
        heap_ops = 0

        for i in range(matrix_a.num_rows):
            a_cols, a_vals = matrix_a.row(i)
            if len(a_cols) == 0:
                continue
            # One cursor per selected B row; the heap holds (column, cursor id).
            cursors: list[tuple[np.ndarray, np.ndarray, float, int]] = []
            heap: list[tuple[int, int]] = []
            for cursor_id, (k, a_value) in enumerate(zip(a_cols, a_vals)):
                b_cols, b_vals = matrix_b.row(int(k))
                if len(b_cols) == 0:
                    continue
                cursors.append((b_cols, b_vals, float(a_value), 0))
                heap.append((int(b_cols[0]), len(cursors) - 1))
            heapq.heapify(heap)
            heap_ops += len(heap)

            row_start = len(out_cols)
            last_col = -1
            while heap:
                column, cursor_id = heapq.heappop(heap)
                heap_ops += int(math.log2(len(heap) + 1)) + 1
                b_cols, b_vals, a_value, position = cursors[cursor_id]
                product = a_value * float(b_vals[position])
                multiplications += 1
                if column == last_col:
                    out_vals[-1] += product
                    additions += 1
                else:
                    out_cols.append(column)
                    out_vals.append(product)
                    last_col = column
                position += 1
                if position < len(b_cols):
                    cursors[cursor_id] = (b_cols, b_vals, a_value, position)
                    heapq.heappush(heap, (int(b_cols[position]), cursor_id))
                    heap_ops += int(math.log2(len(heap) + 1)) + 1
            produced = len(out_cols) - row_start
            if produced:
                out_rows.append(np.full(produced, i, dtype=np.int64))
            row_boundaries.append(produced)

        if out_cols:
            coo = COOMatrix(np.concatenate(out_rows),
                            np.asarray(out_cols, dtype=np.int64),
                            np.asarray(out_vals), shape)
            result = coo_to_csr(coo.canonicalized())
        else:
            result = CSRMatrix.empty(shape)

        b_row_nnz = matrix_b.nnz_per_row()
        traffic = (matrix_a.nnz * _ELEMENT_BYTES
                   + int(b_row_nnz[matrix_a.indices].sum()) * _ELEMENT_BYTES
                   + result.nnz * _ELEMENT_BYTES)
        runtime = self._platform.runtime_seconds(
            flops=multiplications + additions,
            traffic_bytes=traffic,
            bookkeeping_ops=heap_ops,
        )
        return BaselineResult(
            matrix=result,
            runtime_seconds=runtime,
            traffic_bytes=traffic,
            multiplications=multiplications,
            additions=additions,
            bookkeeping_ops=heap_ops,
            energy_joules=self._platform.energy_joules(runtime),
            platform=self._platform.name,
            extras={"heap_operations": float(heap_ops)},
        )
