"""Heap-based SpGEMM (HeapSpGEMM, Azad et al. 2016 — §IV related work).

Each result row is formed by a k-way merge of the selected B rows using a
binary heap keyed on column index.  The heap is hard to parallelise, so the
only parallelism comes from processing rows independently — which, as the
paper notes, "would suffer from the load-balance problem" on power-law
matrices.  The model charges one heap operation (log-depth sift) per partial
product.

The scalar backend runs the merge with :mod:`heapq`; the vectorized backend
computes the same product with one batched CSR kernel and replays the heap
cost in closed form.  The key observation is that the heap always holds
exactly one entry per non-exhausted cursor, and the merged pop order is the
partial products sorted by (column, cursor): the heap size trajectory is
therefore the per-row active-cursor count minus a running count of cursor
exhaustions, and every pop/push cost is ``⌊log2(size)⌋ + 1`` of that
trajectory — all computable with one stable argsort and a cumulative sum.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.baselines.base import (
    BaselineCounters,
    BaselineEngine,
    ELEMENT_BYTES,
    expand_product_structure,
)
from repro.baselines.platforms import INTEL_CPU, PlatformModel
from repro.baselines.reference import fast_structural_spgemm
from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr
from repro.formats.csr import CSRMatrix

_ELEMENT_BYTES = ELEMENT_BYTES


class HeapSpGEMM(BaselineEngine):
    """Row-wise SpGEMM that merges the selected B rows with a binary heap.

    Args:
        platform: platform model used for runtime/energy estimates.
        engine: execution backend (``"vectorized"`` default, ``"scalar"``
            reference); both produce identical results and counters.
    """

    name = "HeapSpGEMM"

    def __init__(self, platform: PlatformModel = INTEL_CPU, *,
                 engine: str | None = None) -> None:
        super().__init__(platform, engine=engine)

    # ------------------------------------------------------------------
    def _multiply_scalar(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                         ) -> tuple[CSRMatrix, BaselineCounters]:
        """Compute ``A · B`` with one k-way heap merge per result row."""
        shape = (matrix_a.num_rows, matrix_b.num_cols)

        out_rows: list[np.ndarray] = []
        out_cols: list[int] = []
        out_vals: list[float] = []
        multiplications = 0
        additions = 0
        heap_ops = 0

        for i in range(matrix_a.num_rows):
            a_cols, a_vals = matrix_a.row(i)
            if len(a_cols) == 0:
                continue
            # One cursor per selected B row; the heap holds (column, cursor id).
            cursors: list[tuple[np.ndarray, np.ndarray, float, int]] = []
            heap: list[tuple[int, int]] = []
            for cursor_id, (k, a_value) in enumerate(zip(a_cols, a_vals)):
                b_cols, b_vals = matrix_b.row(int(k))
                if len(b_cols) == 0:
                    continue
                cursors.append((b_cols, b_vals, float(a_value), 0))
                heap.append((int(b_cols[0]), len(cursors) - 1))
            heapq.heapify(heap)
            heap_ops += len(heap)

            row_start = len(out_cols)
            last_col = -1
            while heap:
                column, cursor_id = heapq.heappop(heap)
                heap_ops += int(math.log2(len(heap) + 1)) + 1
                b_cols, b_vals, a_value, position = cursors[cursor_id]
                product = a_value * float(b_vals[position])
                multiplications += 1
                if column == last_col:
                    out_vals[-1] += product
                    additions += 1
                else:
                    out_cols.append(column)
                    out_vals.append(product)
                    last_col = column
                position += 1
                if position < len(b_cols):
                    cursors[cursor_id] = (b_cols, b_vals, a_value, position)
                    heapq.heappush(heap, (int(b_cols[position]), cursor_id))
                    heap_ops += int(math.log2(len(heap) + 1)) + 1
            produced = len(out_cols) - row_start
            if produced:
                out_rows.append(np.full(produced, i, dtype=np.int64))

        if out_cols:
            coo = COOMatrix(np.concatenate(out_rows),
                            np.asarray(out_cols, dtype=np.int64),
                            np.asarray(out_vals), shape)
            result = coo_to_csr(coo.canonicalized())
        else:
            result = CSRMatrix.empty(shape)
        counters = BaselineCounters(
            multiplications=multiplications,
            additions=additions,
            bookkeeping_ops=heap_ops,
            extras={"heap_operations": float(heap_ops)},
        )
        return result, counters

    def _multiply_vectorized(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                             ) -> tuple[CSRMatrix, BaselineCounters]:
        """Batched product; heap-operation count from the size trajectory."""
        result, structural_nnz = fast_structural_spgemm(matrix_a, matrix_b)
        multiplications, heap_ops = self._heap_cost(matrix_a, matrix_b)
        counters = BaselineCounters(
            multiplications=multiplications,
            additions=multiplications - structural_nnz,
            bookkeeping_ops=heap_ops,
            extras={"heap_operations": float(heap_ops)},
        )
        return result, counters

    @staticmethod
    def _heap_cost(matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> tuple[int, int]:
        """Exact ``(multiplications, heap_ops)`` of the k-way merges.

        Replays every row's merge in aggregate: the pops of row *i* arrive
        sorted by (column, cursor), the heap size before a pop is the row's
        non-exhausted cursor count, and a cursor exhausts exactly when its
        last product is popped.
        """
        exp_rows, exp_cols, per_element = expand_product_structure(
            matrix_a, matrix_b)
        multiplications = len(exp_cols)
        if multiplications == 0:
            return 0, 0
        a_rows = np.repeat(np.arange(matrix_a.num_rows, dtype=np.int64),
                           matrix_a.nnz_per_row())
        nonempty = per_element > 0
        # Initial heapify cost: one push per non-empty cursor of each row.
        active_at_start = np.bincount(a_rows[nonempty],
                                      minlength=matrix_a.num_rows)
        heap_ops = int(active_at_start.sum())

        # Mark the last product of every cursor (its segment in the
        # expansion is contiguous and column-sorted, so the segment end is
        # the cursor's final — highest-column — product).
        cursor_last = np.zeros(multiplications, dtype=bool)
        cursor_last[np.cumsum(per_element[nonempty]) - 1] = True

        # Pop order: stable sort by (row, column) keeps equal columns in
        # cursor order, exactly the heap's (column, cursor-id) tie-break.
        order = np.argsort(exp_rows * np.int64(matrix_b.num_cols) + exp_cols,
                           kind="stable")
        pop_rows = exp_rows[order]
        pop_exhausts = cursor_last[order]

        # Active cursors before each pop: the row's initial count minus the
        # exhaustions already popped within the row.
        exhausted_before = np.cumsum(pop_exhausts) - pop_exhausts
        row_change = np.empty(multiplications, dtype=bool)
        row_change[0] = True
        np.not_equal(pop_rows[1:], pop_rows[:-1], out=row_change[1:])
        row_segment = np.cumsum(row_change) - 1
        segment_starts = np.flatnonzero(row_change)
        active = (active_at_start[pop_rows[segment_starts]][row_segment]
                  - (exhausted_before - exhausted_before[segment_starts][row_segment]))

        # Every pop shrinks the heap to ``active - 1`` and costs
        # ``⌊log2(active)⌋ + 1``; every non-final pop is followed by a push
        # back to ``active`` costing ``⌊log2(active + 1)⌋ + 1``.
        pop_cost = np.floor(np.log2(active)).astype(np.int64) + 1
        push_cost = np.floor(np.log2(active[~pop_exhausts] + 1)
                             ).astype(np.int64) + 1
        heap_ops += int(pop_cost.sum()) + int(push_cost.sum())
        return multiplications, heap_ops
