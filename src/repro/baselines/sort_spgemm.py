"""Expand-Sort-Compress (ESC) SpGEMM — the algorithm behind CUSP.

CUSP's ``generalized_spgemm`` expands every partial product into a global
(COO) list, sorts the list by output coordinate, and compresses runs of
equal coordinates by summation (§IV: "CUSP uses a sorting algorithm which
suffers from higher complexity and excessive DRAM access if on-chip
resources are limited").  The expanded list is several times larger than the
inputs and makes multiple passes through DRAM during the sort, which is what
the performance model charges.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import BaselineResult, SpGEMMBaseline
from repro.baselines.platforms import NVIDIA_GPU_CUSP, PlatformModel
from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr
from repro.formats.csr import CSRMatrix

_ELEMENT_BYTES = 16

#: Radix-sort digit width used by Thrust/CUSP-style GPU sorts; each pass
#: streams the whole expanded list through DRAM once in and once out.
_RADIX_BITS = 8


class ESCSpGEMM(SpGEMMBaseline):
    """CUSP-style expand-sort-compress SpGEMM.

    Args:
        platform: platform model (defaults to the TITAN Xp used by the paper).
    """

    name = "CUSP"

    def __init__(self, platform: PlatformModel = NVIDIA_GPU_CUSP) -> None:
        self._platform = platform

    @property
    def platform(self) -> PlatformModel:
        return self._platform

    def multiply(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> BaselineResult:
        """Compute ``A · B`` by expanding, sorting and compressing products."""
        self._check_shapes(matrix_a, matrix_b)
        shape = (matrix_a.num_rows, matrix_b.num_cols)

        # --- Expand: materialise every partial product --------------------
        b_row_nnz = matrix_b.nnz_per_row()
        products_per_a_nnz = b_row_nnz[matrix_a.indices]
        total_products = int(products_per_a_nnz.sum())
        if total_products == 0:
            return self._empty_result(shape)

        a_rows = np.repeat(np.arange(matrix_a.num_rows, dtype=np.int64),
                           matrix_a.nnz_per_row())
        expanded_rows = np.repeat(a_rows, products_per_a_nnz)
        expanded_a_vals = np.repeat(matrix_a.data, products_per_a_nnz)
        # Gather the B columns/values of every product.
        b_starts = matrix_b.indptr[matrix_a.indices]
        offsets = _ragged_offsets(products_per_a_nnz)
        gather = np.repeat(b_starts, products_per_a_nnz) + offsets
        expanded_cols = matrix_b.indices[gather]
        expanded_vals = expanded_a_vals * matrix_b.data[gather]

        # --- Sort: order products by output coordinate --------------------
        keys = expanded_rows * shape[1] + expanded_cols
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_vals = expanded_vals[order]
        key_bits = max(1, int(math.ceil(math.log2(max(2, shape[0] * shape[1])))))
        sort_passes = -(-key_bits // _RADIX_BITS)

        # --- Compress: sum runs of equal coordinates -----------------------
        unique_keys, inverse, counts = np.unique(sorted_keys, return_inverse=True,
                                                 return_counts=True)
        summed = np.zeros(len(unique_keys))
        np.add.at(summed, inverse, sorted_vals)
        additions = int(np.sum(counts - 1))
        keep = summed != 0.0
        rows = unique_keys[keep] // shape[1]
        cols = unique_keys[keep] % shape[1]
        result = coo_to_csr(COOMatrix(rows, cols, summed[keep], shape))

        # --- Performance model ---------------------------------------------
        expanded_bytes = total_products * _ELEMENT_BYTES
        traffic = (matrix_a.nnz * _ELEMENT_BYTES
                   + int(b_row_nnz[matrix_a.indices].sum()) * _ELEMENT_BYTES
                   + expanded_bytes                       # write expanded list
                   + 2 * sort_passes * expanded_bytes     # radix sort passes
                   + expanded_bytes                       # compression read
                   + result.nnz * _ELEMENT_BYTES)         # result write
        bookkeeping = total_products * sort_passes
        runtime = self._platform.runtime_seconds(
            flops=total_products + additions,
            traffic_bytes=traffic,
            bookkeeping_ops=bookkeeping,
        )
        return BaselineResult(
            matrix=result,
            runtime_seconds=runtime,
            traffic_bytes=traffic,
            multiplications=total_products,
            additions=additions,
            bookkeeping_ops=bookkeeping,
            energy_joules=self._platform.energy_joules(runtime),
            platform=self._platform.name,
            extras={"expanded_products": float(total_products),
                    "sort_passes": float(sort_passes)},
        )

    # ------------------------------------------------------------------
    def _empty_result(self, shape: tuple[int, int]) -> BaselineResult:
        runtime = self._platform.fixed_overhead_seconds
        return BaselineResult(
            matrix=CSRMatrix.empty(shape),
            runtime_seconds=runtime,
            traffic_bytes=0,
            multiplications=0,
            additions=0,
            bookkeeping_ops=0,
            energy_joules=self._platform.energy_joules(runtime),
            platform=self._platform.name,
        )


def _ragged_offsets(counts: np.ndarray) -> np.ndarray:
    """Return ``[0..counts[0]-1, 0..counts[1]-1, ...]`` as one flat array."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - starts
