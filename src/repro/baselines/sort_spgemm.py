"""Expand-Sort-Compress (ESC) SpGEMM — the algorithm behind CUSP.

CUSP's ``generalized_spgemm`` expands every partial product into a global
(COO) list, sorts the list by output coordinate, and compresses runs of
equal coordinates by summation (§IV: "CUSP uses a sorting algorithm which
suffers from higher complexity and excessive DRAM access if on-chip
resources are limited").  The expanded list is several times larger than the
inputs and makes multiple passes through DRAM during the sort, which is what
the performance model charges.

The scalar backend materialises the expanded list and executes the
sort/compress passes; the vectorized backend computes the same product with
one batched CSR kernel and derives the counters in closed form — the
expansion size is a pure function of the operands' row lengths, the radix
pass count of the key width, and the compression additions are the products
minus the distinct output coordinates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import (
    BaselineCounters,
    BaselineEngine,
    ELEMENT_BYTES,
    ragged_offsets,
    total_products,
)
from repro.baselines.platforms import NVIDIA_GPU_CUSP, PlatformModel
from repro.baselines.reference import fast_structural_spgemm
from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr
from repro.formats.csr import CSRMatrix

_ELEMENT_BYTES = ELEMENT_BYTES

#: Radix-sort digit width used by Thrust/CUSP-style GPU sorts; each pass
#: streams the whole expanded list through DRAM once in and once out.
_RADIX_BITS = 8


def _sort_passes(shape: tuple[int, int]) -> int:
    """Radix passes needed to sort keys of the given output shape."""
    key_bits = max(1, int(math.ceil(math.log2(max(2, shape[0] * shape[1])))))
    return -(-key_bits // _RADIX_BITS)


class ESCSpGEMM(BaselineEngine):
    """CUSP-style expand-sort-compress SpGEMM.

    Args:
        platform: platform model (defaults to the TITAN Xp used by the paper).
        engine: execution backend (``"vectorized"`` default, ``"scalar"``
            reference); both produce identical results and counters.
    """

    name = "CUSP"

    def __init__(self, platform: PlatformModel = NVIDIA_GPU_CUSP, *,
                 engine: str | None = None) -> None:
        super().__init__(platform, engine=engine)

    # ------------------------------------------------------------------
    def _multiply_scalar(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                         ) -> tuple[CSRMatrix, BaselineCounters]:
        """Compute ``A · B`` by expanding, sorting and compressing products."""
        shape = (matrix_a.num_rows, matrix_b.num_cols)

        # --- Expand: materialise every partial product --------------------
        b_row_nnz = matrix_b.nnz_per_row()
        products_per_a_nnz = b_row_nnz[matrix_a.indices]
        total = int(products_per_a_nnz.sum())
        if total == 0:
            return CSRMatrix.empty(shape), BaselineCounters(0, 0, 0)

        a_rows = np.repeat(np.arange(matrix_a.num_rows, dtype=np.int64),
                           matrix_a.nnz_per_row())
        expanded_rows = np.repeat(a_rows, products_per_a_nnz)
        expanded_a_vals = np.repeat(matrix_a.data, products_per_a_nnz)
        # Gather the B columns/values of every product.
        b_starts = matrix_b.indptr[matrix_a.indices]
        offsets = ragged_offsets(products_per_a_nnz)
        gather = np.repeat(b_starts, products_per_a_nnz) + offsets
        expanded_cols = matrix_b.indices[gather]
        expanded_vals = expanded_a_vals * matrix_b.data[gather]

        # --- Sort: order products by output coordinate --------------------
        keys = expanded_rows * shape[1] + expanded_cols
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_vals = expanded_vals[order]
        sort_passes = _sort_passes(shape)

        # --- Compress: sum runs of equal coordinates -----------------------
        unique_keys, inverse, counts = np.unique(sorted_keys, return_inverse=True,
                                                 return_counts=True)
        summed = np.zeros(len(unique_keys))
        np.add.at(summed, inverse, sorted_vals)
        additions = int(np.sum(counts - 1))
        keep = summed != 0.0
        rows = unique_keys[keep] // shape[1]
        cols = unique_keys[keep] % shape[1]
        result = coo_to_csr(COOMatrix(rows, cols, summed[keep], shape))
        counters = BaselineCounters(
            multiplications=total,
            additions=additions,
            bookkeeping_ops=total * sort_passes,
            extras={"expanded_products": float(total),
                    "sort_passes": float(sort_passes)},
        )
        return result, counters

    def _multiply_vectorized(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                             ) -> tuple[CSRMatrix, BaselineCounters]:
        """Batched product; expansion/sort/compress counters in closed form."""
        total = total_products(matrix_a, matrix_b)
        shape = (matrix_a.num_rows, matrix_b.num_cols)
        if total == 0:
            return CSRMatrix.empty(shape), BaselineCounters(0, 0, 0)
        result, structural_nnz = fast_structural_spgemm(matrix_a, matrix_b)
        sort_passes = _sort_passes(shape)
        counters = BaselineCounters(
            multiplications=total,
            additions=total - structural_nnz,
            bookkeeping_ops=total * sort_passes,
            extras={"expanded_products": float(total),
                    "sort_passes": float(sort_passes)},
        )
        return result, counters

    def _traffic_bytes(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                       result: CSRMatrix, counters: BaselineCounters) -> int:
        if counters.multiplications == 0:
            # Nothing is expanded, sorted or written back.
            return 0
        expanded_bytes = counters.multiplications * _ELEMENT_BYTES
        sort_passes = int(counters.extras["sort_passes"])
        b_touch_bytes = int(matrix_b.nnz_per_row()[matrix_a.indices].sum()
                            ) * _ELEMENT_BYTES
        return (matrix_a.nnz * _ELEMENT_BYTES
                + b_touch_bytes
                + expanded_bytes                       # write expanded list
                + 2 * sort_passes * expanded_bytes     # radix sort passes
                + expanded_bytes                       # compression read
                + result.nnz * _ELEMENT_BYTES)         # result write
