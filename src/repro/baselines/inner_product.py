"""Vanilla inner-product SpGEMM dataflow (Figure 1, top).

The inner-product formulation computes every output entry as the dot
product of one row of A and one column of B.  Output reuse is perfect (each
output is produced exactly once and never revisited), but input reuse is
poor: each row of A is re-fetched once per B column it meets, and most
fetched operand pairs mismatch and produce nothing — the "redundant input
fetches for mismatched nonzero operands" of the paper's abstract.

The functional result is computed with an efficient equivalent (the result
matrix does not depend on the dataflow); the *fetch counters* model the
vanilla dataflow so the input-reuse comparison of Figure 1 can be
quantified.  Because those counters were always closed-form functions of the
operand row/column lengths, the scalar and vectorized backends of this
baseline share one implementation — the engine switch exists for interface
uniformity with the other baselines.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineCounters, BaselineEngine, ELEMENT_BYTES
from repro.baselines.platforms import PlatformModel
from repro.baselines.reference import scipy_spgemm
from repro.formats.convert import csr_to_csc
from repro.formats.csr import CSRMatrix

_ELEMENT_BYTES = ELEMENT_BYTES

#: Generic bandwidth-bound device used when no platform is specified; the
#: inner-product model exists to quantify the dataflow, not a product.
_GENERIC_DEVICE = PlatformModel(
    name="inner-product dataflow",
    memory_bandwidth=128e9,
    sustained_flops=32e9,
    seconds_per_bookkeeping_op=0.0,
    fixed_overhead_seconds=0.0,
    dynamic_power_watts=10.0,
)


class InnerProductSpGEMM(BaselineEngine):
    """Inner-product dataflow model: perfect output reuse, poor input reuse.

    Args:
        platform: device the dataflow is charged on (a generic 128 GB/s
            bandwidth-bound device by default).
        engine: execution backend; both backends share the closed-form
            dataflow model, so the switch only exists for uniformity.
    """

    name = "InnerProduct"

    def __init__(self, platform: PlatformModel = _GENERIC_DEVICE, *,
                 engine: str | None = None) -> None:
        super().__init__(platform, engine=engine)

    # ------------------------------------------------------------------
    def _model(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
               ) -> tuple[CSRMatrix, BaselineCounters]:
        """Compute ``A · B`` and charge the vanilla inner-product fetches."""
        result = scipy_spgemm(matrix_a, matrix_b)

        a_row_nnz = matrix_a.nnz_per_row()
        b_col_nnz = csr_to_csc(matrix_b).nnz_per_col()
        occupied_rows = int(np.count_nonzero(a_row_nnz))
        occupied_cols = int(np.count_nonzero(b_col_nnz))

        # Every occupied (row of A, column of B) pair is walked once: the row
        # and the column are both streamed through the intersection unit.
        a_fetches = int(a_row_nnz.sum()) * occupied_cols
        b_fetches = int(b_col_nnz.sum()) * occupied_rows

        # Useful work is identical to any other dataflow.
        b_row_nnz = matrix_b.nnz_per_row()
        multiplications = int(b_row_nnz[matrix_a.indices].sum())
        additions = max(0, multiplications - result.nnz)
        comparisons = a_fetches + b_fetches

        counters = BaselineCounters(
            multiplications=multiplications,
            additions=additions,
            bookkeeping_ops=comparisons,
            extras={"a_element_fetches": float(a_fetches),
                    "b_element_fetches": float(b_fetches),
                    "redundant_fetch_ratio": (
                        float(a_fetches + b_fetches)
                        / max(1.0, float(matrix_a.nnz + matrix_b.nnz)))},
        )
        return result, counters

    _multiply_scalar = _model
    _multiply_vectorized = _model

    def _traffic_bytes(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                       result: CSRMatrix, counters: BaselineCounters) -> int:
        input_fetch_bytes = int(counters.extras["a_element_fetches"]
                                + counters.extras["b_element_fetches"]
                                ) * _ELEMENT_BYTES
        return input_fetch_bytes + result.nnz * _ELEMENT_BYTES
