"""Ground-truth SpGEMM via scipy, used to verify every simulated path."""

from __future__ import annotations

import numpy as np

from repro.formats.convert import from_scipy, to_scipy
from repro.formats.csr import CSRMatrix


def scipy_spgemm(matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> CSRMatrix:
    """Exact ``A · B`` computed by ``scipy.sparse`` (the test oracle)."""
    if matrix_a.shape[1] != matrix_b.shape[0]:
        raise ValueError(
            f"dimension mismatch: cannot multiply {matrix_a.shape} by "
            f"{matrix_b.shape}"
        )
    product = to_scipy(matrix_a) @ to_scipy(matrix_b)
    product.sum_duplicates()
    product.sort_indices()
    product.eliminate_zeros()
    return from_scipy(product)


def matrices_allclose(left: CSRMatrix, right: CSRMatrix, *, rtol: float = 1e-9,
                      atol: float = 1e-9) -> bool:
    """Numerically compare two CSR matrices entry by entry."""
    if left.shape != right.shape:
        return False
    difference = to_scipy(left) - to_scipy(right)
    if difference.nnz == 0:
        return True
    magnitude = max(1.0, float(abs(to_scipy(right)).max()))
    return bool(np.all(np.abs(difference.data) <= atol + rtol * magnitude))
