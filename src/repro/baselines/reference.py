"""Ground-truth SpGEMM via scipy — test oracle and vectorized product kernel.

Besides the :func:`scipy_spgemm` oracle, this module provides
:func:`fast_structural_spgemm`, the batched product every vectorized baseline
backend shares.  scipy's CSR matmat accumulates each output entry in exactly
the order the scalar baselines do (A's stored order, then the selected B
row's order), so its values are bit-identical to the reference loops; the
helper additionally reports the *structural* nonzero count — distinct output
coordinates before exact-zero elimination — from which the closed-form
addition/insertion counters are derived."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.convert import from_scipy, to_scipy
from repro.formats.csr import CSRMatrix


def scipy_spgemm(matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> CSRMatrix:
    """Exact ``A · B`` computed by ``scipy.sparse`` (the test oracle)."""
    if matrix_a.shape[1] != matrix_b.shape[0]:
        raise ValueError(
            f"dimension mismatch: cannot multiply {matrix_a.shape} by "
            f"{matrix_b.shape}"
        )
    product = to_scipy(matrix_a) @ to_scipy(matrix_b)
    product.sum_duplicates()
    product.sort_indices()
    product.eliminate_zeros()
    return from_scipy(product)


def fast_structural_spgemm(matrix_a: CSRMatrix, matrix_b: CSRMatrix
                           ) -> tuple[CSRMatrix, int]:
    """Batched ``A · B`` plus the structural nonzero count.

    Returns ``(result, structural_nnz)`` where ``result`` has exact zeros
    eliminated (matching :meth:`COOMatrix.canonicalized`'s default, which
    every scalar baseline assembles through) and ``structural_nnz`` counts
    the distinct output coordinates *before* elimination — the number of
    accumulator insertions, so ``additions = products - structural_nnz``
    in closed form.

    The accumulation order is scipy's CSR matmat order, which is the same
    element order every scalar baseline sums in; the differential harness
    asserts bitwise equality.
    """
    if matrix_a.shape[1] != matrix_b.shape[0]:
        raise ValueError(
            f"dimension mismatch: cannot multiply {matrix_a.shape} by "
            f"{matrix_b.shape}"
        )
    scipy_a = to_scipy(matrix_a)
    scipy_b = to_scipy(matrix_b)
    product = scipy_a @ scipy_b
    product.sum_duplicates()
    product.sort_indices()
    product.eliminate_zeros()
    # scipy's matmat drops exactly-cancelled entries from the numeric
    # product, so the structural count comes from the pattern product: with
    # all-ones data every output entry is a positive product count and
    # nothing can cancel.
    pattern_a = sp.csr_matrix(
        (np.ones(matrix_a.nnz), scipy_a.indices, scipy_a.indptr),
        shape=matrix_a.shape)
    pattern_b = sp.csr_matrix(
        (np.ones(matrix_b.nnz), scipy_b.indices, scipy_b.indptr),
        shape=matrix_b.shape)
    structural_nnz = int((pattern_a @ pattern_b).nnz)
    return from_scipy(product), structural_nnz


def matrices_allclose(left: CSRMatrix, right: CSRMatrix, *, rtol: float = 1e-9,
                      atol: float = 1e-9) -> bool:
    """Numerically compare two CSR matrices entry by entry."""
    if left.shape != right.shape:
        return False
    difference = to_scipy(left) - to_scipy(right)
    if difference.nnz == 0:
        return True
    magnitude = max(1.0, float(abs(to_scipy(right)).max()))
    return bool(np.all(np.abs(difference.data) <= atol + rtol * magnitude))
