"""Armadillo-style SpGEMM on a mobile ARM CPU (the paper's weakest baseline).

Armadillo's overloaded ``operator*`` for sparse matrices is effectively a
single-threaded accumulation of every partial product into an ordered
coordinate map.  On an in-order Cortex-A53, every map update is a
dependent, cache-missing memory operation, which is why the paper measures
a three-orders-of-magnitude gap to SpArch.  The functional implementation
below performs exactly that product-by-product accumulation; the platform
model charges one bookkeeping operation per map update.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, SpGEMMBaseline
from repro.baselines.platforms import ARM_A53, PlatformModel
from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr
from repro.formats.csr import CSRMatrix

_ELEMENT_BYTES = 16


class ArmadilloSpGEMM(SpGEMMBaseline):
    """Single-threaded map-accumulation SpGEMM (Armadillo's ``*`` operator).

    Args:
        platform: platform model (defaults to the quad-core ARM A53 board
            the paper measures, of which Armadillo uses a single core).
    """

    name = "Armadillo"

    def __init__(self, platform: PlatformModel = ARM_A53) -> None:
        self._platform = platform

    @property
    def platform(self) -> PlatformModel:
        return self._platform

    def multiply(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> BaselineResult:
        """Compute ``A · B`` by accumulating every product into one map."""
        self._check_shapes(matrix_a, matrix_b)
        shape = (matrix_a.num_rows, matrix_b.num_cols)

        accumulator: dict[tuple[int, int], float] = {}
        multiplications = 0
        additions = 0
        map_updates = 0

        for i in range(matrix_a.num_rows):
            a_cols, a_vals = matrix_a.row(i)
            for k, a_value in zip(a_cols, a_vals):
                b_cols, b_vals = matrix_b.row(int(k))
                multiplications += len(b_cols)
                map_updates += len(b_cols)
                for c, b_value in zip(b_cols, b_vals):
                    key = (i, int(c))
                    if key in accumulator:
                        accumulator[key] += a_value * b_value
                        additions += 1
                    else:
                        accumulator[key] = a_value * b_value

        if accumulator:
            rows = np.fromiter((k[0] for k in accumulator), dtype=np.int64,
                               count=len(accumulator))
            cols = np.fromiter((k[1] for k in accumulator), dtype=np.int64,
                               count=len(accumulator))
            vals = np.fromiter(accumulator.values(), dtype=np.float64,
                               count=len(accumulator))
            result = coo_to_csr(COOMatrix(rows, cols, vals, shape).canonicalized())
        else:
            result = CSRMatrix.empty(shape)

        b_row_nnz = matrix_b.nnz_per_row()
        traffic = (matrix_a.nnz * _ELEMENT_BYTES
                   + int(b_row_nnz[matrix_a.indices].sum()) * _ELEMENT_BYTES
                   + result.nnz * _ELEMENT_BYTES)
        runtime = self._platform.runtime_seconds(
            flops=multiplications + additions,
            traffic_bytes=traffic,
            bookkeeping_ops=map_updates,
        )
        return BaselineResult(
            matrix=result,
            runtime_seconds=runtime,
            traffic_bytes=traffic,
            multiplications=multiplications,
            additions=additions,
            bookkeeping_ops=map_updates,
            energy_joules=self._platform.energy_joules(runtime),
            platform=self._platform.name,
            extras={"map_updates": float(map_updates)},
        )
