"""Armadillo-style SpGEMM on a mobile ARM CPU (the paper's weakest baseline).

Armadillo's overloaded ``operator*`` for sparse matrices is effectively a
single-threaded accumulation of every partial product into an ordered
coordinate map.  On an in-order Cortex-A53, every map update is a
dependent, cache-missing memory operation, which is why the paper measures
a three-orders-of-magnitude gap to SpArch.  The scalar backend performs
exactly that product-by-product accumulation; the vectorized backend
computes the same product with one batched CSR kernel — every product is
one multiplication and one map update, and the updates that hit an existing
key (the additions) are the products minus the distinct coordinates, all in
closed form.  The platform model charges one bookkeeping operation per map
update.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineCounters,
    BaselineEngine,
    accumulator_counters,
)
from repro.baselines.platforms import ARM_A53, PlatformModel
from repro.baselines.reference import fast_structural_spgemm
from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr
from repro.formats.csr import CSRMatrix


class ArmadilloSpGEMM(BaselineEngine):
    """Single-threaded map-accumulation SpGEMM (Armadillo's ``*`` operator).

    Args:
        platform: platform model (defaults to the quad-core ARM A53 board
            the paper measures, of which Armadillo uses a single core).
        engine: execution backend (``"vectorized"`` default, ``"scalar"``
            reference); both produce identical results and counters.
    """

    name = "Armadillo"

    def __init__(self, platform: PlatformModel = ARM_A53, *,
                 engine: str | None = None) -> None:
        super().__init__(platform, engine=engine)

    # ------------------------------------------------------------------
    def _multiply_scalar(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                         ) -> tuple[CSRMatrix, BaselineCounters]:
        """Compute ``A · B`` by accumulating every product into one map."""
        shape = (matrix_a.num_rows, matrix_b.num_cols)

        accumulator: dict[tuple[int, int], float] = {}
        multiplications = 0
        additions = 0
        map_updates = 0

        for i in range(matrix_a.num_rows):
            a_cols, a_vals = matrix_a.row(i)
            for k, a_value in zip(a_cols, a_vals):
                b_cols, b_vals = matrix_b.row(int(k))
                multiplications += len(b_cols)
                map_updates += len(b_cols)
                for c, b_value in zip(b_cols, b_vals):
                    key = (i, int(c))
                    if key in accumulator:
                        accumulator[key] += a_value * b_value
                        additions += 1
                    else:
                        accumulator[key] = a_value * b_value

        if accumulator:
            rows = np.fromiter((k[0] for k in accumulator), dtype=np.int64,
                               count=len(accumulator))
            cols = np.fromiter((k[1] for k in accumulator), dtype=np.int64,
                               count=len(accumulator))
            vals = np.fromiter(accumulator.values(), dtype=np.float64,
                               count=len(accumulator))
            result = coo_to_csr(COOMatrix(rows, cols, vals, shape).canonicalized())
        else:
            result = CSRMatrix.empty(shape)
        counters = BaselineCounters(
            multiplications=multiplications,
            additions=additions,
            bookkeeping_ops=map_updates,
            extras={"map_updates": float(map_updates)},
        )
        return result, counters

    def _multiply_vectorized(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                             ) -> tuple[CSRMatrix, BaselineCounters]:
        """Batched product; map-update counters in closed form."""
        result, structural_nnz = fast_structural_spgemm(matrix_a, matrix_b)
        return result, accumulator_counters(matrix_a, matrix_b, structural_nnz,
                                            extras_key="map_updates")

    # The default streaming traffic model (A once, touched B rows, result
    # once) is exactly Armadillo's: no cache to speak of, no spills.
