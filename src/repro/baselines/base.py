"""Common interface and result container for all SpGEMM baselines."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.formats.csr import CSRMatrix


@dataclass
class BaselineResult:
    """Outcome of running one baseline SpGEMM.

    Attributes:
        matrix: the exact CSR result (all baselines are functionally exact).
        runtime_seconds: modelled kernel runtime on the baseline's platform.
        traffic_bytes: modelled main-memory traffic of the kernel.
        multiplications: scalar multiplications performed.
        additions: scalar additions performed.
        bookkeeping_ops: insert/hash/sort operations the algorithm needed.
        energy_joules: modelled dynamic energy of the run.
        platform: name of the platform model used.
        extras: algorithm-specific counters (hash collisions, sort passes,
            heap operations, ...), for tests and ablation analysis.
    """

    matrix: CSRMatrix
    runtime_seconds: float
    traffic_bytes: int
    multiplications: int
    additions: int
    bookkeeping_ops: int
    energy_joules: float
    platform: str
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def flops(self) -> int:
        """Useful floating point operations (multiplications + additions)."""
        return self.multiplications + self.additions

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s of the modelled execution."""
        if self.runtime_seconds <= 0:
            return 0.0
        return self.flops / self.runtime_seconds / 1e9

    @property
    def nnz(self) -> int:
        """Nonzeros of the result matrix."""
        return self.matrix.nnz

    def __repr__(self) -> str:
        return (f"BaselineResult(platform={self.platform!r}, nnz={self.nnz}, "
                f"runtime={self.runtime_seconds:.3e}s, gflops={self.gflops:.3f})")


class SpGEMMBaseline(abc.ABC):
    """Abstract base class of every baseline SpGEMM implementation."""

    #: Short identifier used in experiment tables ("MKL", "cuSPARSE", ...).
    name: str = "baseline"

    @abc.abstractmethod
    def multiply(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> BaselineResult:
        """Compute ``A · B`` functionally and model its platform cost."""

    def _check_shapes(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> None:
        if matrix_a.shape[1] != matrix_b.shape[0]:
            raise ValueError(
                f"dimension mismatch: cannot multiply {matrix_a.shape} by "
                f"{matrix_b.shape}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
