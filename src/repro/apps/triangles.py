"""Triangle counting with the SpGEMM kernel on the simulated accelerator.

For an undirected graph with (symmetric, zero-diagonal, binary) adjacency
matrix A, the number of triangles is ``trace(A³) / 6``; computing it as
``sum((A·A) ⊙ A) / 6`` needs one SpGEMM plus an element-wise masked sum,
which is the formulation the paper's citation (Azad, Buluç, Gilbert 2015)
uses and the reason triangle counting appears in the SpGEMM motivation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.core.stats import SimulationStats
from repro.formats.convert import from_scipy, to_scipy
from repro.formats.csr import CSRMatrix


@dataclass
class TriangleCountResult:
    """Outcome of one triangle-counting run.

    Attributes:
        triangles: number of triangles in the graph.
        per_node_triangles: triangles incident to each node (length =
            number of nodes).
        wedges: number of length-2 paths (open or closed) in the graph.
        spgemm_stats: simulator statistics of the A·A kernel.
    """

    triangles: int
    per_node_triangles: np.ndarray
    wedges: int
    spgemm_stats: SimulationStats

    @property
    def clustering_coefficient(self) -> float:
        """Global clustering coefficient: 3·triangles / wedges."""
        return 3.0 * self.triangles / self.wedges if self.wedges else 0.0


def normalize_adjacency(graph: CSRMatrix) -> CSRMatrix:
    """Return a symmetric, zero-diagonal, binary copy of ``graph``.

    Triangle counting is defined on simple undirected graphs; arbitrary
    sparse matrices (directed, weighted, with self loops) are coerced first.
    """
    adjacency = to_scipy(graph)
    adjacency = adjacency + adjacency.T
    adjacency.setdiag(0)
    adjacency.eliminate_zeros()
    adjacency.data[:] = 1.0
    return from_scipy(adjacency)


def count_triangles(graph: CSRMatrix, *, engine: SpArch | None = None,
                    config: SpArchConfig | None = None,
                    assume_normalized: bool = False) -> TriangleCountResult:
    """Count the triangles of ``graph`` using the accelerator for the SpGEMM.

    Args:
        graph: graph adjacency matrix (any sparse square matrix; it is
            symmetrised and binarised unless ``assume_normalized``).
        engine: SpGEMM engine; a fresh :class:`SpArch` by default.
        config: configuration for the default engine.
        assume_normalized: skip :func:`normalize_adjacency` when the caller
            already provides a symmetric binary zero-diagonal matrix.

    Returns:
        :class:`TriangleCountResult` with the global count, the per-node
        counts, and the simulator statistics of the A·A product.
    """
    if graph.shape[0] != graph.shape[1]:
        raise ValueError(f"adjacency matrix must be square, got {graph.shape}")
    adjacency = graph if assume_normalized else normalize_adjacency(graph)

    engine = engine or SpArch(config)
    spgemm = engine.multiply(adjacency, adjacency)

    # Per-node triangle count: diag(A² · A) / 2 == row-wise masked sum / 2.
    a_squared = to_scipy(spgemm.matrix)
    mask = to_scipy(adjacency)
    masked = a_squared.multiply(mask)
    per_node = np.asarray(masked.sum(axis=1)).ravel() / 2.0
    triangles = int(round(per_node.sum() / 3.0))

    degrees = np.asarray(mask.sum(axis=1)).ravel()
    wedges = int((degrees * (degrees - 1) / 2).sum())
    return TriangleCountResult(
        triangles=triangles,
        per_node_triangles=per_node,
        wedges=wedges,
        spgemm_stats=spgemm.stats,
    )
