"""Triangle counting with the SpGEMM kernel on the simulated accelerator.

For an undirected graph with (symmetric, zero-diagonal, binary) adjacency
matrix A, the number of triangles is ``trace(A³) / 6``; computing it as
``sum((A·A) ⊙ A) / 6`` needs one SpGEMM plus an element-wise masked sum,
which is the formulation the paper's citation (Azad, Buluç, Gilbert 2015)
uses and the reason triangle counting appears in the SpGEMM motivation.

The computation itself is the registered ``triangles`` workload pipeline
(:mod:`repro.workloads.library`); this module is the thin application
wrapper that keeps the original public API — build the pipeline, run the
``A·A`` stage on the given engine, and derive the per-node counts from the
masked stage.  The global count uses an exact integer path: each per-node
half is rounded to an integer and the sum is asserted divisible by 3,
instead of ``round(sum / 3)`` silently absorbing drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.core.stats import SimulationStats
from repro.experiments.runner import ExperimentRunner
from repro.formats.convert import from_scipy, to_scipy
from repro.formats.csr import CSRMatrix
from repro.workloads.library import build_triangles
from repro.workloads.ops import simple_graph, triangles_from_masked
from repro.workloads.pipeline import (
    PipelineBuilder,
    SpArchExecutor,
    WorkloadResult,
)


@dataclass
class TriangleCountResult:
    """Outcome of one triangle-counting run.

    Attributes:
        triangles: number of triangles in the graph.
        per_node_triangles: triangles incident to each node (length =
            number of nodes).
        wedges: number of length-2 paths (open or closed) in the graph.
        spgemm_stats: simulator statistics of the A·A kernel.
        workload: per-stage record of the underlying pipeline execution.
    """

    triangles: int
    per_node_triangles: np.ndarray
    wedges: int
    spgemm_stats: SimulationStats
    workload: WorkloadResult | None = field(default=None, compare=False,
                                            repr=False)

    @property
    def clustering_coefficient(self) -> float:
        """Global clustering coefficient: 3·triangles / wedges."""
        return 3.0 * self.triangles / self.wedges if self.wedges else 0.0


def normalize_adjacency(graph: CSRMatrix) -> CSRMatrix:
    """Return a symmetric, zero-diagonal, binary copy of ``graph``.

    Triangle counting is defined on simple undirected graphs; arbitrary
    sparse matrices (directed, weighted, with self loops) are coerced first.
    """
    return from_scipy(simple_graph(to_scipy(graph)))


def count_triangles(graph: CSRMatrix, *, engine: SpArch | None = None,
                    config: SpArchConfig | None = None,
                    runner: ExperimentRunner | None = None,
                    assume_normalized: bool = False) -> TriangleCountResult:
    """Count the triangles of ``graph`` using the accelerator for the SpGEMM.

    Args:
        graph: graph adjacency matrix (any sparse square matrix; it is
            symmetrised and binarised unless ``assume_normalized``).
        engine: SpGEMM engine; a fresh :class:`SpArch` by default.
        config: configuration for the default engine.
        runner: when given, the A·A stage's statistics are memoised through
            the experiment runner's fingerprint cache instead of running a
            private engine (exclusive with ``engine``).
        assume_normalized: skip :func:`normalize_adjacency` when the caller
            already provides a symmetric binary zero-diagonal matrix.

    Returns:
        :class:`TriangleCountResult` with the global count, the per-node
        counts, and the simulator statistics of the A·A product.
    """
    if graph.shape[0] != graph.shape[1]:
        raise ValueError(f"adjacency matrix must be square, got {graph.shape}")

    executor = SpArchExecutor(engine=engine, runner=runner, config=config)
    pipeline = PipelineBuilder(executor, inputs={"A": graph})
    masked = build_triangles(pipeline, normalize=not assume_normalized)
    workload = pipeline.result("triangles", masked)

    per_node, triangles = triangles_from_masked(pipeline.scipy_value(masked))
    return TriangleCountResult(
        triangles=triangles,
        per_node_triangles=per_node,
        wedges=int(workload.annotations["wedges"]),
        spgemm_stats=workload.spgemm_stats[0],
        workload=workload,
    )
