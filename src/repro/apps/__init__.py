"""Application kernels built on top of the SpGEMM simulator.

The paper's introduction motivates SpGEMM with graph analytics and sparse
machine-learning workloads.  This subpackage implements two of them as
library functions whose heavy kernel runs through any SpGEMM engine — the
SpArch simulator by default — and returns both the application result and
the accumulated accelerator statistics:

* :mod:`repro.apps.triangles` — triangle counting via ``trace(A³)/6``.
* :mod:`repro.apps.markov_clustering` — Markov clustering (MCL), whose
  expansion step is a repeated sparse matrix self-product.

Both are thin wrappers over the declarative pipeline framework in
:mod:`repro.workloads`: the computation is a registered workload DAG of
SpGEMM and host stages, and the wrappers add the application-level
interpretation (triangle counts, cluster extraction) on top of the
pipeline's :class:`~repro.workloads.pipeline.WorkloadResult`.
"""

from repro.apps.markov_clustering import MarkovClusteringResult, markov_clustering
from repro.apps.triangles import TriangleCountResult, count_triangles

__all__ = [
    "count_triangles",
    "TriangleCountResult",
    "markov_clustering",
    "MarkovClusteringResult",
]
