"""Markov clustering (MCL) with the expansion step on the accelerator.

Markov clustering (van Dongen, 2000 — cited in the paper's introduction)
finds clusters in a graph by alternating two operations on a column-
stochastic transition matrix:

* **expansion** — squaring the matrix (a sparse matrix self-product, the
  SpGEMM kernel SpArch accelerates);
* **inflation** — raising every entry to a power ``r`` and re-normalising
  columns, which sharpens the distribution and, together with pruning of
  tiny entries, keeps the matrix sparse.

Iterating expansion/inflation converges to a doubly-idempotent matrix whose
attractor structure defines the clusters.  This module runs the full
algorithm, routing every expansion through a SpGEMM engine (the SpArch
simulator by default) and accumulating its statistics, so the accelerator's
benefit on an end-to-end workload can be quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.core.stats import SimulationStats
from repro.formats.convert import from_scipy, to_scipy
from repro.formats.csr import CSRMatrix


@dataclass
class MarkovClusteringResult:
    """Outcome of one MCL run.

    Attributes:
        clusters: list of clusters, each a sorted list of node indices;
            clusters are disjoint and cover every node.
        labels: cluster index of every node.
        iterations: expansion/inflation iterations executed.
        converged: whether the chaos measure dropped below the tolerance
            before the iteration limit.
        total_spgemm_stats: per-iteration simulator statistics of the
            expansion products.
    """

    clusters: list[list[int]]
    labels: np.ndarray
    iterations: int
    converged: bool
    total_spgemm_stats: list[SimulationStats] = field(default_factory=list)

    @property
    def num_clusters(self) -> int:
        """Number of clusters found."""
        return len(self.clusters)

    @property
    def total_dram_bytes(self) -> int:
        """DRAM traffic of all expansion SpGEMMs combined."""
        return sum(stats.dram_bytes for stats in self.total_spgemm_stats)

    @property
    def total_cycles(self) -> int:
        """Simulated cycles of all expansion SpGEMMs combined."""
        return sum(stats.cycles for stats in self.total_spgemm_stats)


def _column_normalize(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Scale every column to sum to one (columns with no mass are left empty)."""
    sums = np.asarray(matrix.sum(axis=0)).ravel()
    scale = np.divide(1.0, sums, out=np.zeros_like(sums), where=sums > 0)
    return (matrix @ sp.diags(scale)).tocsr()


def _inflate(matrix: sp.csr_matrix, power: float) -> sp.csr_matrix:
    """Element-wise power followed by column re-normalisation."""
    inflated = matrix.copy()
    inflated.data = np.power(inflated.data, power)
    return _column_normalize(inflated)


def _prune(matrix: sp.csr_matrix, threshold: float) -> sp.csr_matrix:
    """Drop entries below ``threshold`` (keeps the matrix sparse)."""
    pruned = matrix.copy()
    pruned.data[pruned.data < threshold] = 0.0
    pruned.eliminate_zeros()
    return pruned


def _chaos(matrix: sp.csr_matrix) -> float:
    """Convergence measure: max over columns of (max entry − sum of squares)."""
    csc = matrix.tocsc()
    chaos = 0.0
    for j in range(csc.shape[1]):
        column = csc.data[csc.indptr[j]:csc.indptr[j + 1]]
        if len(column) == 0:
            continue
        chaos = max(chaos, float(column.max() - np.square(column).sum()))
    return chaos


def _extract_clusters(matrix: sp.csr_matrix) -> list[list[int]]:
    """Interpret the converged matrix: attractor rows define the clusters."""
    num_nodes = matrix.shape[0]
    attractors = [i for i in range(num_nodes) if matrix[i, i] > 1e-9]
    clusters: list[set[int]] = []
    for attractor in attractors:
        row = matrix.getrow(attractor)
        members = set(row.indices.tolist()) | {attractor}
        for existing in clusters:
            if existing & members:
                existing |= members
                break
        else:
            clusters.append(members)
    assigned = set().union(*clusters) if clusters else set()
    for node in range(num_nodes):
        if node not in assigned:
            clusters.append({node})
    return [sorted(cluster) for cluster in clusters]


def markov_clustering(graph: CSRMatrix, *, expansion: int = 2,
                      inflation: float = 2.0, prune_threshold: float = 1e-4,
                      max_iterations: int = 30, tolerance: float = 1e-6,
                      add_self_loops: bool = True,
                      engine: SpArch | None = None,
                      config: SpArchConfig | None = None
                      ) -> MarkovClusteringResult:
    """Cluster ``graph`` with MCL, running every expansion on the accelerator.

    Args:
        graph: graph adjacency matrix (square; weights are used as edge
            affinities).
        expansion: expansion power per iteration; 2 (one squaring) is the
            standard setting and each extra power is one more SpGEMM.
        inflation: inflation exponent ``r`` (larger → more, smaller clusters).
        prune_threshold: entries below this are dropped after inflation.
        max_iterations: iteration limit.
        tolerance: convergence threshold on the chaos measure.
        add_self_loops: add the identity before normalising (the standard
            MCL trick that guarantees aperiodicity).
        engine: SpGEMM engine; a fresh :class:`SpArch` by default.
        config: configuration for the default engine.

    Returns:
        :class:`MarkovClusteringResult` with the clusters and the simulator
        statistics of every expansion SpGEMM.
    """
    if graph.shape[0] != graph.shape[1]:
        raise ValueError(f"adjacency matrix must be square, got {graph.shape}")
    if expansion < 2:
        raise ValueError(f"expansion must be at least 2, got {expansion}")
    if inflation <= 1.0:
        raise ValueError(f"inflation must exceed 1, got {inflation}")

    engine = engine or SpArch(config)

    current = to_scipy(graph).astype(np.float64)
    current = abs(current) + abs(current).T
    if add_self_loops:
        current = current + sp.identity(graph.shape[0], format="csr")
    current = _column_normalize(current.tocsr())

    spgemm_stats: list[SimulationStats] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # --- expansion: (expansion - 1) SpGEMMs on the accelerator --------
        expanded = current
        for _ in range(expansion - 1):
            result = engine.multiply(from_scipy(expanded), from_scipy(current))
            spgemm_stats.append(result.stats)
            expanded = to_scipy(result.matrix)
        # --- inflation + pruning ------------------------------------------
        inflated = _prune(_inflate(expanded.tocsr(), inflation), prune_threshold)
        inflated = _column_normalize(inflated)
        if _chaos(inflated) < tolerance:
            current = inflated
            converged = True
            break
        current = inflated

    clusters = _extract_clusters(current.tocsr())
    labels = np.empty(graph.shape[0], dtype=np.int64)
    for cluster_id, members in enumerate(clusters):
        labels[members] = cluster_id
    return MarkovClusteringResult(
        clusters=clusters,
        labels=labels,
        iterations=iterations,
        converged=converged,
        total_spgemm_stats=spgemm_stats,
    )
