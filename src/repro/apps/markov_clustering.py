"""Markov clustering (MCL) with the expansion step on the accelerator.

Markov clustering (van Dongen, 2000 — cited in the paper's introduction)
finds clusters in a graph by alternating two operations on a column-
stochastic transition matrix:

* **expansion** — squaring the matrix (a sparse matrix self-product, the
  SpGEMM kernel SpArch accelerates);
* **inflation** — raising every entry to a power ``r`` and re-normalising
  columns, which sharpens the distribution and, together with pruning of
  tiny entries, keeps the matrix sparse.

Iterating expansion/inflation converges to a doubly-idempotent matrix whose
attractor structure defines the clusters.  The iteration itself is the
registered ``mcl`` workload pipeline (:mod:`repro.workloads.library`) —
expansion SpGEMM stages alternating with inflate/prune/normalise host
stages; this module is the thin application wrapper that keeps the original
public API, routes the expansions through a SpGEMM engine (the SpArch
simulator by default) and interprets the converged matrix into clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.core.stats import SimulationStats
from repro.experiments.runner import ExperimentRunner
from repro.formats.csr import CSRMatrix
from repro.workloads.library import build_mcl
from repro.workloads.pipeline import (
    PipelineBuilder,
    SpArchExecutor,
    WorkloadResult,
)


@dataclass
class MarkovClusteringResult:
    """Outcome of one MCL run.

    Attributes:
        clusters: list of clusters, each a sorted list of node indices;
            clusters are disjoint and cover every node.
        labels: cluster index of every node.
        iterations: expansion/inflation iterations executed.
        converged: whether the chaos measure dropped below the tolerance
            before the iteration limit.
        total_spgemm_stats: per-iteration simulator statistics of the
            expansion products.
        workload: per-stage record of the underlying pipeline execution.
    """

    clusters: list[list[int]]
    labels: np.ndarray
    iterations: int
    converged: bool
    total_spgemm_stats: list[SimulationStats] = field(default_factory=list)
    workload: WorkloadResult | None = field(default=None, compare=False,
                                            repr=False)

    @property
    def num_clusters(self) -> int:
        """Number of clusters found."""
        return len(self.clusters)

    @property
    def total_dram_bytes(self) -> int:
        """DRAM traffic of all expansion SpGEMMs combined."""
        return sum(stats.dram_bytes for stats in self.total_spgemm_stats)

    @property
    def total_cycles(self) -> int:
        """Simulated cycles of all expansion SpGEMMs combined."""
        return sum(stats.cycles for stats in self.total_spgemm_stats)


def _extract_clusters(matrix: sp.csr_matrix) -> list[list[int]]:
    """Interpret the converged matrix: attractor rows define the clusters.

    Attractors whose member sets overlap belong to one cluster, and the
    overlap relation is transitive: with attractor rows a∩b and b∩c
    non-empty, a, b and c all merge.  A union-find over the touched nodes
    implements the transitive merge, so the returned clusters are disjoint
    and cover every node (merging only into the *first* overlapping cluster
    would leave overlap chains non-disjoint).
    """
    num_nodes = matrix.shape[0]
    attractors = np.nonzero(matrix.diagonal() > 1e-9)[0].tolist()

    parent: dict[int, int] = {}

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:  # path compression
            parent[node], node = root, parent[node]
        return root

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[max(root_a, root_b)] = min(root_a, root_b)

    for attractor in attractors:
        row = matrix.getrow(attractor)
        members = set(row.indices.tolist()) | {attractor}
        parent.setdefault(attractor, attractor)
        for member in members:
            parent.setdefault(member, member)
            union(attractor, member)

    grouped: dict[int, list[int]] = {}
    for node in sorted(parent):
        grouped.setdefault(find(node), []).append(node)
    clusters = [members for _, members in sorted(grouped.items())]
    assigned = set(parent)
    for node in range(num_nodes):
        if node not in assigned:
            clusters.append([node])
    return clusters


def markov_clustering(graph: CSRMatrix, *, expansion: int = 2,
                      inflation: float = 2.0, prune_threshold: float = 1e-4,
                      max_iterations: int = 30, tolerance: float = 1e-6,
                      add_self_loops: bool = True,
                      engine: SpArch | None = None,
                      config: SpArchConfig | None = None,
                      runner: ExperimentRunner | None = None
                      ) -> MarkovClusteringResult:
    """Cluster ``graph`` with MCL, running every expansion on the accelerator.

    Args:
        graph: graph adjacency matrix (square; weights are used as edge
            affinities).
        expansion: expansion power per iteration; 2 (one squaring) is the
            standard setting and each extra power is one more SpGEMM.
        inflation: inflation exponent ``r`` (larger → more, smaller clusters).
        prune_threshold: entries below this are dropped after inflation.
        max_iterations: iteration limit.
        tolerance: convergence threshold on the chaos measure.
        add_self_loops: add the identity before normalising (the standard
            MCL trick that guarantees aperiodicity).
        engine: SpGEMM engine; a fresh :class:`SpArch` by default.
        config: configuration for the default engine.
        runner: when given, expansion statistics are memoised through the
            experiment runner's fingerprint cache instead of running a
            private engine (exclusive with ``engine``).

    Returns:
        :class:`MarkovClusteringResult` with the clusters and the simulator
        statistics of every expansion SpGEMM.
    """
    if graph.shape[0] != graph.shape[1]:
        raise ValueError(f"adjacency matrix must be square, got {graph.shape}")

    executor = SpArchExecutor(engine=engine, runner=runner, config=config)
    pipeline = PipelineBuilder(executor, inputs={"A": graph})
    converged_stage = build_mcl(
        pipeline,
        expansion=expansion,
        inflation=inflation,
        prune_threshold=prune_threshold,
        max_iterations=max_iterations,
        tolerance=tolerance,
        add_self_loops=add_self_loops,
    )
    workload = pipeline.result("mcl", converged_stage)

    clusters = _extract_clusters(pipeline.scipy_value(converged_stage))
    labels = np.empty(graph.shape[0], dtype=np.int64)
    for cluster_id, members in enumerate(clusters):
        labels[members] = cluster_id
    return MarkovClusteringResult(
        clusters=clusters,
        labels=labels,
        iterations=int(workload.annotations["iterations"]),
        converged=bool(workload.annotations["converged"]),
        total_spgemm_stats=workload.spgemm_stats,
        workload=workload,
    )
