"""Streaming simulation backend (``SpArchConfig(engine="streaming")``).

The vectorized backend materialises *every* partial product of the multiply
up front — an ``O(multiplications)`` allocation that is fine for the scaled
proxies of DESIGN.md §2 but dwarfs the matrices themselves at paper scale
(10⁵–10⁶ rows, tens of millions of products).  This module bounds the
working set without changing a single bit of output:

* :class:`StreamingLeafStreamer` defers partial-product generation until the
  merge plan consumes each leaf, generating ``streaming_chunk_leaves``
  upcoming leaves per batched numpy pass (the accelerator binds the plan's
  consumption order via :meth:`StreamingLeafStreamer.bind_plan`).  Product
  generation is elementwise-independent — each element's products are
  ``value * B[col, :]`` regardless of batching — so chunked generation is
  bit-identical to the all-at-once pass.
* :class:`StreamingMergeTree` folds each merge round block by block instead
  of sorting the whole concatenation at once: every iteration picks a key
  *cutoff*, drains all elements ``≤ cutoff`` from every input stream, and
  sorts/folds only that block (roughly ``streaming_block_elements`` elements
  per contributing stream).

Why the blocked merge is exact:

* The cutoff is the minimum over active streams of the key ``block``
  positions ahead (or the stream's last key), and *every* element ``≤
  cutoff`` is taken from *every* stream via ``searchsorted(side="right")``.
  Keys in later blocks are therefore strictly greater than every key in
  this block, so (a) concatenating the per-block outputs reproduces the
  globally sorted order, and (b) no equal-key run ever straddles a block
  boundary — the per-block :func:`~repro.core.fastpath.fold_sorted_runs`
  folds exactly the runs the global fold would, with the same left-to-right
  association, no carry logic needed.
* Within a block, the drained slices are concatenated in ascending stream
  order — the same order the global concatenation uses — so the per-block
  stable argsort breaks key ties identically to the global stable argsort.
* Progress is guaranteed: the stream achieving the cutoff advances by at
  least ``min(block, remaining)`` elements each iteration.

All statistics are unaffected by construction: the tournament accounting is
computed from stream lengths before any element moves (shared with the
vectorized tree), and the adder counters accumulated per block sum to the
global values because runs never straddle blocks.

The differential harness (``tests/integration/test_engine_equivalence.py``)
pins streaming == vectorized == scalar over all 16 ablation combinations,
and a hypothesis property test pins invariance under every chunk/block size
including the extremes (1 and ≥ everything).
"""

from __future__ import annotations

import numpy as np

from repro.core.fastpath import fold_sorted_runs
from repro.core.huffman import MergePlan
from repro.core.vectorized import VectorizedLeafStreamer, VectorizedMergeTree
from repro.formats.csr import CSRMatrix
from repro.hardware.multiplier_array import MultiplierArray


class StreamingLeafStreamer(VectorizedLeafStreamer):
    """Leaf streamer that generates partial products chunk by chunk.

    Reuses the vectorized streamer's metadata pass (element grouping,
    product counts, cycle prefix sums — all O(nnz(A))) but skips the bulk
    product materialisation: products are generated lazily for chunks of
    ``chunk_leaves`` leaves in merge-plan consumption order, so at most one
    chunk's products (plus any generated-but-unconsumed leaves of the
    current chunk) are live at a time.

    Args:
        matrix_a: left operand in CSR format.
        matrix_b: right operand in CSR format.
        multipliers: multiplier array whose counters mirror the scalar model.
        condensing: whether leaves are condensed or original columns.
        chunk_leaves: leaves generated per batched numpy pass (≥ 1).
    """

    def __init__(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                 multipliers: MultiplierArray, *, condensing: bool,
                 chunk_leaves: int = 64) -> None:
        self._chunk_leaves = max(1, int(chunk_leaves))
        super().__init__(matrix_a, matrix_b, multipliers,
                         condensing=condensing)

    def _materialise(self) -> None:
        """Defer product generation: nothing is built until leaves stream."""
        self._pending: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._consume_order: list[int] | None = None
        self._order_pos: dict[int, int] = {}

    # ------------------------------------------------------------------
    def bind_plan(self, plan: MergePlan) -> None:
        """Learn the order the merge plan will consume leaves in.

        Chunks are formed over this order so each batched generation pass
        produces exactly the next ``chunk_leaves`` leaves the plan will ask
        for.  Unbound (or for leaves outside the plan) the streamer falls
        back to single-leaf generation — still correct, just less batched.
        """
        order = [node_id for merge_round in plan.rounds
                 for node_id in merge_round.input_ids
                 if node_id < plan.num_leaves]
        if not plan.rounds and plan.num_leaves == 1:
            order = [0]
        self._consume_order = order
        self._order_pos = {leaf: pos for pos, leaf in enumerate(order)}

    def _generate_chunk(self, leaves: list[int]) -> None:
        """Generate the partial products of the given leaves in one pass."""
        starts = self._elem_starts
        elem_idx = (np.concatenate(
            [np.arange(starts[leaf], starts[leaf + 1], dtype=np.int64)
             for leaf in leaves])
            if leaves else np.empty(0, dtype=np.int64))
        keys, vals = self._generate_products(elem_idx)
        counts = [int(self._prod_starts[leaf + 1] - self._prod_starts[leaf])
                  for leaf in leaves]
        boundaries = np.cumsum(counts)[:-1] if len(counts) > 1 else []
        for leaf, key_part, val_part in zip(leaves,
                                            np.split(keys, boundaries),
                                            np.split(vals, boundaries)):
            self._pending[leaf] = (key_part, val_part)

    def leaf_stream(self, leaf: int) -> tuple[np.ndarray, np.ndarray]:
        """Return one leaf's sorted (key, value) partial-product stream.

        Generates the chunk of upcoming leaves containing this one if it is
        not pending yet; the returned arrays are popped, so a consumed
        leaf's products are immediately collectable.
        """
        self._record_leaf_counters(leaf)
        if leaf not in self._pending:
            if self._consume_order is not None and leaf in self._order_pos:
                position = self._order_pos[leaf]
                window = self._consume_order[
                    position:position + self._chunk_leaves]
                chunk = [l for l in window if l not in self._pending]
            else:
                chunk = [leaf]
            self._generate_chunk(chunk)
        return self._pending.pop(leaf)


class StreamingMergeTree(VectorizedMergeTree):
    """Merge tree that sorts and folds each round in bounded blocks.

    Identical tournament accounting and epilogue to the vectorized tree
    (both are lengths-only); only the functional merge+fold is overridden
    with the cutoff-blocked equivalent described in the module docstring.

    Args:
        block_elements: target elements drained per stream per block (≥ 1);
            the transient sort working set is bounded by roughly
            ``block_elements × active streams``.
    """

    def __init__(self, num_layers: int = 6, merger_width: int = 16,
                 chunk_size: int = 4, fifo_capacity: int = 1024, *,
                 block_elements: int = 1 << 16) -> None:
        super().__init__(num_layers=num_layers, merger_width=merger_width,
                         chunk_size=chunk_size, fifo_capacity=fifo_capacity)
        self._block_elements = max(1, int(block_elements))

    def _merge_and_fold(self, cleaned: list[tuple[np.ndarray, np.ndarray]]
                        ) -> tuple[np.ndarray, np.ndarray]:
        streams = [(keys, vals) for keys, vals in cleaned if len(keys)]
        if not streams:
            key_dtype = (np.result_type(*[keys.dtype for keys, _ in cleaned])
                         if cleaned else np.dtype(np.int64))
            return np.empty(0, dtype=key_dtype), np.empty(0)

        block = self._block_elements
        cursors = [0] * len(streams)
        lengths = [len(keys) for keys, _ in streams]
        out_key_parts: list[np.ndarray] = []
        out_val_parts: list[np.ndarray] = []
        adder_stats = self._adder.stats

        while True:
            active = [i for i in range(len(streams)) if cursors[i] < lengths[i]]
            if not active:
                break
            # Largest key this block may contain: the smallest "block
            # positions ahead" key over the active streams.  Every active
            # stream contributes *all* of its elements ≤ cutoff, so later
            # blocks hold strictly greater keys only.
            cutoff = min(
                int(streams[i][0][min(cursors[i] + block, lengths[i]) - 1])
                for i in active)
            part_keys: list[np.ndarray] = []
            part_vals: list[np.ndarray] = []
            for i in active:
                keys, vals = streams[i]
                start = cursors[i]
                stop = start + int(np.searchsorted(keys[start:], cutoff,
                                                   side="right"))
                if stop > start:
                    part_keys.append(keys[start:stop])
                    part_vals.append(vals[start:stop])
                    cursors[i] = stop
            if len(part_keys) == 1:
                block_keys, block_vals = part_keys[0], part_vals[0]
            else:
                all_keys = np.concatenate(part_keys)
                all_vals = np.concatenate(part_vals)
                order = np.argsort(all_keys, kind="stable")
                block_keys = all_keys[order]
                block_vals = all_vals[order]
            folded_keys, folded_vals, num_runs = fold_sorted_runs(block_keys,
                                                                  block_vals)
            adder_stats.elements_processed += len(block_keys)
            adder_stats.additions += len(block_keys) - num_runs
            if len(folded_keys):
                out_key_parts.append(folded_keys)
                out_val_parts.append(folded_vals)

        if not out_key_parts:
            key_dtype = np.result_type(*[keys.dtype for keys, _ in streams])
            return np.empty(0, dtype=key_dtype), np.empty(0)
        if len(out_key_parts) == 1:
            return out_key_parts[0], out_val_parts[0]
        return np.concatenate(out_key_parts), np.concatenate(out_val_parts)
