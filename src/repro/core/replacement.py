"""Hardware victim selection: hash table + next-use reduction tree (§II-E).

The paper implements the near-Bélády replacement policy with two structures:
"to perform the associative search, we use a hash table to map row indexes
to positions in the buffer and a reduction tree of next use time to decide
which line to spill".  The behavioural simulation in
:mod:`repro.core.prefetcher` uses a software priority queue; this module
models the *hardware* structures so that

* the victim decisions can be cross-checked against the behavioural model
  (the tests do this), and
* the cost of a lookup / update / victim selection can be expressed in the
  quantities the hardware pays: hash probes and reduction-tree levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.utils.validation import check_positive_int

#: Next-use value stored for lines whose row is not needed again within the
#: look-ahead window; ties are broken towards the oldest line, mirroring the
#: behavioural model.
FAR_FUTURE = float("inf")


@dataclass
class ReplacementStats:
    """Activity counters of the victim-selection hardware."""

    hash_probes: int = 0
    hash_insertions: int = 0
    hash_collisions: int = 0
    next_use_updates: int = 0
    victim_selections: int = 0
    reduction_levels_traversed: int = 0


class BufferIndexHashTable:
    """Open-addressing hash table mapping row index → buffer line set.

    The width of the table is "much lower than the buffer itself" (§II-E);
    it is sized to twice the line count so the load factor stays below one
    half and probe chains stay short.
    """

    def __init__(self, num_lines: int, *, stats: ReplacementStats | None = None
                 ) -> None:
        check_positive_int(num_lines, "num_lines")
        self._size = max(8, 2 * num_lines)
        self._keys: list[int | None] = [None] * self._size
        self._values: list[set[int]] = [set() for _ in range(self._size)]
        self.stats = stats if stats is not None else ReplacementStats()

    @property
    def size(self) -> int:
        return self._size

    def _slot_of(self, row: int, *, for_insert: bool) -> int | None:
        slot = (row * 2654435761) % self._size
        for _ in range(self._size):
            self.stats.hash_probes += 1
            key = self._keys[slot]
            if key == row:
                return slot
            if key is None:
                return slot if for_insert else None
            self.stats.hash_collisions += 1
            slot = (slot + 1) % self._size
        return None

    def add_line(self, row: int, line: int) -> None:
        """Record that buffer ``line`` currently holds a segment of ``row``."""
        slot = self._slot_of(row, for_insert=True)
        if slot is None:
            raise RuntimeError("hash table is full; buffer larger than table")
        if self._keys[slot] is None:
            self._keys[slot] = row
            self.stats.hash_insertions += 1
        self._values[slot].add(line)

    def remove_line(self, row: int, line: int) -> None:
        """Remove one line of ``row``; frees the slot when none remain."""
        slot = self._slot_of(row, for_insert=False)
        if slot is None or line not in self._values[slot]:
            raise KeyError(f"line {line} of row {row} is not indexed")
        self._values[slot].discard(line)
        if not self._values[slot]:
            # Mark-deleted semantics: keep the key so later probe chains that
            # passed through this slot still find their entries.
            self._values[slot] = set()

    def lines_of(self, row: int) -> set[int]:
        """Buffer lines currently holding segments of ``row``."""
        slot = self._slot_of(row, for_insert=False)
        if slot is None or self._keys[slot] != row:
            return set()
        return set(self._values[slot])


class NextUseReductionTree:
    """Binary max-reduction tree over per-line next-use times.

    Every buffer line holds the next-use time of the row it caches; the
    victim is the line with the *largest* next-use time (furthest in the
    future).  The hardware evaluates this with a ``log2(lines)``-level
    comparator tree; updating one leaf touches one path of the same depth.
    """

    #: Leaf key of an empty (never-occupied or invalidated) line; loses every
    #: comparison against an occupied line.
    _EMPTY = (-1, -math.inf, -1)

    def __init__(self, num_lines: int, *,
                 stats: ReplacementStats | None = None) -> None:
        check_positive_int(num_lines, "num_lines")
        self._num_leaves = 1
        while self._num_leaves < num_lines:
            self._num_leaves *= 2
        self._num_lines = num_lines
        # Heap-style array of (unknown?, time-or-age, line) keys; internal
        # nodes hold the maximum of their children.  Unknown-next-use lines
        # outrank every known one, and older unknown lines outrank newer
        # ones — the same ordering the behavioural model uses.
        self._tree: list[tuple[int, float, int]] = (
            [self._EMPTY] * (2 * self._num_leaves))
        self.stats = stats if stats is not None else ReplacementStats()

    @property
    def depth(self) -> int:
        """Number of comparator levels between a leaf and the root."""
        return max(1, int(math.log2(self._num_leaves))) if self._num_leaves > 1 else 1

    def update(self, line: int, next_use: float, *, age: int = 0) -> None:
        """Set the next-use time of buffer ``line`` and repair the tree path.

        Args:
            line: buffer line index.
            next_use: next-use time; :data:`FAR_FUTURE` when unknown.
            age: tie-breaker for FAR_FUTURE lines — larger means older, and
                older lines are preferred victims, matching the behavioural
                model's oldest-unknown-first rule.
        """
        if not 0 <= line < self._num_lines:
            raise IndexError(f"line {line} out of range ({self._num_lines} lines)")
        if next_use == FAR_FUTURE:
            key = (1, float(age), line)
        else:
            key = (0, float(next_use), line)
        index = self._num_leaves + line
        self._tree[index] = key
        index //= 2
        while index >= 1:
            left, right = self._tree[2 * index], self._tree[2 * index + 1]
            self._tree[index] = max(left, right)
            index //= 2
            self.stats.reduction_levels_traversed += 1
        self.stats.next_use_updates += 1

    def invalidate(self, line: int) -> None:
        """Remove ``line`` from consideration (its slot is empty)."""
        if not 0 <= line < self._num_lines:
            raise IndexError(f"line {line} out of range ({self._num_lines} lines)")
        index = self._num_leaves + line
        self._tree[index] = self._EMPTY
        index //= 2
        while index >= 1:
            self._tree[index] = max(self._tree[2 * index], self._tree[2 * index + 1])
            index //= 2

    def victim(self) -> int:
        """Return the line with the furthest next use (the spill victim)."""
        self.stats.victim_selections += 1
        self.stats.reduction_levels_traversed += self.depth
        unknown, _, line = self._tree[1]
        if line < 0 or unknown < 0:
            raise RuntimeError("no occupied line to evict")
        return line

    def furthest_next_use(self) -> float:
        """Next-use time of the current victim (for inspection/testing)."""
        unknown, time, line = self._tree[1]
        if line < 0:
            raise RuntimeError("no occupied line to evict")
        return FAR_FUTURE if unknown == 1 else time
