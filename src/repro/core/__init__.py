"""SpArch core: the paper's primary contribution.

The public entry point is :class:`repro.core.accelerator.SpArch`, which wires
together matrix condensing, the Huffman tree scheduler, the row prefetcher
and the pipelined multiply/merge datapath, and returns both the functional
SpGEMM result and the simulated performance/energy statistics.
"""

from repro.core.accelerator import SpArch, multiply
from repro.core.column_fetcher import ColumnFetcher, FetchedElement
from repro.core.condensing import condensed_column_weights, partial_matrix_sizes
from repro.core.config import BACKEND_FIELDS, SpArchConfig
from repro.core.fastpath import HAVE_NUMBA, fold_sorted_runs, row_offsets
from repro.core.huffman import (
    MergePlan,
    MergeRound,
    MergeTreeNode,
    huffman_schedule,
    initial_merge_way,
    sequential_schedule,
)
from repro.core.lookahead import DistanceListBuilder, LookaheadFifo
from repro.core.partial_matrix import PartialMatrixStore, PartialMatrixWriter
from repro.core.prefetcher import PrefetchStats, RowPrefetcher
from repro.core.replacement import (
    BufferIndexHashTable,
    NextUseReductionTree,
    ReplacementStats,
)
from repro.core.stats import SimulationStats, SpGEMMResult

__all__ = [
    "SpArch",
    "multiply",
    "ColumnFetcher",
    "FetchedElement",
    "condensed_column_weights",
    "partial_matrix_sizes",
    "SpArchConfig",
    "BACKEND_FIELDS",
    "HAVE_NUMBA",
    "fold_sorted_runs",
    "row_offsets",
    "MergePlan",
    "MergeRound",
    "MergeTreeNode",
    "huffman_schedule",
    "initial_merge_way",
    "sequential_schedule",
    "DistanceListBuilder",
    "LookaheadFifo",
    "PartialMatrixStore",
    "PartialMatrixWriter",
    "PrefetchStats",
    "RowPrefetcher",
    "BufferIndexHashTable",
    "NextUseReductionTree",
    "ReplacementStats",
    "SimulationStats",
    "SpGEMMResult",
]
