"""Architectural configuration of SpArch (Table I) plus ablation switches.

The defaults reproduce the configuration evaluated in the paper:

* 16×16 hierarchical merger (4×4 top level + 4×4 low level) at 1 GHz;
* a 6-layer merge tree merging up to 64 arrays simultaneously;
* 2 groups of 8 double-precision multipliers;
* a look-ahead buffer of 8192 elements in the MatA column fetcher;
* a prefetch buffer of 1024 lines × 48 elements × 12 bytes;
* 16 HBM channels of 8 GB/s each (128 GB/s aggregate).

The ``enable_*`` flags turn the paper's four techniques on and off for the
breakdown experiment of Figure 16.

The ``engine`` field selects between three functionally identical simulation
backends (see :mod:`repro.core.vectorized`, :mod:`repro.core.streaming` and
``tests/integration/test_engine_equivalence.py``):

* ``"scalar"`` — the reference implementation that walks partial products
  element by element and merges streams pairwise, mirroring the hardware
  structure one step at a time;
* ``"vectorized"`` — batched numpy kernels (fancy-indexed partial-product
  generation, one stable argsort per merge round, ``np.add.reduceat``
  duplicate folding) with all cycle/traffic/comparator counters computed in
  closed form so the statistics stay bit-identical to the scalar model;
* ``"streaming"`` — the vectorized kernels with bounded working sets:
  partial products are generated lazily in chunks of
  ``streaming_chunk_leaves`` leaves as the merge plan consumes them, and
  each merge round is folded block by block (``streaming_block_elements``
  output elements at a time) instead of materialising every product of the
  matrix at once.  This is the backend that runs paper-scale (10⁵+-row)
  scenarios with unscaled Table I buffers.

The two ``streaming_*`` chunk sizes are *simulation-host* tuning knobs, not
architecture: they never change results, counters or traffic (a hypothesis
property test pins this), so they are excluded from cache keys and config
fingerprints via :data:`BACKEND_FIELDS`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.memory.hbm import HBMConfig
from repro.utils.validation import check_nonnegative_int, check_positive_int

#: Config fields that select or tune the simulation *backend* without
#: affecting any simulated quantity.  Cache keys and config fingerprints
#: (``repro.experiments.runner``, ``repro.engines.sparch``) exclude them so
#: switching backends or chunk sizes reuses existing cached results.
BACKEND_FIELDS = ("engine", "streaming_chunk_leaves",
                  "streaming_block_elements")


@dataclass(frozen=True)
class SpArchConfig:
    """Full architectural configuration of the simulated accelerator.

    Attributes:
        merger_width: elements merged per cycle by each array merger.
        merger_chunk_size: low-level comparator array width.
        merge_tree_layers: depth of the merge tree (ways = 2**layers).
        num_multipliers: double precision multipliers.
        lookahead_fifo_elements: MatA column fetcher look-ahead window.
        prefetch_buffer_lines: number of lines in the MatB row prefetcher.
        prefetch_line_elements: elements per prefetch buffer line.
        prefetch_element_bytes: bytes per buffered element.
        partial_matrix_writer_fifo: output FIFO depth before DRAM writes.
        index_bytes: bytes per COO index pair in DRAM (32-bit row + 32-bit
            column as in Table I).
        value_bytes: bytes per double precision value.
        clock_hz: core clock frequency.
        round_startup_cycles: fixed overhead charged per merge round (filling
            the look-ahead FIFO and the merge-tree pipelines); this is the
            startup overhead §III-C credits matrix condensing with amortising.
        hbm: HBM memory configuration.
        engine: simulation backend — ``"vectorized"`` (default),
            ``"scalar"`` or ``"streaming"``; all produce identical results
            and statistics.
        streaming_chunk_leaves: (streaming engine only) number of merge-plan
            leaves whose partial products are generated per batch; bounds
            the multiplier-side working set.
        streaming_block_elements: (streaming engine only) approximate
            number of merged elements folded per block inside a merge
            round; bounds the merge-side working set.
        enable_pipelined_merge: pipeline multiply and merge on chip (the
            first of the paper's four techniques).  When disabled the model
            degenerates to the two-phase OuterSPACE-style dataflow.
        enable_matrix_condensing: condense the left matrix (§II-B).
        enable_huffman_scheduler: schedule merges with a Huffman tree (§II-C).
        enable_row_prefetcher: cache right-matrix rows with the near-optimal
            replacement policy (§II-D).
    """

    merger_width: int = 16
    merger_chunk_size: int = 4
    merge_tree_layers: int = 6
    num_multipliers: int = 16
    lookahead_fifo_elements: int = 8192
    prefetch_buffer_lines: int = 1024
    prefetch_line_elements: int = 48
    prefetch_element_bytes: int = 12
    partial_matrix_writer_fifo: int = 1024
    index_bytes: int = 8
    value_bytes: int = 8
    clock_hz: float = 1e9
    round_startup_cycles: int = 256
    hbm: HBMConfig = dataclasses.field(default_factory=HBMConfig)
    engine: str = "vectorized"
    streaming_chunk_leaves: int = 64
    streaming_block_elements: int = 1 << 16
    enable_pipelined_merge: bool = True
    enable_matrix_condensing: bool = True
    enable_huffman_scheduler: bool = True
    enable_row_prefetcher: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.merger_width, "merger_width")
        check_positive_int(self.merger_chunk_size, "merger_chunk_size")
        check_positive_int(self.merge_tree_layers, "merge_tree_layers")
        check_positive_int(self.num_multipliers, "num_multipliers")
        check_positive_int(self.lookahead_fifo_elements, "lookahead_fifo_elements")
        check_positive_int(self.prefetch_buffer_lines, "prefetch_buffer_lines")
        check_positive_int(self.prefetch_line_elements, "prefetch_line_elements")
        check_positive_int(self.prefetch_element_bytes, "prefetch_element_bytes")
        check_positive_int(self.partial_matrix_writer_fifo,
                           "partial_matrix_writer_fifo")
        check_positive_int(self.index_bytes, "index_bytes")
        check_positive_int(self.value_bytes, "value_bytes")
        check_nonnegative_int(self.round_startup_cycles, "round_startup_cycles")
        if self.merger_width % self.merger_chunk_size != 0:
            raise ValueError("merger_width must be a multiple of merger_chunk_size")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if self.engine not in ("scalar", "vectorized", "streaming"):
            raise ValueError(
                "engine must be 'scalar', 'vectorized' or 'streaming', "
                f"got {self.engine!r}"
            )
        check_positive_int(self.streaming_chunk_leaves,
                           "streaming_chunk_leaves")
        check_positive_int(self.streaming_block_elements,
                           "streaming_block_elements")

    # ------------------------------------------------------------------
    @property
    def merge_ways(self) -> int:
        """Number of arrays the merge tree merges at once (64 by default)."""
        return 2 ** self.merge_tree_layers

    @property
    def element_bytes(self) -> int:
        """DRAM footprint of one COO element (index + value)."""
        return self.index_bytes + self.value_bytes

    @property
    def prefetch_buffer_bytes(self) -> int:
        """Total capacity of the MatB row prefetch buffer."""
        return (self.prefetch_buffer_lines * self.prefetch_line_elements
                * self.prefetch_element_bytes)

    @property
    def peak_multiply_flops(self) -> float:
        """Peak multiply throughput in FLOP/s (16 GFLOPS in the paper)."""
        return self.num_multipliers * self.clock_hz

    @property
    def peak_flops(self) -> float:
        """Peak multiply + add throughput (32 GFLOPS in the paper)."""
        return 2 * self.peak_multiply_flops

    # ------------------------------------------------------------------
    def with_features(self, *, pipelined_merge: bool | None = None,
                      matrix_condensing: bool | None = None,
                      huffman_scheduler: bool | None = None,
                      row_prefetcher: bool | None = None) -> "SpArchConfig":
        """Return a copy with some ablation switches overridden."""
        return dataclasses.replace(
            self,
            enable_pipelined_merge=(self.enable_pipelined_merge
                                    if pipelined_merge is None else pipelined_merge),
            enable_matrix_condensing=(self.enable_matrix_condensing
                                      if matrix_condensing is None
                                      else matrix_condensing),
            enable_huffman_scheduler=(self.enable_huffman_scheduler
                                      if huffman_scheduler is None
                                      else huffman_scheduler),
            enable_row_prefetcher=(self.enable_row_prefetcher
                                   if row_prefetcher is None else row_prefetcher),
        )

    def replace(self, **overrides) -> "SpArchConfig":
        """Return a copy with arbitrary fields overridden."""
        return dataclasses.replace(self, **overrides)
