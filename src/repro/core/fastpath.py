"""Compiled fast-path kernels for the merge/condensing hot loops.

The streaming backend (and, through shared helpers, the vectorized one)
funnels its per-block work through the two kernels here:

* :func:`fold_sorted_runs` — duplicate-key folding + exact-zero elimination
  of one sorted stream, the inner loop of every merge round;
* :func:`row_offsets` — the offset-within-row of every stored CSR element,
  the quantity matrix condensing groups by.

Each kernel has two implementations.  The numpy one is the reference and
always available; when :mod:`numba` is importable the jitted variant is
installed instead (``HAVE_NUMBA`` records which one is live).  The numba
loops replicate the numpy kernels' arithmetic exactly — ``fold`` accumulates
each run left to right, the same association ``np.add.reduceat`` uses — so
switching implementations never changes a bit of output; the differential
harness (``tests/integration/test_engine_equivalence.py``) holds either way.

The container this repository is developed in does not ship numba, so the
numpy-blocked path is the one CI exercises; the numba path is gated, not
required.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    HAVE_NUMBA = True
except ImportError:  # numba is an optional accelerator, never a dependency
    numba = None
    HAVE_NUMBA = False


# ----------------------------------------------------------------------
# Duplicate folding + zero elimination
# ----------------------------------------------------------------------
def _fold_sorted_runs_numpy(keys: np.ndarray, values: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray, int]:
    """Fold equal-key runs of a sorted stream and drop exact zeros.

    Same ``np.add.reduceat`` kernel as
    :meth:`repro.hardware.adder.AdderSlice.fold` (so the float sums are
    bit-identical to the scalar backend), with the surviving keys gathered
    once after the zero mask.  Returns ``(out_keys, out_values, num_runs)``
    — the run count is what the adder's addition counter derives from.
    """
    if not len(keys):
        return keys.copy(), values.copy(), 0
    run_starts = np.empty(len(keys), dtype=bool)
    run_starts[0] = True
    np.not_equal(keys[1:], keys[:-1], out=run_starts[1:])
    num_runs = int(np.count_nonzero(run_starts))
    if num_runs == len(keys):
        # All keys distinct: nothing folds, only zeros could drop.
        keep = values != 0.0
        if keep.all():
            return keys, values, num_runs
        return keys[keep], values[keep], num_runs
    starts = np.flatnonzero(run_starts)
    folded_vals = np.add.reduceat(values, starts)
    keep = folded_vals != 0.0
    return keys[starts[keep]], folded_vals[keep], num_runs


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    @numba.njit(cache=True)
    def _fold_sorted_runs_jit(keys, values):
        n = len(keys)
        out_keys = np.empty(n, dtype=keys.dtype)
        out_vals = np.empty(n, dtype=values.dtype)
        num_runs = 0
        out = 0
        i = 0
        while i < n:
            key = keys[i]
            acc = values[i]
            i += 1
            # Left-to-right accumulation: the association np.add.reduceat
            # (and the scalar AdderSlice) applies, so the IEEE-754 sums
            # match the numpy kernel exactly.
            while i < n and keys[i] == key:
                acc += values[i]
                i += 1
            num_runs += 1
            if acc != 0.0:
                out_keys[out] = key
                out_vals[out] = acc
                out += 1
        return out_keys[:out], out_vals[:out], num_runs

    def fold_sorted_runs(keys: np.ndarray, values: np.ndarray
                         ) -> tuple[np.ndarray, np.ndarray, int]:
        out_keys, out_vals, num_runs = _fold_sorted_runs_jit(keys, values)
        return out_keys, out_vals, int(num_runs)

    fold_sorted_runs.__doc__ = _fold_sorted_runs_numpy.__doc__
else:
    fold_sorted_runs = _fold_sorted_runs_numpy


# ----------------------------------------------------------------------
# Condensing offsets
# ----------------------------------------------------------------------
def _row_offsets_numpy(indptr: np.ndarray) -> np.ndarray:
    """Offset of every stored element within its CSR row.

    Element ``p`` of row-major CSR storage lives in condensed column
    ``p - indptr[row(p)]``; this is the grouping key of matrix condensing
    (§II-B) and of the leaf streamers' element grouping.
    """
    nnz = int(indptr[-1])
    row_lengths = np.diff(indptr)
    return (np.arange(nnz, dtype=np.int64)
            - np.repeat(indptr[:-1], row_lengths))


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    @numba.njit(cache=True)
    def _row_offsets_jit(indptr):
        nnz = indptr[-1]
        offsets = np.empty(nnz, dtype=np.int64)
        for row in range(len(indptr) - 1):
            start = indptr[row]
            for position in range(start, indptr[row + 1]):
                offsets[position] = position - start
        return offsets

    def row_offsets(indptr: np.ndarray) -> np.ndarray:
        return _row_offsets_jit(np.asarray(indptr, dtype=np.int64))

    row_offsets.__doc__ = _row_offsets_numpy.__doc__
else:
    row_offsets = _row_offsets_numpy
