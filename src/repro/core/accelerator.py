"""Top-level SpArch accelerator model (§II-E, Figure 10).

:class:`SpArch` wires together the paper's four techniques — pipelined
multiply/merge, matrix condensing, the Huffman tree scheduler and the MatB
row prefetcher — into one simulated SpGEMM execution.  Each technique can be
disabled individually through :class:`repro.core.config.SpArchConfig`, which
is how the breakdown experiment of Figure 16 walks from the OuterSPACE-style
dataflow to the full design.

The simulation is *functional* (the result matrix is exact and verified
against scipy in the tests) and *transaction-level* for performance: every
DRAM byte is charged to a :class:`~repro.memory.traffic.TrafficCategory`,
compute cycles come from the multiplier/merger throughput models, and the
final cycle count is the maximum of the memory-bound and compute-bound
estimates plus the per-round startup overhead — the bandwidth-bound analysis
the paper's roofline (Figure 15) is built on.

Three interchangeable backends implement the multiply/merge hot path, chosen
by ``SpArchConfig.engine``: the scalar reference in this module
(:class:`_LeafStreamer` + :class:`~repro.hardware.merge_tree.MergeTree`),
the batched implementation in :mod:`repro.core.vectorized`, and the
bounded-memory chunked implementation in :mod:`repro.core.streaming` used
for paper-scale runs.  All produce identical results and statistics — see
``tests/integration/test_engine_equivalence.py``.  Everything else (plan
construction, the prefetcher policy, traffic accounting, result
materialisation) is shared code.
"""

from __future__ import annotations

import numpy as np

from repro.core.column_fetcher import ColumnFetcher
from repro.core.condensing import (
    multiplication_count,
    original_column_partial_sizes,
    partial_matrix_sizes,
)
from repro.core.config import SpArchConfig
from repro.core.huffman import MergePlan, huffman_schedule, sequential_schedule
from repro.core.partial_matrix import PartialMatrixStore, PartialMatrixWriter
from repro.core.prefetcher import PrefetchStats, RowPrefetcher
from repro.core.stats import SimulationStats, SpGEMMResult
from repro.core.streaming import StreamingLeafStreamer, StreamingMergeTree
from repro.core.vectorized import VectorizedLeafStreamer, VectorizedMergeTree
from repro.formats.condensed import CondensedMatrix
from repro.formats.convert import csr_to_csc
from repro.formats.csr import CSRMatrix
from repro.formats.keys import linear_keys
from repro.hardware.merge_tree import MergeTree
from repro.hardware.multiplier_array import MultiplierArray
from repro.memory.hbm import HBMModel
from repro.memory.traffic import TrafficCategory, TrafficCounter


class _LeafStreamer:
    """Produces the partial-product stream of one merge-plan leaf.

    With matrix condensing enabled a leaf is one *condensed column* of the
    left operand; without condensing it is one *original column*.  Either
    way the leaf's partial products leave the multipliers already sorted by
    linearised (row, column) key, ready for the merge tree.
    """

    def __init__(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                 multipliers: MultiplierArray, *, condensing: bool) -> None:
        self._matrix_a = matrix_a
        self._matrix_b = matrix_b
        self._multipliers = multipliers
        self._condensing = condensing
        self._condensed = CondensedMatrix(matrix_a) if condensing else None
        if condensing:
            self._leaf_columns = list(range(self._condensed.num_condensed_columns))
        else:
            occupied = np.unique(matrix_a.indices)
            self._leaf_columns = [int(c) for c in occupied]
        # The un-condensed path streams original columns, so it needs the
        # column-major (CSC) view of A; the condensed path never does.
        self._csc = csr_to_csc(matrix_a) if not condensing else None

    @property
    def condensed(self) -> CondensedMatrix | None:
        return self._condensed

    @property
    def num_leaves(self) -> int:
        return len(self._leaf_columns)

    @property
    def leaf_columns(self) -> list[int]:
        """Column index (condensed or original) backing every leaf."""
        return list(self._leaf_columns)

    # ------------------------------------------------------------------
    def leaf_weights(self) -> np.ndarray:
        """Estimated partial-matrix size of every leaf (Huffman weights)."""
        if self._condensing:
            return partial_matrix_sizes(self._condensed, self._matrix_b)
        sizes = original_column_partial_sizes(self._matrix_a, self._matrix_b)
        return sizes[self._leaf_columns]

    def leaf_a_elements(self, leaf: int) -> int:
        """Left-matrix elements the column fetcher reads for this leaf."""
        column = self._leaf_columns[leaf]
        if self._condensing:
            return int(self._condensed.column_nnz(column))
        return int(self._csc.col_nnz(column))

    def leaf_access_order(self, leaf: int) -> np.ndarray:
        """Right-matrix rows needed by this leaf, in consumption order."""
        column = self._leaf_columns[leaf]
        if self._condensing:
            return self._condensed.column(column).original_cols.copy()
        return np.full(self._csc.col_nnz(column), column, dtype=np.int64)

    def leaf_stream(self, leaf: int) -> tuple[np.ndarray, np.ndarray]:
        """Multiply one leaf and return its sorted (key, value) stream."""
        column = self._leaf_columns[leaf]
        if self._condensing:
            col = self._condensed.column(column)
            rows, cols, vals = self._multipliers.multiply_column(
                col.rows, col.original_cols, col.values, self._matrix_b)
        else:
            a_rows, a_vals = self._csc.col(column)
            a_cols = np.full(len(a_rows), column, dtype=np.int64)
            rows, cols, vals = self._multipliers.multiply_column(
                a_rows, a_cols, a_vals, self._matrix_b)
        keys = linear_keys(rows, cols, self._matrix_b.num_cols)
        return keys, vals


class SpArch:
    """The SpArch accelerator: functional SpGEMM plus performance simulation.

    Args:
        config: architectural configuration; defaults to the Table I setup.

    Example:
        >>> from repro.matrices import random_matrix
        >>> from repro.core import SpArch
        >>> a = random_matrix(128, 128, 512, seed=1)
        >>> result = SpArch().multiply(a, a)
        >>> result.stats.dram_bytes > 0
        True
    """

    def __init__(self, config: SpArchConfig | None = None) -> None:
        self._config = config or SpArchConfig()

    @property
    def config(self) -> SpArchConfig:
        return self._config

    # ------------------------------------------------------------------
    def multiply(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> SpGEMMResult:
        """Simulate ``C = A · B`` and return the result with statistics.

        Args:
            matrix_a: left operand in CSR format.
            matrix_b: right operand in CSR format; ``A.shape[1]`` must equal
                ``B.shape[0]``.

        Returns:
            :class:`~repro.core.stats.SpGEMMResult` containing the exact CSR
            result and the simulated performance statistics.
        """
        if matrix_a.shape[1] != matrix_b.shape[0]:
            raise ValueError(
                f"dimension mismatch: cannot multiply {matrix_a.shape} by "
                f"{matrix_b.shape}"
            )
        config = self._config
        result_shape = (matrix_a.shape[0], matrix_b.shape[1])

        traffic = TrafficCounter()
        hbm = HBMModel(config.hbm)
        multipliers = MultiplierArray(config.num_multipliers)
        tree_kwargs = dict(num_layers=config.merge_tree_layers,
                           merger_width=config.merger_width,
                           chunk_size=config.merger_chunk_size,
                           fifo_capacity=config.partial_matrix_writer_fifo)
        if config.engine == "streaming":
            merge_tree: MergeTree = StreamingMergeTree(
                block_elements=config.streaming_block_elements, **tree_kwargs)
        elif config.engine == "vectorized":
            merge_tree = VectorizedMergeTree(**tree_kwargs)
        else:
            merge_tree = MergeTree(**tree_kwargs)
        store = PartialMatrixStore(traffic, element_bytes=config.element_bytes)
        writer = PartialMatrixWriter(traffic, element_bytes=config.element_bytes,
                                     fifo_depth=config.partial_matrix_writer_fifo)

        stats = SimulationStats(clock_hz=config.clock_hz,
                                peak_bandwidth_bytes_per_cycle=config.hbm.bytes_per_cycle)
        stats.traffic = traffic

        # Degenerate cases: an empty operand produces an empty result.
        if matrix_a.nnz == 0 or matrix_b.nnz == 0:
            stats.scheduler = self._scheduler_name()
            return SpGEMMResult(CSRMatrix.empty(result_shape), stats)

        if config.engine == "streaming":
            streamer: _LeafStreamer = StreamingLeafStreamer(
                matrix_a, matrix_b, multipliers,
                condensing=config.enable_matrix_condensing,
                chunk_leaves=config.streaming_chunk_leaves)
        elif config.engine == "vectorized":
            streamer = VectorizedLeafStreamer(
                matrix_a, matrix_b, multipliers,
                condensing=config.enable_matrix_condensing)
        else:
            streamer = _LeafStreamer(
                matrix_a, matrix_b, multipliers,
                condensing=config.enable_matrix_condensing)
        weights = streamer.leaf_weights()
        plan = self._build_plan(weights)
        if isinstance(streamer, StreamingLeafStreamer):
            # Tell the lazy streamer which leaves the plan consumes next, so
            # its generation chunks line up with consumption order.
            streamer.bind_plan(plan)
        plan_is_pipelined = config.enable_pipelined_merge

        stats.num_partial_matrices = streamer.num_leaves
        stats.condensed_columns = (streamer.condensed.num_condensed_columns
                                   if streamer.condensed is not None else 0)
        stats.num_merge_rounds = len(plan.rounds)
        stats.scheduler = plan.scheduler
        stats.multiplications = multiplication_count(matrix_a, matrix_b)

        # --- Input traffic ------------------------------------------------
        # The left operand is streamed exactly once, leaf by leaf.
        a_bytes = matrix_a.nnz * config.element_bytes
        traffic.add(TrafficCategory.MATRIX_A_READ, a_bytes)

        access_order = self._consumption_access_order(streamer, plan)
        prefetch_stats = self._simulate_matrix_b_reads(matrix_b, access_order,
                                                       traffic)
        stats.prefetch_hit_rate = prefetch_stats.hit_rate
        stats.prefetch_bytes_saved = (prefetch_stats.bytes_without_buffer
                                      - prefetch_stats.dram_bytes_read)
        stats.buffer_element_reads = prefetch_stats.element_hits

        # --- Execute the merge plan ----------------------------------------
        out_keys, out_vals = self._execute_plan(streamer, plan, merge_tree,
                                                store, plan_is_pipelined)
        result = writer.write_result(out_keys, out_vals, result_shape)

        # --- Derived statistics --------------------------------------------
        stats.output_nnz = result.nnz
        stats.additions = merge_tree.stats.additions
        stats.comparator_ops = merge_tree.stats.comparator_ops
        stats.merge_tree_elements = merge_tree.stats.elements_into_root

        multiply_cycles = -(-stats.multiplications // config.num_multipliers)
        merge_cycles = merge_tree.stats.cycles
        startup_cycles = (len(plan.rounds) + 1) * config.round_startup_cycles
        stats.compute_cycles = multiply_cycles + merge_cycles
        stats.memory_cycles = hbm.memory_cycles(traffic.read_bytes,
                                                traffic.write_bytes)
        stats.cycles = max(stats.compute_cycles, stats.memory_cycles) + startup_cycles
        stats.runtime_seconds = hbm.runtime_seconds(stats.cycles)
        return SpGEMMResult(result, stats)

    # ------------------------------------------------------------------
    def _scheduler_name(self) -> str:
        return "huffman" if self._config.enable_huffman_scheduler else "sequential"

    def _build_plan(self, weights: np.ndarray) -> MergePlan:
        """Schedule the merge rounds over the leaf weights."""
        ways = self._config.merge_ways
        weight_list = [float(w) for w in weights]
        if self._config.enable_huffman_scheduler:
            return huffman_schedule(weight_list, ways)
        return sequential_schedule(weight_list, ways)

    def _consumption_access_order(self, streamer: _LeafStreamer,
                                  plan: MergePlan) -> np.ndarray:
        """Right-matrix row sequence in the order leaves are consumed."""
        pieces: list[np.ndarray] = []
        for merge_round in plan.rounds:
            for node_id in merge_round.input_ids:
                if node_id < plan.num_leaves:
                    pieces.append(streamer.leaf_access_order(node_id))
        if not plan.rounds and plan.num_leaves == 1:
            pieces.append(streamer.leaf_access_order(0))
        if not pieces:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(pieces)

    def _simulate_matrix_b_reads(self, matrix_b: CSRMatrix,
                                 access_order: np.ndarray,
                                 traffic: TrafficCounter) -> PrefetchStats:
        """Charge the right-operand read traffic, with or without the buffer.

        Without the prefetcher every *run* of consecutive accesses to the same
        row costs one full row fetch — the natural behaviour of a dataflow
        that holds only the row it is currently multiplying (this is what
        gives the un-condensed outer product its perfect input reuse).  With
        the prefetcher the Bélády-replacement row buffer is simulated over the
        whole access sequence.
        """
        config = self._config
        element_bytes = config.prefetch_element_bytes
        if len(access_order) == 0:
            return PrefetchStats()

        if config.enable_row_prefetcher:
            prefetcher = RowPrefetcher(
                matrix_b,
                num_lines=config.prefetch_buffer_lines,
                line_elements=config.prefetch_line_elements,
                element_bytes=element_bytes,
                lookahead_window=config.lookahead_fifo_elements,
            )
            prefetch_stats = prefetcher.simulate(access_order)
            traffic.add(TrafficCategory.MATRIX_B_READ,
                        prefetch_stats.dram_bytes_read)
            return prefetch_stats

        # No prefetcher: one row fetch per run of equal consecutive accesses.
        # A boolean run-start mask separates first touches (misses) from the
        # repeats inside a run (hits) without walking the sequence in Python.
        row_nnz = matrix_b.nnz_per_row()
        stats = PrefetchStats()
        access_nnz = row_nnz[access_order]
        run_starts = np.empty(len(access_order), dtype=bool)
        run_starts[0] = True
        np.not_equal(access_order[1:], access_order[:-1], out=run_starts[1:])
        total_elements = int(access_nnz.sum())
        miss_elements = int(access_nnz[run_starts].sum())
        stats.accesses = len(access_order)
        stats.bytes_without_buffer = total_elements * element_bytes
        stats.element_hits = total_elements - miss_elements
        stats.element_misses = miss_elements
        stats.dram_bytes_read = miss_elements * element_bytes
        traffic.add(TrafficCategory.MATRIX_B_READ, stats.dram_bytes_read)
        return stats

    def _execute_plan(self, streamer: _LeafStreamer, plan: MergePlan,
                      merge_tree: MergeTree, store: PartialMatrixStore,
                      pipelined: bool) -> tuple[np.ndarray, np.ndarray]:
        """Run every merge round functionally, charging spill traffic.

        When ``pipelined`` is false the model degenerates to the two-phase
        OuterSPACE dataflow: every leaf's multiplied result is written to DRAM
        before merging starts and read back when its round executes, exactly
        the behaviour the pipelined merge tree eliminates.
        """
        if plan.num_leaves == 1:
            keys, vals = streamer.leaf_stream(0)
            if not pipelined:
                store.write(0, keys, vals)
                keys, vals = store.read(0)
            folded_keys, folded_vals = merge_tree.merge([(keys, vals)])
            return folded_keys, folded_vals

        results: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        root_id = plan.root_id
        for merge_round in plan.rounds:
            streams: list[tuple[np.ndarray, np.ndarray]] = []
            for node_id in merge_round.input_ids:
                if node_id < plan.num_leaves:
                    keys, vals = streamer.leaf_stream(node_id)
                    if not pipelined:
                        # Two-phase dataflow: the multiplied result takes a
                        # round trip through DRAM before it can be merged.
                        store.write(node_id, keys, vals)
                        keys, vals = store.read(node_id)
                else:
                    keys, vals = store.read(node_id)
                streams.append((keys, vals))
            merged_keys, merged_vals = merge_tree.merge(streams)
            if merge_round.output_id == root_id:
                results[root_id] = (merged_keys, merged_vals)
            else:
                store.write(merge_round.output_id, merged_keys, merged_vals)
        return results[root_id]


def multiply(matrix_a: CSRMatrix, matrix_b: CSRMatrix,
             config: SpArchConfig | None = None) -> SpGEMMResult:
    """Convenience wrapper: simulate ``A · B`` on a fresh :class:`SpArch`.

    Args:
        matrix_a: left operand in CSR format.
        matrix_b: right operand in CSR format.
        config: optional architectural configuration (Table I by default).
    """
    return SpArch(config).multiply(matrix_a, matrix_b)
