"""Partial matrix fetcher and writer (§II-E, Figure 10).

When the number of partial matrices exceeds the merge tree's 64 ways, the
partially merged result of a round is written back to DRAM and re-read in a
later round.  :class:`PartialMatrixStore` models that DRAM-resident pool:
it keeps the *functional* content of every spilled result (so correctness
can be verified end to end) and charges every spill and reload to the DRAM
traffic counter.

:class:`PartialMatrixWriter` models the output stage: it buffers the final
merged stream and converts it from the internal COO representation to the
CSR result written to DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.convert import coo_to_csr
from repro.formats.csr import CSRMatrix
from repro.memory.traffic import TrafficCategory, TrafficCounter


@dataclass
class StoredPartialMatrix:
    """One partially merged result spilled to DRAM.

    Attributes:
        node_id: id of the merge-plan node this result corresponds to.
        keys: linearised (row · num_cols + col) coordinates, sorted.
        values: values aligned with ``keys``.
    """

    node_id: int
    keys: np.ndarray
    values: np.ndarray

    @property
    def nnz(self) -> int:
        return int(len(self.keys))


class PartialMatrixStore:
    """DRAM pool of partially merged results with traffic accounting.

    Args:
        traffic: counter to charge spills and reloads to.
        element_bytes: bytes per COO element in DRAM.
    """

    def __init__(self, traffic: TrafficCounter, *, element_bytes: int = 16) -> None:
        self._traffic = traffic
        self._element_bytes = element_bytes
        self._stored: dict[int, StoredPartialMatrix] = {}
        self.total_spilled_elements = 0
        self.total_reloaded_elements = 0

    # ------------------------------------------------------------------
    @property
    def num_stored(self) -> int:
        """Number of partial results currently resident in DRAM."""
        return len(self._stored)

    def contains(self, node_id: int) -> bool:
        return node_id in self._stored

    def write(self, node_id: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Spill a partially merged result to DRAM."""
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if node_id in self._stored:
            raise ValueError(f"partial result {node_id} already stored")
        self._stored[node_id] = StoredPartialMatrix(node_id, keys, values)
        self.total_spilled_elements += len(keys)
        self._traffic.add(TrafficCategory.PARTIAL_WRITE,
                          len(keys) * self._element_bytes)

    def read(self, node_id: int) -> tuple[np.ndarray, np.ndarray]:
        """Reload a partially merged result; the entry is consumed."""
        try:
            stored = self._stored.pop(node_id)
        except KeyError:
            raise KeyError(f"partial result {node_id} is not stored") from None
        self.total_reloaded_elements += stored.nnz
        self._traffic.add(TrafficCategory.PARTIAL_READ,
                          stored.nnz * self._element_bytes)
        return stored.keys, stored.values

    def peek_nnz(self, node_id: int) -> int:
        """Size of a stored partial result without consuming it."""
        return self._stored[node_id].nnz


class PartialMatrixWriter:
    """Converts the final merged stream to CSR and charges the write traffic.

    Args:
        traffic: counter to charge the final result write to.
        element_bytes: bytes per output element (index + value).
        fifo_depth: output FIFO depth (1024 elements in Table I); recorded
            for the SRAM area model.
    """

    def __init__(self, traffic: TrafficCounter, *, element_bytes: int = 16,
                 fifo_depth: int = 1024) -> None:
        self._traffic = traffic
        self._element_bytes = element_bytes
        self._fifo_depth = fifo_depth
        self.total_elements_written = 0

    @property
    def fifo_depth(self) -> int:
        return self._fifo_depth

    def write_result(self, keys: np.ndarray, values: np.ndarray,
                     shape: tuple[int, int]) -> CSRMatrix:
        """Materialise the final CSR result and charge its DRAM write."""
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        num_cols = shape[1]
        if num_cols and (len(keys) < 2 or bool(np.all(keys[1:] > keys[:-1]))):
            # The merge tree emits strictly increasing keys (folded and
            # zero-eliminated), so the stream already *is* canonical CSR
            # content: build it directly instead of re-sorting through the
            # generic COO canonicalisation.
            rows = keys // num_cols
            counts = np.bincount(rows, minlength=shape[0])
            indptr = np.zeros(shape[0] + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            result = CSRMatrix(indptr, keys % num_cols, values.copy(), shape)
        else:
            rows = keys // num_cols if num_cols else keys
            cols = keys % num_cols if num_cols else keys
            result = coo_to_csr(COOMatrix(rows, cols, values, shape))
        self.total_elements_written += result.nnz
        self._traffic.add(TrafficCategory.RESULT_WRITE,
                          result.nnz * self._element_bytes)
        return result
