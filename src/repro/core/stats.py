"""Simulation result containers.

:class:`SimulationStats` aggregates everything the experiments need:
functional counts (multiplications, additions, output nonzeros), DRAM
traffic by category, cycle counts, derived performance (GFLOPS, bandwidth
utilisation) and datapath activity (comparator operations, buffer hit rate).
:class:`SpGEMMResult` bundles those statistics with the functional result.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.formats.csr import CSRMatrix
from repro.memory.traffic import TrafficCategory, TrafficCounter


@dataclass
class SimulationStats:
    """Aggregate statistics of one simulated SpGEMM execution.

    Attributes:
        cycles: total simulated core cycles.
        runtime_seconds: ``cycles / clock_hz``.
        multiplications: scalar multiplications performed.
        additions: scalar additions performed while folding duplicates.
        output_nnz: nonzeros of the final result.
        traffic: DRAM traffic broken down by category.
        num_partial_matrices: leaves of the merge schedule (after condensing,
            if enabled).
        num_merge_rounds: rounds executed on the merge tree.
        condensed_columns: condensed column count of the left operand
            (equals the partial matrix count when condensing is enabled).
        prefetch_hit_rate: element hit rate of the MatB row buffer.
        prefetch_bytes_saved: DRAM bytes the row buffer avoided re-reading.
        comparator_ops: comparator operations in the merge tree.
        memory_cycles: cycles attributable to DRAM transfers.
        compute_cycles: cycles attributable to the multiply/merge datapath.
        scheduler: name of the merge scheduler used.
    """

    cycles: int = 0
    runtime_seconds: float = 0.0
    multiplications: int = 0
    additions: int = 0
    output_nnz: int = 0
    traffic: TrafficCounter = field(default_factory=TrafficCounter)
    num_partial_matrices: int = 0
    num_merge_rounds: int = 0
    condensed_columns: int = 0
    prefetch_hit_rate: float = 0.0
    prefetch_bytes_saved: int = 0
    comparator_ops: int = 0
    memory_cycles: int = 0
    compute_cycles: int = 0
    merge_tree_elements: int = 0
    buffer_element_reads: int = 0
    scheduler: str = "huffman"
    clock_hz: float = 1e9
    peak_bandwidth_bytes_per_cycle: float = 128.0

    # ------------------------------------------------------------------
    @property
    def flops(self) -> int:
        """Useful floating point operations (multiplications + additions)."""
        return self.multiplications + self.additions

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s at the simulated clock."""
        if self.runtime_seconds <= 0:
            return 0.0
        return self.flops / self.runtime_seconds / 1e9

    @property
    def dram_bytes(self) -> int:
        """Total DRAM traffic in bytes."""
        return self.traffic.total_bytes

    @property
    def operational_intensity(self) -> float:
        """FLOPs per DRAM byte actually moved."""
        if self.dram_bytes == 0:
            return 0.0
        return self.flops / self.dram_bytes

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of peak DRAM bandwidth used over the whole execution."""
        if self.cycles <= 0:
            return 0.0
        peak = self.peak_bandwidth_bytes_per_cycle * self.cycles
        return min(1.0, self.dram_bytes / peak) if peak else 0.0

    def to_dict(self) -> dict:
        """Serialise every field to a JSON-compatible dict.

        The experiment runner memoises simulation results on disk through
        this round trip; :meth:`from_dict` restores an equal instance.
        """
        payload = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self) if f.name != "traffic"
        }
        payload["traffic"] = self.traffic.by_category()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationStats":
        """Inverse of :meth:`to_dict`."""
        data = dict(payload)
        traffic = TrafficCounter()
        for name, num_bytes in data.pop("traffic", {}).items():
            traffic.add(TrafficCategory(name), int(num_bytes))
        return cls(traffic=traffic, **data)

    def summary(self) -> dict[str, float]:
        """Flat dict of the headline numbers, for reporting."""
        return {
            "cycles": float(self.cycles),
            "runtime_seconds": self.runtime_seconds,
            "gflops": self.gflops,
            "dram_bytes": float(self.dram_bytes),
            "operational_intensity": self.operational_intensity,
            "bandwidth_utilization": self.bandwidth_utilization,
            "multiplications": float(self.multiplications),
            "additions": float(self.additions),
            "output_nnz": float(self.output_nnz),
            "num_partial_matrices": float(self.num_partial_matrices),
            "num_merge_rounds": float(self.num_merge_rounds),
            "prefetch_hit_rate": self.prefetch_hit_rate,
        }


@dataclass
class SpGEMMResult:
    """Functional result plus simulation statistics of one SpGEMM run."""

    matrix: CSRMatrix
    stats: SimulationStats

    @property
    def nnz(self) -> int:
        """Nonzeros of the result matrix."""
        return self.matrix.nnz

    def __repr__(self) -> str:
        return (f"SpGEMMResult(nnz={self.nnz}, cycles={self.stats.cycles}, "
                f"gflops={self.stats.gflops:.2f})")
