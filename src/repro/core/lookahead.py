"""Look-ahead FIFO and distance list builder (§II-E, Figure 10).

The MatA column fetcher pushes the stream of left-matrix elements it is
about to consume into a look-ahead FIFO (8192 elements in Table I).  The
*distance list builder* walks that FIFO and computes, for every right-matrix
row, when it will next be needed.  The row prefetcher uses those next-use
times to implement the near-Bélády replacement policy: the further in the
future a buffered row is needed again, the better a victim it is.

The look-ahead window is finite, which is exactly why Figure 17(d) sweeps
its size: a row whose next use lies beyond the window looks identical to a
row that is never used again.
"""

from __future__ import annotations

from collections import defaultdict, deque

import numpy as np

from repro.utils.validation import check_nonnegative_int, check_positive_int

#: Next-use value meaning "not referenced within the look-ahead window".
UNKNOWN_NEXT_USE = float("inf")


class LookaheadFifo:
    """Sliding window over the future right-matrix row access sequence.

    Args:
        access_sequence: right-matrix row index consumed at every time step,
            in multiplier consumption order.
        window: number of future accesses visible at any time (the look-ahead
            FIFO depth).
    """

    def __init__(self, access_sequence: np.ndarray, window: int) -> None:
        self._sequence = np.asarray(access_sequence, dtype=np.int64)
        if self._sequence.size == 0:
            # Zero-nnz left operand: nothing will ever be consumed, so the
            # FIFO degenerates to an empty window — any non-negative depth
            # (including 0) is acceptable instead of raising.
            check_nonnegative_int(window, "window")
        else:
            check_positive_int(window, "window")
        self._window = window

    @property
    def window(self) -> int:
        return self._window

    @property
    def sequence(self) -> np.ndarray:
        return self._sequence

    def __len__(self) -> int:
        return len(self._sequence)

    def visible_slice(self, now: int) -> np.ndarray:
        """Accesses visible from time ``now``: positions ``now+1 .. now+window``."""
        if now < -1:
            raise ValueError("now must be >= -1")
        start = now + 1
        return self._sequence[start:start + self._window]


class DistanceListBuilder:
    """Computes next-use times of right-matrix rows under a finite window.

    The builder pre-indexes every row's access positions so that
    :meth:`next_use` runs in amortised O(1): it keeps a cursor per row that
    only moves forward as simulated time advances.
    """

    def __init__(self, lookahead: LookaheadFifo) -> None:
        self._lookahead = lookahead
        self._positions: dict[int, deque[int]] = defaultdict(deque)
        for position, row in enumerate(lookahead.sequence):
            self._positions[int(row)].append(position)

    @property
    def window(self) -> int:
        return self._lookahead.window

    def access_positions(self, row: int) -> list[int]:
        """All positions at which ``row`` is accessed (for testing)."""
        return list(self._positions.get(int(row), ()))

    def next_use(self, row: int, now: int) -> float:
        """Next access position of ``row`` strictly after time ``now``.

        Returns :data:`UNKNOWN_NEXT_USE` when the next use lies beyond the
        look-ahead window (or the row is never used again) — the prefetcher
        cannot tell those cases apart, by design.
        """
        positions = self._positions.get(int(row))
        if not positions:
            return UNKNOWN_NEXT_USE
        while positions and positions[0] <= now:
            positions.popleft()
        if not positions:
            return UNKNOWN_NEXT_USE
        next_position = positions[0]
        if next_position - now > self._lookahead.window:
            return UNKNOWN_NEXT_USE
        return float(next_position)

    def reuse_distance_histogram(self, *, max_distance: int | None = None
                                 ) -> dict[int, int]:
        """Histogram of distances between consecutive uses of the same row.

        Useful for analysing how large the prefetch buffer must be for a
        given matrix (the knee of Figure 17(a)).
        """
        last_seen: dict[int, int] = {}
        histogram: dict[int, int] = defaultdict(int)
        for position, row in enumerate(self._lookahead.sequence):
            row = int(row)
            if row in last_seen:
                distance = position - last_seen[row]
                if max_distance is None or distance <= max_distance:
                    histogram[distance] += 1
            last_seen[row] = position
        return dict(histogram)
