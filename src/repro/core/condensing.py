"""Matrix condensing helpers (§II-B).

The condensed *view* itself lives in :mod:`repro.formats.condensed`; this
module derives the quantities the rest of the pipeline needs from it:

* the per-condensed-column element counts (the load on the column fetcher);
* the estimated partial-matrix sizes, i.e. how many products the multiplier
  array emits for each condensed column — these are the leaf weights fed to
  the Huffman tree scheduler.
"""

from __future__ import annotations

import numpy as np

from repro.formats.condensed import CondensedMatrix
from repro.formats.csr import CSRMatrix


def condensed_column_weights(condensed: CondensedMatrix) -> np.ndarray:
    """Number of left-matrix elements in every condensed column.

    ``weights[j]`` equals the number of rows of the left matrix with more
    than ``j`` nonzeros; it is non-increasing in ``j``.
    """
    return condensed.column_nnz_histogram()


def partial_matrix_sizes(condensed: CondensedMatrix, matrix_b: CSRMatrix
                         ) -> np.ndarray:
    """Estimated nonzeros of each condensed column's partial-product matrix.

    Each element of condensed column ``j`` multiplies one full row of the
    right matrix, so the partial matrix produced by column ``j`` holds

        sum over elements e in column j of  nnz(B[original_col(e), :])

    products (before any duplicate folding).  These counts are the Huffman
    leaf weights: for very sparse matrices duplicate folding is rare, so the
    pre-fold count is the paper's weight estimate.

    Args:
        condensed: condensed view of the left operand.
        matrix_b: right operand in CSR.

    Returns:
        int64 array of length ``condensed.num_condensed_columns``.
    """
    if condensed.shape[1] != matrix_b.shape[0]:
        raise ValueError(
            f"dimension mismatch: left matrix has {condensed.shape[1]} columns, "
            f"right matrix has {matrix_b.shape[0]} rows"
        )
    b_row_nnz = matrix_b.nnz_per_row()
    num_cols = condensed.num_condensed_columns
    if num_cols == 0:
        return np.zeros(0, dtype=np.int64)
    # Element p of the CSR storage lives in condensed column
    # ``p - indptr[row(p)]``, so one bincount over those offsets (weighted by
    # the right-matrix row lengths) sums every column at once — O(nnz)
    # instead of one O(nnz) pass per condensed column.
    csr = condensed.csr
    row_lengths = csr.nnz_per_row()
    offsets_in_row = (np.arange(csr.nnz, dtype=np.int64)
                      - np.repeat(csr.indptr[:-1], row_lengths))
    weights = b_row_nnz[csr.indices]
    sizes = np.zeros(num_cols, dtype=np.int64)
    np.add.at(sizes, offsets_in_row, weights)
    return sizes


def original_column_partial_sizes(matrix_a: CSRMatrix, matrix_b: CSRMatrix
                                  ) -> np.ndarray:
    """Partial-matrix sizes of the *un-condensed* outer product.

    Without condensing, every original column ``k`` of the left matrix forms
    one partial matrix of size ``nnz(A[:, k]) · nnz(B[k, :])``.  This is the
    quantity OuterSPACE (and the no-condensing ablation) must merge.

    Returns:
        int64 array of length ``matrix_a.num_cols``; columns with no
        nonzeros contribute zero-sized partial matrices.
    """
    if matrix_a.shape[1] != matrix_b.shape[0]:
        raise ValueError(
            f"dimension mismatch: left matrix has {matrix_a.shape[1]} columns, "
            f"right matrix has {matrix_b.shape[0]} rows"
        )
    col_counts = np.bincount(matrix_a.indices, minlength=matrix_a.num_cols)
    b_row_nnz = matrix_b.nnz_per_row()
    return (col_counts * b_row_nnz).astype(np.int64)


def multiplication_count(matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> int:
    """Total scalar multiplications of the SpGEMM (the paper's *M*).

    Independent of condensing: every nonzero ``A[i, k]`` multiplies every
    nonzero of ``B[k, :]`` exactly once.
    """
    if matrix_a.shape[1] != matrix_b.shape[0]:
        raise ValueError("dimension mismatch between operands")
    b_row_nnz = matrix_b.nnz_per_row()
    return int(b_row_nnz[matrix_a.indices].sum())


def condensation_ratio(matrix_a: CSRMatrix) -> float:
    """How much condensing shrinks the partial-matrix count.

    Returns ``original columns with nonzeros / condensed columns`` — the
    paper reports roughly three orders of magnitude on its benchmark suite.
    """
    condensed_cols = CondensedMatrix(matrix_a).num_condensed_columns
    if condensed_cols == 0:
        return 1.0
    occupied_cols = int(np.count_nonzero(
        np.bincount(matrix_a.indices, minlength=matrix_a.num_cols)))
    return occupied_cols / condensed_cols if occupied_cols else 1.0
