"""MatB row prefetcher with near-optimal buffer replacement (§II-D, Fig. 9).

Matrix condensing destroys the right operand's reuse: one condensed column
touches many different rows of B.  The prefetcher restores the reuse with an
on-chip row buffer whose replacement policy approximates Bélády's optimal
policy — it can, because the future access order is *known*: it is exactly
the original-column sequence of the left-matrix elements streaming through
the look-ahead FIFO.

Replacement policy, as in the paper:

* the victim is the buffered row whose next use is furthest in the future;
* rows whose next use lies beyond the look-ahead window are indistinguishable
  from rows that are never used again, and are preferred as victims (oldest
  first among them);
* rows are spilled line by line, so a long row can be partially evicted and
  the resident remainder still produces hits later (Figure 9, step 7→8).

The simulation runs at *segment* (buffer line) granularity and reports the
DRAM bytes read for matrix B, the hit rate, and the eviction count.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.lookahead import UNKNOWN_NEXT_USE, DistanceListBuilder, LookaheadFifo
from repro.formats.csr import CSRMatrix
from repro.memory.buffer import RowBuffer


@dataclass
class PrefetchStats:
    """Outcome of simulating the prefetcher over one access sequence."""

    accesses: int = 0
    element_hits: int = 0
    element_misses: int = 0
    segment_hits: int = 0
    segment_misses: int = 0
    evicted_lines: int = 0
    dram_bytes_read: int = 0
    bytes_without_buffer: int = 0
    per_access_miss_bytes: list[int] = field(default_factory=list, repr=False)

    @property
    def hit_rate(self) -> float:
        """Element-granularity buffer hit rate (the paper reports 62%)."""
        total = self.element_hits + self.element_misses
        return self.element_hits / total if total else 0.0

    @property
    def traffic_reduction(self) -> float:
        """How much DRAM read traffic of matrix B the buffer removed."""
        if self.dram_bytes_read == 0:
            return float("inf") if self.bytes_without_buffer else 1.0
        return self.bytes_without_buffer / self.dram_bytes_read


class RowPrefetcher:
    """Simulates the MatB row prefetcher over a known access sequence.

    Args:
        matrix_b: right operand in CSR format.
        num_lines: prefetch buffer lines (1024 in Table I).
        line_elements: elements per buffer line (48 in Table I).
        element_bytes: bytes per buffered element (12 in Table I).
        lookahead_window: look-ahead FIFO depth in elements (8192 in Table I).
    """

    def __init__(self, matrix_b: CSRMatrix, *, num_lines: int = 1024,
                 line_elements: int = 48, element_bytes: int = 12,
                 lookahead_window: int = 8192) -> None:
        self._matrix_b = matrix_b
        self._buffer = RowBuffer(num_lines, line_elements, element_bytes)
        self._lookahead_window = lookahead_window
        self._row_nnz = matrix_b.nnz_per_row()

    @property
    def buffer(self) -> RowBuffer:
        """The underlying row buffer (for occupancy/area accounting)."""
        return self._buffer

    # ------------------------------------------------------------------
    def _row_segments(self, row: int) -> int:
        return self._buffer.segments_for_row(int(self._row_nnz[row]))

    def _segment_elements(self, row: int, segment: int) -> int:
        """Number of real elements stored in segment ``segment`` of ``row``."""
        nnz = int(self._row_nnz[row])
        full = self._buffer.line_elements
        start = segment * full
        return max(0, min(full, nnz - start))

    def _segment_bytes(self, row: int, segment: int) -> int:
        return self._segment_elements(row, segment) * self._buffer.element_bytes

    # ------------------------------------------------------------------
    def simulate(self, access_sequence: np.ndarray) -> PrefetchStats:
        """Run the access sequence through the buffer and collect statistics.

        Args:
            access_sequence: right-matrix row index required by each
                successive left-matrix element (multiplier consumption order).

        Returns:
            :class:`PrefetchStats` with hit rates and DRAM byte counts.
        """
        access_sequence = np.asarray(access_sequence, dtype=np.int64)
        stats = PrefetchStats()
        if len(access_sequence) == 0:
            return stats

        lookahead = LookaheadFifo(access_sequence, self._lookahead_window)
        distances = DistanceListBuilder(lookahead)
        initially_resident = sorted(self._buffer.resident_rows)

        # Lazy max-heap of eviction candidates.  Priority is the next-use
        # position (smaller = needed sooner = keep); rows with unknown next
        # use get a large priority offset plus their insertion age so the
        # oldest unknown row is evicted first.  heapq is a min-heap, so we
        # negate priorities.
        unknown_base = float(len(access_sequence) + 1)
        counter = itertools.count()
        heap: list[tuple[float, int, int]] = []
        latest_stamp: dict[int, int] = {}

        def push_candidate(row: int, now: int) -> None:
            next_use = distances.next_use(row, now)
            if next_use == UNKNOWN_NEXT_USE:
                priority = unknown_base + (unknown_base - now)
            else:
                priority = float(next_use)
            stamp = next(counter)
            latest_stamp[row] = stamp
            heapq.heappush(heap, (-priority, stamp, row))

        def pop_victim(exclude_row: int) -> int:
            while heap:
                _, stamp, row = heap[0]
                if latest_stamp.get(row) != stamp or not self._buffer.resident_segments(row):
                    heapq.heappop(heap)
                    continue
                if row == exclude_row:
                    # Never spill the row we are currently fetching; fall back
                    # to the next candidate.
                    heapq.heappop(heap)
                    push_later.append(row)
                    continue
                return row
            # Degenerate case: the row being fetched is longer than the whole
            # buffer, so its own earlier segments are the only candidates.
            if self._buffer.resident_segments(exclude_row):
                return exclude_row
            raise RuntimeError("no eviction candidate available")

        # Rows left resident by an earlier simulate() call (warm start) must
        # be eviction candidates too, or they could never be replaced.
        for row in initially_resident:
            push_candidate(row, -1)

        for now, row in enumerate(access_sequence):
            row = int(row)
            stats.accesses += 1
            num_segments = self._row_segments(row)
            row_elements = int(self._row_nnz[row])
            row_bytes = row_elements * self._buffer.element_bytes
            stats.bytes_without_buffer += row_bytes

            if num_segments == 0:
                stats.per_access_miss_bytes.append(0)
                continue

            resident = self._buffer.resident_segments(row)
            missing = [s for s in range(num_segments) if s not in resident]
            hit_elements = sum(self._segment_elements(row, s) for s in resident)
            miss_elements = row_elements - hit_elements

            stats.element_hits += hit_elements
            stats.element_misses += miss_elements
            stats.segment_hits += len(resident)
            stats.segment_misses += len(missing)

            miss_bytes = 0
            push_later: list[int] = []
            for segment in missing:
                # Make room line by line, spilling the furthest-next-use row.
                while self._buffer.lines_free == 0:
                    victim = pop_victim(exclude_row=row)
                    victim_segments = sorted(self._buffer.resident_segments(victim),
                                             reverse=True)
                    self._buffer.evict(victim, victim_segments[0])
                    stats.evicted_lines += 1
                    if len(victim_segments) > 1:
                        push_candidate(victim, now)
                self._buffer.insert(row, segment)
                miss_bytes += self._segment_bytes(row, segment)
            for deferred_row in push_later:
                push_candidate(deferred_row, now)

            self._buffer.record_hit(len(resident))
            self._buffer.record_miss(len(missing))
            stats.dram_bytes_read += miss_bytes
            stats.per_access_miss_bytes.append(miss_bytes)
            # The row was just touched: refresh its eviction priority.
            push_candidate(row, now)

        return stats

    def simulate_without_buffer(self, access_sequence: np.ndarray) -> PrefetchStats:
        """Model the no-prefetcher case: every access re-reads its full row."""
        access_sequence = np.asarray(access_sequence, dtype=np.int64)
        stats = PrefetchStats()
        element_bytes = self._buffer.element_bytes
        for row in access_sequence:
            row_elements = int(self._row_nnz[int(row)])
            row_bytes = row_elements * element_bytes
            stats.accesses += 1
            stats.element_misses += row_elements
            stats.segment_misses += self._row_segments(int(row))
            stats.dram_bytes_read += row_bytes
            stats.bytes_without_buffer += row_bytes
            stats.per_access_miss_bytes.append(row_bytes)
        return stats
