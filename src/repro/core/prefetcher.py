"""MatB row prefetcher with near-optimal buffer replacement (§II-D, Fig. 9).

Matrix condensing destroys the right operand's reuse: one condensed column
touches many different rows of B.  The prefetcher restores the reuse with an
on-chip row buffer whose replacement policy approximates Bélády's optimal
policy — it can, because the future access order is *known*: it is exactly
the original-column sequence of the left-matrix elements streaming through
the look-ahead FIFO.

Replacement policy, as in the paper:

* the victim is the buffered row whose next use is furthest in the future;
* rows whose next use lies beyond the look-ahead window are indistinguishable
  from rows that are never used again, and are preferred as victims (oldest
  first among them);
* rows are spilled line by line, so a long row can be partially evicted and
  the resident remainder still produces hits later (Figure 9, step 7→8).

The simulation runs at *segment* (buffer line) granularity and reports the
DRAM bytes read for matrix B, the hit rate, and the eviction count.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.lookahead import UNKNOWN_NEXT_USE
from repro.formats.csr import CSRMatrix
from repro.memory.buffer import RowBuffer


@dataclass
class PrefetchStats:
    """Outcome of simulating the prefetcher over one access sequence."""

    accesses: int = 0
    element_hits: int = 0
    element_misses: int = 0
    segment_hits: int = 0
    segment_misses: int = 0
    evicted_lines: int = 0
    dram_bytes_read: int = 0
    bytes_without_buffer: int = 0
    per_access_miss_bytes: list[int] = field(default_factory=list, repr=False)

    @property
    def hit_rate(self) -> float:
        """Element-granularity buffer hit rate (the paper reports 62%)."""
        total = self.element_hits + self.element_misses
        return self.element_hits / total if total else 0.0

    @property
    def traffic_reduction(self) -> float:
        """How much DRAM read traffic of matrix B the buffer removed."""
        if self.dram_bytes_read == 0:
            return float("inf") if self.bytes_without_buffer else 1.0
        return self.bytes_without_buffer / self.dram_bytes_read


class RowPrefetcher:
    """Simulates the MatB row prefetcher over a known access sequence.

    Args:
        matrix_b: right operand in CSR format.
        num_lines: prefetch buffer lines (1024 in Table I).
        line_elements: elements per buffer line (48 in Table I).
        element_bytes: bytes per buffered element (12 in Table I).
        lookahead_window: look-ahead FIFO depth in elements (8192 in Table I).
    """

    def __init__(self, matrix_b: CSRMatrix, *, num_lines: int = 1024,
                 line_elements: int = 48, element_bytes: int = 12,
                 lookahead_window: int = 8192) -> None:
        self._matrix_b = matrix_b
        self._buffer = RowBuffer(num_lines, line_elements, element_bytes)
        self._lookahead_window = lookahead_window
        self._row_nnz = matrix_b.nnz_per_row()

    @property
    def buffer(self) -> RowBuffer:
        """The underlying row buffer (for occupancy/area accounting)."""
        return self._buffer

    # ------------------------------------------------------------------
    def _row_segments(self, row: int) -> int:
        return self._buffer.segments_for_row(int(self._row_nnz[row]))

    def _segment_elements(self, row: int, segment: int) -> int:
        """Number of real elements stored in segment ``segment`` of ``row``."""
        nnz = int(self._row_nnz[row])
        full = self._buffer.line_elements
        start = segment * full
        return max(0, min(full, nnz - start))

    def _segment_bytes(self, row: int, segment: int) -> int:
        return self._segment_elements(row, segment) * self._buffer.element_bytes

    # ------------------------------------------------------------------
    def simulate(self, access_sequence: np.ndarray) -> PrefetchStats:
        """Run the access sequence through the buffer and collect statistics.

        Args:
            access_sequence: right-matrix row index required by each
                successive left-matrix element (multiplier consumption order).

        Returns:
            :class:`PrefetchStats` with hit rates and DRAM byte counts.
        """
        access_sequence = np.asarray(access_sequence, dtype=np.int64)
        stats = PrefetchStats()
        if len(access_sequence) == 0:
            return stats

        # Per-row geometry, precomputed once: segment count, size of the
        # (possibly short) last segment, and total bytes.  The per-access
        # loop then runs in O(resident + missing) instead of re-deriving
        # them per segment.
        full = self._buffer.line_elements
        element_bytes = self._buffer.element_bytes
        row_nnz = self._row_nnz
        num_segments_arr = (-(-row_nnz // full)).astype(np.int64)
        last_elements_arr = row_nnz - (np.maximum(num_segments_arr, 1) - 1) * full

        # Fast path: when the buffer starts empty and every accessed row fits
        # simultaneously, the near-Bélády policy never evicts, so the whole
        # simulation collapses to "first touch misses, repeats hit" — exactly
        # computable with one first-occurrence mask and no replacement heap.
        if self._buffer.lines_used == 0:
            distinct_rows = np.unique(access_sequence)
            if int(num_segments_arr[distinct_rows].sum()) <= self._buffer.num_lines:
                return self._simulate_unbounded(access_sequence, distinct_rows,
                                                num_segments_arr, stats)

        initially_resident = sorted(self._buffer.resident_rows)

        # Next occurrence of the same row after each position, vectorized: a
        # stable argsort groups positions by row in ascending order, so a
        # position's successor within its group is its next use.  This
        # covers the per-access priority refresh; the irregular queries
        # (victim refresh, warm start) binary-search the same grouping via
        # ``next_use`` below, replacing the eager per-row distance lists of
        # :class:`~repro.core.lookahead.DistanceListBuilder` whose O(n)
        # construction dominated short simulations.
        n = len(access_sequence)
        grouped = np.argsort(access_sequence, kind="stable")
        next_occurrence = np.full(n, -1, dtype=np.int64)
        same_row = access_sequence[grouped[1:]] == access_sequence[grouped[:-1]]
        next_occurrence[grouped[:-1][same_row]] = grouped[1:][same_row]
        window = self._lookahead_window

        row_ranges: dict[int, tuple[int, int]] = {}

        def build_row_ranges() -> None:
            rows_in_order = access_sequence[grouped]
            starts = np.flatnonzero(np.concatenate(
                [np.ones(1, dtype=bool),
                 rows_in_order[1:] != rows_in_order[:-1]]))
            ends = np.append(starts[1:], n)
            row_ranges.update(zip(rows_in_order[starts].tolist(),
                                  zip(starts.tolist(), ends.tolist())))
            row_ranges[-1] = (0, 0)  # sentinel: mapping is built

        def next_use(row: int, now: int) -> float:
            """Next access of ``row`` strictly after ``now``, window-limited.

            Same contract as ``DistanceListBuilder.next_use``; the per-row
            position lists are slices of ``grouped`` found by binary search.
            """
            if not row_ranges:
                build_row_ranges()
            lo_hi = row_ranges.get(row)
            if lo_hi is None:
                return UNKNOWN_NEXT_USE
            lo, hi = lo_hi
            index = lo + int(np.searchsorted(grouped[lo:hi], now, side="right"))
            if index == hi:
                return UNKNOWN_NEXT_USE
            position = int(grouped[index])
            if position - now > window:
                return UNKNOWN_NEXT_USE
            return float(position)

        # Lazy max-heap of eviction candidates.  Priority is the next-use
        # position (smaller = needed sooner = keep); rows with unknown next
        # use get a large priority offset plus their insertion age so the
        # oldest unknown row is evicted first.  heapq is a min-heap, so
        # priorities are inverted.  All priorities are integers (positions or
        # ``unknown_base``-offset ages), so each entry packs
        # ``(max_priority - priority, stamp)`` into one machine int — integer
        # comparisons during sifting are several times cheaper than the
        # tuple comparisons they replace, at identical ordering: lower key ⇔
        # higher priority, ties broken by older stamp, exactly as before.
        unknown_base = len(access_sequence) + 1
        max_priority = 3 * unknown_base  # > unknown_base + (unknown_base + 1)
        stamp_shift = 40                 # stamps stay far below 2**40
        stamp_mask = (1 << stamp_shift) - 1
        counter = itertools.count()
        advance = counter.__next__
        heap: list[int] = []
        # Unknown-next-use candidates never outrank each other out of push
        # order: their priority ``unknown_base + (unknown_base - now)``
        # strictly decreases as time advances, and every unknown priority
        # exceeds every known one (positions are < unknown_base).  The
        # unknown class is therefore an exact FIFO and lives in a deque —
        # O(1) instead of a heap sift per push, which matters because most
        # refreshes fall outside the look-ahead window under pressure.
        unknown_fifo: deque[tuple[int, int]] = deque()
        stamp_rows: list[int] = []
        latest_stamp: dict[int, int] = {}
        heappush = heapq.heappush
        heappop = heapq.heappop

        def push_candidate(row: int, now: int) -> None:
            use = next_use(row, now)
            stamp = advance()
            latest_stamp[row] = stamp
            stamp_rows.append(row)
            if use == UNKNOWN_NEXT_USE:
                unknown_fifo.append((stamp, row))
            else:
                heappush(heap,
                         ((max_priority - int(use)) << stamp_shift) | stamp)

        resident_get_view = self._buffer.resident_segments_view

        def pop_victim(exclude_row: int) -> int:
            # Unknown-class candidates (oldest first) always outrank the
            # known-next-use heap, exactly as in the single-heap ordering.
            while unknown_fifo:
                stamp, row = unknown_fifo[0]
                if (latest_stamp.get(row) != stamp
                        or not resident_get_view(row)):
                    unknown_fifo.popleft()
                    continue
                if row == exclude_row:
                    unknown_fifo.popleft()
                    push_later.append(row)
                    continue
                return row
            while heap:
                stamp = heap[0] & stamp_mask
                row = stamp_rows[stamp]
                if (latest_stamp.get(row) != stamp
                        or not resident_get_view(row)):
                    heappop(heap)
                    continue
                if row == exclude_row:
                    # Never spill the row we are currently fetching; fall back
                    # to the next candidate.
                    heappop(heap)
                    push_later.append(row)
                    continue
                return row
            # Degenerate case: the row being fetched is longer than the whole
            # buffer, so its own earlier segments are the only candidates.
            if resident_get_view(exclude_row):
                return exclude_row
            raise RuntimeError("no eviction candidate available")

        # Rows left resident by an earlier simulate() call (warm start) must
        # be eviction candidates too, or they could never be replaced.
        for row in initially_resident:
            push_candidate(row, -1)

        # Local bindings and plain-int lists: the loop below runs once per
        # access, so attribute lookups and numpy scalar boxing dominate it
        # unless hoisted out.
        buffer = self._buffer
        resident_map = buffer.resident_map
        resident_get = resident_map.get
        nseg_list = num_segments_arr.tolist()
        nnz_list = row_nnz.tolist()
        last_elements_list = last_elements_arr.tolist()
        next_occ_list = next_occurrence.tolist()
        lines_free = buffer.lines_free
        stamp_rows_append = stamp_rows.append
        unknown_append = unknown_fifo.append
        per_access_miss_bytes = stats.per_access_miss_bytes
        element_hits = element_misses = segment_hits = segment_misses = 0
        dram_bytes_read = bytes_without_buffer = inserted_lines = 0

        for now, row in enumerate(access_sequence.tolist()):
            num_segments = nseg_list[row]
            row_elements = nnz_list[row]
            bytes_without_buffer += row_elements * element_bytes

            if num_segments == 0:
                per_access_miss_bytes.append(0)
                continue

            resident = resident_get(row)
            num_resident = len(resident) if resident is not None else 0
            if num_resident == num_segments:
                num_missing = 0
                hit_elements = row_elements
                miss_bytes = 0
            else:
                if num_resident:
                    missing = [s for s in range(num_segments) if s not in resident]
                    # All resident segments are full lines except possibly
                    # the row's last one, so the hit count is a closed form.
                    hit_elements = full * num_resident
                    if num_segments - 1 in resident:
                        hit_elements -= full - last_elements_list[row]
                else:
                    missing = list(range(num_segments))
                    hit_elements = 0
                num_missing = len(missing)
                miss_bytes = (row_elements - hit_elements) * element_bytes

                # Insert/evict straight on the residency mapping; the
                # buffer's counters are reconciled once after the loop via
                # apply_policy_effects().
                push_later: list[int] = []
                for segment in missing:
                    # Make room line by line, spilling the furthest-next-use
                    # row (its highest-numbered resident segment first).
                    while lines_free == 0:
                        victim = pop_victim(exclude_row=row)
                        victim_segments = resident_map[victim]
                        victim_segments.remove(max(victim_segments))
                        if victim_segments:
                            push_candidate(victim, now)
                        else:
                            del resident_map[victim]
                        lines_free += 1
                        stats.evicted_lines += 1
                    segments = resident_get(row)
                    if segments is None:
                        resident_map[row] = {segment}
                    else:
                        segments.add(segment)
                    lines_free -= 1
                    inserted_lines += 1
                for deferred_row in push_later:
                    push_candidate(deferred_row, now)

            element_hits += hit_elements
            element_misses += row_elements - hit_elements
            segment_hits += num_segments - num_missing
            segment_misses += num_missing
            dram_bytes_read += miss_bytes
            per_access_miss_bytes.append(miss_bytes)
            # The row was just touched: refresh its eviction priority using
            # the precomputed next-occurrence table (inlined push_candidate).
            stamp = advance()
            latest_stamp[row] = stamp
            stamp_rows_append(row)
            next_position = next_occ_list[now]
            if next_position < 0 or next_position - now > window:
                unknown_append((stamp, row))
            else:
                heappush(heap,
                         ((max_priority - next_position) << stamp_shift) | stamp)

        stats.accesses = len(access_sequence)
        stats.element_hits = element_hits
        stats.element_misses = element_misses
        stats.segment_hits = segment_hits
        stats.segment_misses = segment_misses
        stats.dram_bytes_read = dram_bytes_read
        stats.bytes_without_buffer = bytes_without_buffer
        buffer.record_hit(segment_hits)
        buffer.record_miss(segment_misses)
        buffer.apply_policy_effects(inserted_lines=inserted_lines,
                                    evicted_lines=stats.evicted_lines)
        return stats

    def _simulate_unbounded(self, access_sequence: np.ndarray,
                            distinct_rows: np.ndarray,
                            num_segments_arr: np.ndarray,
                            stats: PrefetchStats) -> PrefetchStats:
        """Eviction-free simulation (everything fits), fully vectorized.

        Produces byte-for-byte the same :class:`PrefetchStats` and final
        buffer state as the general replacement loop would when no eviction
        ever fires.
        """
        element_bytes = self._buffer.element_bytes
        access_nnz = self._row_nnz[access_sequence]
        access_segments = num_segments_arr[access_sequence]
        first_touch = np.zeros(len(access_sequence), dtype=bool)
        _, first_positions = np.unique(access_sequence, return_index=True)
        first_touch[first_positions] = True

        total_elements = int(access_nnz.sum())
        miss_elements = int(access_nnz[first_touch].sum())
        stats.accesses = len(access_sequence)
        stats.bytes_without_buffer = total_elements * element_bytes
        stats.element_misses = miss_elements
        stats.element_hits = total_elements - miss_elements
        stats.segment_misses = int(access_segments[first_touch].sum())
        stats.segment_hits = int(access_segments.sum()) - stats.segment_misses
        stats.dram_bytes_read = miss_elements * element_bytes
        stats.per_access_miss_bytes = np.where(
            first_touch, access_nnz * element_bytes, 0).tolist()

        self._buffer.record_hit(stats.segment_hits)
        self._buffer.record_miss(stats.segment_misses)
        for row in distinct_rows.tolist():
            for segment in range(int(num_segments_arr[row])):
                self._buffer.insert(row, segment)
        return stats

    def simulate_without_buffer(self, access_sequence: np.ndarray) -> PrefetchStats:
        """Model the no-prefetcher case: every access re-reads its full row."""
        access_sequence = np.asarray(access_sequence, dtype=np.int64)
        stats = PrefetchStats()
        element_bytes = self._buffer.element_bytes
        for row in access_sequence:
            row_elements = int(self._row_nnz[int(row)])
            row_bytes = row_elements * element_bytes
            stats.accesses += 1
            stats.element_misses += row_elements
            stats.segment_misses += self._row_segments(int(row))
            stats.dram_bytes_read += row_bytes
            stats.bytes_without_buffer += row_bytes
            stats.per_access_miss_bytes.append(row_bytes)
        return stats
