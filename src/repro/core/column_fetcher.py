"""MatA column fetcher (§II-E, Figure 10).

The left matrix is stored in CSR in DRAM but consumed by condensed column.
The column fetcher receives the set of condensed columns scheduled for the
current round, computes the DRAM addresses of their elements, and streams
them out in *load-sequence* order (Figure 7): row by row, and within a row
the scheduled condensed columns left to right.  That stream determines two
things downstream:

* the right-matrix row access order seen by the prefetcher (the element's
  original column index), and
* the merge-tree port each partial product is steered to (the element's
  condensed column index).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.condensed import CondensedMatrix


@dataclass(frozen=True)
class FetchedElement:
    """One left-matrix element produced by the column fetcher.

    Attributes:
        row: row index in the left matrix.
        original_col: original column index — selects the right-matrix row.
        condensed_col: condensed column index — selects the merge-tree port.
        value: element value.
    """

    row: int
    original_col: int
    condensed_col: int
    value: float


class ColumnFetcher:
    """Streams condensed columns of the left matrix out of DRAM.

    Args:
        condensed: condensed view of the left operand.
        element_bytes: DRAM footprint per element (index + value bytes).
    """

    def __init__(self, condensed: CondensedMatrix, *, element_bytes: int = 16) -> None:
        self._condensed = condensed
        self._element_bytes = element_bytes
        self.total_elements_fetched = 0
        self.total_bytes_fetched = 0

    @property
    def condensed(self) -> CondensedMatrix:
        return self._condensed

    # ------------------------------------------------------------------
    def fetch_columns(self, columns: list[int]) -> list[FetchedElement]:
        """Fetch the given condensed columns in load-sequence order.

        The stream is ordered by left-matrix row, then by condensed column
        within the row — the dashed-frame order of Figure 7 — so the partial
        products of each condensed column leave the multipliers sorted by
        (row, column) without any extra sorting hardware.

        Returns:
            The element stream; DRAM byte counters are updated as a side
            effect.
        """
        if not columns:
            return []
        csr = self._condensed.csr
        wanted = sorted(set(int(c) for c in columns))
        for column in wanted:
            if not 0 <= column < self._condensed.num_condensed_columns:
                raise IndexError(
                    f"condensed column {column} out of range "
                    f"(matrix has {self._condensed.num_condensed_columns})"
                )

        elements: list[FetchedElement] = []
        row_lengths = csr.nnz_per_row()
        for row in range(csr.num_rows):
            length = int(row_lengths[row])
            if length == 0:
                continue
            start = int(csr.indptr[row])
            for column in wanted:
                if column >= length:
                    break
                position = start + column
                elements.append(FetchedElement(
                    row=row,
                    original_col=int(csr.indices[position]),
                    condensed_col=column,
                    value=float(csr.data[position]),
                ))
        self.total_elements_fetched += len(elements)
        self.total_bytes_fetched += len(elements) * self._element_bytes
        return elements

    def access_order(self, columns: list[int]) -> np.ndarray:
        """Right-matrix row access sequence implied by fetching ``columns``."""
        return np.asarray([e.original_col for e in self.fetch_columns(columns)],
                          dtype=np.int64)

    def column_bytes(self, columns: list[int]) -> int:
        """DRAM bytes needed to read the elements of ``columns``."""
        histogram = self._condensed.column_nnz_histogram()
        wanted = sorted(set(int(c) for c in columns))
        total_elements = int(sum(histogram[c] for c in wanted if c < len(histogram)))
        return total_elements * self._element_bytes
