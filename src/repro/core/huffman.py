"""Huffman tree merge scheduler (§II-C, Figure 8).

After matrix condensing the number of partial matrices can still exceed the
64-way merge tree, so partially merged results must round-trip through DRAM.
The earlier a partial matrix is merged, the more future rounds its data is
re-read and re-written in, so the scheduler should merge *small* partial
matrices first and leave the large ones for the final rounds.

The paper models the whole merge process as a k-ary tree whose leaf weights
are the partial-matrix sizes; internal node weights are the sums of their
children (additions during merging are rare for very sparse matrices), and
the total DRAM traffic of partially merged results is proportional to the sum
of all internal node weights.  A k-ary Huffman tree minimises that sum.

Formula 1 of the paper determines how many nodes the *first* round merges so
that every subsequent round (including the last) is exactly k-way:

    k_init = (num_leaves - 2) mod (k - 1) + 2
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.utils.validation import check_positive_int


@dataclass
class MergeTreeNode:
    """One node of the merge schedule tree.

    Attributes:
        node_id: unique id; leaves use ids ``0 .. num_leaves-1`` in input
            order, internal nodes continue from there in creation order.
        weight: estimated number of nonzeros of the (partially merged)
            matrix this node represents.
        children: ids of the merged nodes (empty for leaves).
    """

    node_id: int
    weight: float
    children: tuple[int, ...] = ()

    @property
    def is_leaf(self) -> bool:
        return not self.children


@dataclass
class MergeRound:
    """One multiply-and-merge round executed on the merge tree.

    Attributes:
        round_index: 0-based execution order.
        input_ids: node ids merged in this round (leaves and/or earlier
            internal results).
        output_id: id of the internal node produced.
        output_weight: estimated nonzeros of the produced partial result.
    """

    round_index: int
    input_ids: tuple[int, ...]
    output_id: int
    output_weight: float


@dataclass
class MergePlan:
    """A complete merge schedule.

    Attributes:
        nodes: every node of the tree, indexed by ``node_id``.
        rounds: the merge rounds in execution order.
        num_leaves: number of initial partial matrices.
        ways: merger parallelism the plan was built for.
    """

    nodes: list[MergeTreeNode]
    rounds: list[MergeRound]
    num_leaves: int
    ways: int
    scheduler: str = "huffman"
    _depths: list[int] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------
    @property
    def root_id(self) -> int:
        """Id of the final result node."""
        if not self.rounds:
            return 0
        return self.rounds[-1].output_id

    @property
    def leaf_weight(self) -> float:
        """Sum of all leaf weights."""
        return sum(n.weight for n in self.nodes[: self.num_leaves])

    @property
    def internal_weight(self) -> float:
        """Sum of internal node weights ∝ DRAM traffic of partial results."""
        return sum(n.weight for n in self.nodes[self.num_leaves:])

    @property
    def total_weight(self) -> float:
        """Sum of *all* node weights — the quantity Figure 8 reports."""
        return self.leaf_weight + self.internal_weight

    @property
    def partial_result_weight(self) -> float:
        """Internal weight excluding the root (the root is the final output,
        which is written to DRAM exactly once regardless of the schedule)."""
        if not self.rounds:
            return 0.0
        return self.internal_weight - self.nodes[self.root_id].weight

    def leaf_depths(self) -> list[int]:
        """Depth of every leaf in the scheduled tree (root depth = 0)."""
        if self._depths:
            return list(self._depths)
        depth = [0] * len(self.nodes)
        for merge_round in reversed(self.rounds):
            parent_depth = depth[merge_round.output_id]
            for child in merge_round.input_ids:
                depth[child] = parent_depth + 1
        leaf_depths = depth[: self.num_leaves]
        self._depths.extend(leaf_depths)
        return list(leaf_depths)

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        consumed: set[int] = set()
        produced: set[int] = set(range(self.num_leaves))
        for merge_round in self.rounds:
            if len(merge_round.input_ids) > self.ways:
                raise ValueError(
                    f"round {merge_round.round_index} merges "
                    f"{len(merge_round.input_ids)} nodes on a {self.ways}-way merger"
                )
            for node_id in merge_round.input_ids:
                if node_id not in produced:
                    raise ValueError(f"node {node_id} merged before being produced")
                if node_id in consumed:
                    raise ValueError(f"node {node_id} merged twice")
                consumed.add(node_id)
            produced.add(merge_round.output_id)
        if self.num_leaves > 1:
            unconsumed = produced - consumed - {self.root_id}
            if unconsumed:
                raise ValueError(f"nodes never merged into the root: {unconsumed}")


def initial_merge_way(num_leaves: int, ways: int) -> int:
    """Formula 1: how many nodes the first round merges.

    Guarantees every later round (including the last) merges exactly
    ``ways`` nodes, so the root of the tree is always full.
    """
    check_positive_int(num_leaves, "num_leaves")
    check_positive_int(ways, "ways")
    if ways < 2:
        raise ValueError("ways must be at least 2")
    if num_leaves <= ways:
        return num_leaves
    return (num_leaves - 2) % (ways - 1) + 2


def huffman_schedule(weights: list[float], ways: int) -> MergePlan:
    """Build the k-ary Huffman merge schedule over ``weights``.

    In each round the ``k`` lightest un-merged nodes are merged into an
    internal node whose weight is the sum of its children — except the first
    round, which merges :func:`initial_merge_way` nodes so the tree is full.

    Args:
        weights: nonzero-count estimate of every initial partial matrix, in
            condensed-column order.
        ways: merger parallelism (64 for SpArch's merge tree).

    Returns:
        A validated :class:`MergePlan`.
    """
    check_positive_int(ways, "ways")
    if ways < 2:
        raise ValueError("ways must be at least 2")
    for weight in weights:
        if weight < 0:
            raise ValueError(f"weights must be non-negative, got {weight}")

    nodes = [MergeTreeNode(node_id=i, weight=float(w))
             for i, w in enumerate(weights)]
    plan = MergePlan(nodes=nodes, rounds=[], num_leaves=len(weights), ways=ways,
                     scheduler="huffman")
    if len(weights) <= 1:
        return plan

    # Priority queue of (weight, node_id); ties broken by id for determinism.
    heap: list[tuple[float, int]] = [(node.weight, node.node_id) for node in nodes]
    heapq.heapify(heap)

    first_round_way = initial_merge_way(len(weights), ways)
    round_index = 0
    while len(heap) > 1:
        take = first_round_way if round_index == 0 else min(ways, len(heap))
        children = [heapq.heappop(heap) for _ in range(min(take, len(heap)))]
        child_ids = tuple(node_id for _, node_id in children)
        new_weight = float(sum(weight for weight, _ in children))
        new_id = len(plan.nodes)
        plan.nodes.append(MergeTreeNode(node_id=new_id, weight=new_weight,
                                        children=child_ids))
        plan.rounds.append(MergeRound(round_index=round_index,
                                      input_ids=child_ids, output_id=new_id,
                                      output_weight=new_weight))
        heapq.heappush(heap, (new_weight, new_id))
        round_index += 1

    plan.validate()
    return plan


def sequential_schedule(weights: list[float], ways: int) -> MergePlan:
    """Build the baseline schedule used for comparison in Figure 8(a).

    The sequential scheduler has no notion of weight: it merges adjacent
    groups of ``ways`` partial matrices level by level in the order they
    appear until one result remains.  When a level does not divide evenly,
    the unpaired nodes are the *earliest* ones — they are carried forward
    and join a merge at a higher level, which is what Figure 8(a)'s example
    tree does (its total node weight of 365 is reproduced by the tests).

    Args:
        weights: nonzero-count estimate per partial matrix, in the order the
            scheduler would encounter them.
        ways: merger parallelism.

    Returns:
        A validated :class:`MergePlan` with ``scheduler == "sequential"``.
    """
    check_positive_int(ways, "ways")
    if ways < 2:
        raise ValueError("ways must be at least 2")
    for weight in weights:
        if weight < 0:
            raise ValueError(f"weights must be non-negative, got {weight}")

    nodes = [MergeTreeNode(node_id=i, weight=float(w))
             for i, w in enumerate(weights)]
    plan = MergePlan(nodes=nodes, rounds=[], num_leaves=len(weights), ways=ways,
                     scheduler="sequential")
    if len(weights) <= 1:
        return plan

    current: list[int] = list(range(len(weights)))
    round_index = 0
    while len(current) > 1:
        next_level: list[int] = []
        remainder = len(current) % ways
        # Carry the earliest nodes when the level does not divide evenly,
        # unless the whole level is smaller than one merge group.
        carry = remainder if len(current) > ways and remainder != 0 else 0
        next_level.extend(current[:carry])
        for start in range(carry, len(current), ways):
            group = current[start:start + ways]
            if len(group) == 1:
                next_level.append(group[0])
                continue
            new_weight = float(sum(plan.nodes[node_id].weight for node_id in group))
            new_id = len(plan.nodes)
            plan.nodes.append(MergeTreeNode(node_id=new_id, weight=new_weight,
                                            children=tuple(group)))
            plan.rounds.append(MergeRound(round_index=round_index,
                                          input_ids=tuple(group),
                                          output_id=new_id,
                                          output_weight=new_weight))
            round_index += 1
            next_level.append(new_id)
        current = next_level

    plan.validate()
    return plan
