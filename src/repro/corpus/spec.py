"""Frozen scenario/corpus declarations: matrix families as data, not objects.

A corpus sweep runs thousands of engine points across shards, processes and
machine restarts, so the *workload* has to be a value every participant can
reconstruct independently and deterministically — never a pile of matrix
objects shipped around.  A :class:`Scenario` is exactly that value: a named
recipe (generator family + frozen parameters + seed) whose :meth:`build`
regenerates bit-identical CSR arrays in any process.  A :class:`CorpusSpec`
is an ordered tuple of scenarios with an id, mirroring the frozen-spec
registries of :mod:`repro.workloads` and :mod:`repro.engines`.

The generator families cover the paper's evaluation axes:

* ``suite`` — one of the 20 benchmark proxies at a given dimension cap
  (scale ladders of the suite are corpora of these);
* ``rmat`` — the Figure 14 rMAT grid (dimension × edge factor);
* ``random`` — uniform fill at a target density (density sweeps);
* ``banded`` — FEM-style banded structure at a given bandwidth (band
  sweeps).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.formats.csr import CSRMatrix
from repro.matrices.rmat import RMATConfig, generate_rmat
from repro.matrices.suite import load_benchmark
from repro.matrices.synthetic import banded_matrix, random_matrix

#: Generator families a scenario may declare.
SCENARIO_FAMILIES = ("suite", "rmat", "random", "banded")

#: The parameter that bounds each family's dimension (used by
#: :meth:`Scenario.scaled` to cap a corpus for smoke runs).
_SIZE_PARAM = {"suite": "max_rows", "rmat": "num_rows", "random": "num_rows",
               "banded": "num_rows"}


@dataclass(frozen=True)
class Scenario:
    """One named, reproducible matrix recipe inside a corpus.

    Attributes:
        name: unique name within the corpus (``"wiki-Vote@300"``,
            ``"rmat-512-x8"``); sweep result stores record it per cell.
        family: generator family, one of :data:`SCENARIO_FAMILIES`.
        params: frozen ``((key, value), ...)`` generator parameters —
            a tuple of pairs rather than a dict so the spec is hashable
            and safely shared/pickled.
    """

    name: str
    family: str
    params: tuple[tuple[str, object], ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.family not in SCENARIO_FAMILIES:
            raise ValueError(
                f"family must be one of {SCENARIO_FAMILIES}, "
                f"got {self.family!r}"
            )
        keys = [key for key, _ in self.params]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate scenario parameters in {keys}")

    # ------------------------------------------------------------------
    def param_dict(self) -> dict[str, object]:
        """The parameters as a plain dict (a copy; the spec stays frozen)."""
        return dict(self.params)

    def build(self) -> CSRMatrix:
        """Generate the scenario's matrix — deterministic in any process.

        Every family threads an explicit seed (or the suite's stable
        per-benchmark seed), so shards and resumed runs reconstruct
        bit-identical operands from the spec alone.
        """
        params = self.param_dict()
        if self.family == "suite":
            return load_benchmark(str(params["benchmark"]),
                                  max_rows=int(params["max_rows"]))
        if self.family == "rmat":
            return generate_rmat(RMATConfig(
                num_rows=int(params["num_rows"]),
                edge_factor=int(params["edge_factor"]),
                seed=int(params.get("seed", 0))))
        if self.family == "random":
            num_rows = int(params["num_rows"])
            num_cols = int(params.get("num_cols", num_rows))
            nnz = int(round(float(params["density"]) * num_rows * num_cols))
            return random_matrix(num_rows, num_cols, nnz,
                                 seed=int(params.get("seed", 0)))
        # "banded" — __post_init__ guarantees no other family reaches here.
        return banded_matrix(int(params["num_rows"]),
                             float(params["avg_row_nnz"]),
                             bandwidth=int(params["bandwidth"]),
                             seed=int(params.get("seed", 0)))

    def to_dict(self) -> dict:
        """The recipe as a JSON-compatible payload (inverse of
        :meth:`from_dict`) — how serve requests carry inline scenarios."""
        return {"name": self.name, "family": self.family,
                "params": self.param_dict()}

    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        """Rebuild a scenario from a :meth:`to_dict` payload.

        Raises:
            ValueError: missing fields or an unknown family — the same
                validation :meth:`__post_init__` applies to literals.
        """
        try:
            name = payload["name"]
            family = payload["family"]
            params = payload["params"]
        except (TypeError, KeyError) as exc:
            raise ValueError(
                f"scenario payload needs name/family/params, got "
                f"{payload!r}"
            ) from exc
        if not isinstance(params, dict):
            raise ValueError(f"scenario params must be a dict, got "
                             f"{type(params).__name__}")
        return cls(str(name), str(family), tuple(params.items()))

    def scaled(self, max_rows: int) -> "Scenario":
        """Return this scenario with its dimension capped at ``max_rows``.

        The scenario *name* is preserved — a scaled corpus is the same
        grid run smaller (the convention of every experiment harness's
        ``--max-rows``), not a different corpus.
        """
        if max_rows < 1:
            raise ValueError(f"max_rows must be positive, got {max_rows}")
        size_key = _SIZE_PARAM[self.family]
        params = self.param_dict()
        params[size_key] = min(int(params[size_key]), max_rows)
        if "num_cols" in params:
            params["num_cols"] = min(int(params["num_cols"]), max_rows)
        if params == self.param_dict():
            return self
        return Scenario(self.name, self.family, tuple(params.items()))


@dataclass(frozen=True)
class CorpusSpec:
    """A named, ordered family of scenarios — the workload axis of a sweep.

    Attributes:
        corpus_id: registry id ("suite-ladder", "rmat-grid", ...).
        title: human-readable description.
        scenarios: the member scenarios, in canonical (shard-assignment)
            order.
    """

    corpus_id: str
    title: str
    scenarios: tuple[Scenario, ...]

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError(f"corpus {self.corpus_id!r} has no scenarios")
        names = [scenario.name for scenario in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(
                f"corpus {self.corpus_id!r} has duplicate scenario names"
            )

    # ------------------------------------------------------------------
    def scenario_names(self) -> list[str]:
        """Member scenario names in canonical order."""
        return [scenario.name for scenario in self.scenarios]

    def get_scenario(self, name: str) -> Scenario:
        """Look up one member scenario by name."""
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise KeyError(
            f"unknown scenario {name!r} in corpus {self.corpus_id!r}; "
            f"known: {', '.join(self.scenario_names())}"
        )

    def scaled(self, max_rows: int | None) -> "CorpusSpec":
        """Return this corpus with every scenario capped at ``max_rows``
        (``None`` returns the corpus unchanged)."""
        if max_rows is None:
            return self
        return CorpusSpec(self.corpus_id, self.title,
                          tuple(scenario.scaled(max_rows)
                                for scenario in self.scenarios))

    def build_all(self) -> dict[str, CSRMatrix]:
        """Materialise every scenario, keyed by name (canonical order)."""
        return {scenario.name: scenario.build()
                for scenario in self.scenarios}


#: Scenarios build deterministically from their parameters, so a recipe's
#: operand fingerprint never changes — memoising it by recipe lets sweep
#: resumes and cached serve requests skip matrix generation entirely for
#: scenarios this process has hashed before.
_FINGERPRINT_MEMO: dict[Scenario, str] = {}
_FINGERPRINT_LOCK = threading.Lock()


def scenario_fingerprint(scenario: Scenario) -> str:
    """The scenario's operand fingerprint, memoised by recipe.

    This is the content address a scenario-recipe request resolves to: the
    :func:`~repro.experiments.runner.matrix_fingerprint` of the matrix the
    recipe builds.  A cold scenario is built transiently just to hash; the
    matrix is dropped immediately (execution materialises operands when —
    and only when — a point actually runs).  Safe to call from concurrent
    service threads; a race on a cold recipe at worst hashes it twice.
    """
    with _FINGERPRINT_LOCK:
        fingerprint = _FINGERPRINT_MEMO.get(scenario)
    if fingerprint is None:
        # Imported lazily: the runner module pulls in the engine layers,
        # which corpus declarations must not depend on at import time.
        from repro.experiments.runner import matrix_fingerprint

        fingerprint = matrix_fingerprint(scenario.build())
        with _FINGERPRINT_LOCK:
            _FINGERPRINT_MEMO.setdefault(scenario, fingerprint)
    return fingerprint
