"""Scenario corpora: frozen, parameterized matrix families for sweeps.

* :mod:`repro.corpus.spec` — :class:`Scenario` (a named, seed-deterministic
  matrix recipe) and :class:`CorpusSpec` (an ordered family of scenarios).
* :mod:`repro.corpus.registry` — registered corpora (suite scale ladders,
  the rMAT grid, density/band sweeps, a CI smoke corpus) plus the public
  constructor helpers for declaring new ones.
"""

from repro.corpus.registry import (
    CORPORA,
    band_sweep,
    density_sweep,
    get_corpus,
    list_corpora,
    rmat_grid,
    suite_ladder,
)
from repro.corpus.spec import SCENARIO_FAMILIES, CorpusSpec, Scenario

__all__ = [
    "Scenario",
    "CorpusSpec",
    "SCENARIO_FAMILIES",
    "CORPORA",
    "list_corpora",
    "get_corpus",
    "suite_ladder",
    "rmat_grid",
    "density_sweep",
    "band_sweep",
]
