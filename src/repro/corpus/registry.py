"""Registry mapping corpus ids to frozen :class:`CorpusSpec` declarations.

Mirrors :mod:`repro.engines.registry` / :mod:`repro.workloads.registry`:
frozen entries in a tuple, id lookup with a helpful unknown-id error.  The
constructor helpers (:func:`suite_ladder`, :func:`rmat_grid`,
:func:`density_sweep`, :func:`band_sweep`) are public so downstream users
can declare corpora of their own without hand-rolling scenario tuples.
"""

from __future__ import annotations

from repro.corpus.spec import CorpusSpec, Scenario
from repro.matrices.rmat import rmat_benchmark_name

#: The prefetcher-sensitive benchmark subset the Figure 17 DSE sweeps
#: (small originals, so proxies keep realistic capacity pressure).
DSE_BENCHMARKS = ("wiki-Vote", "facebook", "email-Enron", "ca-CondMat",
                  "p2p-Gnutella31")

#: Big-suite benchmarks cheap enough to run at the paper-scale rung
#: routinely (sparsest nnz/row first: patents_main ≈ 2.3, m133-b3 = 4).
PAPER_SCALE_BENCHMARKS = ("patents_main", "m133-b3")

#: The paper-scale dimension rung: 10⁵ rows, the low end of the regime the
#: paper reports (10⁵–10⁶).  Scenarios at this rung run with *unscaled*
#: Table I buffers on the streaming engine.
PAPER_SCALE_RUNG = 100_000


# ----------------------------------------------------------------------
# Constructor helpers (public: build your own corpora from these)
# ----------------------------------------------------------------------
def suite_ladder(names: tuple[str, ...], rungs: tuple[int, ...], *,
                 corpus_id: str, title: str) -> CorpusSpec:
    """Benchmark proxies swept over a ladder of dimension caps.

    One scenario per ``(benchmark, rung)`` pair, named
    ``"<benchmark>@<rung>"`` — the scale axis of the paper's suite.
    """
    scenarios = tuple(
        Scenario(f"{name}@{rung}", "suite",
                 (("benchmark", name), ("max_rows", rung)))
        for name in names for rung in rungs
    )
    return CorpusSpec(corpus_id, title, scenarios)


def rmat_grid(sizes: tuple[int, ...], edge_factors: tuple[int, ...], *,
              corpus_id: str, title: str, seed: int = 0) -> CorpusSpec:
    """The Figure 14 grid: rMAT matrices over dimension × edge factor."""
    scenarios = tuple(
        Scenario(rmat_benchmark_name(size, factor), "rmat",
                 (("num_rows", size), ("edge_factor", factor),
                  ("seed", seed)))
        for size in sizes for factor in edge_factors
    )
    return CorpusSpec(corpus_id, title, scenarios)


def density_sweep(num_rows: int, densities: tuple[float, ...], *,
                  corpus_id: str, title: str, seed: int = 0) -> CorpusSpec:
    """Uniform random matrices at a ladder of densities."""
    scenarios = tuple(
        Scenario(f"uniform-{num_rows}-d{density:g}", "random",
                 (("num_rows", num_rows), ("density", density),
                  ("seed", seed)))
        for density in densities
    )
    return CorpusSpec(corpus_id, title, scenarios)


def band_sweep(num_rows: int, bandwidths: tuple[int, ...], *,
               avg_row_nnz: float = 8.0, corpus_id: str, title: str,
               seed: int = 0) -> CorpusSpec:
    """FEM-style banded matrices at a ladder of bandwidths."""
    scenarios = tuple(
        Scenario(f"band-{num_rows}-w{bandwidth}", "banded",
                 (("num_rows", num_rows), ("avg_row_nnz", avg_row_nnz),
                  ("bandwidth", bandwidth), ("seed", seed)))
        for bandwidth in bandwidths
    )
    return CorpusSpec(corpus_id, title, scenarios)


# ----------------------------------------------------------------------
# The registered corpora
# ----------------------------------------------------------------------
#: Every registered corpus, smallest first.
CORPORA: tuple[CorpusSpec, ...] = (
    CorpusSpec(
        "smoke",
        "Three tiny scenarios for CI shard smoke and the resumability tests",
        (
            Scenario("wiki-Vote@120", "suite",
                     (("benchmark", "wiki-Vote"), ("max_rows", 120))),
            Scenario("rmat-128-x4", "rmat",
                     (("num_rows", 128), ("edge_factor", 4), ("seed", 0))),
            Scenario("uniform-128-d0.02", "random",
                     (("num_rows", 128), ("density", 0.02), ("seed", 0))),
        ),
    ),
    suite_ladder(
        DSE_BENCHMARKS, (300,),
        corpus_id="suite-small",
        title="The Figure 17 benchmark subset at one modest proxy scale",
    ),
    suite_ladder(
        DSE_BENCHMARKS, (200, 400, 800),
        corpus_id="suite-ladder",
        title="Scale ladder of the Figure 17 benchmark subset (3 rungs)",
    ),
    rmat_grid(
        (256, 512, 1024), (4, 8, 16),
        corpus_id="rmat-grid",
        title="Figure 14-style rMAT grid (dimension x edge factor)",
    ),
    density_sweep(
        512, (0.005, 0.01, 0.02, 0.04),
        corpus_id="density-sweep",
        title="Uniform random matrices over a density ladder",
    ),
    band_sweep(
        512, (8, 16, 32, 64),
        corpus_id="band-sweep",
        title="Banded FEM-style matrices over a bandwidth ladder",
    ),
    suite_ladder(
        PAPER_SCALE_BENCHMARKS, (PAPER_SCALE_RUNG,),
        corpus_id="paper-scale",
        title="Paper-scale (10^5-row) suite rung, unscaled Table I buffers",
    ),
)

_BY_ID = {spec.corpus_id: spec for spec in CORPORA}


def list_corpora() -> list[str]:
    """Return the registered corpus ids, smallest first."""
    return [spec.corpus_id for spec in CORPORA]


def get_corpus(corpus_id: str) -> CorpusSpec:
    """Look up one corpus by id; raises ``KeyError`` with suggestions."""
    try:
        return _BY_ID[corpus_id]
    except KeyError:
        raise KeyError(
            f"unknown corpus {corpus_id!r}; known corpora: "
            f"{', '.join(list_corpora())}"
        ) from None


def resolve_scenario(ref: "str | dict | Scenario") -> Scenario:
    """Resolve a serve request's scenario reference to a recipe.

    Accepts the three forms a request may carry:

    * ``"corpus/name"`` — a registered scenario by reference, e.g.
      ``"smoke/wiki-Vote@120"`` (the corpus registry is the namespace);
    * a :meth:`Scenario.to_dict` payload — an inline recipe for matrices
      outside every registered corpus;
    * a :class:`Scenario` instance (in-process callers), returned as-is.

    Raises:
        ValueError: a malformed reference string or inline payload.
        KeyError: an unknown corpus id or scenario name.
    """
    if isinstance(ref, Scenario):
        return ref
    if isinstance(ref, dict):
        return Scenario.from_dict(ref)
    if not isinstance(ref, str):
        raise ValueError(
            f"scenario reference must be 'corpus/name', a recipe dict or "
            f"a Scenario, got {type(ref).__name__}"
        )
    corpus_id, separator, name = ref.partition("/")
    if not separator or not corpus_id or not name:
        raise ValueError(
            f"scenario reference must look like 'corpus/name', got {ref!r}"
        )
    return get_corpus(corpus_id).get_scenario(name)
