"""Fleet supervision: spawn worker subprocesses, kill some, finish anyway.

:func:`run_fleet` is the fabric's one-call entry point (and what
``python -m repro.fabric run`` wraps): serve a coordinator on an
ephemeral localhost port, spawn N ``python -m repro.fabric worker``
subprocesses against it, and poll the coordinator until every cell is
done or quarantined.  Polling is not passive — each ``snapshot`` drives
lease expiry, so a SIGKILLed worker's lease is reclaimed and retried
even while every surviving worker sits deep in a long simulation.

The supervisor doubles as the *process-level* chaos injector:
:class:`KillSpec` (``"WORKER@AFTER"`` on the CLI) SIGKILLs a given
worker once the sweep has at least ``AFTER`` cells done *and* that
worker holds a lease — the mid-lease kill the CI ``fabric-chaos`` job
exercises.  If the whole fleet dies before the sweep finishes, a fresh
worker is respawned so the run always terminates.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import repro
from repro.fabric.coordinator import Coordinator
from repro.fabric.lease import LeasePolicy
from repro.fabric.transport import (
    AUTHKEY_ENV,
    authkey_to_env,
    generate_authkey,
    serve_coordinator,
)
from repro.sweeps.registry import get_sweep


@dataclass(frozen=True)
class KillSpec:
    """Kill worker ``worker_index`` once ``after_cells`` cells are done
    (and it holds a lease — a guaranteed mid-lease kill)."""

    worker_index: int
    after_cells: int

    @classmethod
    def parse(cls, text: str) -> "KillSpec":
        """Parse the CLI form ``WORKER@AFTER``, e.g. ``0@2``."""
        worker, separator, after = text.partition("@")
        if not separator:
            raise ValueError(
                f"expected WORKER@AFTER_CELLS (e.g. '0@2'), got {text!r}")
        return cls(int(worker), int(after))


@dataclass(frozen=True)
class FleetSummary:
    """Outcome of one :func:`run_fleet` invocation."""

    sweep_id: str
    workers: int
    counts: dict
    quarantined: tuple[dict, ...]
    kills_fired: int
    respawns: int
    reclaimed: int
    duplicates_dropped: int

    def render(self) -> str:
        line = (f"[fabric {self.sweep_id}] {self.workers} workers: "
                f"{self.counts.get('done', 0)} done, "
                f"{len(self.quarantined)} quarantined, "
                f"{self.kills_fired} killed, {self.respawns} respawned, "
                f"{self.reclaimed} leases reclaimed, "
                f"{self.duplicates_dropped} duplicates dropped")
        for cell in self.quarantined:
            line += (f"\n  quarantined cell {cell['cell_index']} after "
                     f"{cell['attempts']} attempts: {cell['error']}")
        return line


def _worker_command(address: tuple[str, int], worker_id: str, *,
                    cache_dir: str | os.PathLike | None,
                    throttle: float) -> list[str]:
    command = [sys.executable, "-m", "repro.fabric", "worker",
               "--address", f"{address[0]}:{address[1]}",
               "--worker-id", worker_id]
    if cache_dir is not None:
        command += ["--cache-dir", os.fspath(cache_dir)]
    if throttle > 0:
        command += ["--throttle", str(throttle)]
    return command


def _worker_environment(authkey: bytes) -> dict[str, str]:
    """The subprocess environment: authkey plus an import path to us.

    The fleet may be driven from a checkout without an installed
    package, so the directory containing ``repro`` is prepended to
    ``PYTHONPATH`` explicitly.
    """
    environment = dict(os.environ)
    environment[AUTHKEY_ENV] = authkey_to_env(authkey)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (package_root if not existing
                                 else package_root + os.pathsep + existing)
    return environment


def run_fleet(sweep_id: str, *,
              store: str | os.PathLike | None,
              workers: int = 2,
              max_rows: int | None = None,
              policy: LeasePolicy | None = None,
              kills: tuple[KillSpec, ...] = (),
              throttle: float = 0.0,
              cache_dir: str | os.PathLike | None = None,
              fsync: bool = False,
              poll_interval: float = 0.2,
              timeout: float = 600.0) -> FleetSummary:
    """Run a sweep to completion under a coordinator/worker fleet.

    Args:
        sweep_id: registry sweep to run.
        store: store file path (the coordinator is the only writer).
        workers: initial worker subprocess count.
        max_rows: corpus scale cap (smoke runs).
        policy: lease policy; defaults tuned for interactive sweeps.
        kills: scripted mid-lease SIGKILLs (chaos).
        throttle: per-cell pacing sleep inside workers — gives scripted
            kills a deterministic mid-lease window on fast sweeps.
        cache_dir: runner cache directory workers share (a killed
            worker's completed simulations replay instead of re-running).
        fsync: fsync the store after each append.
        poll_interval: supervisor poll period.
        timeout: hard wall-clock cap on the whole run.

    Raises:
        TimeoutError: the fleet failed to finish within ``timeout``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    spec = get_sweep(sweep_id)
    coordinator = Coordinator(spec, store=store, max_rows=max_rows,
                              policy=policy, fsync=fsync)
    authkey = generate_authkey()
    handle = serve_coordinator(coordinator, authkey=authkey)
    environment = _worker_environment(authkey)

    spawned = 0

    def spawn() -> subprocess.Popen:
        nonlocal spawned
        worker_id = f"w{spawned}"
        spawned += 1
        return subprocess.Popen(
            _worker_command(handle.address, worker_id,
                            cache_dir=cache_dir, throttle=throttle),
            env=environment)

    processes: dict[int, subprocess.Popen] = {}
    kills_fired = 0
    respawns = 0
    try:
        processes = {index: spawn() for index in range(workers)}
        pending_kills = list(kills)
        deadline = time.monotonic() + timeout
        while True:
            snapshot = coordinator.snapshot()  # also reclaims leases
            if snapshot["finished"]:
                break
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"fabric run of {sweep_id!r} did not finish within "
                    f"{timeout}s: {snapshot['counts']}")
            holders = {lease["worker_id"]
                       for lease in snapshot["leases"]}
            for kill in list(pending_kills):
                process = processes.get(kill.worker_index)
                if (process is not None and process.poll() is None
                        and snapshot["counts"]["done"] >= kill.after_cells
                        and f"w{kill.worker_index}" in holders):
                    process.kill()
                    process.wait()
                    kills_fired += 1
                    pending_kills.remove(kill)
            alive = any(process.poll() is None
                        for process in processes.values())
            if not alive:
                # Whole fleet gone but cells remain: respawn one fresh
                # worker so the run always terminates.
                processes[len(processes)] = spawn()
                respawns += 1
            time.sleep(poll_interval)
        for process in processes.values():
            if process.poll() is None:
                try:  # workers exit on their next acquire -> "done"
                    process.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
    finally:
        for process in processes.values():
            if process.poll() is None:
                process.kill()
                process.wait()
        handle.stop()

    snapshot = coordinator.snapshot()
    return FleetSummary(
        sweep_id=sweep_id,
        workers=workers,
        counts=snapshot["counts"],
        quarantined=tuple(snapshot["quarantined"]),
        kills_fired=kills_fired,
        respawns=respawns,
        reclaimed=snapshot["stats"]["reclaimed"],
        duplicates_dropped=snapshot["stats"]["duplicates_dropped"],
    )
