"""Socket transport shared by the fabric and the serving layer.

Built on :class:`multiprocessing.managers.BaseManager`, which gives us an
authenticated, pickling RPC channel over a plain TCP socket for free —
no new dependencies.  Fabric worker subprocesses (spawned as ``python -m
repro.fabric worker``) and serve clients (``python -m repro.serve
request``/``bench``) alike connect with nothing but ``host:port`` and a
shared authkey.

The served object itself stays in the serving process; only method calls
cross the wire, and exactly the methods a client may call are exposed.
For the fabric coordinator the chaos-only ``force_lease`` hook is
deliberately *not* in :data:`EXPOSED`, so a misbehaving worker cannot
inject duplicate leases; the serve layer likewise keeps its shutdown path
off the wire (drains are signal-driven, server-side only).

The authkey travels to subprocesses via an environment variable
(hex-encoded; :data:`AUTHKEY_ENV` for the fabric, the serve CLI's
``REPRO_SERVE_AUTHKEY`` for the service), never argv, so it does not
leak into process listings.
"""

from __future__ import annotations

import os
import threading
from multiprocessing.managers import BaseManager

#: RPC methods a worker may call on the coordinator.
EXPOSED = ("describe", "acquire", "heartbeat", "complete", "fail",
           "snapshot", "finished")

#: Environment variable carrying the hex-encoded authkey to workers.
AUTHKEY_ENV = "REPRO_FABRIC_AUTHKEY"


def generate_authkey() -> bytes:
    """A fresh random authkey for one fabric run."""
    return os.urandom(16)


def authkey_to_env(authkey: bytes) -> str:
    return authkey.hex()


def authkey_from_env(environ=None, *, variable: str = AUTHKEY_ENV) -> bytes:
    """Read a fleet's or service's authkey from the environment.

    Raises:
        RuntimeError: the variable is missing or not valid hex — the
            process was started outside its fleet/service without
            credentials.
    """
    environ = os.environ if environ is None else environ
    value = environ.get(variable)
    if not value:
        raise RuntimeError(
            f"{variable} is not set; it carries the shared authkey and is "
            f"normally provided by the process that started the server")
    try:
        return bytes.fromhex(value)
    except ValueError:
        raise RuntimeError(f"{variable} is not valid hex") from None


class ServerHandle:
    """A running coordinator server: its address and a stop switch."""

    def __init__(self, server, thread: threading.Thread) -> None:
        self._server = server
        self._thread = thread
        self.address: tuple[str, int] = server.address

    def stop(self) -> None:
        """Ask the serve loop to wind down (idempotent, best-effort).

        The listener thread is a daemon either way; stopping just lets
        tests release the port promptly.
        """
        stop_event = getattr(self._server, "stop_event", None)
        if stop_event is not None:
            stop_event.set()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_object(obj, *, authkey: bytes, exposed: tuple[str, ...],
                 address: tuple[str, int] = ("127.0.0.1", 0),
                 typeid: str = "get_service",
                 thread_name: str = "transport-server") -> ServerHandle:
    """Serve any object on a TCP socket from a daemon thread.

    Returns a :class:`ServerHandle` whose ``address`` carries the bound
    ``(host, port)`` (port 0 binds an ephemeral one).  The object remains
    local — file handles, locks and clocks all live in this process; each
    client connection is handled on its own server thread, so a blocking
    method (a serve request waiting on a worker slot) stalls only its
    caller.
    """

    class _Server(BaseManager):
        pass

    _Server.register(typeid, callable=lambda: obj, exposed=tuple(exposed))
    manager = _Server(address=address, authkey=authkey)
    server = manager.get_server()

    def serve() -> None:
        try:
            server.serve_forever()
        except SystemExit:  # the manager's stop_event path exits the thread
            pass

    thread = threading.Thread(target=serve, daemon=True, name=thread_name)
    thread.start()
    return ServerHandle(server, thread)


def connect_object(address: tuple[str, int], *, authkey: bytes,
                   exposed: tuple[str, ...], typeid: str = "get_service"):
    """Connect to a served object; returns the RPC proxy.

    The proxy is thread-safe in the way multi-threaded clients need: each
    calling thread gets its own connection, so (for a fabric worker) the
    heartbeat thread and the main loop — or (for a bench client) every
    traffic thread — never share a socket.
    """

    class _Client(BaseManager):
        pass

    _Client.register(typeid, exposed=tuple(exposed))
    manager = _Client(address=tuple(address), authkey=authkey)
    manager.connect()
    return getattr(manager, typeid)()


def serve_coordinator(coordinator, *,
                      address: tuple[str, int] = ("127.0.0.1", 0),
                      authkey: bytes) -> ServerHandle:
    """Serve a fabric coordinator (see :func:`serve_object`)."""
    return serve_object(coordinator, address=address, authkey=authkey,
                        exposed=EXPOSED, typeid="get_coordinator",
                        thread_name="fabric-coordinator")


def connect_coordinator(address: tuple[str, int], *, authkey: bytes):
    """Connect to a served coordinator; returns the RPC proxy."""
    return connect_object(address, authkey=authkey, exposed=EXPOSED,
                          typeid="get_coordinator")


def parse_address(text: str) -> tuple[str, int]:
    """Parse ``host:port`` (as passed on the worker command line)."""
    host, separator, port = text.rpartition(":")
    if not separator or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)
