"""Socket transport for the fabric: coordinator RPC over a manager.

Built on :class:`multiprocessing.managers.BaseManager`, which gives us an
authenticated, pickling RPC channel over a plain TCP socket for free —
no new dependencies, and worker subprocesses (spawned as ``python -m
repro.fabric worker``) connect with nothing but ``host:port`` and a
shared authkey.

The coordinator object itself stays in the serving process; only method
calls cross the wire.  Exactly the methods a worker may call are
exposed — the chaos-only ``force_lease`` hook is deliberately *not* in
:data:`EXPOSED`, so a misbehaving worker cannot inject duplicate leases.

The authkey travels to worker subprocesses via the
:data:`AUTHKEY_ENV` environment variable (hex-encoded), never argv,
so it does not leak into process listings.
"""

from __future__ import annotations

import os
import threading
from multiprocessing.managers import BaseManager

#: RPC methods a worker may call on the coordinator.
EXPOSED = ("describe", "acquire", "heartbeat", "complete", "fail",
           "snapshot", "finished")

#: Environment variable carrying the hex-encoded authkey to workers.
AUTHKEY_ENV = "REPRO_FABRIC_AUTHKEY"


def generate_authkey() -> bytes:
    """A fresh random authkey for one fabric run."""
    return os.urandom(16)


def authkey_to_env(authkey: bytes) -> str:
    return authkey.hex()


def authkey_from_env(environ=None) -> bytes:
    """Read the fleet's authkey from the environment.

    Raises:
        RuntimeError: the variable is missing or not valid hex — the
            worker was started outside a fleet without credentials.
    """
    environ = os.environ if environ is None else environ
    value = environ.get(AUTHKEY_ENV)
    if not value:
        raise RuntimeError(
            f"{AUTHKEY_ENV} is not set; fabric workers are normally "
            f"spawned by `repro.fabric run`, which provides it")
    try:
        return bytes.fromhex(value)
    except ValueError:
        raise RuntimeError(f"{AUTHKEY_ENV} is not valid hex") from None


class ServerHandle:
    """A running coordinator server: its address and a stop switch."""

    def __init__(self, server, thread: threading.Thread) -> None:
        self._server = server
        self._thread = thread
        self.address: tuple[str, int] = server.address

    def stop(self) -> None:
        """Ask the serve loop to wind down (idempotent, best-effort).

        The listener thread is a daemon either way; stopping just lets
        tests release the port promptly.
        """
        stop_event = getattr(self._server, "stop_event", None)
        if stop_event is not None:
            stop_event.set()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_coordinator(coordinator, *,
                      address: tuple[str, int] = ("127.0.0.1", 0),
                      authkey: bytes) -> ServerHandle:
    """Serve a coordinator on a TCP socket from a daemon thread.

    Returns a :class:`ServerHandle` whose ``address`` carries the bound
    ``(host, port)`` (port 0 binds an ephemeral one).  The coordinator
    object remains local — its store file handle, sidecar writes and
    clock all live in this process.
    """

    class _Server(BaseManager):
        pass

    _Server.register("get_coordinator", callable=lambda: coordinator,
                     exposed=EXPOSED)
    manager = _Server(address=address, authkey=authkey)
    server = manager.get_server()

    def serve() -> None:
        try:
            server.serve_forever()
        except SystemExit:  # the manager's stop_event path exits the thread
            pass

    thread = threading.Thread(target=serve, daemon=True,
                              name="fabric-coordinator")
    thread.start()
    return ServerHandle(server, thread)


def connect_coordinator(address: tuple[str, int], *, authkey: bytes):
    """Connect to a served coordinator; returns the RPC proxy.

    The proxy is thread-safe in the way the worker needs: each calling
    thread gets its own connection, so the heartbeat thread and the main
    loop never share a socket.
    """

    class _Client(BaseManager):
        pass

    _Client.register("get_coordinator", exposed=EXPOSED)
    manager = _Client(address=tuple(address), authkey=authkey)
    manager.connect()
    return manager.get_coordinator()


def parse_address(text: str) -> tuple[str, int]:
    """Parse ``host:port`` (as passed on the worker command line)."""
    host, separator, port = text.rpartition(":")
    if not separator or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)
