"""The lease table: per-cell state machine behind the fabric coordinator.

A sweep grid becomes a *leased work queue*: every cell is ``pending``
until a worker acquires a **lease** on it (a grant with a deadline),
``leased`` while some worker heartbeats on it, ``done`` once a result
lands, and — after :attr:`LeasePolicy.max_attempts` failures —
``quarantined``, so one pathological cell degrades the sweep gracefully
instead of stalling it.

The table is a pure data structure: no I/O, no threads, and **no wall
clock of its own** — every method takes ``now`` explicitly, which is what
lets the chaos harness drive the whole protocol on a deterministic
logical clock and lets the coordinator use ``time.monotonic``.

Failure handling is uniform: an *expired* lease (worker killed, hung
engine, lost heartbeat) and an *explicit* failure (worker reported an
engine error) both count one attempt against the cell and reschedule it
``pending`` behind a capped exponential backoff.  The backoff is
deterministic — no jitter — because the byte-parity chaos property needs
reproducible schedules; at fabric scale the coordinator serialises grants
anyway, so jitter would buy nothing.

Late results are accepted: a worker whose lease expired (or whose cell
was even quarantined meanwhile) may still deliver a valid, deterministic
record.  :meth:`LeaseTable.complete` is therefore keyed by *cell*, not by
lease — the first result wins, every later one is reported as a dropped
duplicate.  This is exactly what makes duplicate-lease and
delayed-heartbeat fault schedules byte-safe.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

#: Cell lifecycle states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
QUARANTINED = "quarantined"

STATES = (PENDING, LEASED, DONE, QUARANTINED)


@dataclass(frozen=True)
class LeasePolicy:
    """The knobs of the lease/heartbeat/retry protocol.

    Attributes:
        lease_duration: seconds a lease lives without a heartbeat; each
            heartbeat extends the deadline by this much.
        max_attempts: failures (expiries + explicit errors) after which a
            cell is quarantined instead of retried.
        backoff_base: backoff before the first retry, in seconds.
        backoff_factor: multiplier per further attempt.
        backoff_cap: upper bound on any single backoff.
        cell_timeout: optional per-cell wall-clock budget *workers* apply
            when executing (see ``ExperimentRunner.run_engine_many``); a
            cell that exceeds it fails retryable under this same policy.
    """

    lease_duration: float = 30.0
    max_attempts: int = 3
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_cap: float = 30.0
    cell_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.lease_duration <= 0:
            raise ValueError(
                f"lease_duration must be positive, got {self.lease_duration}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be at least 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError(
                f"cell_timeout must be positive, got {self.cell_timeout}")

    def backoff(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), capped."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))

    @property
    def heartbeat_interval(self) -> float:
        """How often workers should heartbeat: a quarter of the lease."""
        return max(self.lease_duration / 4.0, 0.05)


@dataclass(frozen=True)
class Lease:
    """One granted lease: a worker's claim on a cell, with a deadline."""

    lease_id: str
    worker_id: str
    cell_index: int
    deadline: float


@dataclass
class _CellEntry:
    """Mutable per-cell bookkeeping."""

    index: int
    status: str = PENDING
    attempts: int = 0
    not_before: float = 0.0
    error: str | None = None


@dataclass(frozen=True)
class QuarantinedCell:
    """A poisoned cell's post-mortem, as reported in snapshots/sidecars."""

    cell_index: int
    attempts: int
    error: str


class LeaseTable:
    """Lease bookkeeping over a set of cell indices.

    Args:
        cell_indices: the grid's canonical cell indices.
        policy: lease/retry policy.
        done: cells already recorded (a resumed store) — born ``done``.
    """

    def __init__(self, cell_indices, *, policy: LeasePolicy,
                 done=()) -> None:
        self._policy = policy
        self._entries = {index: _CellEntry(index)
                         for index in sorted(cell_indices)}
        for index in done:
            self._entries[index].status = DONE
        self._leases: dict[str, Lease] = {}
        self._by_cell: dict[int, set[str]] = {}
        self._ids = itertools.count(1)
        #: Expired leases reclaimed so far (observability).
        self.reclaimed = 0
        #: Results dropped because their cell was already done.
        self.duplicates_dropped = 0
        #: Explicit failures reported by workers.
        self.failures = 0

    # ------------------------------------------------------------------
    @property
    def policy(self) -> LeasePolicy:
        return self._policy

    @property
    def finished(self) -> bool:
        """Every cell either done or quarantined — nothing left to run."""
        return all(entry.status in (DONE, QUARANTINED)
                   for entry in self._entries.values())

    def counts(self) -> dict[str, int]:
        """Cells per state (``leased`` counts cells, not leases)."""
        totals = {state: 0 for state in STATES}
        for entry in self._entries.values():
            totals[entry.status] += 1
        return totals

    def active_leases(self) -> list[Lease]:
        """The currently outstanding leases (a copy)."""
        return list(self._leases.values())

    def quarantined(self) -> list[QuarantinedCell]:
        """Post-mortems of every quarantined cell, by cell index."""
        return [QuarantinedCell(entry.index, entry.attempts,
                                entry.error or "")
                for entry in self._entries.values()
                if entry.status == QUARANTINED]

    # ------------------------------------------------------------------
    def acquire(self, worker_id: str, now: float, *,
                cell_index: int | None = None) -> Lease | None:
        """Grant a lease on the lowest eligible pending cell.

        Eligible means ``pending`` with its backoff gate (``not_before``)
        behind ``now``.  Returns ``None`` when nothing is currently
        grantable (all cells leased, backing off, done or quarantined) —
        callers consult :meth:`next_event` for how long to wait.

        ``cell_index`` forces a lease on that specific cell even when it
        is already leased — the **duplicate-lease** fault the chaos
        harness injects; the normal path never passes it.
        """
        if cell_index is None:
            entry = next((entry for entry in self._entries.values()
                          if entry.status == PENDING
                          and entry.not_before <= now), None)
        else:
            entry = self._entries[cell_index]
            if entry.status in (DONE, QUARANTINED):
                return None
        if entry is None:
            return None
        lease = Lease(f"L{next(self._ids)}", worker_id, entry.index,
                      now + self._policy.lease_duration)
        self._leases[lease.lease_id] = lease
        self._by_cell.setdefault(entry.index, set()).add(lease.lease_id)
        entry.status = LEASED
        return lease

    def heartbeat(self, lease_id: str, now: float) -> bool:
        """Extend a live lease's deadline; ``False`` if it is gone.

        A ``False`` return tells the worker its lease was reclaimed (it
        heartbeat too late); it may still deliver its result — late
        completion is accepted per :meth:`complete` — but should not count
        on exclusivity.
        """
        lease = self._leases.get(lease_id)
        if lease is None or lease.deadline <= now:
            return False
        self._leases[lease_id] = Lease(
            lease.lease_id, lease.worker_id, lease.cell_index,
            now + self._policy.lease_duration)
        return True

    def expire(self, now: float) -> list[Lease]:
        """Reclaim every lease whose deadline has passed.

        Each reclaimed lease counts one failure against its cell (unless
        another live lease still covers it — the duplicate-lease case):
        retry behind backoff, or quarantine past ``max_attempts``.
        """
        expired = [lease for lease in self._leases.values()
                   if lease.deadline <= now]
        for lease in expired:
            self._release(lease.lease_id)
            entry = self._entries[lease.cell_index]
            self.reclaimed += 1
            if entry.status == LEASED and not self._by_cell.get(
                    lease.cell_index):
                self._fail(entry, now,
                           f"lease {lease.lease_id} expired (worker "
                           f"{lease.worker_id} lost or hung)")
        return expired

    def complete(self, cell_index: int, now: float) -> bool:
        """Record a result's arrival for a cell; ``True`` if it is fresh.

        Keyed by cell, not lease: late results (expired lease, restarted
        coordinator, duplicate grant) are still accepted — the engines are
        deterministic, so any result for a cell is *the* result.  Returns
        ``False`` (and counts a dropped duplicate) when the cell is
        already done, in which case the caller must not append the record
        again.  A quarantined cell completing late is un-quarantined:
        a valid result beats a post-mortem.
        """
        entry = self._entries[cell_index]
        for lease_id in list(self._by_cell.get(cell_index, ())):
            self._release(lease_id)
        if entry.status == DONE:
            self.duplicates_dropped += 1
            return False
        entry.status = DONE
        entry.error = None
        return True

    def fail(self, cell_index: int, now: float, error: str) -> str:
        """Count an explicit worker-reported failure against a cell.

        Returns the cell's resulting status: ``pending`` (retry scheduled
        behind backoff), ``quarantined`` (attempts exhausted) or ``done``
        (a racing result landed first — the failure is moot).
        """
        entry = self._entries[cell_index]
        if entry.status == DONE:
            return DONE
        for lease_id in list(self._by_cell.get(cell_index, ())):
            self._release(lease_id)
        self.failures += 1
        self._fail(entry, now, error)
        return entry.status

    def next_event(self, now: float) -> float | None:
        """Seconds until the next deadline or backoff gate, if any.

        The coordinator turns this into the ``wait`` hint it hands a
        worker that found nothing grantable.  ``None`` means no event is
        scheduled (everything done/quarantined, or nothing leased and
        nothing backing off — the latter cannot happen right after a
        failed :meth:`acquire`).
        """
        horizons = [lease.deadline for lease in self._leases.values()]
        horizons += [entry.not_before
                     for entry in self._entries.values()
                     if entry.status == PENDING and entry.not_before > now]
        if not horizons:
            return None
        return max(0.0, min(horizons) - now)

    # ------------------------------------------------------------------
    def _release(self, lease_id: str) -> None:
        lease = self._leases.pop(lease_id, None)
        if lease is None:
            return
        holders = self._by_cell.get(lease.cell_index)
        if holders is not None:
            holders.discard(lease_id)
            if not holders:
                del self._by_cell[lease.cell_index]

    def _fail(self, entry: _CellEntry, now: float, error: str) -> None:
        entry.attempts += 1
        entry.error = error
        if entry.attempts >= self._policy.max_attempts:
            entry.status = QUARANTINED
        else:
            entry.status = PENDING
            entry.not_before = now + self._policy.backoff(entry.attempts)
