"""CLI for the distributed sweep fabric.

``run`` is the supervisor entry point: it serves a coordinator, spawns
the worker fleet as subprocesses, optionally SIGKILLs some mid-lease
(chaos smoke tests), and blocks until the sweep finishes::

    python -m repro.fabric run smoke --store smoke.jsonl --workers 2 \\
        --kill-worker 0@2 --lease-duration 2 --throttle 0.3

``worker`` is what the supervisor spawns (one per worker); it can also
be started by hand against a long-lived coordinator, with the fleet's
authkey in ``REPRO_FABRIC_AUTHKEY``::

    python -m repro.fabric worker --address 127.0.0.1:40123 --worker-id w0
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import ExperimentRunner
from repro.fabric.fleet import KillSpec, run_fleet
from repro.fabric.lease import LeasePolicy
from repro.fabric.transport import authkey_from_env, connect_coordinator, \
    parse_address
from repro.fabric.worker import worker_loop
from repro.sweeps.registry import list_sweeps


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric",
        description="coordinator/worker fleet for distributed sweeps",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run a sweep under a coordinator/worker fleet")
    run.add_argument("sweep", choices=sorted(list_sweeps()),
                     help="registered sweep to run")
    run.add_argument("--store", required=True,
                     help="JSONL result store path (resumes if present)")
    run.add_argument("--workers", type=int, default=2,
                     help="worker subprocess count (default 2)")
    run.add_argument("--max-rows", type=int, default=None,
                     help="cap corpus scenario dimensions (smoke runs)")
    run.add_argument("--lease-duration", type=float, default=30.0,
                     help="lease lifetime in seconds without a heartbeat")
    run.add_argument("--max-attempts", type=int, default=3,
                     help="failures before a cell is quarantined")
    run.add_argument("--cell-timeout", type=float, default=None,
                     help="per-cell wall-clock budget inside workers")
    run.add_argument("--cache-dir", default=None,
                     help="runner cache directory workers share")
    run.add_argument("--fsync", action="store_true",
                     help="fsync the store after each append")
    run.add_argument("--kill-worker", action="append", default=[],
                     metavar="WORKER@AFTER",
                     help="chaos: SIGKILL worker WORKER once AFTER cells "
                          "are done and it holds a lease (repeatable)")
    run.add_argument("--throttle", type=float, default=0.0,
                     help="per-cell pacing sleep inside workers (gives "
                          "--kill-worker a deterministic mid-lease window)")
    run.add_argument("--timeout", type=float, default=600.0,
                     help="hard wall-clock cap on the whole run")

    worker = commands.add_parser(
        "worker", help="join a fleet as one worker (spawned by `run`)")
    worker.add_argument("--address", required=True,
                        help="coordinator HOST:PORT")
    worker.add_argument("--worker-id", required=True,
                        help="this worker's id in leases and logs")
    worker.add_argument("--cache-dir", default=None,
                        help="runner cache directory")
    worker.add_argument("--throttle", type=float, default=0.0,
                        help="pacing sleep before each cell")
    worker.add_argument("--max-cells", type=int, default=None,
                        help="exit after completing this many cells")
    return parser


def _cmd_run(arguments: argparse.Namespace) -> int:
    policy = LeasePolicy(
        lease_duration=arguments.lease_duration,
        max_attempts=arguments.max_attempts,
        cell_timeout=arguments.cell_timeout,
    )
    kills = tuple(KillSpec.parse(text) for text in arguments.kill_worker)
    summary = run_fleet(
        arguments.sweep,
        store=arguments.store,
        workers=arguments.workers,
        max_rows=arguments.max_rows,
        policy=policy,
        kills=kills,
        throttle=arguments.throttle,
        cache_dir=arguments.cache_dir,
        fsync=arguments.fsync,
        timeout=arguments.timeout,
    )
    print(summary.render())
    return 0


def _cmd_worker(arguments: argparse.Namespace) -> int:
    service = connect_coordinator(parse_address(arguments.address),
                                  authkey=authkey_from_env())
    runner = (ExperimentRunner(cache_dir=arguments.cache_dir)
              if arguments.cache_dir else None)
    completed = worker_loop(service, arguments.worker_id,
                            runner=runner,
                            throttle=arguments.throttle,
                            max_cells=arguments.max_cells)
    print(f"[fabric worker {arguments.worker_id}] completed {completed} "
          f"cells")
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = _build_parser().parse_args(argv)
    if arguments.command == "run":
        return _cmd_run(arguments)
    return _cmd_worker(arguments)


if __name__ == "__main__":
    sys.exit(main())
