"""Fault-tolerant distributed sweep fabric.

A coordinator/worker execution layer over :mod:`repro.sweeps`: the
canonical cell grid becomes a leased work queue — workers acquire cell
leases with deadlines, heartbeat while computing, and deliver records
that the coordinator validates, deduplicates and appends to the
fingerprint-keyed result store.  Expired leases (killed workers, hung
engines, lost heartbeats) are reclaimed and retried behind a capped
exponential backoff; a cell that keeps failing is quarantined after
``max_attempts`` so one poison cell never stalls the sweep.

The contract the chaos harness (:mod:`repro.fabric.chaos`) property-
tests: whatever the fault schedule, the canonically merged store is
byte-identical to an uninterrupted single-process run — minus
quarantined cells, which are reported, never silently missing.

Entry points::

    python -m repro.fabric run smoke --store s.jsonl --workers 2
    python -m repro.fabric worker --address 127.0.0.1:40123 --worker-id w0
"""

from repro.fabric.chaos import (
    CHAOS_POLICY,
    ChaosOutcome,
    FaultSchedule,
    LogicalClock,
    SCHEDULES,
    get_schedule,
    run_chaos,
)
from repro.fabric.coordinator import Coordinator, read_sidecar, sidecar_path
from repro.fabric.fleet import FleetSummary, KillSpec, run_fleet
from repro.fabric.lease import (
    Lease,
    LeasePolicy,
    LeaseTable,
    QuarantinedCell,
)
from repro.fabric.transport import (
    connect_coordinator,
    serve_coordinator,
)
from repro.fabric.worker import CellExecutionError, CellExecutor, worker_loop

__all__ = [
    "CHAOS_POLICY",
    "CellExecutionError",
    "CellExecutor",
    "ChaosOutcome",
    "Coordinator",
    "FaultSchedule",
    "FleetSummary",
    "KillSpec",
    "Lease",
    "LeasePolicy",
    "LeaseTable",
    "LogicalClock",
    "QuarantinedCell",
    "SCHEDULES",
    "connect_coordinator",
    "get_schedule",
    "read_sidecar",
    "run_chaos",
    "run_fleet",
    "serve_coordinator",
    "sidecar_path",
    "worker_loop",
]
