"""Deterministic fault injection for the fabric's byte-parity invariant.

Real process kills are a fine smoke test but a poor property test: the
interesting interleavings (a lease expiring *just* as its result lands,
two leases on one cell, a torn append under a coordinator restart)
depend on timing the OS scheduler will not reproduce.  So this harness
re-runs the whole protocol on a **logical clock**: the coordinator gets
``clock=LogicalClock()`` instead of ``time.monotonic``, workers become
in-process state machines advanced one tick per round, and every fault —
kill-at-Nth-lease, delayed heartbeat, duplicate lease, torn append with
coordinator restart, poison cell — fires at a scripted, reproducible
instant.  Same schedule in, same interleaving out, every run.

The property under test: for every :class:`FaultSchedule` and any worker
count, the store that survives is **byte-identical** (after canonical
merge) to an uninterrupted single-process ``run_sweep`` — minus any
deliberately poisoned cells, which must end up *quarantined* and
reported, never silently missing.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path

from repro.experiments.runner import ExperimentRunner
from repro.fabric.coordinator import Coordinator
from repro.fabric.lease import LeasePolicy
from repro.fabric.worker import CellExecutionError, CellExecutor
from repro.sweeps.spec import SweepSpec
from repro.sweeps.store import ResultStore, SweepRecord


class LogicalClock:
    """A clock the simulation advances by hand; injected as ``clock=``."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float = 1.0) -> None:
        self.now += seconds


#: Lease policy the chaos rounds run under: short leases so expiry-driven
#: faults play out in tens of ticks, generous attempts so only *poisoned*
#: cells (which fail every time) reach quarantine.
CHAOS_POLICY = LeasePolicy(lease_duration=8.0, max_attempts=6,
                           backoff_base=1.0, backoff_factor=2.0,
                           backoff_cap=4.0)

#: Logical ticks one cell's compute takes in the simulation.
COMPUTE_TICKS = 2


@dataclass(frozen=True)
class FaultSchedule:
    """One scripted fault scenario, fully deterministic.

    Attributes:
        name: the scenario's id (test parametrisation, logs).
        kill_holding: ``(worker_slot, nth_acquire)`` pairs — the worker
            dies the instant it is granted its Nth lease (the mid-lease
            SIGKILL), leaving the lease to expire; it respawns fresh
            ``respawn_delay`` ticks later.
        stall: ``(worker_slot, nth_acquire, extra_ticks)`` — on its Nth
            lease the worker goes silent (no heartbeats) and delivers its
            result ``extra_ticks`` late, after the lease has expired and
            the cell has been re-leased: the delayed-heartbeat /
            late-duplicate-delivery fault.
        duplicate_cells: cell indices a phantom worker force-leases *in
            addition to* the legitimate holder and completes immediately —
            the duplicate-lease fault; exactly one delivery may append.
        torn_after_appends: after the Nth store append (cumulative across
            restarts), the store file's tail is torn mid-record and the
            coordinator is rebuilt on the same path — the torn-append /
            coordinator-crash fault.  Requires a file-backed store.
        poison_cells: cell indices whose execution raises on *every*
            attempt; they must exhaust ``max_attempts`` and quarantine.
        respawn_delay: ticks before a killed worker slot revives.

    Faults referencing a worker slot beyond the fleet size are dropped,
    so every schedule is runnable at any worker count.
    """

    name: str
    kill_holding: tuple[tuple[int, int], ...] = ()
    stall: tuple[tuple[int, int, int], ...] = ()
    duplicate_cells: tuple[int, ...] = ()
    torn_after_appends: tuple[int, ...] = ()
    poison_cells: tuple[int, ...] = ()
    respawn_delay: int = 3


#: The scripted schedules the chaos property tests sweep.  The stall of
#: 10 ticks deliberately exceeds CHAOS_POLICY.lease_duration, so stalled
#: leases really expire and the late delivery really is a duplicate.
SCHEDULES: tuple[FaultSchedule, ...] = (
    FaultSchedule("clean"),
    FaultSchedule("kill-first-lease", kill_holding=((0, 1),)),
    FaultSchedule("kill-third-lease", kill_holding=((0, 3),)),
    FaultSchedule("kill-two-workers", kill_holding=((0, 1), (1, 2))),
    FaultSchedule("delayed-heartbeat", stall=((0, 2, 10),)),
    FaultSchedule("duplicate-lease", duplicate_cells=(2,)),
    FaultSchedule("torn-append", torn_after_appends=(2,)),
    FaultSchedule("compound",
                  kill_holding=((0, 2),),
                  stall=((1, 1, 10),),
                  duplicate_cells=(4,),
                  torn_after_appends=(3,)),
)


def get_schedule(name: str) -> FaultSchedule:
    for schedule in SCHEDULES:
        if schedule.name == name:
            return schedule
    raise KeyError(f"unknown fault schedule {name!r}; known: "
                   f"{', '.join(s.name for s in SCHEDULES)}")


@dataclass(frozen=True)
class ChaosOutcome:
    """What a chaos run left behind, for the property assertions."""

    schedule: str
    workers: int
    rounds: int
    records: tuple[SweepRecord, ...]
    quarantined: tuple[dict, ...]
    stats: dict
    counts: dict


@dataclass
class _VirtualWorker:
    """One simulated worker: a state machine advanced each round."""

    slot: int
    worker_id: str
    state: str = "idle"  # idle | computing | stalled | dead | exited
    acquires: int = 0
    lease_id: str | None = None
    cell_index: int | None = None
    finish_at: float = 0.0
    revive_at: float | None = None
    incarnation: int = 0


def _tear_tail(path: Path) -> None:
    """Cut the store's last line roughly in half — a torn append.

    Leaves the file ending mid-JSON with no trailing newline, exactly
    what a crash between ``write()`` starting and finishing would leave
    on a filesystem without atomic appends.
    """
    data = path.read_bytes()
    body = data.rstrip(b"\n")
    if not body:
        return
    start = body.rfind(b"\n") + 1
    keep = start + (len(body) - start) // 2
    path.write_bytes(data[:keep])


def run_chaos(spec: SweepSpec, schedule: FaultSchedule, *,
              workers: int = 2,
              runner: ExperimentRunner | None = None,
              store_path=None,
              policy: LeasePolicy | None = None,
              max_rows: int | None = None,
              max_rounds: int = 5000) -> ChaosOutcome:
    """Run one sweep under one fault schedule on the logical clock.

    Args:
        spec: the sweep to run (use a small one; every retry really
            computes unless ``runner`` memoises).
        schedule: the scripted faults.
        workers: virtual worker count (faults aimed beyond it drop out).
        runner: shared runner — pass one across chaos runs so repeated
            cells replay from the memo instead of re-simulating.
        store_path: JSONL store file; required for torn-append faults,
            optional otherwise (``None`` = in-memory store).
        policy: lease policy; defaults to :data:`CHAOS_POLICY`.
        max_rows: corpus scale cap.
        max_rounds: liveness backstop — exceeding it raises, because a
            correct protocol must terminate under every schedule.
    """
    policy = policy or CHAOS_POLICY
    if schedule.torn_after_appends and store_path is None:
        raise ValueError(
            f"schedule {schedule.name!r} tears the store file and needs "
            f"a file-backed store_path")
    clock = LogicalClock()
    coordinator = Coordinator(spec, store=store_path, max_rows=max_rows,
                              policy=policy, clock=clock)
    executor = CellExecutor(spec, runner=runner, max_rows=max_rows)
    poisoned = set(schedule.poison_cells)

    def execute(cell_index: int) -> SweepRecord:
        if cell_index in poisoned:
            raise CellExecutionError(
                f"poison cell {cell_index}: injected engine crash")
        return executor.execute(cell_index)

    kill_at = {(slot, nth) for slot, nth in schedule.kill_holding
               if slot < workers}
    stall_at = {(slot, nth): ticks
                for slot, nth, ticks in schedule.stall if slot < workers}
    duplicates_pending = set(schedule.duplicate_cells)
    torn_pending = sorted(schedule.torn_after_appends)
    appends_before_restart = 0

    fleet = [_VirtualWorker(slot=index, worker_id=f"v{index}")
             for index in range(workers)]
    rounds = 0
    while not coordinator.finished():
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError(
                f"chaos schedule {schedule.name!r} with {workers} "
                f"workers did not terminate within {max_rounds} rounds: "
                f"{coordinator.snapshot()['counts']}")
        clock.tick(1.0)

        # Torn-append fault: tear the file tail and restart the
        # coordinator on the same path.  Every outstanding lease is void
        # (the new coordinator never issued it); heartbeats on it return
        # False and completes still land, because complete is cell-keyed.
        total_appends = appends_before_restart + coordinator.appends
        while torn_pending and total_appends >= torn_pending[0]:
            torn_pending.pop(0)
            _tear_tail(Path(store_path))
            appends_before_restart = total_appends
            coordinator = Coordinator(spec, store=store_path,
                                      max_rows=max_rows, policy=policy,
                                      clock=clock)

        # Duplicate-lease fault: while the target cell is legitimately
        # leased, a phantom worker force-leases it too and delivers
        # immediately — the slower delivery must be dropped as a
        # duplicate, never appended twice.
        if duplicates_pending:
            leased_now = {lease["cell_index"]
                          for lease in coordinator.snapshot()["leases"]}
            for cell_index in sorted(duplicates_pending):
                if cell_index not in leased_now:
                    continue
                duplicates_pending.discard(cell_index)
                lease = coordinator.force_lease("phantom", cell_index)
                if lease is None:
                    continue
                try:
                    record = execute(cell_index)
                except CellExecutionError as exc:
                    coordinator.fail("phantom", lease.lease_id,
                                     cell_index, str(exc))
                else:
                    coordinator.complete("phantom", lease.lease_id,
                                         asdict(record))

        for worker in fleet:
            if worker.state == "exited":
                continue
            if worker.state == "dead":
                if (worker.revive_at is not None
                        and clock.now >= worker.revive_at):
                    worker.incarnation += 1
                    worker.worker_id = (f"v{worker.slot}"
                                        f"r{worker.incarnation}")
                    worker.state = "idle"
                    worker.revive_at = None
                continue
            if worker.state == "idle":
                grant = coordinator.acquire(worker.worker_id)
                if grant["status"] == "done":
                    worker.state = "exited"
                    continue
                if grant["status"] == "wait":
                    continue
                worker.acquires += 1
                worker.lease_id = grant["lease_id"]
                worker.cell_index = grant["cell_index"]
                fault_key = (worker.slot, worker.acquires)
                if fault_key in kill_at:
                    kill_at.discard(fault_key)
                    # Dies holding the lease: no fail() call, no
                    # heartbeat — only expiry gets the cell back.
                    worker.state = "dead"
                    worker.revive_at = clock.now + schedule.respawn_delay
                    worker.lease_id = None
                    worker.cell_index = None
                    continue
                extra = stall_at.pop(fault_key, None)
                if extra is not None:
                    worker.state = "stalled"
                    worker.finish_at = clock.now + COMPUTE_TICKS + extra
                else:
                    worker.state = "computing"
                    worker.finish_at = clock.now + COMPUTE_TICKS
                continue
            # computing or stalled
            if clock.now >= worker.finish_at:
                try:
                    record = execute(worker.cell_index)
                except CellExecutionError as exc:
                    coordinator.fail(worker.worker_id, worker.lease_id,
                                     worker.cell_index, str(exc))
                else:
                    coordinator.complete(worker.worker_id,
                                         worker.lease_id,
                                         asdict(record))
                worker.state = "idle"
                worker.lease_id = None
                worker.cell_index = None
            elif worker.state == "computing":
                coordinator.heartbeat(worker.lease_id)
            # stalled workers stay silent until their late delivery

    snapshot = coordinator.snapshot()
    if store_path is not None:
        # Reload from disk: the authoritative surviving bytes (a torn
        # line parses as not-done and is skipped, like any consumer).
        records = tuple(ResultStore(store_path).records)
    else:
        records = tuple(coordinator.store.records)
    return ChaosOutcome(
        schedule=schedule.name,
        workers=workers,
        rounds=rounds,
        records=records,
        quarantined=tuple(snapshot["quarantined"]),
        stats=snapshot["stats"],
        counts=snapshot["counts"],
    )
