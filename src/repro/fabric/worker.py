"""Fabric workers: lease, heartbeat, compute, deliver, repeat.

A worker owns no sweep state.  It asks the coordinator's ``describe`` for
the sweep id and corpus scale, rebuilds the canonical grid locally from
the registry, and then loops: ``acquire`` a cell lease, compute the cell,
``complete`` with the record — heartbeating from a side thread the whole
time so a *slow* cell keeps its lease while a *dead* worker's lease
expires and is reclaimed.

:class:`CellExecutor` replicates ``run_sweep``'s record construction
exactly — same fingerprint memo, same point key, same
``run_engine_many`` path (including the per-cell wall-clock timeout) —
which is load-bearing: the byte-parity invariant of the fabric rests on
every worker producing byte-identical records for a given cell, no
matter which worker runs it or on which attempt.
"""

from __future__ import annotations

import dataclasses
import threading
import time

from repro.corpus.spec import scenario_fingerprint
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.sweeps.driver import _cell_engine
from repro.sweeps.registry import get_sweep
from repro.sweeps.spec import SweepCell, SweepSpec, enumerate_cells
from repro.sweeps.store import SweepRecord


class CellExecutionError(RuntimeError):
    """A cell's engine hung past ``cell_timeout`` or raised."""


class CellExecutor:
    """Executes grid cells into records, byte-identical to ``run_sweep``.

    Args:
        spec: the sweep declaration (same registry entry the coordinator
            enumerated).
        runner: experiment runner — shares its memo across cells, so a
            retried or duplicate-leased cell replays instead of
            re-simulating.
        max_rows: corpus scale cap; must equal the coordinator's.
        cell_timeout: per-cell wall-clock budget (from the coordinator's
            policy); a hung engine raises :class:`CellExecutionError`
            instead of wedging the worker.
    """

    def __init__(self, spec: SweepSpec, *,
                 runner: ExperimentRunner | None = None,
                 max_rows: int | None = None,
                 cell_timeout: float | None = None) -> None:
        self._spec = spec
        self._runner = runner or default_runner()
        self._cell_timeout = cell_timeout
        self._corpus = spec.corpus_spec(max_rows=max_rows)
        self._cells: dict[int, SweepCell] = {
            cell.index: cell
            for cell in enumerate_cells(spec, max_rows=max_rows)
        }
        self._engines: dict[tuple[str, str], object] = {}
        # Single-slot operand cache: the coordinator grants cells in
        # canonical (scenario-major) order, so consecutive leases usually
        # share a scenario; one matrix at a time bounds worker memory the
        # same way run_sweep's chunked execution does.
        self._matrix: tuple[str | None, CSRMatrix | None] = (None, None)

    def execute(self, cell_index: int) -> SweepRecord:
        """Compute one cell and return its store record.

        Raises:
            KeyError: ``cell_index`` is not in the grid.
            CellExecutionError: the engine timed out or crashed under
                ``cell_timeout``.
        """
        cell = self._cells[cell_index]
        engine = _cell_engine(cell, self._engines)
        scenario = self._corpus.get_scenario(cell.scenario.name)
        fingerprint = scenario_fingerprint(scenario)
        key = self._runner.point_key(engine, None,
                                     fingerprint_a=fingerprint)
        if self._matrix[0] != scenario.name:
            self._matrix = (scenario.name, scenario.build())
        [report] = self._runner.run_engine_many(
            [(engine, self._matrix[1])], keys=[key],
            timeout=self._cell_timeout)
        if report is None:
            raise CellExecutionError(
                f"cell {cell.cell_id} timed out or crashed under "
                f"cell_timeout={self._cell_timeout}")
        return SweepRecord(
            sweep_id=self._spec.sweep_id,
            cell_index=cell.index,
            scenario=cell.scenario.name,
            engine=cell.engine,
            config_label=cell.config_label,
            key=key,
            report=report.to_dict(),
        )


class _Heartbeat:
    """Background pinger keeping one lease alive while a cell computes.

    Manager proxies open one connection per calling thread, so beating
    from a daemon thread is safe alongside the main loop's RPCs.  Any
    transport error (coordinator gone) just stops the beat — the lease
    then expires on its own, which is the correct failure semantics.
    """

    def __init__(self, service, lease_id: str, interval: float) -> None:
        self._service = service
        self._lease_id = lease_id
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                if not self._service.heartbeat(self._lease_id):
                    return  # reclaimed; deliver anyway, dedupe decides
            except Exception:
                return


def worker_loop(service, worker_id: str, *,
                runner: ExperimentRunner | None = None,
                throttle: float = 0.0,
                max_cells: int | None = None,
                sleep=time.sleep) -> int:
    """Drain the coordinator's queue; returns cells completed.

    Args:
        service: a :class:`~repro.fabric.coordinator.Coordinator` or a
            transport proxy to one.
        worker_id: this worker's name in leases and logs.
        runner: experiment runner for the executor.
        throttle: optional sleep (seconds) before each cell — a pacing
            aid that gives fleet chaos tests a deterministic window to
            SIGKILL a worker *while it holds a lease*.
        max_cells: stop after completing this many cells (tests).
        sleep: injectable sleep for tests.
    """
    info = service.describe()
    spec = get_sweep(info["sweep_id"])
    policy = info["policy"]
    executor = CellExecutor(spec, runner=runner,
                            max_rows=info["max_rows"],
                            cell_timeout=policy.get("cell_timeout"))
    interval = max(policy["lease_duration"] / 4.0, 0.05)
    completed = 0
    while True:
        grant = service.acquire(worker_id)
        if grant["status"] == "done":
            return completed
        if grant["status"] == "wait":
            sleep(min(grant["seconds"] or interval, interval))
            continue
        lease_id = grant["lease_id"]
        cell_index = grant["cell_index"]
        with _Heartbeat(service, lease_id,
                        grant.get("heartbeat_interval", interval)):
            try:
                if throttle > 0:
                    sleep(throttle)
                record = executor.execute(cell_index)
            except Exception as exc:
                record = None
                error = f"{type(exc).__name__}: {exc}"
        if record is None:
            service.fail(worker_id, lease_id, cell_index, error)
            continue
        service.complete(worker_id, lease_id, dataclasses.asdict(record))
        completed += 1
        if max_cells is not None and completed >= max_cells:
            return completed
