"""The fabric coordinator: one process that owns the grid and the store.

The coordinator is the sweep's single source of truth.  It enumerates the
canonical cell grid once, resumes lease state from whatever records
already survive in the store, and then serves a small RPC surface —
``describe`` / ``acquire`` / ``heartbeat`` / ``complete`` / ``fail`` /
``snapshot`` — to any number of workers.  Workers compute; the
coordinator is the **only store writer**, so the append-only JSONL never
sees interleaved writers in fabric mode (the ``O_APPEND`` hardening in
the store still protects plain shard runs that share a file).

Why this division keeps the merged store byte-identical to a
single-process run regardless of fault schedule:

* results are validated against the canonical grid and deduplicated by
  cell *before* they are appended (:meth:`LeaseTable.complete` is
  cell-keyed), so duplicate leases and late deliveries append nothing
  twice;
* the engines are deterministic, so a retried cell produces the same
  record a first attempt would have;
* the store's canonical merge sorts and dedupes by cell order.

Together: whatever workers die, stall or double-deliver, the set of
appended records equals the uninterrupted run's set, minus any
quarantined cells — the one sanctioned divergence, reported loudly in
the sidecar rather than silently retried forever.

Next to a file-backed store the coordinator maintains a JSON *sidecar*
(``<store>.fabric.json``, written atomically) with live counts, lease
stats and quarantine post-mortems — the hook for ``repro.sweeps watch``
and for ``summarise`` to report quarantined cells.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict

from repro.fabric.lease import Lease, LeasePolicy, LeaseTable
from repro.sweeps.spec import SweepCell, SweepSpec, enumerate_cells
from repro.sweeps.store import ResultStore, SweepRecord


def sidecar_path(store_path: str | os.PathLike) -> str:
    """The fabric progress sidecar written next to a store file."""
    return f"{os.fspath(store_path)}.fabric.json"


class Coordinator:
    """Lease-queue coordinator for one sweep over one result store.

    Args:
        spec: the frozen sweep declaration.
        store: result store instance, JSONL path, or ``None`` for an
            in-memory store.  An existing file resumes: its surviving
            records are marked done (a torn tail parses as not-done and
            simply re-runs).
        max_rows: corpus scale cap, forwarded to cell enumeration — must
            match what workers pass (``describe`` hands it to them).
        policy: lease/heartbeat/retry policy; defaults to
            :class:`LeasePolicy`'s defaults.
        clock: monotonic time source.  The default is the wall clock;
            the chaos harness injects a logical clock to make whole
            fault schedules deterministic.
        fsync: fsync the store after each append (only meaningful when
            ``store`` is given as a path; a pre-built store keeps its
            own setting).
    """

    def __init__(self, spec: SweepSpec, *,
                 store: ResultStore | str | os.PathLike | None = None,
                 max_rows: int | None = None,
                 policy: LeasePolicy | None = None,
                 clock=time.monotonic,
                 fsync: bool = False) -> None:
        self._spec = spec
        self._max_rows = max_rows
        self._policy = policy or LeasePolicy()
        self._clock = clock
        if not isinstance(store, ResultStore):
            store = ResultStore(store, fsync=fsync)
        self._store = store
        self._lock = threading.RLock()
        cells = enumerate_cells(spec, max_rows=max_rows)
        self._cells: dict[int, SweepCell] = {cell.index: cell
                                             for cell in cells}
        # Resume from the identities-only view: an index-backed store
        # answers this from its sqlite sidecar without parsing (or even
        # reading) the JSONL, so restarting against a huge store is cheap.
        done = [entry.cell_index
                for entry in store.cell_entries()
                if entry.sweep_id == spec.sweep_id
                and self._matches_grid(entry)]
        self._table = LeaseTable(self._cells, policy=self._policy,
                                 done=done)
        self.appends = 0
        self._write_sidecar()

    # ------------------------------------------------------------------
    @property
    def spec(self) -> SweepSpec:
        return self._spec

    @property
    def store(self) -> ResultStore:
        return self._store

    @property
    def policy(self) -> LeasePolicy:
        return self._policy

    # ------------------------------------------------------------------
    # RPC surface (everything below here is what transport exposes)
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Static facts a worker needs to reconstruct the grid locally.

        Workers rebuild the spec from the registry by ``sweep_id`` and
        enumerate cells themselves — lease grants then only need to name
        a *cell index*, keeping every RPC payload small.
        """
        return {
            "sweep_id": self._spec.sweep_id,
            "max_rows": self._max_rows,
            "total_cells": len(self._cells),
            "policy": asdict(self._policy),
            "store_path": (os.fspath(self._store.path)
                           if self._store.path is not None else None),
        }

    def acquire(self, worker_id: str) -> dict:
        """Ask for work.  One of three answers:

        * ``{"status": "lease", "lease_id", "cell_index", "deadline_in",
          "heartbeat_interval"}`` — a granted lease;
        * ``{"status": "wait", "seconds"}`` — nothing grantable right now
          (cells leased out or backing off); retry after ``seconds``;
        * ``{"status": "done"}`` — every cell is done or quarantined; the
          worker should exit.
        """
        with self._lock:
            now = self._tick()
            if self._table.finished:
                self._write_sidecar()
                return {"status": "done"}
            lease = self._table.acquire(worker_id, now)
            if lease is None:
                wait = self._table.next_event(now)
                if wait is None:
                    wait = self._policy.heartbeat_interval
                return {"status": "wait", "seconds": wait}
            return {
                "status": "lease",
                "lease_id": lease.lease_id,
                "cell_index": lease.cell_index,
                "deadline_in": self._policy.lease_duration,
                "heartbeat_interval": self._policy.heartbeat_interval,
            }

    def heartbeat(self, lease_id: str) -> bool:
        """Extend a lease; ``False`` means it was already reclaimed."""
        with self._lock:
            now = self._tick()
            return self._table.heartbeat(lease_id, now)

    def complete(self, worker_id: str, lease_id: str,
                 record_payload: dict) -> dict:
        """Deliver a finished cell's record (``dataclasses.asdict`` form).

        The record must match the canonical grid (right sweep, right
        coordinates at the right index) or it is rejected outright.
        Accepted records are deduplicated by cell — late and duplicate
        deliveries return ``fresh: False`` and append nothing — and
        appended to the store otherwise.  Lease identity is advisory:
        a result arriving after its lease expired (or from a lease a
        restarted coordinator never issued) is still a valid result.
        """
        record = SweepRecord(**record_payload)
        with self._lock:
            now = self._tick()
            if (record.sweep_id != self._spec.sweep_id
                    or not self._matches_grid(record)):
                return {"status": "rejected",
                        "reason": (f"record for "
                                   f"{record.report_key!r} at index "
                                   f"{record.cell_index} does not match "
                                   f"the canonical grid of sweep "
                                   f"{self._spec.sweep_id!r}")}
            fresh = self._table.complete(record.cell_index, now)
            if fresh:
                self._store.append(record)
                self.appends += 1
            self._write_sidecar()
            return {"status": "ok", "fresh": fresh,
                    "finished": self._table.finished}

    def fail(self, worker_id: str, lease_id: str, cell_index: int,
             error: str) -> dict:
        """Report an engine failure; the cell retries or quarantines."""
        with self._lock:
            now = self._tick()
            status = self._table.fail(cell_index, now, error)
            self._write_sidecar()
            return {"status": status, "finished": self._table.finished}

    def snapshot(self) -> dict:
        """Live progress: counts, leases, stats, quarantine post-mortems.

        Calling it also drives lease expiry — the fleet supervisor polls
        ``snapshot`` precisely so dead workers' leases are reclaimed even
        while every surviving worker sits in a long compute.
        """
        with self._lock:
            self._tick()
            return self._snapshot_locked()

    def finished(self) -> bool:
        """True once every cell is done or quarantined."""
        with self._lock:
            self._tick()
            return self._table.finished

    # ------------------------------------------------------------------
    # Chaos-only hooks (never exposed over the transport)
    # ------------------------------------------------------------------
    def force_lease(self, worker_id: str, cell_index: int) -> Lease | None:
        """Grant a lease on a specific cell even if it is already leased.

        The **duplicate-lease** fault: two workers end up computing the
        same cell.  Exists for the chaos harness only.
        """
        with self._lock:
            now = self._tick()
            return self._table.acquire(worker_id, now,
                                       cell_index=cell_index)

    # ------------------------------------------------------------------
    def _tick(self) -> float:
        """Read the clock and reclaim whatever expired meanwhile."""
        now = self._clock()
        self._table.expire(now)
        return now

    def _matches_grid(self, record) -> bool:
        """Whether a record (or :class:`~repro.sweeps.store.CellEntry`)
        sits at its coordinates' canonical grid position."""
        cell = self._cells.get(record.cell_index)
        return (cell is not None
                and record.scenario == cell.scenario.name
                and record.engine == cell.engine
                and record.config_label == cell.config_label)

    def _snapshot_locked(self) -> dict:
        return {
            "sweep_id": self._spec.sweep_id,
            "total_cells": len(self._cells),
            "counts": self._table.counts(),
            "finished": self._table.finished,
            "leases": [
                {"lease_id": lease.lease_id,
                 "worker_id": lease.worker_id,
                 "cell_index": lease.cell_index}
                for lease in self._table.active_leases()
            ],
            "quarantined": [asdict(cell)
                            for cell in self._table.quarantined()],
            "stats": {
                "reclaimed": self._table.reclaimed,
                "duplicates_dropped": self._table.duplicates_dropped,
                "failures": self._table.failures,
                "appends": self.appends,
            },
        }

    def _write_sidecar(self) -> None:
        """Atomically refresh ``<store>.fabric.json`` (file stores only)."""
        if self._store.path is None:
            return
        path = sidecar_path(self._store.path)
        payload = json.dumps(self._snapshot_locked(), sort_keys=True,
                             indent=2) + "\n"
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp, path)


def read_sidecar(store_path: str | os.PathLike) -> dict | None:
    """Load a store's fabric sidecar, or ``None`` if absent/corrupt."""
    try:
        with open(sidecar_path(store_path), encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None
