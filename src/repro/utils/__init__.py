"""Small shared helpers used across the SpArch reproduction.

The utilities here deliberately avoid any dependency on the simulator
packages so that every subpackage (formats, hardware, core, baselines,
analysis, experiments) can import them without creating cycles.
"""

from repro.utils.maths import geometric_mean, harmonic_mean, human_bytes, human_count
from repro.utils.reporting import Table, format_table
from repro.utils.validation import (
    check_nonnegative_int,
    check_positive_int,
    check_power_of_two,
    require,
)

__all__ = [
    "geometric_mean",
    "harmonic_mean",
    "human_bytes",
    "human_count",
    "Table",
    "format_table",
    "check_nonnegative_int",
    "check_positive_int",
    "check_power_of_two",
    "require",
]
