"""Plain-text table rendering for experiment harnesses.

The experiment modules print the same rows/series the paper reports.  A tiny
fixed-width table formatter keeps that output readable without pulling in any
third-party dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A simple column-aligned table accumulated row by row."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append a row; the number of values must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Render the table as an aligned plain-text block."""
        return format_table(self.title, self.columns, self.rows)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def cost_table(title: str, reports: dict[str, Any]) -> Table:
    """Render named cost reports as one table, identically for any engine.

    Args:
        title: table title.
        reports: ``{label: CostReport}`` — any object exposing the
            canonical report surface (``cycles``, ``runtime_seconds``,
            ``gflops``, ``dram_bytes``, ``energy_joules``,
            ``multiplications``, ``additions``, ``output_nnz``).

    The unified :class:`~repro.metrics.report.CostReport` schema is what
    makes this possible: one renderer covers SpArch simulations, baseline
    models and workload aggregates alike, so new experiments get tabular
    output without writing a formatter.
    """
    table = Table(
        title=title,
        columns=["point", "engine", "cycles", "runtime [s]", "GFLOP/s",
                 "DRAM [B]", "energy [J]", "mults", "adds", "nnz"],
    )
    for label, report in reports.items():
        table.add_row(
            label,
            getattr(report, "engine", "-") or "-",
            int(report.cycles) if report.cycles else "-",
            report.runtime_seconds,
            report.gflops,
            int(report.dram_bytes),
            report.energy_joules,
            int(report.multiplications),
            int(report.additions),
            int(report.output_nnz),
        )
    return table


def format_table(title: str, columns: list[str], rows: list[list[Any]]) -> str:
    """Render ``rows`` under ``columns`` as a fixed-width text table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
