"""Argument validation helpers shared by configuration and hardware models."""

from __future__ import annotations


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` when ``condition`` is false."""
    if not condition:
        raise ValueError(message)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative_int(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_power_of_two(value: int, name: str) -> int:
    """Validate that ``value`` is a positive power of two and return it."""
    check_positive_int(value, name)
    if value & (value - 1) != 0:
        raise ValueError(f"{name} must be a power of two, got {value}")
    return value
