"""Numeric helpers: aggregate statistics and human-readable formatting."""

from __future__ import annotations

import math
from collections.abc import Iterable


def geometric_mean(values: Iterable[float]) -> float:
    """Return the geometric mean of ``values``.

    The paper reports all cross-benchmark aggregates (speedup, energy
    saving) as geometric means; this helper mirrors that convention.

    Raises:
        ValueError: if ``values`` is empty or contains a non-positive entry.
    """
    items = list(values)
    if not items:
        raise ValueError("geometric_mean() requires at least one value")
    total = 0.0
    for value in items:
        if value <= 0:
            raise ValueError(f"geometric_mean() requires positive values, got {value}")
        total += math.log(value)
    return math.exp(total / len(items))


def harmonic_mean(values: Iterable[float]) -> float:
    """Return the harmonic mean of ``values`` (used for aggregate rates)."""
    items = list(values)
    if not items:
        raise ValueError("harmonic_mean() requires at least one value")
    denominator = 0.0
    for value in items:
        if value <= 0:
            raise ValueError(f"harmonic_mean() requires positive values, got {value}")
        denominator += 1.0 / value
    return len(items) / denominator


def human_bytes(num_bytes: float) -> str:
    """Format a byte count using binary prefixes (e.g. ``1.50 MiB``)."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    units = ["B", "KiB", "MiB", "GiB", "TiB"]
    value = float(num_bytes)
    for unit in units:
        if value < 1024.0 or unit == units[-1]:
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def human_count(count: float) -> str:
    """Format a large count using SI suffixes (e.g. ``1.2M``)."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if count >= threshold:
            return f"{count / threshold:.2f}{suffix}"
    return f"{count:.0f}"
