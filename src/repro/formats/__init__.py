"""Sparse matrix containers used throughout the SpArch reproduction.

The simulator works with three storage formats:

* :class:`~repro.formats.coo.COOMatrix` — coordinate triples, the format in
  which partial product matrices flow through the merge tree.
* :class:`~repro.formats.csr.CSRMatrix` — compressed sparse rows, the storage
  format of both input operands in DRAM (Table I / §II-B of the paper).
* :class:`~repro.formats.csc.CSCMatrix` — compressed sparse columns, used by
  the un-condensed outer-product baselines (OuterSPACE keeps the left operand
  in CSC).
* :class:`~repro.formats.condensed.CondensedMatrix` — the paper's condensed
  view of a CSR matrix, where condensed column *i* holds the *i*-th nonzero of
  every row (§II-B, Figure 7).
"""

from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.condensed import CondensedMatrix, condense
from repro.formats.convert import (
    coo_to_csr,
    csr_to_coo,
    csr_to_csc,
    csc_to_csr,
    from_scipy,
    to_scipy,
)
from repro.formats.matrix_market import read_matrix_market, write_matrix_market

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "CondensedMatrix",
    "condense",
    "coo_to_csr",
    "csr_to_coo",
    "csr_to_csc",
    "csc_to_csr",
    "from_scipy",
    "to_scipy",
    "read_matrix_market",
    "write_matrix_market",
]
