"""Compressed Sparse Row (CSR) matrix container.

Both input operands of SpArch are stored in CSR in HBM (Table I).  The left
operand is additionally *consumed* by condensed column — but as the paper
notes, "CSR format and our condensed format are two different views of the
same data" (§II-B), so the condensed view in
:mod:`repro.formats.condensed` wraps a :class:`CSRMatrix` without copying.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_nonnegative_int


@dataclass
class CSRMatrix:
    """A sparse matrix in compressed sparse row format.

    Attributes:
        indptr: int64 array of length ``num_rows + 1``; row *i* occupies
            ``indices[indptr[i]:indptr[i+1]]``.
        indices: int64 array of column indices, sorted within each row.
        data: float64 array of values aligned with ``indices``.
        shape: ``(num_rows, num_cols)``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        num_rows, num_cols = self.shape
        check_nonnegative_int(int(num_rows), "shape[0]")
        check_nonnegative_int(int(num_cols), "shape[1]")
        self.shape = (int(num_rows), int(num_cols))
        if len(self.indptr) != self.shape[0] + 1:
            raise ValueError(
                f"indptr length {len(self.indptr)} does not match "
                f"{self.shape[0]} rows"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data must have equal length")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ValueError("column index out of bounds")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "CSRMatrix":
        """Return an all-zero CSR matrix of ``shape``."""
        return cls(np.zeros(shape[0] + 1, np.int64), np.empty(0, np.int64),
                   np.empty(0), shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build from a dense array, dropping explicit zeros."""
        from repro.formats.convert import coo_to_csr
        from repro.formats.coo import COOMatrix

        return coo_to_csr(COOMatrix.from_dense(np.asarray(dense)))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(len(self.data))

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def nnz_per_row(self) -> np.ndarray:
        """Return an int64 array with the nonzero count of every row."""
        return np.diff(self.indptr)

    def max_row_length(self) -> int:
        """Length of the longest row — the condensed column count (§II-B)."""
        if self.num_rows == 0:
            return 0
        return int(self.nnz_per_row().max(initial=0))

    def has_sorted_rows(self) -> bool:
        """True when column indices are strictly increasing within each row."""
        for r in range(self.num_rows):
            cols = self.indices[self.indptr[r]:self.indptr[r + 1]]
            if len(cols) > 1 and np.any(np.diff(cols) <= 0):
                return False
        return True

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(column_indices, values)`` of row ``i`` (views, no copy)."""
        if not 0 <= i < self.num_rows:
            raise IndexError(f"row {i} out of range for {self.num_rows} rows")
        start, stop = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:stop], self.data[start:stop]

    def row_nnz(self, i: int) -> int:
        """Return the number of nonzeros in row ``i``."""
        if not 0 <= i < self.num_rows:
            raise IndexError(f"row {i} out of range for {self.num_rows} rows")
        return int(self.indptr[i + 1] - self.indptr[i])

    def row_bytes(self, i: int, *, index_bytes: int = 8,
                  value_bytes: int = 8) -> int:
        """DRAM footprint of row ``i`` in bytes for traffic accounting."""
        return self.row_nnz(i) * (index_bytes + value_bytes)

    # ------------------------------------------------------------------
    # Conversions / helpers
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        for r in range(self.num_rows):
            cols, vals = self.row(r)
            dense[r, cols] = vals
        return dense

    def transpose(self) -> "CSRMatrix":
        """Return the transpose, itself in CSR format."""
        from repro.formats.convert import coo_to_csr, csr_to_coo

        return coo_to_csr(csr_to_coo(self).transpose())

    def storage_bytes(self, *, index_bytes: int = 8, value_bytes: int = 8,
                      pointer_bytes: int = 8) -> int:
        """Total DRAM footprint of the CSR structure."""
        return (self.nnz * (index_bytes + value_bytes)
                + len(self.indptr) * pointer_bytes)

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
