"""Linearised ``(row, column)`` key helpers shared across the simulator.

Partial products travel through the datapath as linearised coordinates,
``key = row * num_cols + col``.  At paper scale (10⁵–10⁶ rows) the
``row·col`` product exceeds 2³¹, so any 32-bit intermediate silently wraps;
this module is the one place that owns the promotion rule:

* :func:`linear_key_dtype` picks ``int32`` only when *every* possible key
  of the result shape fits 32 bits (the per-round stable sorts run
  noticeably faster on int32), and ``int64`` otherwise;
* :func:`linear_keys` builds keys with an explicitly 64-bit product, so the
  multiplication itself can never wrap even if a caller hands in narrower
  index arrays (e.g. a scipy round trip that downcast to int32).

Every backend (scalar, vectorized, streaming) and the COO canonicalisation
path derive their key dtype from here, which keeps the 2³¹ boundary in one
audited spot instead of scattered inline guards.
"""

from __future__ import annotations

import numpy as np

#: Exclusive upper bound of the int32 keyspace.
INT32_KEYSPACE = 2 ** 31


def linear_key_dtype(num_rows: int, num_cols: int) -> np.dtype:
    """Smallest safe dtype for keys of a ``(num_rows, num_cols)`` result.

    The largest possible key is ``num_rows * num_cols - 1`` (Python ints,
    so the check itself cannot overflow); int32 is only chosen when that
    bound fits 32 bits.
    """
    span = int(num_rows) * int(num_cols)
    return np.dtype(np.int32 if span < INT32_KEYSPACE else np.int64)


def linear_keys(rows: np.ndarray, cols: np.ndarray, num_cols: int,
                dtype: np.dtype | None = None) -> np.ndarray:
    """Linearise ``(row, col)`` pairs to ``row * num_cols + col`` keys.

    The product is computed in int64 regardless of the input dtypes, then
    cast to ``dtype`` (which, by :func:`linear_key_dtype` contract, is only
    narrower when every key provably fits).
    """
    keys = (np.asarray(rows, dtype=np.int64) * np.int64(num_cols)
            + np.asarray(cols, dtype=np.int64))
    if dtype is not None:
        keys = keys.astype(dtype, copy=False)
    return keys
