"""Matrix Market (.mtx) I/O.

The paper's benchmark matrices come from SuiteSparse and SNAP, which
distribute matrices in the Matrix Market exchange format.  This environment
has no network access, so the experiments use synthetic proxies — but a
downstream user who *does* have the original files can load them with
:func:`read_matrix_market` and run every harness on the real data
(``run(matrices={"wiki-Vote": read_matrix_market("wiki-Vote.mtx")})``).

The reader supports the coordinate format with ``real``, ``integer`` and
``pattern`` fields and the ``general``, ``symmetric`` and ``skew-symmetric``
symmetry qualifiers — enough for every matrix in the paper's suite.  The
writer emits canonical ``coordinate real general`` files.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.formats.convert import coo_to_csr
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix

_SUPPORTED_FIELDS = ("real", "integer", "pattern")
_SUPPORTED_SYMMETRIES = ("general", "symmetric", "skew-symmetric")


def read_matrix_market(source: str | Path | io.TextIOBase) -> CSRMatrix:
    """Read a Matrix Market coordinate file into a :class:`CSRMatrix`.

    Args:
        source: path to a ``.mtx`` file or an open text stream.

    Returns:
        The matrix in canonical CSR form (sorted rows, duplicates summed).

    Raises:
        ValueError: for array-format files, complex fields, malformed
            headers/entries, or nonzero diagonal entries in a file declared
            ``skew-symmetric`` (whose diagonal is identically zero).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return read_matrix_market(handle)

    header = source.readline()
    if not header.startswith("%%MatrixMarket"):
        raise ValueError("not a MatrixMarket file: missing %%MatrixMarket header")
    parts = header.strip().split()
    if len(parts) < 5:
        raise ValueError(f"malformed MatrixMarket header: {header.strip()!r}")
    _, object_type, layout, field, symmetry = parts[:5]
    if object_type.lower() != "matrix" or layout.lower() != "coordinate":
        raise ValueError("only 'matrix coordinate' MatrixMarket files are supported")
    field = field.lower()
    symmetry = symmetry.lower()
    if field not in _SUPPORTED_FIELDS:
        raise ValueError(f"unsupported MatrixMarket field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRIES:
        raise ValueError(f"unsupported MatrixMarket symmetry {symmetry!r}")

    # Skip comments, read the size line.
    size_line = ""
    for line in source:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        size_line = stripped
        break
    if not size_line:
        raise ValueError("MatrixMarket file has no size line")
    try:
        num_rows, num_cols, nnz = (int(token) for token in size_line.split())
    except ValueError as error:
        raise ValueError(f"malformed size line {size_line!r}") from error

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    count = 0
    for line in source:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        if count >= nnz:
            raise ValueError("more entries than declared in the size line")
        tokens = stripped.split()
        if field == "pattern":
            if len(tokens) < 2:
                raise ValueError(f"malformed entry {stripped!r}")
            value = 1.0
        else:
            if len(tokens) < 3:
                raise ValueError(f"malformed entry {stripped!r}")
            value = float(tokens[2])
        rows[count] = int(tokens[0]) - 1
        cols[count] = int(tokens[1]) - 1
        vals[count] = value
        count += 1
    if count != nnz:
        raise ValueError(f"expected {nnz} entries, found {count}")

    if symmetry in ("symmetric", "skew-symmetric"):
        # Mirror strictly off-diagonal entries only: an explicit diagonal
        # entry is its own transpose, so mirroring it would double-count
        # the value when coordinates are summed during canonicalisation.
        off_diagonal = rows != cols
        if symmetry == "skew-symmetric":
            # A = -Aᵀ forces a zero diagonal; a nonzero explicit diagonal
            # entry contradicts the declared symmetry, so fail loudly
            # instead of loading a matrix that is not skew-symmetric.
            diagonal_vals = vals[~off_diagonal]
            if np.any(diagonal_vals != 0.0):
                raise ValueError(
                    "skew-symmetric MatrixMarket file declares nonzero "
                    "diagonal entries"
                )
        mirror_sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirror_rows = cols[off_diagonal]
        mirror_cols = rows[off_diagonal]
        mirror_vals = mirror_sign * vals[off_diagonal]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        vals = np.concatenate([vals, mirror_vals])

    coo = COOMatrix(rows, cols, vals, (num_rows, num_cols))
    return coo_to_csr(coo.canonicalized(drop_zeros=False))


def write_matrix_market(matrix: CSRMatrix, destination: str | Path | io.TextIOBase,
                        *, comment: str | None = None) -> None:
    """Write ``matrix`` as a ``coordinate real general`` Matrix Market file.

    Args:
        matrix: the matrix to write.
        destination: output path or open text stream.
        comment: optional comment line embedded after the header.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            write_matrix_market(matrix, handle, comment=comment)
            return

    destination.write("%%MatrixMarket matrix coordinate real general\n")
    if comment:
        for line in comment.splitlines():
            destination.write(f"% {line}\n")
    destination.write(f"{matrix.num_rows} {matrix.num_cols} {matrix.nnz}\n")
    for row in range(matrix.num_rows):
        cols, vals = matrix.row(row)
        for col, value in zip(cols, vals):
            destination.write(f"{row + 1} {int(col) + 1} {float(value):.17g}\n")
