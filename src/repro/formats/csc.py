"""Compressed Sparse Column (CSC) matrix container.

The un-condensed outer-product baseline (OuterSPACE) streams the left operand
column by column, which is the natural access pattern of CSC.  The container
mirrors :class:`repro.formats.csr.CSRMatrix` with rows and columns swapped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_nonnegative_int


@dataclass
class CSCMatrix:
    """A sparse matrix in compressed sparse column format.

    Attributes:
        indptr: int64 array of length ``num_cols + 1``; column *j* occupies
            ``indices[indptr[j]:indptr[j+1]]``.
        indices: int64 array of row indices, sorted within each column.
        data: float64 array of values aligned with ``indices``.
        shape: ``(num_rows, num_cols)``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        num_rows, num_cols = self.shape
        check_nonnegative_int(int(num_rows), "shape[0]")
        check_nonnegative_int(int(num_cols), "shape[1]")
        self.shape = (int(num_rows), int(num_cols))
        if len(self.indptr) != self.shape[1] + 1:
            raise ValueError(
                f"indptr length {len(self.indptr)} does not match "
                f"{self.shape[1]} columns"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data must have equal length")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[0]
        ):
            raise ValueError("row index out of bounds")

    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "CSCMatrix":
        """Return an all-zero CSC matrix of ``shape``."""
        return cls(np.zeros(shape[1] + 1, np.int64), np.empty(0, np.int64),
                   np.empty(0), shape)

    @property
    def nnz(self) -> int:
        return int(len(self.data))

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    def nnz_per_col(self) -> np.ndarray:
        """Return an int64 array with the nonzero count of every column."""
        return np.diff(self.indptr)

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(row_indices, values)`` of column ``j`` (views, no copy)."""
        if not 0 <= j < self.num_cols:
            raise IndexError(f"column {j} out of range for {self.num_cols} columns")
        start, stop = self.indptr[j], self.indptr[j + 1]
        return self.indices[start:stop], self.data[start:stop]

    def col_nnz(self, j: int) -> int:
        """Return the number of nonzeros in column ``j``."""
        if not 0 <= j < self.num_cols:
            raise IndexError(f"column {j} out of range for {self.num_cols} columns")
        return int(self.indptr[j + 1] - self.indptr[j])

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        for j in range(self.num_cols):
            rows, vals = self.col(j)
            dense[rows, j] = vals
        return dense

    def storage_bytes(self, *, index_bytes: int = 8, value_bytes: int = 8,
                      pointer_bytes: int = 8) -> int:
        """Total DRAM footprint of the CSC structure."""
        return (self.nnz * (index_bytes + value_bytes)
                + len(self.indptr) * pointer_bytes)

    def __repr__(self) -> str:
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
