"""Coordinate (COO) sparse matrix container.

Partial product matrices inside SpArch are represented in COO format as
``[row index, column index, value]`` triples sorted by row index then column
index (§II-A of the paper).  This module provides an immutable-ish container
with exactly the operations the simulator needs: canonicalisation (sort +
duplicate accumulation), dense conversion for testing, and equality with a
floating point tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.keys import linear_keys
from repro.utils.validation import check_nonnegative_int


@dataclass
class COOMatrix:
    """A sparse matrix stored as coordinate triples.

    Attributes:
        rows: 1-D int64 array of row indices.
        cols: 1-D int64 array of column indices.
        vals: 1-D float64 array of values.
        shape: ``(num_rows, num_cols)`` of the logical matrix.
    """

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.vals = np.asarray(self.vals, dtype=np.float64)
        if not (self.rows.ndim == self.cols.ndim == self.vals.ndim == 1):
            raise ValueError("rows, cols and vals must be 1-D arrays")
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise ValueError(
                "rows, cols and vals must have equal length, got "
                f"{len(self.rows)}, {len(self.cols)}, {len(self.vals)}"
            )
        num_rows, num_cols = self.shape
        check_nonnegative_int(int(num_rows), "shape[0]")
        check_nonnegative_int(int(num_cols), "shape[1]")
        self.shape = (int(num_rows), int(num_cols))
        if len(self.rows):
            if self.rows.min() < 0 or self.cols.min() < 0:
                raise ValueError("negative indices are not allowed")
            if self.rows.max() >= self.shape[0] or self.cols.max() >= self.shape[1]:
                raise ValueError(
                    f"index out of bounds for shape {self.shape}: "
                    f"max row {self.rows.max()}, max col {self.cols.max()}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "COOMatrix":
        """Return an all-zero matrix of the given ``shape``."""
        return cls(np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0), shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build a COO matrix from a dense 2-D array, dropping explicit zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("from_dense() expects a 2-D array")
        rows, cols = np.nonzero(dense)
        return cls(rows, cols, dense[rows, cols], dense.shape)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted separately)."""
        return int(len(self.vals))

    @property
    def density(self) -> float:
        """Fraction of positions that hold a stored entry."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def is_canonical(self) -> bool:
        """True when entries are sorted by (row, col) with no duplicates."""
        if self.nnz <= 1:
            return True
        keys = linear_keys(self.rows, self.cols, self.shape[1])
        return bool(np.all(np.diff(keys) > 0))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def canonicalized(self, *, drop_zeros: bool = True) -> "COOMatrix":
        """Return a copy sorted by (row, col) with duplicate entries summed.

        Args:
            drop_zeros: when true, entries whose accumulated value is exactly
                zero are removed (this mirrors the adder + zero eliminator
                stage of the merge tree).
        """
        if self.nnz == 0:
            return COOMatrix.empty(self.shape)
        keys = linear_keys(self.rows, self.cols, self.shape[1])
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = self.vals[order]
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        summed = np.zeros(len(unique_keys))
        np.add.at(summed, inverse, vals)
        rows = unique_keys // self.shape[1]
        cols = unique_keys % self.shape[1]
        if drop_zeros:
            keep = summed != 0.0
            rows, cols, summed = rows[keep], cols[keep], summed[keep]
        return COOMatrix(rows, cols, summed, self.shape)

    def to_dense(self) -> np.ndarray:
        """Return the dense 2-D array equivalent (duplicates accumulated)."""
        dense = np.zeros(self.shape)
        np.add.at(dense, (self.rows, self.cols), self.vals)
        return dense

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (entries are not re-sorted)."""
        return COOMatrix(self.cols.copy(), self.rows.copy(), self.vals.copy(),
                         (self.shape[1], self.shape[0]))

    def scaled(self, factor: float) -> "COOMatrix":
        """Return a copy with every value multiplied by ``factor``."""
        return COOMatrix(self.rows.copy(), self.cols.copy(), self.vals * factor,
                         self.shape)

    # ------------------------------------------------------------------
    # Comparison / iteration
    # ------------------------------------------------------------------
    def allclose(self, other: "COOMatrix", *, rtol: float = 1e-9,
                 atol: float = 1e-12) -> bool:
        """Numerically compare two matrices after canonicalisation."""
        if self.shape != other.shape:
            return False
        a = self.canonicalized()
        b = other.canonicalized()
        if a.nnz != b.nnz:
            return False
        return bool(
            np.array_equal(a.rows, b.rows)
            and np.array_equal(a.cols, b.cols)
            and np.allclose(a.vals, b.vals, rtol=rtol, atol=atol)
        )

    def iter_triples(self):
        """Yield ``(row, col, value)`` triples in storage order."""
        for r, c, v in zip(self.rows, self.cols, self.vals):
            yield int(r), int(c), float(v)

    def __len__(self) -> int:
        return self.nnz

    def __repr__(self) -> str:
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
