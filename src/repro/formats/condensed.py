"""Condensed matrix representation (§II-B, Figure 7 of the paper).

Matrix condensing pushes all nonzeros of the left operand to the left: the
*i*-th nonzero of every row lands in condensed column *i*.  Because CSR
already stores each row's nonzeros contiguously, the condensed format is a
*view* over CSR — "CSR format and our condensed format are two different
views of the same data".  Each condensed-column element keeps its **original
column index**, which the multiplier array uses to select the row of the
right operand.

The number of condensed columns equals the length of the longest row, which
for the paper's benchmarks shrinks the partial-matrix count from ~100,000 to
~100–1,000.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.csr import CSRMatrix


@dataclass(frozen=True)
class CondensedColumn:
    """One condensed column of the left operand.

    Attributes:
        index: the condensed-column index (0 = leftmost).
        rows: row index of every element, strictly increasing.
        original_cols: original column index of every element; this is the
            row of the right operand each element multiplies.
        values: the element values.
    """

    index: int
    rows: np.ndarray
    original_cols: np.ndarray
    values: np.ndarray

    @property
    def nnz(self) -> int:
        """Number of elements in this condensed column."""
        return int(len(self.values))

    def __len__(self) -> int:
        return self.nnz


class CondensedMatrix:
    """Condensed-column view over a CSR matrix (zero-copy per construction).

    Args:
        csr: the left operand in CSR format with sorted rows.
    """

    def __init__(self, csr: CSRMatrix) -> None:
        self._csr = csr
        # Row lengths are consulted by every column access; computing them
        # per call made column materialisation O(nnz) per column.
        self._row_lengths = csr.nnz_per_row()
        self._num_condensed_cols = (int(self._row_lengths.max(initial=0))
                                    if csr.num_rows else 0)

    # ------------------------------------------------------------------
    @property
    def csr(self) -> CSRMatrix:
        """The underlying CSR matrix."""
        return self._csr

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the original (un-condensed) matrix."""
        return self._csr.shape

    @property
    def nnz(self) -> int:
        """Total number of nonzeros (unchanged by condensing)."""
        return self._csr.nnz

    @property
    def num_condensed_columns(self) -> int:
        """Number of condensed columns == length of the longest row."""
        return self._num_condensed_cols

    # ------------------------------------------------------------------
    def column_nnz(self, j: int) -> int:
        """Number of elements in condensed column ``j``.

        This equals the number of rows with at least ``j + 1`` nonzeros and is
        the leaf weight used by the Huffman tree scheduler.
        """
        self._check_column(j)
        return int(np.count_nonzero(self._row_lengths > j))

    def column_nnz_histogram(self) -> np.ndarray:
        """Return ``nnz`` of every condensed column as an int64 array.

        ``histogram[j]`` is the number of rows whose length exceeds ``j``;
        it is non-increasing in ``j`` by construction.
        """
        row_lengths = self._row_lengths
        if self._num_condensed_cols == 0:
            return np.zeros(0, dtype=np.int64)
        counts = np.bincount(row_lengths, minlength=self._num_condensed_cols + 1)
        # histogram[j] = number of rows with length > j = total - cumsum(counts[:j+1])
        suffix = self._csr.num_rows - np.cumsum(counts)[: self._num_condensed_cols]
        return suffix.astype(np.int64)

    def column(self, j: int) -> CondensedColumn:
        """Materialise condensed column ``j``.

        Elements are ordered by increasing row index (the order in which the
        column fetcher streams them from DRAM).
        """
        self._check_column(j)
        rows = np.nonzero(self._row_lengths > j)[0]
        positions = self._csr.indptr[rows] + j
        return CondensedColumn(
            index=j,
            rows=rows.astype(np.int64),
            original_cols=self._csr.indices[positions].copy(),
            values=self._csr.data[positions].copy(),
        )

    def columns(self):
        """Yield every condensed column from left to right."""
        for j in range(self._num_condensed_cols):
            yield self.column(j)

    def access_order(self, columns: list[int] | None = None) -> np.ndarray:
        """Right-operand row access sequence for the given condensed columns.

        Streaming condensed columns in ``columns`` order (default: left to
        right), the multiplier needs right-operand row ``original_col`` for
        every element.  The returned sequence drives the row prefetcher's
        Bélády replacement decisions.
        """
        if columns is None:
            columns = list(range(self._num_condensed_cols))
        pieces = [self.column(j).original_cols for j in columns]
        if not pieces:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(pieces)

    # ------------------------------------------------------------------
    def _check_column(self, j: int) -> None:
        if not 0 <= j < self._num_condensed_cols:
            raise IndexError(
                f"condensed column {j} out of range "
                f"(matrix has {self._num_condensed_cols})"
            )

    def __repr__(self) -> str:
        return (f"CondensedMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"condensed_columns={self.num_condensed_columns})")


def condense(csr: CSRMatrix) -> CondensedMatrix:
    """Return the condensed view of ``csr`` (convenience constructor)."""
    return CondensedMatrix(csr)
