"""Conversions between sparse formats and to/from ``scipy.sparse``.

All converters produce canonical output: rows/columns sorted, duplicate
entries accumulated, and explicit zeros preserved only when they are stored
in the input (the merge tree's zero eliminator is responsible for dropping
accumulated zeros during simulation, not the format layer).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix


def coo_to_csr(matrix: COOMatrix) -> CSRMatrix:
    """Convert COO to CSR, sorting rows and summing duplicates."""
    canonical = matrix.canonicalized(drop_zeros=False)
    num_rows, num_cols = canonical.shape
    counts = np.bincount(canonical.rows, minlength=num_rows)
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(indptr, canonical.cols.copy(), canonical.vals.copy(),
                     canonical.shape)


def csr_to_coo(matrix: CSRMatrix) -> COOMatrix:
    """Convert CSR to COO; output is sorted by (row, col)."""
    rows = np.repeat(np.arange(matrix.num_rows, dtype=np.int64),
                     matrix.nnz_per_row())
    return COOMatrix(rows, matrix.indices.copy(), matrix.data.copy(), matrix.shape)


def coo_to_csc(matrix: COOMatrix) -> CSCMatrix:
    """Convert COO to CSC, sorting columns and summing duplicates."""
    canonical = matrix.transpose().canonicalized(drop_zeros=False)
    # canonical is the transpose sorted by (col-of-original, row-of-original)
    num_rows, num_cols = matrix.shape
    counts = np.bincount(canonical.rows, minlength=num_cols)
    indptr = np.zeros(num_cols + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSCMatrix(indptr, canonical.cols.copy(), canonical.vals.copy(),
                     (num_rows, num_cols))


def csc_to_coo(matrix: CSCMatrix) -> COOMatrix:
    """Convert CSC to COO (entries ordered column-major)."""
    cols = np.repeat(np.arange(matrix.num_cols, dtype=np.int64),
                     matrix.nnz_per_col())
    return COOMatrix(matrix.indices.copy(), cols, matrix.data.copy(), matrix.shape)


def csr_to_csc(matrix: CSRMatrix) -> CSCMatrix:
    """Convert CSR to CSC."""
    return coo_to_csc(csr_to_coo(matrix))


def csc_to_csr(matrix: CSCMatrix) -> CSRMatrix:
    """Convert CSC to CSR."""
    return coo_to_csr(csc_to_coo(matrix))


def from_scipy(matrix: sp.spmatrix | sp.sparray) -> CSRMatrix:
    """Build a :class:`CSRMatrix` from any scipy sparse matrix."""
    csr = sp.csr_matrix(matrix)
    csr.sum_duplicates()
    csr.sort_indices()
    return CSRMatrix(csr.indptr.astype(np.int64), csr.indices.astype(np.int64),
                     csr.data.astype(np.float64), csr.shape)


def to_scipy(matrix: CSRMatrix | CSCMatrix | COOMatrix) -> sp.csr_matrix:
    """Convert any of our containers to a scipy CSR matrix."""
    if isinstance(matrix, CSRMatrix):
        return sp.csr_matrix((matrix.data, matrix.indices, matrix.indptr),
                             shape=matrix.shape)
    if isinstance(matrix, CSCMatrix):
        csc = sp.csc_matrix((matrix.data, matrix.indices, matrix.indptr),
                            shape=matrix.shape)
        return csc.tocsr()
    if isinstance(matrix, COOMatrix):
        coo = sp.coo_matrix((matrix.vals, (matrix.rows, matrix.cols)),
                            shape=matrix.shape)
        return coo.tocsr()
    raise TypeError(f"unsupported matrix type: {type(matrix).__name__}")
