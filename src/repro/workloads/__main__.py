"""Command-line runner: ``python -m repro.workloads <id> [...]``.

Runs registered workload pipelines one-off on a benchmark-suite proxy and
prints the per-stage cost table — the quick way to inspect a pipeline.
``--list`` prints the registered workload ids; unknown ids raise the same
helpful error as the experiment registry.  The full SpArch-vs-baselines
comparison sweep lives in ``python -m repro.experiments workloads``.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import ExperimentRunner
from repro.matrices.suite import load_benchmark
from repro.utils.reporting import Table
from repro.workloads.registry import get_workload, list_workloads, run_workload


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Run declarative SpGEMM workload pipelines on SpArch.",
    )
    parser.add_argument("workloads", nargs="*",
                        help="workload ids to run (e.g. mcl khop), or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list the registered workloads and exit")
    parser.add_argument("--matrix", default="ca-CondMat",
                        help="benchmark-suite matrix to run on")
    parser.add_argument("--max-rows", type=int, default=600,
                        help="proxy dimension cap for the matrix")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="memoise per-stage simulations on disk under DIR")
    return parser


def _print_listing() -> None:
    for workload_id in list_workloads():
        spec = get_workload(workload_id)
        print(f"{workload_id:>10}  {spec.title}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list or not args.workloads:
        _print_listing()
        return 0

    requested = args.workloads
    if requested == ["all"]:
        requested = list_workloads()

    matrix = load_benchmark(args.matrix, max_rows=args.max_rows)
    runner = ExperimentRunner(cache_dir=args.cache_dir)
    for workload_id in requested:
        spec = get_workload(workload_id)
        result = run_workload(workload_id, matrix, runner=runner)
        table = Table(
            title=f"{spec.title} — {args.matrix} ({matrix.shape[0]} rows), "
                  f"backend {result.backend}",
            columns=["stage", "kind", "inputs", "nnz", "cycles",
                     "runtime [s]", "DRAM [B]", "energy [J]"],
        )
        for stage in result.stages:
            table.add_row(stage.name, stage.kind, "+".join(stage.inputs),
                          stage.output_nnz, stage.cycles,
                          stage.runtime_seconds, stage.dram_bytes,
                          stage.energy_joules)
        table.add_row("TOTAL", "", "", "", result.total_cycles,
                      result.total_runtime_seconds, result.total_dram_bytes,
                      result.total_energy_joules)
        print(table.render())
        if result.annotations:
            notes = ", ".join(f"{key}={value:g}"
                              for key, value in result.annotations.items())
            print(f"annotations: {notes}")
        print()
    hits, misses = runner.cache_hits, runner.cache_misses
    if hits or misses:
        print(f"[runner] {misses} stage simulations computed, "
              f"{hits} reused from cache")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
